"""ASCII report rendering."""

import pytest

from repro.metrics.report import render_distribution, render_series, render_table


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "bb" in lines[3]

    def test_title(self):
        out = render_table(["x"], [[1]], title="Table II")
        assert out.splitlines()[0] == "Table II"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = render_table(["v"], [[1.2345], [0.0001], [12345.6]])
        assert "1.23" in out
        assert "0.0001" in out

    def test_columns_aligned(self):
        out = render_table(["col", "другой"], [["longvalue", 2]])
        header, rule, row = out.splitlines()
        assert len(rule) == len(header.rstrip()) or len(rule) >= len("col")


class TestRenderSeries:
    def test_one_row_per_time(self):
        out = render_series([0, 1, 2], {"a": [1, 2, 3], "b": [4, 5, 6]})
        assert len(out.splitlines()) == 2 + 3

    def test_subsampling(self):
        out = render_series(list(range(10)), {"a": list(range(10))},
                            every=5)
        assert len(out.splitlines()) == 2 + 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series([0, 1], {"a": [1]})


class TestRenderDistribution:
    def test_bars_scale_to_peak(self):
        out = render_distribution({1: 100, 2: 50}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_ranks_sorted(self):
        out = render_distribution({3: 1, 1: 1, 2: 1})
        ranks = [line.split()[1] for line in out.splitlines()]
        assert ranks == ["1", "2", "3"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_distribution({})
