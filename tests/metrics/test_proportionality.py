"""Measured read-performance proportionality (§III-C's claim)."""

import pytest

from repro.core.elastic import ElasticConsistentHash
from repro.metrics.proportionality import (
    holder_groups,
    proportionality_curve,
    read_capacity,
)

PROBE = range(1_500)
BW = 64e6


@pytest.fixture(scope="module")
def equal_work():
    return ElasticConsistentHash(n=10, replicas=2)


class TestHolderGroups:
    def test_full_power_all_available(self, equal_work):
        groups, total, unavailable = holder_groups(
            equal_work, frozenset(range(1, 11)), PROBE)
        assert total == len(list(PROBE))
        assert unavailable == 0
        assert sum(groups.values()) == total

    def test_primaries_only_still_available(self, equal_work):
        """The primary guarantee: every object readable at k=p."""
        groups, _total, unavailable = holder_groups(
            equal_work, frozenset([1, 2]), PROBE)
        assert unavailable == 0
        # All groups are subsets of the primaries.
        assert all(h <= {1, 2} for h in groups)

    def test_uniform_original_loses_objects_at_small_k(self):
        ech = ElasticConsistentHash(n=10, replicas=2,
                                    layout_mode="uniform",
                                    placement_mode="original")
        _g, _t, unavailable = holder_groups(
            ech, frozenset([1, 2]), PROBE)
        assert unavailable > 0


class TestReadCapacity:
    def test_full_power_close_to_aggregate(self, equal_work):
        cap = read_capacity(equal_work, 10, BW, PROBE)
        assert cap == pytest.approx(10 * BW, rel=0.15)

    def test_monotone_in_k(self, equal_work):
        caps = [read_capacity(equal_work, k, BW, PROBE)
                for k in (2, 5, 8, 10)]
        assert caps == sorted(caps)

    def test_equal_work_is_proportional(self, equal_work):
        """§III-C: capacity(k) ≈ (k/n) * capacity(n) for all legal k."""
        curve = proportionality_curve(equal_work, BW, PROBE)
        full = curve[10]
        for k, cap in curve.items():
            ratio = cap / (full * k / 10)
            assert 0.8 < ratio < 1.25, (k, ratio)

    def test_uniform_layout_is_not_proportional(self):
        """The contrast that motivates §III-C: uniform weights with
        primary placement sag well below proportional mid-range."""
        ech = ElasticConsistentHash(n=10, replicas=2,
                                    layout_mode="uniform")
        curve = proportionality_curve(ech, BW, PROBE, ks=[5, 10])
        ratio = curve[5] / (curve[10] * 0.5)
        assert ratio < 0.8

    def test_unavailable_mix_capacity_zero(self):
        ech = ElasticConsistentHash(n=10, replicas=2,
                                    layout_mode="uniform",
                                    placement_mode="original")
        assert read_capacity(ech, 2, BW, PROBE) == 0.0

    def test_k_out_of_range(self, equal_work):
        with pytest.raises(ValueError):
            read_capacity(equal_work, 0)
        with pytest.raises(ValueError):
            read_capacity(equal_work, 11)
