"""Distribution statistics for layout validation."""

import pytest

from repro.metrics.distribution import (
    distribution_stats,
    equal_work_reference,
    gini,
    normalized_shape,
    shape_correlation,
)


class TestNormalizedShape:
    def test_sums_to_one(self):
        shape = normalized_shape({1: 10, 2: 30})
        assert sum(shape.values()) == pytest.approx(1.0)
        assert shape[2] == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normalized_shape({})


class TestGini:
    def test_uniform_is_zero(self):
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_near_one(self):
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_all_zero(self):
        assert gini([0, 0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([-1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini([])

    def test_scale_invariant(self):
        assert gini([1, 2, 3]) == pytest.approx(gini([10, 20, 30]))


class TestEqualWorkReference:
    def test_primaries_equal_and_half_total(self):
        ref = equal_work_reference(10, 2)
        assert ref[1] == ref[2] == pytest.approx(0.25)
        assert sum(ref.values()) == pytest.approx(1.0)

    def test_secondaries_decay_as_one_over_i(self):
        ref = equal_work_reference(10, 2)
        assert ref[4] / ref[8] == pytest.approx(2.0)

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError):
            equal_work_reference(10, 0)
        with pytest.raises(ValueError):
            equal_work_reference(10, 10)


class TestShapeCorrelation:
    def test_perfect_correlation(self):
        ref = equal_work_reference(10, 2)
        scaled = {k: v * 1000 for k, v in ref.items()}
        assert shape_correlation(scaled, ref) == pytest.approx(1.0)

    def test_uncorrelated_shapes_lower(self):
        ref = equal_work_reference(10, 2)
        inverted = {k: ref[11 - k] for k in ref}
        assert shape_correlation(inverted, ref) < 0.5

    def test_requires_common_ranks(self):
        with pytest.raises(ValueError):
            shape_correlation({1: 1.0}, {2: 1.0})

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            shape_correlation({1: 1.0, 2: 1.0}, {1: 0.3, 2: 0.7})


class TestDistributionStats:
    def test_monotonicity_violations(self):
        stats = distribution_stats({1: 10, 2: 5, 3: 8, 4: 2})
        assert stats["monotonicity_violations"] == 1

    def test_equal_work_is_monotone(self):
        ref = equal_work_reference(10, 2)
        assert distribution_stats(ref)["monotonicity_violations"] == 0

    def test_bundle_fields(self):
        stats = distribution_stats({1: 10, 2: 10})
        assert stats["total"] == 20
        assert stats["max_over_mean"] == pytest.approx(1.0)
        assert "gini" in stats

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            distribution_stats({})
