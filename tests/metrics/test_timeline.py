"""StepSeries: integrals, sampling, resampling."""

import numpy as np
import pytest

from repro.metrics.timeline import StepSeries


@pytest.fixture
def series():
    s = StepSeries()
    s.append(0.0, 10.0)
    s.append(5.0, 4.0)
    s.append(8.0, 7.0)
    return s


class TestBuild:
    def test_from_points(self):
        s = StepSeries.from_points([0.0, 1.0], [2.0, 3.0])
        assert len(s) == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            StepSeries.from_points([0.0], [1.0, 2.0])

    def test_time_must_increase(self, series):
        with pytest.raises(ValueError):
            series.append(8.0, 1.0)
        with pytest.raises(ValueError):
            series.append(3.0, 1.0)

    def test_coalesces_repeated_values(self):
        s = StepSeries()
        s.append(0.0, 5.0)
        s.append(1.0, 5.0)
        s.append(2.0, 6.0)
        assert len(s) == 2

    def test_final_repeated_sample_time_not_lost(self):
        # Regression: a series ending in a repeated value used to
        # forget its final sample time entirely — the extent of the
        # run was silently shortened to the last value *change*.
        s = StepSeries()
        s.append(0.0, 5.0)
        s.append(10.0, 3.0)
        s.append(20.0, 3.0)   # coalesced, but the time must survive
        assert len(s) == 2
        assert s.end_time == 20.0

    def test_end_time_tracks_last_breakpoint_too(self):
        s = StepSeries()
        s.append(0.0, 1.0)
        s.append(4.0, 2.0)
        assert s.end_time == 4.0

    def test_end_time_empty_rejected(self):
        with pytest.raises(ValueError):
            StepSeries().end_time

    def test_coalesce_false_keeps_every_breakpoint(self):
        s = StepSeries()
        s.append(0.0, 5.0, coalesce=False)
        s.append(1.0, 5.0, coalesce=False)
        s.append(2.0, 5.0, coalesce=False)
        assert len(s) == 3
        assert s.end_time == 2.0

    def test_from_points_coalesce_flag(self):
        times, values = [0.0, 1.0, 2.0], [7.0, 7.0, 7.0]
        assert len(StepSeries.from_points(times, values)) == 1
        s = StepSeries.from_points(times, values, coalesce=False)
        assert len(s) == 3
        assert StepSeries.from_points(times, values).end_time == 2.0


class TestValueAt:
    def test_steps_hold_value(self, series):
        assert series.value_at(0.0) == 10.0
        assert series.value_at(4.999) == 10.0
        assert series.value_at(5.0) == 4.0
        assert series.value_at(100.0) == 7.0

    def test_before_first_breakpoint(self, series):
        assert series.value_at(-10.0) == 10.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StepSeries().value_at(0.0)


class TestIntegral:
    def test_basic(self, series):
        # 10*5 + 4*3 + 7*2 over [0, 10]
        assert series.integral(0.0, 10.0) == pytest.approx(76.0)

    def test_partial_segment(self, series):
        assert series.integral(2.0, 6.0) == pytest.approx(10 * 3 + 4 * 1)

    def test_extends_first_value_backwards(self, series):
        assert series.integral(-2.0, 0.0) == pytest.approx(20.0)

    def test_zero_width(self, series):
        assert series.integral(3.0, 3.0) == 0.0

    def test_backwards_rejected(self, series):
        with pytest.raises(ValueError):
            series.integral(5.0, 1.0)

    def test_mean(self, series):
        assert series.mean(0.0, 10.0) == pytest.approx(7.6)


class TestSample:
    def test_grid_sampling(self, series):
        grid = [0.0, 5.0, 9.0]
        assert list(series.sample(grid)) == [10.0, 4.0, 7.0]

    def test_min_max(self, series):
        assert series.max() == 10.0
        assert series.min() == 4.0

    def test_points_roundtrip(self, series):
        pts = series.points()
        rebuilt = StepSeries.from_points([p[0] for p in pts],
                                         [p[1] for p in pts])
        assert rebuilt.points() == pts
