"""Cross-module integration scenarios: the whole system exercised the
way a deployment would."""

import pytest

from repro.cluster.cluster import ElasticCluster, OriginalCHCluster
from repro.cluster.power import MachineHourMeter
from repro.core.layout import CapacityPlan, EqualWorkLayout
from repro.simulation.engine import Simulator
from repro.simulation.flows import FluidFlow
from repro.simulation.iomodel import (
    IOModel,
    client_coefficients,
    replica_load_fractions,
)

MB4 = 4 * 1024 * 1024


class TestElasticLifecycle:
    """A multi-day-style lifecycle: write, shrink, write, grow part
    way, shrink again, grow to full — the dirty table must stay
    coherent throughout."""

    def test_multi_version_lifecycle(self):
        cl = ElasticCluster(n=10, replicas=2)
        oid = 0

        def write(n):
            nonlocal oid
            for _ in range(n):
                cl.write(oid, MB4)
                oid += 1

        write(300)               # v1: full power
        cl.resize(6)             # v2
        write(100)
        cl.resize(4)             # v3: deeper
        write(50)
        cl.resize(8)             # v4: partial re-power
        rep1 = cl.run_selective_reintegration()
        assert rep1.caught_up
        assert rep1.entries_removed == 0       # not full power yet
        write(50)                # writes at 8 active are also dirty
        cl.resize(10)            # v5: full power
        rep2 = cl.run_selective_reintegration()
        assert rep2.caught_up
        assert cl.ech.dirty.is_empty()
        assert cl.catalog.dirty_oids() == []
        # Every object sits exactly at its current placement.
        for obj in cl.catalog:
            assert (set(cl.stored_locations(obj.oid))
                    == set(cl.ech.locate(obj.oid).servers))
        assert cl.verify_replication() == []

    def test_reads_always_available_during_lifecycle(self):
        cl = ElasticCluster(n=10, replicas=2)
        for oid in range(200):
            cl.write(oid, MB4)
        for k in (6, 4, 2, 7, 10):
            cl.resize(k)
            for oid in range(0, 200, 13):
                _, available = cl.read(oid)
                assert available, (k, oid)

    def test_machine_hours_accounting_with_resizes(self):
        cl = ElasticCluster(n=10, replicas=2)
        meter = MachineHourMeter(0.0, cl.num_active)
        schedule = [(3600.0, 6), (7200.0, 2), (10800.0, 10)]
        for t, k in schedule:
            cl.resize(k)
            meter.record(t, cl.num_active)
        hours = meter.finish(14400.0)
        # 10 + 6 + 2 + 10 server-hours over four hours.
        assert hours == pytest.approx(28.0)


class TestCapacityIntegration:
    def test_capacity_plan_fits_actual_distribution(self):
        layout = EqualWorkLayout.create(10)
        total_data = 400 * MB4 * 2  # 400 objects, 2-way
        plan = CapacityPlan.for_layout(layout,
                                       total_capacity=total_data * 4)
        cl = ElasticCluster(
            n=10, replicas=2,
            capacities=list(plan.capacities))
        for oid in range(400):
            cl.write(oid, MB4)   # raises CapacityExceeded if plan bad
        util = plan.utilisation(cl.bytes_per_rank())
        assert max(util.values()) <= 1.0


class TestBaselineVsElasticUnderSimulator:
    def test_migration_flow_steals_less_with_rate_limit(self):
        """Re-integration rate limiting trades duration for foreground
        throughput, under the real fair-share model."""
        def run(rate_cap):
            io = IOModel(lambda: {r: 64e6 for r in range(1, 11)}, dt=1.0)
            io.flows.add(FluidFlow("client",
                                   {r: 0.12 for r in range(1, 11)}))
            io.flows.add(FluidFlow("migration",
                                   {r: 0.1 for r in range(1, 11)},
                                   total_bytes=5e9, rate_cap=rate_cap))
            io.run(60.0)
            _, thr = io.series("client")
            return sum(thr) / len(thr)

        limited = run(50e6)
        unlimited = run(float("inf"))
        assert limited > unlimited

    def test_simulator_event_driven_resize(self):
        """Drive resizes from the DES engine and observe capacity
        changes in the fluid model.  Uses the uniform-layout flavour:
        with equal-work weights the write path is primary-bound and a
        resize would (correctly) not change peak write throughput."""
        cl = ElasticCluster(n=10, replicas=2, layout_mode="uniform",
                            placement_mode="original")
        for oid in range(100):
            cl.write(oid, MB4)

        def caps():
            return {r: 64e6 for r in cl.servers
                    if cl.servers[r].is_on}

        io = IOModel(caps, dt=1.0)

        def refresh_flow():
            for f in io.flows.by_name("client"):
                io.flows.remove(f)
            fractions = replica_load_fractions(
                lambda o: cl.ech.locate(o).servers, range(5000, 6000))
            io.flows.add(FluidFlow(
                "client", client_coefficients(fractions, 2, 1.0)))

        refresh_flow()
        sim = Simulator()

        def shrink():
            cl.resize(4)
            refresh_flow()

        sim.schedule(10.0, shrink)
        for t in range(1, 31):
            sim.run_until(float(t))
            io.step(float(t))
        _, thr = io.series("client")
        # Aggregate write throughput must drop when 6 of 10 uniform
        # servers vanish at t=10.
        assert max(thr[12:]) < max(thr[:10])


class TestOriginalBaselineLifecycle:
    def test_shrink_grow_shrink_consistency(self):
        cl = OriginalCHCluster(n=8, replicas=2, vnodes_per_server=128)
        for oid in range(300):
            cl.write(oid, MB4)
        cl.remove_server(8)
        cl.remove_server(7)
        for oid in range(300, 350):
            cl.write(oid, MB4)
        cl.add_server(7)
        cl.remove_server(6)
        cl.add_server(6)
        cl.add_server(8)
        assert cl.verify_replication() == []
        for obj in cl.catalog:
            assert (set(cl.stored_locations(obj.oid))
                    == set(cl.placement(obj.oid).servers))
