"""Weight helpers and fairness diagnostics."""

import pytest

from repro.hashring.ring import HashRing
from repro.hashring.weights import (
    expected_shares,
    share_error,
    uniform_weights,
    validate_weights,
)


class TestUniformWeights:
    def test_all_equal(self):
        w = uniform_weights(["a", "b", "c"], 10)
        assert set(w.values()) == {10}

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            uniform_weights(["a"], 0)


class TestValidateWeights:
    def test_accepts_positive_ints(self):
        validate_weights({"a": 1, "b": 500})

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            validate_weights({"a": 0})

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            validate_weights({"a": 1.5})


class TestExpectedShares:
    def test_shares_sum_to_one(self):
        shares = expected_shares({"a": 1, "b": 3})
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["b"] == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            expected_shares({})


class TestShareError:
    def test_zero_for_exact_match(self):
        exp = {"a": 0.5, "b": 0.5}
        assert share_error(exp, exp) == 0.0

    def test_measures_worst_relative_deviation(self):
        err = share_error({"a": 0.6, "b": 0.4}, {"a": 0.5, "b": 0.5})
        assert err == pytest.approx(0.2)

    def test_fairness_improves_with_vnode_budget(self):
        """More vnodes per server → arc shares converge to weights —
        the §III-C requirement that B be 'large enough'."""
        errors = []
        for vnodes in (8, 64, 512):
            ring = HashRing()
            for rank in range(1, 11):
                ring.add_server(rank, weight=vnodes)
            exp = expected_shares({r: vnodes for r in range(1, 11)})
            errors.append(share_error(ring.arc_share(), exp))
        assert errors[2] < errors[0]
