"""HashRing: membership, lookups, walks, views, arc shares."""

import numpy as np
import pytest

from repro.hashring.ring import HashRing


@pytest.fixture
def ring():
    r = HashRing()
    for rank in range(1, 6):
        r.add_server(rank, weight=50)
    return r


class TestMembership:
    def test_add_and_contains(self, ring):
        assert 3 in ring
        assert 99 not in ring

    def test_len_counts_servers(self, ring):
        assert len(ring) == 5

    def test_duplicate_add_rejected(self, ring):
        with pytest.raises(ValueError):
            ring.add_server(1)

    def test_remove(self, ring):
        ring.remove_server(5)
        assert 5 not in ring
        assert len(ring) == 4

    def test_remove_unknown_rejected(self, ring):
        with pytest.raises(KeyError):
            ring.remove_server(42)

    def test_weight_validation(self, ring):
        with pytest.raises(ValueError):
            ring.add_server(99, weight=0)
        with pytest.raises(ValueError):
            ring.set_weight(1, -3)

    def test_set_weight_changes_vnode_count(self, ring):
        before = ring.num_vnodes
        ring.set_weight(1, 150)
        assert ring.num_vnodes == before + 100

    def test_set_weight_unknown_rejected(self, ring):
        with pytest.raises(KeyError):
            ring.set_weight(42, 10)

    def test_num_vnodes(self, ring):
        assert ring.num_vnodes == 250

    def test_servers_insertion_order(self):
        r = HashRing()
        r.add_server("b")
        r.add_server("a")
        assert r.servers == ("b", "a")


class TestLookup:
    def test_successor_is_member(self, ring):
        assert ring.successor("some-key") in ring.servers

    def test_successor_stable(self, ring):
        assert ring.successor("k1") == ring.successor("k1")

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().successor("k")

    def test_find_returns_distinct_servers(self, ring):
        servers = ring.find("key", r=3)
        assert len(servers) == 3
        assert len(set(servers)) == 3

    def test_find_with_predicate(self, ring):
        servers = ring.find("key", r=2, predicate=lambda s: s != 1)
        assert 1 not in servers

    def test_find_too_many_raises(self, ring):
        with pytest.raises(LookupError):
            ring.find("key", r=6)

    def test_walk_servers_yields_all_distinct(self, ring):
        walked = list(ring.walk_servers(0))
        assert sorted(walked) == [1, 2, 3, 4, 5]

    def test_walk_after_membership_change(self, ring):
        """Regression: the walk must see a rebuilt ring even when the
        generator is created before the first lookup."""
        ring.remove_server(2)
        assert sorted(ring.walk_servers(0)) == [1, 3, 4, 5]

    def test_minimal_movement_on_addition(self, ring):
        """Consistent hashing's core promise (Figure 1): adding a
        server only moves keys *onto* it, never between old servers."""
        keys = [f"key-{i}" for i in range(3000)]
        before = {k: ring.successor(k) for k in keys}
        ring.add_server(6, weight=50)
        moved_elsewhere = [
            k for k in keys
            if ring.successor(k) != before[k] and ring.successor(k) != 6
        ]
        assert moved_elsewhere == []

    def test_movement_fraction_roughly_proportional(self, ring):
        keys = [f"key-{i}" for i in range(5000)]
        before = {k: ring.successor(k) for k in keys}
        ring.add_server(6, weight=50)
        moved = sum(1 for k in keys if ring.successor(k) != before[k])
        # New server owns ~1/6 of the ring; allow generous slack.
        assert 0.08 < moved / len(keys) < 0.26


class TestBulkSuccessor:
    def test_matches_scalar(self, ring):
        positions = np.array([ring.key_position(f"k{i}") for i in range(100)],
                             dtype=np.uint64)
        bulk = ring.bulk_successor(positions)
        servers = [ring.servers[i] for i in bulk]
        assert servers == [ring.successor(f"k{i}") for i in range(100)]

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().bulk_successor(np.array([1], dtype=np.uint64))


class TestArcShare:
    def test_shares_sum_to_one(self, ring):
        assert sum(ring.arc_share().values()) == pytest.approx(1.0)

    def test_share_tracks_weight(self):
        r = HashRing()
        r.add_server("heavy", weight=3000)
        r.add_server("light", weight=1000)
        share = r.arc_share()
        assert share["heavy"] == pytest.approx(0.75, abs=0.05)

    def test_empty_ring(self):
        assert HashRing().arc_share() == {}


class TestRingView:
    def test_view_filters_servers(self, ring):
        view = ring.view(lambda s: s % 2 == 1)
        assert sorted(view.servers()) == [1, 3, 5]

    def test_view_find_respects_predicate(self, ring):
        view = ring.view(lambda s: s != 2)
        assert 2 not in view.find("key", r=4)

    def test_view_walk(self, ring):
        view = ring.view(lambda s: s in (1, 2))
        assert sorted(view.walk_servers(0)) == [1, 2]
