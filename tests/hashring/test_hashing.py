"""Hash-function behaviour: stability, distribution, key encoding."""

import numpy as np
import pytest

from repro.hashring.hashing import (
    bulk_hash,
    hash64,
    hash_key,
    splitmix64_array,
    vnode_positions,
)


class TestHash64:
    def test_deterministic_across_calls(self):
        assert hash64("object-42") == hash64("object-42")

    def test_int_and_str_keys_agree(self):
        assert hash64(42) == hash64("42")

    def test_bytes_and_str_agree(self):
        assert hash64(b"abc") == hash64("abc")

    def test_different_keys_differ(self):
        assert hash64("a") != hash64("b")

    def test_range_is_64_bit(self):
        for key in ["", "x", "a-long-key" * 50, 0, 2**63]:
            h = hash64(key)
            assert 0 <= h < 2**64

    def test_sha1_method_differs_from_fnv(self):
        assert hash64("key", "sha1") != hash64("key", "fnv1a")

    def test_sha1_deterministic(self):
        assert hash64("key", "sha1") == hash64("key", "sha1")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            hash64("key", "md5")  # type: ignore[arg-type]

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            hash64(3.14)  # type: ignore[arg-type]

    def test_hash_key_is_alias(self):
        assert hash_key("k") == hash64("k")

    def test_avalanche_on_sequential_ints(self):
        """Sequential object ids must land uniformly: chi-square over
        16 buckets of the top 4 bits."""
        hashes = np.array([hash64(i) for i in range(4000)], dtype=np.uint64)
        buckets = (hashes >> np.uint64(60)).astype(int)
        counts = np.bincount(buckets, minlength=16)
        expected = 4000 / 16
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 15 dof, p=0.001 critical value is 37.7.
        assert chi2 < 37.7


class TestVnodePositions:
    def test_count(self):
        assert vnode_positions("s1", 7).shape == (7,)

    def test_zero_count(self):
        assert vnode_positions("s1", 0).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            vnode_positions("s1", -1)

    def test_prefix_stability(self):
        """Growing the vnode count only appends — existing positions
        never move (what makes re-weighting cheap)."""
        small = vnode_positions("s1", 10)
        big = vnode_positions("s1", 50)
        assert np.array_equal(big[:10], small)

    def test_start_index_continues_stream(self):
        full = vnode_positions("s1", 20)
        tail = vnode_positions("s1", 10, start_index=10)
        assert np.array_equal(full[10:], tail)

    def test_servers_get_distinct_streams(self):
        a = vnode_positions("s1", 100)
        b = vnode_positions("s2", 100)
        assert len(np.intersect1d(a, b)) == 0

    def test_positions_spread_over_ring(self):
        pos = vnode_positions("server-x", 1000).astype(np.float64)
        # Mean should be near the middle of the 64-bit space.
        mid = 2.0**63
        assert abs(pos.mean() - mid) / mid < 0.1


class TestBulkHash:
    def test_matches_scalar(self):
        keys = ["a", "b", 7]
        bulk = bulk_hash(keys)
        assert list(bulk) == [hash64(k) for k in keys]

    def test_vectorised_int_path_matches_scalar(self):
        # The fnv1a fast path (digit-grouped vectorised fold) must be
        # bit-identical to the per-key loop: every decimal length,
        # zero, the uint64 extremes, and both array and range inputs.
        edge = [0, 1, 9, 10, 99, 100, 2**32, 2**63, 2**64 - 1]
        edge += [10**d for d in range(1, 20)]
        edge += [10**d - 1 for d in range(1, 20)]
        arr = np.array(edge, dtype=np.uint64)
        assert list(bulk_hash(arr)) == [hash64(int(k)) for k in edge]

        rng = np.random.default_rng(7)
        rand = rng.integers(0, 2**63, size=5_000).astype(np.uint64)
        assert list(bulk_hash(rand)) == [hash64(int(k)) for k in rand]

        r = range(10_000_000, 10_002_000)
        assert list(bulk_hash(r)) == [hash64(k) for k in r]

    def test_negative_ints_fall_back_to_scalar(self):
        arr = np.array([-5, 3, -(2**40)], dtype=np.int64)
        assert list(bulk_hash(arr)) == [hash64(int(k)) for k in arr]

    def test_empty_inputs(self):
        assert bulk_hash(range(0)).size == 0
        assert bulk_hash(np.empty(0, dtype=np.uint64)).size == 0


class TestSplitmix64Array:
    def test_matches_vnode_derivation(self):
        seed = np.uint64(hash64("srv"))
        idx = np.arange(5, dtype=np.uint64)
        assert np.array_equal(splitmix64_array(seed + idx),
                              vnode_positions("srv", 5))

    def test_does_not_mutate_input(self):
        arr = np.arange(4, dtype=np.uint64)
        before = arr.copy()
        splitmix64_array(arr)
        assert np.array_equal(arr, before)
