"""Shared fixtures: the paper's reference cluster shapes, seeded
generators, and small object populations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import ElasticCluster, OriginalCHCluster
from repro.core.elastic import ElasticConsistentHash
from repro.hashring.ring import HashRing

MB4 = 4 * 1024 * 1024


@pytest.fixture
def rng():
    return np.random.default_rng(20170529)  # IPDPS 2017


@pytest.fixture
def ech10():
    """The paper's testbed shape: 10 servers, 2-way replication,
    2 primaries."""
    return ElasticConsistentHash(n=10, replicas=2, B=10_000)


@pytest.fixture
def elastic10():
    return ElasticCluster(n=10, replicas=2, B=10_000)


@pytest.fixture
def original10():
    return OriginalCHCluster(n=10, replicas=2, vnodes_per_server=200)


@pytest.fixture
def loaded_elastic10(elastic10):
    """10-server elastic cluster with 1,000 4 MB objects written at
    full power."""
    for oid in range(1_000):
        elastic10.write(oid, MB4)
    return elastic10


@pytest.fixture
def loaded_original10(original10):
    for oid in range(1_000):
        original10.write(oid, MB4)
    return original10


@pytest.fixture
def uniform_ring():
    ring = HashRing()
    for rank in range(1, 11):
        ring.add_server(rank, weight=100)
    return ring
