"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.n == 10 and args.replicas == 2


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "p=2" in out
        assert "minimum power : 2/10" in out

    def test_layout(self, capsys):
        assert main(["layout", "--n", "10", "--objects", "2000"]) == 0
        out = capsys.readouterr().out
        assert "equal-work layout" in out
        assert "primary" in out and "secondary" in out

    def test_agility(self, capsys):
        assert main(["agility", "--objects", "400"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "shrink lag" in out

    def test_three_phase(self, capsys):
        assert main(["three-phase", "--mode", "selective",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "peak throughput" in out
        assert "migrated" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--objects-v1", "2000",
                     "--objects-v2", "2500"]) == 0
        out = capsys.readouterr().out
        assert "version1" in out
        assert "re-integrated" in out

    def test_trace(self, capsys):
        assert main(["trace", "--which", "CC-a"]) == 0
        out = capsys.readouterr().out
        assert "Table II row" in out
        assert "primary-selective" in out

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["three-phase", "--mode", "bogus"])
