"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_defaults(self):
        args = build_parser().parse_args(["info"])
        assert args.n == 10 and args.replicas == 2


class TestCommands:
    def test_info(self, capsys):
        assert main(["info", "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "p=2" in out
        assert "minimum power : 2/10" in out

    def test_layout(self, capsys):
        assert main(["layout", "--n", "10", "--objects", "2000"]) == 0
        out = capsys.readouterr().out
        assert "equal-work layout" in out
        assert "primary" in out and "secondary" in out

    def test_agility(self, capsys):
        assert main(["agility", "--objects", "400"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "shrink lag" in out

    def test_three_phase(self, capsys):
        assert main(["three-phase", "--mode", "selective",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "peak throughput" in out
        assert "migrated" in out

    def test_chaos(self, capsys):
        assert main(["chaos", "--seed", "7", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "# chaos report" in out
        assert "## fault timeline" in out
        assert "verdict: **OK**" in out

    def test_chaos_plan_file(self, tmp_path, capsys):
        from repro.faults import FaultPlan
        path = tmp_path / "plan.json"
        FaultPlan.three_phase_default(seed=3).dump(str(path))
        assert main(["chaos", "--scale", "0.05",
                     "--plan", str(path)]) == 0
        out = capsys.readouterr().out
        assert "verdict: **OK**" in out

    def test_chaos_plan_rejecting_ranks_is_clean_error(self, tmp_path,
                                                       capsys):
        from repro.faults import FaultPlan
        path = tmp_path / "plan.json"
        FaultPlan.three_phase_default(seed=3, n=25, off_count=8).dump(
            str(path))
        with pytest.raises(SystemExit):
            main(["chaos", "--n", "10", "--plan", str(path)])

    def test_fig5(self, capsys):
        assert main(["fig5", "--objects-v1", "2000",
                     "--objects-v2", "2500"]) == 0
        out = capsys.readouterr().out
        assert "version1" in out
        assert "re-integrated" in out

    def test_trace(self, capsys):
        assert main(["trace", "--which", "CC-a"]) == 0
        out = capsys.readouterr().out
        assert "Table II row" in out
        assert "primary-selective" in out

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["three-phase", "--mode", "bogus"])

    SERVE_SMALL = ["--seed", "11", "--n", "6", "--off-count", "2",
                   "--clients", "40", "--users", "400000",
                   "--duration", "30", "--resize-at", "10",
                   "--resize-back-at", "20"]

    def test_serve(self, capsys):
        assert main(["serve", *self.SERVE_SMALL]) == 0
        out = capsys.readouterr().out
        assert "# serve report" in out
        assert "## client-perceived latency" in out
        assert "p999" in out
        assert "verdict: **OK**" in out

    def test_serve_missed_slo_exits_1(self, capsys):
        assert main(["serve", *self.SERVE_SMALL,
                     "--slo-p99", "1e-9"]) == 1
        out = capsys.readouterr().out
        assert "MISSED" in out
        assert "verdict: **DEGRADED**" in out

    def test_serve_bad_parameters_are_clean_error(self):
        with pytest.raises(SystemExit, match="repro serve"):
            main(["serve", "--n", "6", "--off-count", "6"])

    def test_serve_unknown_controller_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--controller", "bogus"])


class TestObservabilityFlags:
    def test_trace_out_writes_parseable_jsonl(self, tmp_path, capsys):
        from repro.obs import OBS
        from repro.obs.trace import read_jsonl

        path = tmp_path / "run.jsonl"
        assert main(["three-phase", "--scale", "0.05",
                     "--trace-out", str(path), "--stats"]) == 0
        assert not OBS.bus.active     # sink detached on the way out
        assert not OBS.hot

        events = read_jsonl(str(path))
        assert events, "trace must not be empty"
        kinds = {str(e["kind"]) for e in events}
        assert "engine.tick" in kinds
        assert "bandwidth.solve" in kinds
        assert "migration.move" in kinds
        for e in events:
            assert "kind" in e and "t" in e

        out = capsys.readouterr().out
        assert "metrics — repro three-phase" in out
        assert "migration.bytes" in out

    def test_stats_subcommand(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["three-phase", "--scale", "0.05",
                     "--trace-out", str(path)]) == 0
        capsys.readouterr()

        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine.tick" in out
        assert "migration.move" in out

        assert main(["stats", str(path), "--kind", "migration."]) == 0
        out = capsys.readouterr().out
        assert "migration.move" in out
        assert "engine.tick" not in out

    def test_stats_on_empty_match(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["stats", str(path)]) == 0
        assert "no matching trace events" in capsys.readouterr().out

    def test_stats_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_trace_out_bad_path_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "no_such_dir" / "t.jsonl"
        assert main(["info", "--trace-out", str(bad)]) == 2
        assert "cannot open trace file" in capsys.readouterr().err

    def test_stats_time_window(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["three-phase", "--scale", "0.05",
                     "--trace-out", str(path)]) == 0
        capsys.readouterr()

        # The first tick lands at t=1; a window past it excludes the
        # t=0 flow.start but keeps the engine ticks.  Windows are
        # half-open [since, until): the t=3 tick is outside [1, 3).
        assert main(["stats", str(path), "--since", "1.0",
                     "--until", "3.0"]) == 0
        out = capsys.readouterr().out
        assert "engine.tick" in out
        assert "t = [1, 2] s" in out

        # Exclusive upper bound: [1, 2) keeps only the t=1 tick, so
        # adjacent windows partition the trace without double counting.
        assert main(["stats", str(path), "--since", "1.0",
                     "--until", "2.0"]) == 0
        assert "t = [1, 1] s" in capsys.readouterr().out

        assert main(["stats", str(path), "--since", "1e9"]) == 0
        assert "no matching trace events" in capsys.readouterr().out

    def test_stats_top_n(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["three-phase", "--scale", "0.05",
                     "--trace-out", str(path)]) == 0
        capsys.readouterr()

        assert main(["stats", str(path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        # Only the biggest byte-mover survives; the (byteless)
        # engine.tick kind cannot be it.
        assert "flow." in out or "migration" in out
        assert "engine.tick" not in out

    def test_check_flag_live_clean_run(self, capsys):
        assert main(["three-phase", "--scale", "0.05", "--check"]) == 0
        err = capsys.readouterr().err
        assert "all invariants hold" in err

    def test_check_subcommand_missing_file(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_report_subcommand(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["three-phase", "--scale", "0.05",
                     "--trace-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "# Run report" in out
        assert "## Invariants" in out


class TestCorruptTraceHandling:
    """Corrupt/truncated JSONL must produce a clean exit 2 with the
    offending line number — never a traceback."""

    @pytest.fixture()
    def corrupt(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"kind":"engine.tick","t":1.0}\n'
                        '{"kind":"flow.start","t":2.0,'  # truncated line
                        '\n'
                        '{"kind":"engine.tick","t":3.0}\n')
        return str(path)

    def test_stats_reports_line_number(self, corrupt, capsys):
        assert main(["stats", corrupt]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err
        assert "Traceback" not in err

    def test_check_reports_line_number(self, corrupt, capsys):
        assert main(["check", corrupt]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err
        assert "Traceback" not in err

    def test_report_reports_line_number(self, corrupt, capsys):
        assert main(["report", corrupt]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err
        assert "Traceback" not in err

    def test_non_object_line_rejected(self, tmp_path, capsys):
        path = tmp_path / "list.jsonl"
        path.write_text('[1, 2, 3]\n')
        assert main(["stats", str(path)]) == 2
        err = capsys.readouterr().err
        assert "line 1" in err and "object" in err


class TestSweepCommand:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.kind == "chaos" and args.seeds == "0,1,2,3"
        assert args.workers is None and args.out == "sweep-out"

    def test_selftest_style_small_sweep(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        assert main(["sweep", "--kind", "chaos", "--seeds", "0,1",
                     "--workers", "2", "--out", str(out),
                     "--n", "4", "--off-count", "1",
                     "--scale", "0.02"]) == 0
        report = capsys.readouterr().out
        assert "# sweep report" in report
        assert "verdict: **OK**" in report
        assert (out / "sweep.json").exists()
        assert (out / "merged.jsonl").exists()
        assert (out / "chaos-s000" / "trace.jsonl").exists()
        assert (out / "chaos-s001" / "outcome.json").exists()

    def test_sweep_plan_file(self, tmp_path, capsys):
        from repro.faults import FaultPlan
        path = tmp_path / "plan.json"
        FaultPlan.three_phase_default(seed=3).dump(str(path))
        assert main(["sweep", "--seeds", "5", "--workers", "1",
                     "--out", str(tmp_path / "sweep"),
                     "--scale", "0.02", "--n", "10",
                     "--plan", str(path)]) == 0
        assert "verdict: **OK**" in capsys.readouterr().out

    def test_bad_seeds_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="bad --seeds"):
            main(["sweep", "--seeds", "1,x", "--out", str(tmp_path)])

    def test_duplicate_seeds_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="duplicate seed"):
            main(["sweep", "--seeds", "1,1", "--out", str(tmp_path)])

    def test_inverted_window_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="empty time window"):
            main(["sweep", "--seeds", "0", "--out", str(tmp_path),
                  "--since", "9", "--until", "1"])

    def test_bad_plan_file_is_clean_error(self, tmp_path):
        bad = tmp_path / "plan.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="bad --plan"):
            main(["sweep", "--seeds", "0", "--out", str(tmp_path / "s"),
                  "--plan", str(bad)])


class TestStatsWindowGuard:
    def test_inverted_window_is_clean_error(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        trace.write_text('{"kind": "tick", "t": 1.0}\n')
        with pytest.raises(SystemExit, match="empty time window"):
            main(["stats", str(trace), "--since", "5", "--until", "2"])


class TestProfileCommand:
    @pytest.fixture()
    def profile_json(self, tmp_path, capsys):
        path = tmp_path / "profile.json"
        assert main(["chaos", "--seed", "7", "--scale", "0.05",
                     "--profile-out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_profile_out_writes_document(self, profile_json):
        import json
        doc = json.loads(profile_json.read_text())
        assert doc["kind"] == "repro.profile"
        assert doc["command"] == "chaos"
        assert "cmd:chaos" in doc["flat"]

    def test_profile_out_noted_in_report(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        assert main(["info", "--profile-out", str(path)]) == 0
        assert "profile written to" in capsys.readouterr().out

    def test_profile_subcommand_renders_hotspots(self, profile_json,
                                                 capsys):
        assert main(["profile", str(profile_json), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "% attributed" in out
        assert "self(s)" in out or "self_s" in out or "cmd:chaos" in out

    def test_profile_collapsed_file(self, profile_json, tmp_path,
                                    capsys):
        collapsed = tmp_path / "stacks.txt"
        assert main(["profile", str(profile_json),
                     "--collapsed", str(collapsed)]) == 0
        capsys.readouterr()
        lines = collapsed.read_text().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0 and stack

    def test_profile_collapsed_stdout(self, profile_json, capsys):
        assert main(["profile", str(profile_json),
                     "--collapsed", "-"]) == 0
        out = capsys.readouterr().out
        assert "run;cmd:chaos" in out

    def test_profile_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "nope.json")]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_profile_wrong_shape_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something.else"}')
        assert main(["profile", str(path)]) == 2
        assert "not a repro profile" in capsys.readouterr().err


class TestTimelineCommand:
    @pytest.fixture()
    def chaos_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["chaos", "--seed", "7", "--scale", "0.05",
                     "--trace-out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_timeline_renders_report(self, chaos_trace, capsys):
        assert main(["timeline", str(chaos_trace)]) == 0
        out = capsys.readouterr().out
        assert "Flow latency" in out
        assert "client" in out
        assert "Critical paths" in out

    def test_timeline_writes_artifacts(self, chaos_trace, tmp_path,
                                       capsys):
        import hashlib
        import json
        digests = []
        for name in ("a", "b"):
            js = tmp_path / f"{name}.json"
            html = tmp_path / f"{name}.html"
            assert main(["timeline", str(chaos_trace),
                         "--json", str(js), "--html", str(html)]) == 0
            doc = json.loads(js.read_text())
            assert doc["kind"] == "repro.analytics"
            digests.append((hashlib.sha256(js.read_bytes()).hexdigest(),
                            hashlib.sha256(html.read_bytes()).hexdigest()))
        capsys.readouterr()
        # same trace, two invocations: byte-identical artifacts
        assert digests[0] == digests[1]

    def test_timeline_check_only_validates_saved_document(
            self, chaos_trace, tmp_path, capsys):
        js = tmp_path / "analytics.json"
        assert main(["timeline", str(chaos_trace),
                     "--json", str(js)]) == 0
        capsys.readouterr()
        assert main(["timeline", str(js), "--check-only"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "repro.analytics" in out

    def test_timeline_window_flags_are_half_open(self, chaos_trace,
                                                 capsys):
        assert main(["timeline", str(chaos_trace),
                     "--since", "0", "--until", "30"]) == 0
        out = capsys.readouterr().out
        assert "window [0, 30)" in out

    def test_corrupt_trace_is_clean_error_with_line_number(
            self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "tick", "t": 1.0}\n{oops\n')
        assert main(["timeline", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "line 2" in err
        assert "Traceback" not in err

    def test_empty_trace_is_clean_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["timeline", str(empty)]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_inverted_window_rejected(self, chaos_trace):
        with pytest.raises(SystemExit, match="empty time window"):
            main(["timeline", str(chaos_trace),
                  "--since", "9", "--until", "1"])

    def test_html_refused_for_rollups(self, chaos_trace, tmp_path):
        from repro.obs.analytics import (analytics_from_trace,
                                         dump_analytics, merge_analytics)
        doc = analytics_from_trace(str(chaos_trace))
        rollup = tmp_path / "rollup.json"
        dump_analytics(merge_analytics({"t0": doc}), str(rollup))
        with pytest.raises(SystemExit, match="rollup"):
            main(["timeline", str(rollup),
                  "--html", str(tmp_path / "d.html")])


class TestReportWindow:
    def test_report_since_until_filters_presentation(self, tmp_path,
                                                     capsys):
        path = tmp_path / "trace.jsonl"
        assert main(["chaos", "--seed", "7", "--scale", "0.05",
                     "--trace-out", str(path)]) == 0
        capsys.readouterr()
        assert main(["report", str(path),
                     "--since", "0", "--until", "30"]) == 0
        out = capsys.readouterr().out
        assert "window [0, 30)" in out
        # invariants still run over the full stream
        assert "full stream" in out


class TestCompareCommand:
    @staticmethod
    def _bench_json(path, median):
        import json
        path.write_text(json.dumps(
            {"benches": {"bench_locate": {"median_s": median}}}))
        return path

    def test_compare_identical_is_ok(self, tmp_path, capsys):
        a = self._bench_json(tmp_path / "a.json", 1.0)
        b = self._bench_json(tmp_path / "b.json", 1.0)
        assert main(["compare", str(a), str(b)]) == 0
        assert "Verdict: OK" in capsys.readouterr().out

    def test_compare_regression_exits_1(self, tmp_path, capsys):
        a = self._bench_json(tmp_path / "a.json", 1.0)
        b = self._bench_json(tmp_path / "b.json", 2.0)
        assert main(["compare", str(a), str(b),
                     "--threshold", "25"]) == 1
        out = capsys.readouterr().out
        assert "Verdict: REGRESSED" in out
        assert "bench_locate" in out

    def test_compare_threshold_is_percent(self, tmp_path, capsys):
        a = self._bench_json(tmp_path / "a.json", 1.0)
        b = self._bench_json(tmp_path / "b.json", 2.0)
        assert main(["compare", str(a), str(b),
                     "--threshold", "200"]) == 0
        capsys.readouterr()

    def test_compare_run_dirs_same_seed(self, tmp_path, capsys):
        from repro.obs import OBS
        for name in ("a", "b"):
            d = tmp_path / name
            d.mkdir()
            OBS.reset()
            assert main(["chaos", "--seed", "5", "--scale", "0.05",
                         "--trace-out", str(d / "trace.jsonl")]) == 0
        capsys.readouterr()
        assert main(["compare", str(tmp_path / "a"),
                     str(tmp_path / "b")]) == 0
        out = capsys.readouterr().out
        assert "Verdict: OK" in out
        # Same-seed sim-derived sections are byte-reproducible.
        assert "identical." in out

    def test_compare_missing_path_is_clean_error(self, tmp_path, capsys):
        a = self._bench_json(tmp_path / "a.json", 1.0)
        assert main(["compare", str(a),
                     str(tmp_path / "nope.json")]) == 2
        assert "repro:" in capsys.readouterr().err

    def test_compare_negative_threshold_rejected(self, tmp_path):
        a = self._bench_json(tmp_path / "a.json", 1.0)
        with pytest.raises(SystemExit, match="threshold"):
            main(["compare", str(a), str(a), "--threshold", "-5"])

    def test_sweep_profile_rollup(self, tmp_path, capsys):
        out = tmp_path / "sweep"
        rollup = tmp_path / "rollup.json"
        assert main(["sweep", "--kind", "chaos", "--seeds", "0,1",
                     "--workers", "2", "--out", str(out),
                     "--n", "4", "--off-count", "1", "--scale", "0.02",
                     "--profile-out", str(rollup)]) == 0
        report = capsys.readouterr().out
        assert "profile rollup" in report
        assert (out / "chaos-s000" / "profile.json").exists()
        import json
        doc = json.loads(rollup.read_text())
        assert doc["kind"] == "repro.profile"
        assert sorted(doc["per_task"]) == ["chaos-s000", "chaos-s001"]
        # The rollup is a valid input to `repro profile`.
        capsys.readouterr()
        assert main(["profile", str(rollup)]) == 0
        assert "task:chaos" in capsys.readouterr().out


class TestEmptyTraceRefusal:
    """`repro report`/`repro check` on an empty trace: a clear message
    and exit 2, not a vacuous success."""

    @pytest.fixture()
    def empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        return str(path)

    def test_report_refuses_empty_trace(self, empty, capsys):
        assert main(["report", empty]) == 2
        err = capsys.readouterr().err
        assert "empty trace (0 events)" in err
        assert "Traceback" not in err

    def test_check_refuses_empty_trace(self, empty, capsys):
        assert main(["check", empty]) == 2
        err = capsys.readouterr().err
        assert "empty trace (0 events)" in err


class TestStatsTopTieBreak:
    def test_tied_kinds_rank_in_name_order(self, tmp_path, capsys):
        # Three kinds, all tied on bytes (none) and count (1): --top
        # must slice them in name order, every run.
        path = tmp_path / "ties.jsonl"
        path.write_text('{"kind":"zeta","t":1.0}\n'
                        '{"kind":"alpha","t":2.0}\n'
                        '{"kind":"mid","t":3.0}\n')
        assert main(["stats", str(path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "mid" in out
        assert "zeta" not in out

    def test_bytes_rank_beats_name(self, tmp_path, capsys):
        path = tmp_path / "ranked.jsonl"
        path.write_text('{"kind":"small","t":1.0,"nbytes":10}\n'
                        '{"kind":"big","t":2.0,"nbytes":1000000000}\n')
        assert main(["stats", str(path), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "big" in out and "small" not in out
