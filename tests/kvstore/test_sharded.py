"""ShardedKVStore: routing stability, fan-out ops, list locality."""

import pytest

from repro.kvstore.sharded import ShardedKVStore


@pytest.fixture
def store():
    return ShardedKVStore(["s1", "s2", "s3", "s4"])


class TestRouting:
    def test_requires_shards(self):
        with pytest.raises(ValueError):
            ShardedKVStore([])

    def test_routing_is_stable(self, store):
        assert store.shard_for("key-x") == store.shard_for("key-x")

    def test_keys_spread_over_shards(self, store):
        owners = {store.shard_for(f"key-{i}") for i in range(200)}
        assert len(owners) == 4

    def test_roughly_balanced(self, store):
        from collections import Counter
        counts = Counter(store.shard_for(f"key-{i}") for i in range(2000))
        assert max(counts.values()) / min(counts.values()) < 2.5


class TestRoutedCommands:
    def test_set_get_roundtrip(self, store):
        store.set("k", "v")
        assert store.get("k") == "v"
        assert store.exists("k")

    def test_value_lands_on_owning_shard_only(self, store):
        store.set("k", "v")
        owner = store.shard_for("k")
        for sid in store.shard_ids:
            if sid == owner:
                assert store.shard(sid).get("k") == "v"
            else:
                assert not store.shard(sid).exists("k")

    def test_list_stays_on_one_shard(self, store):
        store.rpush("list-key", 1, 2, 3)
        holders = [sid for sid in store.shard_ids
                   if store.shard(sid).llen("list-key")]
        assert len(holders) == 1
        assert store.lrange("list-key", 0, -1) == [1, 2, 3]

    def test_list_ops_route_consistently(self, store):
        store.rpush("l", "a", "b")
        store.lpush("l", "z")
        assert store.lpop("l") == "z"
        assert store.rpop("l") == "b"
        assert store.llen("l") == 1
        assert store.lindex("l", 0) == "a"
        assert store.lrem("l", 0, "a") == 1

    def test_incr_and_delete(self, store):
        assert store.incr("c") == 1
        assert store.delete("c") is True


class TestFanOut:
    def test_keys_aggregates_all_shards(self, store):
        for i in range(20):
            store.set(f"k{i}", i)
        assert sorted(store.keys()) == sorted(f"k{i}" for i in range(20))

    def test_dbsize(self, store):
        for i in range(10):
            store.set(f"k{i}", i)
        assert store.dbsize() == 10

    def test_flushall(self, store):
        for i in range(10):
            store.rpush("l", i)
            store.set(f"k{i}", i)
        store.flushall()
        assert store.dbsize() == 0
