"""ShardedKVStore: routing stability, fan-out ops, list locality."""

import pytest

from repro.kvstore.sharded import ShardedKVStore


@pytest.fixture
def store():
    return ShardedKVStore(["s1", "s2", "s3", "s4"])


class TestRouting:
    def test_requires_shards(self):
        with pytest.raises(ValueError):
            ShardedKVStore([])

    def test_routing_is_stable(self, store):
        assert store.shard_for("key-x") == store.shard_for("key-x")

    def test_keys_spread_over_shards(self, store):
        owners = {store.shard_for(f"key-{i}") for i in range(200)}
        assert len(owners) == 4

    def test_roughly_balanced(self, store):
        from collections import Counter
        counts = Counter(store.shard_for(f"key-{i}") for i in range(2000))
        assert max(counts.values()) / min(counts.values()) < 2.5


class TestRoutedCommands:
    def test_set_get_roundtrip(self, store):
        store.set("k", "v")
        assert store.get("k") == "v"
        assert store.exists("k")

    def test_value_lands_on_owning_shard_only(self, store):
        store.set("k", "v")
        owner = store.shard_for("k")
        for sid in store.shard_ids:
            if sid == owner:
                assert store.shard(sid).get("k") == "v"
            else:
                assert not store.shard(sid).exists("k")

    def test_list_stays_on_one_shard(self, store):
        store.rpush("list-key", 1, 2, 3)
        holders = [sid for sid in store.shard_ids
                   if store.shard(sid).llen("list-key")]
        assert len(holders) == 1
        assert store.lrange("list-key", 0, -1) == [1, 2, 3]

    def test_list_ops_route_consistently(self, store):
        store.rpush("l", "a", "b")
        store.lpush("l", "z")
        assert store.lpop("l") == "z"
        assert store.rpop("l") == "b"
        assert store.llen("l") == 1
        assert store.lindex("l", 0) == "a"
        assert store.lrem("l", 0, "a") == 1

    def test_incr_and_delete(self, store):
        assert store.incr("c") == 1
        assert store.delete("c") is True


class TestFanOut:
    def test_keys_aggregates_all_shards(self, store):
        for i in range(20):
            store.set(f"k{i}", i)
        assert sorted(store.keys()) == sorted(f"k{i}" for i in range(20))

    def test_dbsize(self, store):
        for i in range(10):
            store.set(f"k{i}", i)
        assert store.dbsize() == 10

    def test_flushall(self, store):
        for i in range(10):
            store.rpush("l", i)
            store.set(f"k{i}", i)
        store.flushall()
        assert store.dbsize() == 0


class TestMembership:
    """add_shard / remove_shard: consistent-hash minimal movement
    applied to the metadata store itself."""

    def populate(self, store, count=200):
        data = {}
        for i in range(count):
            if i % 3 == 0:
                key = f"list-{i}"
                store.rpush(key, i, i + 1)
                data[key] = ("list", [i, i + 1])
            else:
                key = f"str-{i}"
                store.set(key, i)
                data[key] = ("string", i)
        return data

    def assert_intact(self, store, data):
        for key, (kind, value) in data.items():
            if kind == "string":
                assert store.get(key) == value, key
            else:
                assert store.lrange(key, 0, -1) == value, key
        assert store.dbsize() == len(data)

    def test_add_shard_moves_only_remapped_keys(self):
        store = ShardedKVStore(["s1", "s2", "s3"])
        data = self.populate(store)
        before = {key: store.shard_for(key) for key in data}
        moved = store.add_shard("s4")
        # Minimal movement: every key either stayed put or moved to the
        # NEW shard — no key changed hands between surviving shards.
        for key in data:
            after = store.shard_for(key)
            assert after == before[key] or after == "s4", key
        remapped = [k for k in data if store.shard_for(k) != before[k]]
        assert moved == len(remapped) > 0
        # Far fewer keys move than a full rehash would touch.
        assert moved < len(data) / 2
        self.assert_intact(store, data)

    def test_remove_shard_returns_keys_to_survivors(self):
        store = ShardedKVStore(["s1", "s2", "s3", "s4"])
        data = self.populate(store)
        before = {key: store.shard_for(key) for key in data}
        victims = [k for k in data if before[k] == "s4"]
        moved = store.remove_shard("s4")
        assert moved == len(victims)
        # Keys not on the removed shard did not move.
        for key in data:
            if before[key] != "s4":
                assert store.shard_for(key) == before[key], key
        assert "s4" not in store.shard_ids
        self.assert_intact(store, data)

    def test_add_then_remove_is_an_identity_on_placement(self):
        store = ShardedKVStore(["s1", "s2", "s3"])
        data = self.populate(store)
        before = {key: store.shard_for(key) for key in data}
        store.add_shard("s4")
        store.remove_shard("s4")
        assert {key: store.shard_for(key) for key in data} == before
        self.assert_intact(store, data)

    def test_duplicate_add_rejected(self):
        store = ShardedKVStore(["s1", "s2"])
        with pytest.raises(ValueError):
            store.add_shard("s1")

    def test_remove_unknown_rejected(self):
        store = ShardedKVStore(["s1", "s2"])
        with pytest.raises(ValueError):
            store.remove_shard("nope")

    def test_cannot_remove_last_shard(self):
        store = ShardedKVStore(["s1"])
        with pytest.raises(ValueError):
            store.remove_shard("s1")

    def test_list_order_preserved_across_migration(self):
        store = ShardedKVStore(["s1", "s2"])
        for i in range(50):
            store.rpush(f"q-{i}", "a", "b", "c")
        store.add_shard("s3")
        store.remove_shard("s1")
        for i in range(50):
            assert store.lrange(f"q-{i}", 0, -1) == ["a", "b", "c"]


class TestFanOutDeterminism:
    """Regression: keys()/dbsize()/flushall() and migrations iterate
    shards in sorted-id order, independent of insertion history."""

    IDS = ["s1", "s2", "s3", "s4"]

    def build(self, order):
        store = ShardedKVStore([order[0]])
        for sid in order[1:]:
            store.add_shard(sid)
        for i in range(60):
            store.set(f"k{i}", i)
            store.rpush(f"l{i}", i, i + 1)
        return store

    def test_keys_identical_across_insertion_orders(self):
        a = self.build(self.IDS)
        b = self.build(list(reversed(self.IDS)))
        assert a.keys() == b.keys()
        assert a.dbsize() == b.dbsize() == 120

    def test_keys_order_is_shard_sorted(self, store):
        for i in range(40):
            store.set(f"k{i}", i)
        expected = []
        for sid in sorted(store.shard_ids, key=str):
            expected.extend(store.shard(sid).keys())
        assert store.keys() == expected

    def test_flushall_covers_every_shard(self):
        store = self.build(list(reversed(self.IDS)))
        store.flushall()
        assert store.dbsize() == 0
        for sid in store.shard_ids:
            assert store.shard(sid).dbsize() == 0

    def test_migration_audit_order_independent(self):
        # Same final membership reached through different histories
        # must land every key on the same shard.
        a = self.build(self.IDS)
        b = self.build(list(reversed(self.IDS)))
        a.add_shard("s9")
        b.add_shard("s9")
        for i in range(60):
            assert a.shard_for(f"k{i}") == b.shard_for(f"k{i}")
            assert a.get(f"k{i}") == b.get(f"k{i}") == i


class TestChurnInterleaving:
    """Regression: writes interleaved with membership changes — every
    acked write survives and list order is preserved (mid-migration
    mutation audit)."""

    def test_writes_between_membership_changes_survive(self):
        store = ShardedKVStore(["s1", "s2"])
        expected = {}
        step = 0
        for op in ["+s3", "w", "-s1", "w", "+s4", "w", "-s2", "w"]:
            if op == "w":
                for _ in range(25):
                    key = f"k-{step}"
                    store.set(key, step)
                    expected[key] = step
                    store.rpush(f"l-{step % 7}", step)
                    step += 1
            elif op.startswith("+"):
                store.add_shard(op[1:])
            else:
                store.remove_shard(op[1:])
        for key, value in expected.items():
            assert store.get(key) == value, key
        # List pushes were strictly increasing: order must be too.
        for i in range(7):
            items = store.lrange(f"l-{i}", 0, -1)
            assert items == sorted(items), f"l-{i}"

    def test_mid_migration_counter_not_double_counted(self):
        store = ShardedKVStore(["s1", "s2", "s3"])
        for i in range(30):
            store.incr(f"c-{i}")
        store.add_shard("s4")
        for i in range(30):
            store.incr(f"c-{i}")
        store.remove_shard("s2")
        for i in range(30):
            assert store.get(f"c-{i}") == 2, f"c-{i}"
        assert store.dbsize() == 30
