"""ReplicatedKVStore: quorum ops, views, tombstones, sessions,
crash/repair, degraded reads, audits."""

import pytest

from repro.kvstore.replicated import (
    NoQuorumError,
    ReplicatedKVStore,
    Session,
    StaleSessionError,
    View,
    vv_dominates,
    vv_merge,
)
from repro.kvstore.store import WrongTypeError


@pytest.fixture
def kv():
    return ReplicatedKVStore([1, 2, 3], replicas=3)


class TestVersionVectors:
    def test_dominates_reflexive_and_empty(self):
        assert vv_dominates({"1": 2}, {"1": 2})
        assert vv_dominates({"1": 1}, {})
        assert not vv_dominates({}, {"1": 1})

    def test_dominates_componentwise(self):
        assert vv_dominates({"1": 2, "2": 1}, {"1": 1})
        assert not vv_dominates({"1": 2}, {"1": 1, "2": 1})

    def test_merge_takes_max(self):
        assert vv_merge({"1": 2, "2": 1}, {"1": 1, "3": 4}) == {
            "1": 2, "2": 1, "3": 4}

    def test_merge_does_not_mutate_inputs(self):
        a, b = {"1": 1}, {"2": 2}
        vv_merge(a, b)
        assert a == {"1": 1} and b == {"2": 2}


class TestConstruction:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            ReplicatedKVStore([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ReplicatedKVStore([1, 1, 2])

    def test_rejects_bad_replica_counts(self):
        with pytest.raises(ValueError):
            ReplicatedKVStore([1, 2], replicas=0)
        with pytest.raises(ValueError):
            ReplicatedKVStore([1, 2], replicas=3)

    def test_rejects_bad_no_quorum_mode(self):
        with pytest.raises(ValueError):
            ReplicatedKVStore([1, 2, 3], on_no_quorum="panic")

    def test_initial_view_is_epoch_one(self, kv):
        assert kv.epoch == 1
        assert kv.view == View(epoch=1, members=(1, 2, 3))

    def test_quorum_is_majority(self):
        assert ReplicatedKVStore([1], replicas=1).quorum == 1
        assert ReplicatedKVStore([1, 2], replicas=2).quorum == 2
        assert ReplicatedKVStore([1, 2, 3], replicas=3).quorum == 2


class TestRedisSurface:
    def test_set_get_roundtrip(self, kv):
        kv.set("k", "v")
        assert kv.get("k") == "v"
        assert kv.exists("k")
        assert kv.get("missing") is None

    def test_incr_and_delete(self, kv):
        assert kv.incr("c") == 1
        assert kv.incr("c", 4) == 5
        assert kv.delete("c") is True
        assert kv.delete("c") is False
        assert kv.get("c") is None

    def test_list_ops(self, kv):
        kv.rpush("l", "a", "b")
        kv.lpush("l", "z")
        assert kv.lrange("l", 0, -1) == ["z", "a", "b"]
        assert kv.lpop("l") == "z"
        assert kv.rpop("l") == "b"
        assert kv.llen("l") == 1
        assert kv.lindex("l", 0) == "a"
        assert kv.lrem("l", 0, "a") == 1
        assert kv.llen("l") == 0

    def test_wrong_type_guarded(self, kv):
        kv.set("s", 1)
        with pytest.raises(WrongTypeError):
            kv.rpush("s", 2)
        kv.rpush("l", 1)
        with pytest.raises(WrongTypeError):
            kv.get("l")
        with pytest.raises(WrongTypeError):
            kv.incr("l")

    def test_keys_dbsize_flushall(self, kv):
        for i in range(10):
            kv.set(f"k{i}", i)
        kv.delete("k0")
        assert kv.dbsize() == 9
        assert "k0" not in kv.keys()
        assert kv.keys() == sorted(kv.keys())
        kv.flushall()
        assert kv.dbsize() == 0

    def test_write_lands_on_every_replica(self, kv):
        kv.set("k", "v")
        for nid in kv.replica_set("k"):
            assert "k" in kv._nodes[nid].live_keys()

    def test_lists_are_not_aliased_between_replicas(self, kv):
        kv.rpush("l", 1)
        owners = kv.replica_set("l")
        copies = [kv._nodes[nid].data["l"].state[1] for nid in owners]
        assert copies[0] is not copies[1]


class TestViews:
    def test_staged_view_is_not_visible(self, kv):
        before = {f"k{i}": kv.replica_set(f"k{i}") for i in range(20)}
        staged = kv.propose_view([1, 2, 3, 4])
        assert staged == 2
        assert kv.epoch == 1
        assert kv.members == (1, 2, 3)
        for key, owners in before.items():
            assert kv.replica_set(key) == owners

    def test_commit_installs_staged_view(self, kv):
        kv.propose_view([1, 2, 3, 4])
        assert kv.commit_view() == 2
        assert kv.epoch == 2
        assert kv.members == (1, 2, 3, 4)

    def test_commit_without_proposal_rejected(self, kv):
        with pytest.raises(RuntimeError):
            kv.commit_view()

    def test_epochs_strictly_increase(self, kv):
        seen = [kv.epoch]
        for members in ([1, 2, 3, 4], [1, 2, 3], [1, 2, 3, 5]):
            seen.append(kv.change_view(members))
        assert seen == sorted(set(seen))

    def test_propose_validation(self, kv):
        with pytest.raises(ValueError):
            kv.propose_view([])
        with pytest.raises(ValueError):
            kv.propose_view([1, 1, 2])
        with pytest.raises(ValueError):
            kv.propose_view([1, 2])  # fewer members than replicas

    def test_data_survives_grow_and_shrink(self):
        kv = ReplicatedKVStore([1, 2, 3, 4], replicas=2)
        data = {f"k{i}": i for i in range(60)}
        for key, value in data.items():
            kv.set(key, value)
        kv.change_view([1, 2, 3, 4, 5])
        kv.change_view([2, 3, 5])
        for key, value in data.items():
            assert kv.get(key) == value, key
        audit = kv.audit("after-churn")
        assert audit["lost_acked"] == 0
        assert audit["under_replicated"] == 0

    def test_departed_member_hands_off_its_copies(self):
        kv = ReplicatedKVStore([1, 2, 3, 4], replicas=2)
        for i in range(40):
            kv.set(f"k{i}", i)
        kv.change_view([1, 2, 3])
        # Node 4 left the view; anti-entropy moved its copies to the
        # new owners and dropped the strays.
        leftovers = [k for k in kv._nodes[4].live_keys()
                     if 4 not in kv.replica_set(k)]
        assert leftovers == []


class TestSessions:
    def test_sessions_are_per_client_and_cached(self, kv):
        sess = kv.session("alice")
        assert isinstance(sess, Session)
        assert kv.session("alice") is sess
        assert kv.session("bob") is not sess

    def test_read_your_writes_same_client(self, kv):
        kv.set("k", "v1", client="alice")
        assert kv.get("k", client="alice") == "v1"
        floor = kv.session("alice").floor["k"]
        assert sum(floor.values()) >= 1

    def test_stale_session_read_refused(self):
        blocked = set()
        kv = ReplicatedKVStore(
            [1, 2, 3], replicas=3,
            link_blocked=lambda pair: pair[1] in blocked,
            on_no_quorum="degrade")
        kv.set("k", "v1", client="alice")
        others = [n for n in kv.replica_set("k")[1:]]
        blocked.update(others)
        kv.set("k", "v2", client="alice")  # lands on coordinator only
        kv.crash_node(kv.coordinator_for("k"))
        blocked.clear()
        # alice's floor references the lost write: refuse, don't lie.
        with pytest.raises(StaleSessionError):
            kv.get("k", client="alice")
        # A fresh client has no floor and reads the surviving value.
        assert kv.get("k", client="bob") == "v1"


class TestCrashRepair:
    def test_crash_unknown_node_rejected(self, kv):
        with pytest.raises(KeyError):
            kv.crash_node(99)
        with pytest.raises(KeyError):
            kv.repair_node(99)

    def test_crash_wipes_but_keeps_membership(self, kv):
        kv.set("k", "v")
        kv.crash_node(2)
        assert kv.node_is_down(2)
        assert kv.members == (1, 2, 3)
        assert kv._nodes[2].data == {}

    def test_write_without_quorum_raises(self, kv):
        kv.crash_node(1)
        kv.crash_node(2)
        with pytest.raises(NoQuorumError) as err:
            kv.set("k", "v")
        assert err.value.got == 1 and err.value.need == 2
        assert kv.stats["writes_failed"] == 1

    def test_single_replica_read_is_degraded(self, kv):
        kv.set("k", "v")
        kv.crash_node(kv.replica_set("k")[1])
        kv.crash_node(kv.replica_set("k")[2])
        state, _vv, degraded = kv._read("k")
        assert state == ("string", "v")
        assert degraded is True
        assert kv.stats["reads_degraded"] == 1

    def test_repair_restores_replication(self, kv):
        kv.set("k", "v")
        kv.crash_node(2)
        assert kv.audit("down")["under_replicated"] >= 0
        kv.repair_node(2)
        audit = kv.audit("repaired")
        assert audit["lost_acked"] == 0
        assert audit["under_replicated"] == 0
        assert kv.get("k") == "v"

    def test_read_repair_fixes_stale_replica(self):
        blocked = set()
        kv = ReplicatedKVStore(
            [1, 2, 3], replicas=3,
            link_blocked=lambda pair: pair[1] in blocked)
        kv.set("k", "v1")
        straggler = kv.replica_set("k")[2]
        blocked.add(straggler)
        kv.set("k", "v2")  # quorum of 2, straggler left behind
        blocked.clear()
        assert kv.get("k") == "v2"  # quorum read repairs on the way
        assert kv._nodes[straggler].data["k"].state == ("string", "v2")


class TestTombstones:
    def test_delete_replicates_as_tombstone(self, kv):
        kv.set("k", "v")
        kv.delete("k")
        for nid in kv.replica_set("k"):
            versioned = kv._nodes[nid].data["k"]
            assert versioned.state is None

    def test_stale_replica_cannot_resurrect_deleted_key(self):
        blocked = set()
        kv = ReplicatedKVStore(
            [1, 2, 3], replicas=3,
            link_blocked=lambda pair: pair[1] in blocked)
        kv.set("k", "v")
        straggler = kv.replica_set("k")[2]
        blocked.add(straggler)
        kv.delete("k")  # straggler still holds the live copy
        blocked.clear()
        kv.anti_entropy()  # tombstone dominates: delete propagates
        assert not kv.exists("k")
        assert kv._nodes[straggler].data["k"].state is None


class TestDegradeMode:
    def test_sub_quorum_write_applies_but_is_not_acked(self):
        kv = ReplicatedKVStore([1, 2, 3], replicas=3,
                               on_no_quorum="degrade")
        kv.crash_node(1)
        kv.crash_node(2)
        kv.set("k", "v")
        assert kv.stats["writes_degraded"] == 1
        assert kv.stats["writes_acked"] == 0
        assert "k" not in kv._acked
        assert kv.get("k") == "v"  # single surviving replica, degraded

    def test_zero_reachable_still_fails(self):
        kv = ReplicatedKVStore([1, 2, 3], replicas=3,
                               on_no_quorum="degrade")
        for nid in (1, 2, 3):
            kv.crash_node(nid)
        with pytest.raises(NoQuorumError):
            kv.set("k", "v")
        with pytest.raises(NoQuorumError):
            kv.get("k")


class TestAudit:
    def test_clean_store_audits_clean(self, kv):
        for i in range(20):
            kv.set(f"k{i}", i)
        audit = kv.audit("clean")
        assert audit == {"label": "clean", "epoch": 1, "keys": 20,
                         "lost_acked": 0, "under_replicated": 0}

    def test_lost_acked_detected_and_served_degraded(self):
        kv = ReplicatedKVStore([1, 2, 3, 4], replicas=2)
        kv.set("k", "v")
        owners = kv.replica_set("k")
        for nid in owners:
            kv.crash_node(nid)
        survivors = [n for n in kv.members if n not in owners]
        kv.change_view(survivors)
        assert kv.audit("lost")["lost_acked"] == 1
        # The empty reply is honest: flagged degraded, not "consistent
        # miss".
        state, _vv, degraded = kv._read("k")
        assert state is None and degraded is True
