"""The kv-churn harness end to end: black-box scenarios, the seeded
churn acceptance run, byte-identical replay, and the report."""

import hashlib
import io

import pytest

from repro.faults.plan import FaultPlan
from repro.kvstore.harness import (
    SCENARIOS,
    KVChurnResult,
    render_kv_churn_report,
    run_kv_churn,
    run_scenarios,
)
from repro.obs import OBS
from repro.obs.trace import JSONLSink


@pytest.fixture(scope="module")
def result():
    """One small seed-7 churn run shared by the assertions below."""
    return run_kv_churn(seed=7, duration=60.0, churn_every=20.0)


class TestScenarios:
    """CSE138-style black-box suites against the live store."""

    def test_catalog(self):
        assert set(SCENARIOS) == {"kvs", "view-change", "sharding"}

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_scenario_passes(self, name):
        outcome = SCENARIOS[name](seed=3)
        assert outcome["ok"], outcome

    def test_run_scenarios_runs_all(self):
        outcomes = run_scenarios(seed=5)
        assert [o["name"] for o in outcomes] == sorted(SCENARIOS)
        assert all(o["ok"] for o in outcomes)


class TestAcceptanceScenario:
    def test_run_ends_healthy(self, result):
        assert result.violations == []
        assert result.ok

    def test_faults_fired_and_views_changed(self, result):
        kinds = [f["kind"] for f in result.faults]
        assert "crash" in kinds and "repair" in kinds
        assert result.views_committed >= 2
        assert result.final_epoch >= result.views_committed

    def test_clients_did_real_work(self, result):
        assert result.ops_issued > 100
        assert result.store_stats["writes_acked"] > 0
        assert result.store_stats["reads"] > 0

    def test_final_audit_restored(self, result):
        assert result.final_audit["label"] == "final"
        assert result.final_audit["lost_acked"] == 0
        assert result.final_audit["under_replicated"] == 0

    def test_checkers_were_attached_and_fed(self, result):
        assert result.checkers == 15
        assert result.events_seen > 0

    def test_no_write_was_quarantined(self, result):
        assert result.quarantined_writes == 0


class TestDeterminism:
    @staticmethod
    def _traced_digest(seed):
        OBS.reset()
        buf = io.StringIO()
        sink = OBS.bus.attach(JSONLSink(buf))
        try:
            run_kv_churn(seed=seed, duration=40.0, churn_every=15.0,
                         check=False)
        finally:
            OBS.bus.detach(sink)
        return hashlib.sha256(buf.getvalue().encode()).hexdigest()

    def test_same_seed_byte_identical_trace(self):
        assert self._traced_digest(7) == self._traced_digest(7)

    def test_different_seed_different_trace(self):
        assert self._traced_digest(7) != self._traced_digest(8)


class TestParameterValidation:
    def test_nodes_must_hold_replicas(self):
        with pytest.raises(ValueError, match="replicas"):
            run_kv_churn(nodes=2, replicas=3)

    def test_clients_bound(self):
        with pytest.raises(ValueError, match="clients"):
            run_kv_churn(clients=0)

    def test_keys_bound(self):
        with pytest.raises(ValueError, match="keys"):
            run_kv_churn(keys=2)

    def test_plan_ranks_validated(self):
        bad = FaultPlan.generate(1, n=12, duration=30.0, crashes=2)
        with pytest.raises(ValueError):
            run_kv_churn(nodes=5, plan=bad)


class TestResultAndReport:
    def test_ok_requires_clean_final_audit(self):
        base = dict(seed=1, nodes=5, replicas=3, clients=2, duration=10.0)
        good = KVChurnResult(
            final_audit={"lost_acked": 0, "under_replicated": 0}, **base)
        assert good.ok
        assert not KVChurnResult(**base).ok  # no final audit -> not ok
        assert not KVChurnResult(
            final_audit={"lost_acked": 1, "under_replicated": 0},
            **base).ok
        assert not KVChurnResult(
            final_audit={"lost_acked": 0, "under_replicated": 0},
            quarantined_writes=1, **base).ok
        assert not KVChurnResult(
            final_audit={"lost_acked": 0, "under_replicated": 0},
            violations=["boom"], **base).ok

    def test_report_sections(self, result):
        report = render_kv_churn_report(result)
        for heading in ("# kv churn report", "## store counters",
                        "## fault timeline", "## consistency audits",
                        "## invariants", "## outcome"):
            assert heading in report
        assert "OK" in report
