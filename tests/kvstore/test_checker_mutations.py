"""Checker mutation tests: every kv consistency checker must fire on
a deliberately broken store variant — and stay silent on the honest
store driven through the same workload.  The mutants override exactly
the hook points :mod:`repro.kvstore.replicated` documents for them."""

import pytest

from repro.kvstore.replicated import ReplicatedKVStore, _Versioned
from repro.obs import OBS, check_events


def violations_of(driver, store):
    """Run *driver(store)* under event capture; return the names of
    the checkers that fired."""
    with OBS.bus.capture() as sink:
        driver(store)
        events = list(sink.events())
    return {v.checker for v in check_events(events)}


# ----------------------------------------------------------------------
# mutants (each breaks exactly one documented hook, plus — for the
# stale-read one — the two safeguards that would otherwise catch it)
# ----------------------------------------------------------------------
class DropWriteStore(ReplicatedKVStore):
    """Acknowledges writes without storing them anywhere: the classic
    lost-ack bug."""

    def _replicate(self, key, versioned, targets):
        return list(targets)           # ack everyone, store nothing


class StaleReadStore(ReplicatedKVStore):
    """Serves the *oldest* reachable reply and skips both safeguards
    (the durability-ledger degraded flag and the session floor) that
    would make the honest store refuse or flag the read."""

    def _choose_reply(self, replies):
        from repro.kvstore.replicated import _vv_sortkey
        worst = replies[0][1]
        for _nid, versioned in replies[1:]:
            if _vv_sortkey(versioned.vv) < _vv_sortkey(worst.vv):
                worst = versioned
        return worst

    def _record_ack(self, key, vv):
        pass                           # blinds the degraded-read flag

    def _enforce_floor(self, key, vv, session):
        pass                           # never refuses a stale read


class SkipRepairStore(ReplicatedKVStore):
    """Never re-replicates: view commits and node repairs leave the
    replication factor wherever the fault left it."""

    def _anti_entropy_pass(self, reason="manual"):
        return 0


class BadEpochStore(ReplicatedKVStore):
    """Reuses the current epoch for every proposal instead of
    advancing it."""

    def _next_epoch(self):
        return self._epoch


# ----------------------------------------------------------------------
# drivers (seedless and deterministic: fixed op sequences)
# ----------------------------------------------------------------------
def drive_write_audit(store):
    for i in range(6):
        store.set(f"k{i}", i, client="alice")
    store.audit("final")


def drive_stale_read(store, blocked):
    store.set("k", "v1", client="alice")
    blocked.add(store.replica_set("k")[2])
    store.set("k", "v2", client="alice")   # straggler left on v1
    store.get("k", client="alice")         # sees v2's vector
    blocked.clear()
    store.get("k", client="alice")         # straggler back in quorum
    store.audit("final")


def drive_crash_repair(store):
    for i in range(8):
        store.set(f"k{i}", i, client="alice")
    store.crash_node(2)
    store.repair_node(2)
    store.audit("final")


def drive_view_churn(store):
    store.set("k", "v", client="alice")
    store.change_view([1, 2, 3, 4])
    store.change_view([1, 2, 3])
    store.audit("final")


# ----------------------------------------------------------------------
# each mutant is flagged; the honest store never is
# ----------------------------------------------------------------------
class TestMutantsAreFlagged:
    def test_dropped_ack_trips_no_acked_write_lost(self):
        fired = violations_of(drive_write_audit,
                              DropWriteStore([1, 2, 3], replicas=3))
        assert "kv-no-acked-write-lost" in fired

    def test_stale_read_trips_both_session_guarantees(self):
        blocked = set()
        store = StaleReadStore(
            [1, 2, 3], replicas=3,
            link_blocked=lambda pair: pair[1] in blocked)
        fired = violations_of(lambda s: drive_stale_read(s, blocked),
                              store)
        assert "kv-read-your-writes" in fired
        assert "kv-monotonic-reads" in fired

    def test_skipped_repair_trips_replication_restored(self):
        fired = violations_of(drive_crash_repair,
                              SkipRepairStore([1, 2, 3], replicas=3))
        assert "kv-replication-factor-restored" in fired

    def test_reused_epoch_trips_view_epoch_monotonic(self):
        fired = violations_of(drive_view_churn,
                              BadEpochStore([1, 2, 3], replicas=3))
        assert "view-epoch-monotonic" in fired


class TestHonestStorePasses:
    @pytest.mark.parametrize("driver", [
        drive_write_audit, drive_crash_repair, drive_view_churn,
    ], ids=["write-audit", "crash-repair", "view-churn"])
    def test_clean_on_honest_store(self, driver):
        assert violations_of(driver,
                             ReplicatedKVStore([1, 2, 3])) == set()

    def test_clean_on_honest_store_with_straggler(self):
        blocked = set()
        store = ReplicatedKVStore(
            [1, 2, 3], replicas=3,
            link_blocked=lambda pair: pair[1] in blocked)
        fired = violations_of(lambda s: drive_stale_read(s, blocked),
                              store)
        assert fired == set()


class TestMutantMechanics:
    """The mutants break what they claim to break (guards the tests
    above against silently-neutered mutants)."""

    def test_drop_write_store_stores_nothing(self):
        store = DropWriteStore([1, 2, 3], replicas=3)
        store.set("k", "v")
        assert all(not node.data for node in store._nodes.values())

    def test_stale_read_store_serves_old_value(self):
        blocked = set()
        store = StaleReadStore(
            [1, 2, 3], replicas=3,
            link_blocked=lambda pair: pair[1] in blocked)
        store.set("k", "v1")
        blocked.add(store.replica_set("k")[2])
        store.set("k", "v2")
        blocked.clear()
        assert store.get("k") == "v1"

    def test_skip_repair_store_leaves_node_empty(self):
        store = SkipRepairStore([1, 2, 3], replicas=3)
        store.set("k", "v")
        store.crash_node(2)
        store.repair_node(2)
        assert store._nodes[2].data == {}

    def test_bad_epoch_store_freezes_epoch(self):
        store = BadEpochStore([1, 2, 3], replicas=3)
        first = store.epoch
        store.change_view([1, 2, 3, 4])
        assert store.epoch == first


def test_versioned_copy_is_independent():
    original = _Versioned(vv={"1": 1}, state=("list", [1, 2]))
    clone = original.copy()
    clone.state[1].append(3)
    clone.vv["1"] = 9
    assert original.state[1] == [1, 2]
    assert original.vv == {"1": 1}
