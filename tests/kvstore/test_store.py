"""KVStore: Redis string/list semantics, edge cases included."""

import pytest

from repro.kvstore.store import KVStore, WrongTypeError


@pytest.fixture
def kv():
    return KVStore()


class TestStrings:
    def test_set_get(self, kv):
        kv.set("k", "v")
        assert kv.get("k") == "v"

    def test_get_missing_is_none(self, kv):
        assert kv.get("nope") is None

    def test_set_overwrites(self, kv):
        kv.set("k", 1)
        kv.set("k", 2)
        assert kv.get("k") == 2

    def test_set_replaces_list(self, kv):
        kv.rpush("k", "a")
        kv.set("k", "str")
        assert kv.get("k") == "str"
        assert kv.type_of("k") == "string"

    def test_incr_initialises_to_zero(self, kv):
        assert kv.incr("counter") == 1
        assert kv.incr("counter", 5) == 6

    def test_incr_non_integer_rejected(self, kv):
        kv.set("k", "text")
        with pytest.raises(WrongTypeError):
            kv.incr("k")


class TestGenericOps:
    def test_exists(self, kv):
        assert not kv.exists("k")
        kv.set("k", 1)
        assert kv.exists("k")

    def test_delete_returns_existence(self, kv):
        kv.set("k", 1)
        assert kv.delete("k") is True
        assert kv.delete("k") is False

    def test_delete_removes_lists_too(self, kv):
        kv.rpush("l", 1)
        assert kv.delete("l")
        assert not kv.exists("l")

    def test_keys_and_dbsize(self, kv):
        kv.set("a", 1)
        kv.rpush("b", 2)
        assert sorted(kv.keys()) == ["a", "b"]
        assert kv.dbsize() == 2

    def test_flushall(self, kv):
        kv.set("a", 1)
        kv.rpush("b", 2)
        kv.flushall()
        assert kv.dbsize() == 0

    def test_type_of(self, kv):
        kv.set("s", 1)
        kv.rpush("l", 1)
        assert kv.type_of("s") == "string"
        assert kv.type_of("l") == "list"
        assert kv.type_of("missing") is None


class TestListPush:
    def test_rpush_appends_in_order(self, kv):
        assert kv.rpush("l", "a") == 1
        assert kv.rpush("l", "b", "c") == 3
        assert kv.lrange("l", 0, -1) == ["a", "b", "c"]

    def test_lpush_reverses(self, kv):
        kv.lpush("l", "a", "b")
        assert kv.lrange("l", 0, -1) == ["b", "a"]

    def test_push_requires_values(self, kv):
        with pytest.raises(ValueError):
            kv.rpush("l")

    def test_push_to_string_key_rejected(self, kv):
        kv.set("k", 1)
        with pytest.raises(WrongTypeError):
            kv.rpush("k", "x")
        with pytest.raises(WrongTypeError):
            kv.lpush("k", "x")


class TestListPop:
    def test_lpop_fifo(self, kv):
        kv.rpush("l", 1, 2, 3)
        assert kv.lpop("l") == 1
        assert kv.lpop("l") == 2

    def test_rpop(self, kv):
        kv.rpush("l", 1, 2)
        assert kv.rpop("l") == 2

    def test_pop_missing_is_none(self, kv):
        assert kv.lpop("nope") is None
        assert kv.rpop("nope") is None

    def test_emptied_list_is_deleted(self, kv):
        kv.rpush("l", 1)
        kv.lpop("l")
        assert not kv.exists("l")
        assert kv.llen("l") == 0


class TestLrange:
    def test_stop_is_inclusive(self, kv):
        kv.rpush("l", *range(5))
        assert kv.lrange("l", 0, 2) == [0, 1, 2]

    def test_negative_indices(self, kv):
        kv.rpush("l", *range(5))
        assert kv.lrange("l", -2, -1) == [3, 4]
        assert kv.lrange("l", 0, -1) == [0, 1, 2, 3, 4]

    def test_out_of_range_clamps(self, kv):
        kv.rpush("l", *range(3))
        assert kv.lrange("l", 0, 100) == [0, 1, 2]
        assert kv.lrange("l", -100, 100) == [0, 1, 2]

    def test_inverted_range_empty(self, kv):
        kv.rpush("l", *range(3))
        assert kv.lrange("l", 2, 1) == []

    def test_start_beyond_end_empty(self, kv):
        kv.rpush("l", 1)
        assert kv.lrange("l", 5, 10) == []

    def test_missing_key_empty(self, kv):
        assert kv.lrange("nope", 0, -1) == []


class TestLindexLlen:
    def test_lindex(self, kv):
        kv.rpush("l", "a", "b")
        assert kv.lindex("l", 0) == "a"
        assert kv.lindex("l", -1) == "b"
        assert kv.lindex("l", 5) is None

    def test_llen(self, kv):
        kv.rpush("l", 1, 2, 3)
        assert kv.llen("l") == 3


class TestLrem:
    def test_remove_from_head(self, kv):
        kv.rpush("l", "a", "b", "a", "a")
        assert kv.lrem("l", 2, "a") == 2
        assert kv.lrange("l", 0, -1) == ["b", "a"]

    def test_remove_from_tail(self, kv):
        kv.rpush("l", "a", "b", "a", "a")
        assert kv.lrem("l", -2, "a") == 2
        assert kv.lrange("l", 0, -1) == ["a", "b"]

    def test_count_zero_removes_all(self, kv):
        kv.rpush("l", "a", "b", "a")
        assert kv.lrem("l", 0, "a") == 2
        assert kv.lrange("l", 0, -1) == ["b"]

    def test_missing_value(self, kv):
        kv.rpush("l", "a")
        assert kv.lrem("l", 0, "z") == 0

    def test_emptied_by_lrem_is_deleted(self, kv):
        kv.rpush("l", "a")
        kv.lrem("l", 0, "a")
        assert not kv.exists("l")

    def test_missing_key(self, kv):
        assert kv.lrem("nope", 0, "a") == 0


class TestWrongType:
    def test_list_read_of_string_key(self, kv):
        kv.set("k", 1)
        for op in (lambda: kv.llen("k"),
                   lambda: kv.lrange("k", 0, -1),
                   lambda: kv.lpop("k"),
                   lambda: kv.lindex("k", 0),
                   lambda: kv.lrem("k", 0, "x")):
            with pytest.raises(WrongTypeError):
                op()

    def test_get_of_list_key(self, kv):
        kv.rpush("l", 1)
        with pytest.raises(WrongTypeError):
            kv.get("l")
