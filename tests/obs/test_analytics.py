"""repro.obs.analytics — series binning, latency percentiles,
critical paths, rollup merging, and document validation."""

import json

import pytest

from repro.obs.analytics import (
    ANALYTICS_KIND,
    ANALYTICS_VERSION,
    ROLLUP_KIND,
    AnalyticsError,
    analytics_from_trace,
    build_analytics,
    dump_analytics,
    load_analytics,
    merge_analytics,
    percentile,
    render_timeline,
    validate_analytics,
)


def write_trace(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return str(path)


def flow(span_id, t0, t1, name="client", nbytes=100.0, end="flow.finish"):
    """A start/end event pair for one flow."""
    return [
        {"kind": "flow.start", "t": t0, "name": name, "span_id": span_id,
         "total_bytes": nbytes},
        {"kind": end, "t": t1, "name": name, "span_id": span_id,
         "nbytes": nbytes},
    ]


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.5])
    def test_bad_quantile_raises(self, q):
        with pytest.raises(ValueError, match="quantile"):
            percentile([1.0], q)

    def test_nearest_rank_is_an_observed_value(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        # ceil(0.5*4)=2 -> vals[1]; ceil(0.99*4)=4 -> vals[3]
        assert percentile(vals, 0.50) == 2.0
        assert percentile(vals, 0.99) == 4.0
        assert percentile(vals, 1.0) == 4.0

    def test_singleton(self):
        assert percentile([7.0], 0.001) == 7.0
        assert percentile([7.0], 0.999) == 7.0

    def test_n1_every_quantile_is_the_value(self):
        # rank = max(1, ceil(q*1)) = 1 for every valid q.
        for q in (0.001, 0.5, 0.99, 0.999, 1.0):
            assert percentile([3.25], q) == 3.25

    def test_n2_tail_quantiles_pick_the_max(self):
        # ceil(0.999*2) = 2 -> the larger observation, not an
        # interpolation between the two.
        assert percentile([1.0, 9.0], 0.999) == 9.0
        assert percentile([1.0, 9.0], 0.99) == 9.0
        # ceil(0.5*2) = 1 -> the smaller one.
        assert percentile([1.0, 9.0], 0.5) == 1.0


class TestSeries:
    def test_bins_anchor_at_origin_not_data(self):
        events = [{"kind": "tick", "t": 25.0}]
        doc = build_analytics(events, bin_seconds=10.0)
        # origin 0.0: t=25 lands in bin 2, so three bins exist.
        assert doc["window"]["origin"] == 0.0
        assert doc["bins"] == 3

    def test_window_is_half_open(self):
        events = [{"kind": "tick", "t": 1.0},
                  {"kind": "tick", "t": 2.0},
                  {"kind": "tick", "t": 3.0}]
        doc = build_analytics(events, since=1.0, until=3.0)
        assert doc["events"]["in_window"] == 2
        assert doc["events"]["t_max"] == 2.0

    def test_client_throughput_counts_finishes_only(self):
        events = (flow(1, 0.0, 5.0, nbytes=40.0)
                  + flow(2, 0.0, 15.0, nbytes=60.0)
                  + flow(3, 0.0, 18.0, name="migration", nbytes=999.0))
        doc = build_analytics(events, bin_seconds=10.0)
        # client bytes land in the finish bin; migration is excluded.
        assert doc["series"]["client_throughput_bytes"] == [40.0, 60.0]

    def test_live_flows_carry_forward_through_quiet_bins(self):
        events = [
            {"kind": "flow.start", "t": 0.0, "name": "client", "span_id": 1},
            {"kind": "flow.start", "t": 1.0, "name": "client", "span_id": 2},
            # nothing in bins 1-2, both end in bin 3
            {"kind": "flow.finish", "t": 35.0, "name": "client",
             "span_id": 1, "nbytes": 1.0},
            {"kind": "flow.finish", "t": 36.0, "name": "client",
             "span_id": 2, "nbytes": 1.0},
        ]
        doc = build_analytics(events, bin_seconds=10.0)
        assert doc["series"]["live_flows"] == [2, 2, 2, 0]

    def test_max_utilization_gaps_stay_none(self):
        events = [{"kind": "bandwidth.solve", "t": 0.0, "max_util": 0.5},
                  {"kind": "bandwidth.solve", "t": 2.0, "max_util": 0.9},
                  {"kind": "tick", "t": 25.0}]
        doc = build_analytics(events, bin_seconds=10.0)
        assert doc["series"]["max_utilization"] == [0.9, None, None]

    def test_degraded_read_events_counted(self):
        events = [{"kind": "read.degraded", "t": 1.0, "oid": 5},
                  {"kind": "read.degraded", "t": 2.0, "oid": 6},
                  {"kind": "read.unavailable", "t": 11.0, "oid": 7}]
        doc = build_analytics(events, bin_seconds=10.0)
        assert doc["series"]["degraded_reads"] == [2, 0]
        assert doc["series"]["unavailable_reads"] == [0, 1]

    def test_server_bytes_in_splits_migration_targets(self):
        events = [{"kind": "migration.move", "t": 1.0, "nbytes": 100.0,
                   "to": [0, 3]},
                  {"kind": "recovery.rereplicate", "t": 1.0, "rank": 3,
                   "nbytes": 7.0}]
        doc = build_analytics(events, bin_seconds=10.0)
        assert doc["series"]["server_bytes_in"] == {
            "0": [50.0], "3": [57.0]}

    def test_bad_bin_rejected(self):
        with pytest.raises(AnalyticsError, match="--bin"):
            build_analytics([{"kind": "tick", "t": 0.0}], bin_seconds=0)

    def test_bin_explosion_guard(self):
        events = [{"kind": "tick", "t": 0.0},
                  {"kind": "tick", "t": 1e9}]
        with pytest.raises(AnalyticsError, match="bins"):
            build_analytics(events, bin_seconds=0.001)


class TestLatency:
    def test_percentiles_and_counts(self):
        events = []
        for i, dur in enumerate([1.0, 2.0, 3.0, 4.0]):
            events += flow(i, 10.0, 10.0 + dur)
        doc = build_analytics(events)
        lat = doc["latency"]["client"]
        assert lat["completed"] == 4
        assert lat["p50"] == 2.0
        assert lat["p99"] == 4.0
        assert lat["p999"] == 4.0
        assert lat["mean"] == 2.5
        assert lat["max"] == 4.0
        assert lat["bytes_completed"] == 400.0

    def test_interrupted_tail_is_separate(self):
        events = (flow(1, 0.0, 2.0)
                  + flow(2, 0.0, 50.0, end="flow.interrupt", nbytes=30.0))
        doc = build_analytics(events)
        lat = doc["latency"]["client"]
        # headline percentiles only see the completed flow
        assert lat["p99"] == 2.0
        assert lat["interrupted"] == 1
        assert lat["bytes_wasted"] == 30.0
        assert lat["interrupted_tail"]["max"] == 50.0

    def test_open_flows_counted_not_ranked(self):
        events = [{"kind": "flow.start", "t": 0.0, "name": "migration",
                   "span_id": 9}]
        doc = build_analytics(events)
        lat = doc["latency"]["migration"]
        assert lat["open"] == 1
        assert lat["completed"] == 0
        assert lat["p50"] is None

    def test_flow_ending_past_window_counts_as_open(self):
        events = flow(1, 5.0, 500.0)
        doc = build_analytics(events, until=100.0)
        lat = doc["latency"]["client"]
        assert lat["open"] == 1
        assert lat["completed"] == 0


class TestCriticalPaths:
    @staticmethod
    def span(span_id, name, t0, dur, parent=None):
        return [
            {"kind": "span.begin", "t": t0, "span_id": span_id,
             "parent_id": parent, "name": name},
            {"kind": "span.end", "t": t0 + dur, "span_id": span_id,
             "duration": dur},
        ]

    def test_longest_child_chain_with_contributions(self):
        events = (self.span(1, "resize.cycle", 0.0, 30.0)
                  + self.span(2, "migration", 0.0, 10.0, parent=1)
                  + self.span(3, "reintegration.commit", 10.0, 18.0,
                              parent=1)
                  + self.span(4, "flow", 10.0, 12.0, parent=3))
        doc = build_analytics(events)
        [p] = doc["critical_paths"]
        assert p["root"] == "resize.cycle"
        assert [s["name"] for s in p["path"]] == [
            "resize.cycle", "reintegration.commit", "flow"]
        # each level's contribution = its duration - chosen child's
        assert [s["contribution"] for s in p["path"]] == [12.0, 6.0, 12.0]
        assert p["depth"] == 3

    def test_duration_tie_breaks_on_lower_span_id(self):
        events = (self.span(1, "chaos.run", 0.0, 20.0)
                  + self.span(5, "flow", 0.0, 8.0, parent=1)
                  + self.span(3, "flow", 1.0, 8.0, parent=1))
        doc = build_analytics(events)
        [p] = doc["critical_paths"]
        assert p["path"][1]["span_id"] == 3

    def test_open_lifecycles_are_skipped(self):
        events = [{"kind": "span.begin", "t": 0.0, "span_id": 1,
                   "parent_id": None, "name": "chaos.run"}]
        doc = build_analytics(events)
        assert doc["critical_paths"] == []

    def test_non_lifecycle_roots_are_skipped(self):
        events = self.span(1, "flow", 0.0, 5.0)
        doc = build_analytics(events)
        assert doc["critical_paths"] == []


class TestMerge:
    @staticmethod
    def docs(n=3, **kwargs):
        out = {}
        for i in range(n):
            events = flow(1, 0.0, float(i + 1)) + [
                {"kind": "read.degraded", "t": 2.0, "oid": 1}] * i
            out[f"task-{i}"] = build_analytics(events, **kwargs)
        return out

    def test_rollup_bands(self):
        rollup = merge_analytics(self.docs())
        assert rollup["kind"] == ROLLUP_KIND
        assert rollup["tasks"] == ["task-0", "task-1", "task-2"]
        band = rollup["latency_bands"]["client"]["p50"]
        assert band == {"lo": 1.0, "p50": 2.0, "hi": 3.0}
        assert rollup["series_bands"]["degraded_reads"]["hi"] == [2]

    def test_order_independent(self):
        docs = self.docs()
        a = merge_analytics(docs)
        b = merge_analytics(dict(reversed(list(docs.items()))))
        assert json.dumps(a, sort_keys=True) == json.dumps(b,
                                                           sort_keys=True)

    def test_window_mismatch_rejected(self):
        docs = self.docs(n=2)
        docs["task-1"] = build_analytics(flow(1, 0.0, 2.0),
                                         bin_seconds=5.0)
        with pytest.raises(AnalyticsError, match="window"):
            merge_analytics(docs)

    def test_empty_input_rejected(self):
        with pytest.raises(AnalyticsError, match="no documents"):
            merge_analytics({})

    def test_rollup_renders(self):
        text = render_timeline(merge_analytics(self.docs()))
        assert "Latency bands" in text
        assert "task" in text


class TestDocumentIO:
    def test_dump_load_round_trip_is_byte_identical(self, tmp_path):
        doc = build_analytics(flow(1, 0.0, 3.0), source="x")
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        dump_analytics(doc, str(p1))
        dump_analytics(load_analytics(str(p1)), str(p2))
        assert p1.read_bytes() == p2.read_bytes()

    def test_from_trace_sets_source(self, tmp_path):
        trace = write_trace(tmp_path / "t.jsonl", flow(1, 0.0, 3.0))
        doc = analytics_from_trace(trace)
        assert doc["source"] == trace
        assert doc["kind"] == ANALYTICS_KIND
        assert doc["version"] == ANALYTICS_VERSION

    @pytest.mark.parametrize("mutate,match", [
        (lambda d: d.update(kind="nope"), "kind"),
        (lambda d: d.update(version=99), "version"),
        (lambda d: d.pop("series"), "missing required key"),
        (lambda d: d["window"].update(bin_seconds=-1), "bin_seconds"),
    ])
    def test_validate_rejects_broken_documents(self, mutate, match):
        doc = build_analytics(flow(1, 0.0, 3.0))
        mutate(doc)
        with pytest.raises(AnalyticsError, match=match):
            validate_analytics(doc)

    def test_validate_rejects_non_dict(self):
        with pytest.raises(AnalyticsError, match="JSON object"):
            validate_analytics([1, 2, 3])

    def test_load_invalid_json_names_the_line(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "repro.analytics",\n!!!\n}')
        with pytest.raises(AnalyticsError, match="line 2"):
            load_analytics(str(bad))

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(AnalyticsError, match="cannot read"):
            load_analytics(str(tmp_path / "absent.json"))


class TestRenderTimeline:
    def test_single_run_sections(self):
        events = (flow(1, 0.0, 3.0)
                  + TestCriticalPaths.span(2, "resize.cycle", 0.0, 9.0))
        text = render_timeline(build_analytics(events, source="t.jsonl"))
        assert "Flow latency" in text
        assert "Time-series summary" in text
        assert "resize.cycle #2" in text

    def test_determinism(self):
        events = flow(1, 0.0, 3.0) + flow(2, 1.0, 7.0)
        a = build_analytics(events, source="s")
        b = build_analytics(list(events), source="s")
        assert (json.dumps(a, sort_keys=True)
                == json.dumps(b, sort_keys=True))
        assert render_timeline(a) == render_timeline(b)


class TestServingAnalytics:
    @staticmethod
    def serve_events(completions=True):
        evs = [
            {"kind": "serve.enqueue", "t": 0.5, "rid": 1, "server": 2,
             "nbytes": 1e6, "pop": "closed", "depth": 1},
            {"kind": "serve.enqueue", "t": 0.6, "rid": 2, "server": 2,
             "nbytes": 1e6, "pop": "open", "depth": 2},
            {"kind": "serve.reject", "t": 0.7, "rid": 3, "server": 2,
             "depth": 2, "pop": "open"},
        ]
        if completions:
            evs += [
                {"kind": "serve.complete", "t": 1.5, "rid": 1,
                 "server": 2, "pop": "closed", "latency": 1.0,
                 "delay": 0.0},
                {"kind": "serve.complete", "t": 2.6, "rid": 2,
                 "server": 2, "pop": "open", "latency": 2.0,
                 "delay": 0.5},
            ]
        return evs

    def test_per_population_and_pooled_stats(self):
        doc = build_analytics(self.serve_events())
        validate_analytics(doc)
        s = doc["serving"]
        assert s["closed"]["completed"] == 1
        assert s["closed"]["p50"] == s["closed"]["p999"] == 1.0
        assert s["open"]["rejected"] == 1
        assert s["overall"]["completed"] == 2
        assert s["overall"]["p50"] == 1.0
        assert s["overall"]["p99"] == s["overall"]["p999"] == 2.0
        assert s["overall"]["enqueued"] == 2

    def test_zero_completion_trace_reports_honest_none(self):
        # Enqueues and rejects but nothing completed: counts are
        # real, every latency statistic is None — never fabricated.
        doc = build_analytics(self.serve_events(completions=False))
        validate_analytics(doc)
        s = doc["serving"]
        for pop in ("closed", "open", "overall"):
            assert s[pop]["completed"] == 0
            for stat in ("p50", "p99", "p999", "mean", "max"):
                assert s[pop][stat] is None
        assert s["open"]["rejected"] == 1

    def test_serve_less_trace_omits_the_key(self):
        doc = build_analytics(flow(1, 0.0, 3.0))
        validate_analytics(doc)
        assert "serving" not in doc

    def test_rendered_in_timeline(self):
        text = render_timeline(build_analytics(self.serve_events()))
        assert "Client-perceived serving latency" in text
        assert "closed" in text and "overall" in text

    def test_timeline_without_serving_section(self):
        text = render_timeline(build_analytics(flow(1, 0.0, 3.0)))
        assert "Client-perceived" not in text
