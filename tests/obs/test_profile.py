"""The instrumentation profiler: frame accounting, sim attribution,
export formats, determinism, and the null-profiler overhead guard."""

import hashlib
import json
from time import perf_counter

import pytest

from repro.cli import main
from repro.obs import OBS
from repro.obs.profile import (
    ProfileError,
    Profiler,
    collapsed_stacks,
    flatten,
    load_profile,
    profile_document,
    profiled,
    render_profile,
)


class FakeClock:
    """Deterministic clock: each read advances by `step` seconds."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        t = self.t
        self.t += self.step
        return t


def sha256(path):
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestFrameAccounting:
    def test_self_vs_cumulative(self):
        # Manual clock: push/pop boundaries land at known instants.
        clock = FakeClock(step=0.0)
        prof = Profiler(clock=clock)

        def at(t):
            clock.t = t

        at(10.0); prof.push("outer")          # noqa: E702
        at(12.0); prof.push("inner")          # noqa: E702
        at(17.0); prof.pop()                  # inner: 5 s  # noqa: E702
        at(20.0); prof.pop()                  # outer: 10 s total  # noqa: E702
        at(20.0); prof.stop()                 # noqa: E702

        flat = prof.flat()
        assert flat["inner"]["wall_s"] == 5.0
        assert flat["inner"]["self_s"] == 5.0
        assert flat["outer"]["wall_s"] == 10.0
        assert flat["outer"]["self_s"] == 5.0   # 10 minus inner's 5
        assert flat["outer"]["calls"] == 1

    def test_repeated_frames_aggregate(self):
        clock = FakeClock(step=1.0)   # every clock read advances 1 s
        prof = Profiler(clock=clock)
        for _ in range(3):
            prof.push("kernel.locate")
            prof.pop()
        prof.stop()
        flat = prof.flat()
        assert flat["kernel.locate"]["calls"] == 3
        assert flat["kernel.locate"]["wall_s"] == 3.0

    def test_same_name_at_different_depths_sums_in_flat(self):
        clock = FakeClock(step=0.0)
        prof = Profiler(clock=clock)

        def at(t):
            clock.t = t

        at(0.0); prof.push("a")               # noqa: E702
        at(0.0); prof.push("x")               # noqa: E702
        at(2.0); prof.pop()                   # a;x = 2  # noqa: E702
        at(3.0); prof.pop()                   # noqa: E702
        at(3.0); prof.push("x")               # noqa: E702
        at(4.0); prof.pop()                   # x = 1  # noqa: E702
        at(4.0); prof.stop()                  # noqa: E702
        flat = prof.flat()
        assert flat["x"]["calls"] == 2
        assert flat["x"]["wall_s"] == 3.0

    def test_pop_without_push_raises(self):
        prof = Profiler()
        with pytest.raises(RuntimeError, match="pop without"):
            prof.pop()

    def test_stop_closes_open_frames(self):
        prof = Profiler()
        prof.push("a")
        prof.push("b")
        prof.stop()
        assert prof.depth == 0
        assert prof.flat()["b"]["calls"] == 1

    def test_frame_context_manager_pops_on_error(self):
        prof = Profiler()
        with pytest.raises(ValueError):
            with prof.frame("risky"):
                raise ValueError("boom")
        assert prof.depth == 0
        prof.stop()
        assert prof.flat()["risky"]["calls"] == 1


class TestSimAttribution:
    def test_sim_delta_charged_to_innermost_frame(self):
        prof = Profiler(clock=FakeClock(step=0.0))
        prof.advance_sim(0.0)         # baseline only
        prof.push("engine:tick")
        prof.advance_sim(5.0)         # 5 sim-seconds inside the frame
        prof.pop()
        prof.advance_sim(7.0)         # 2 more at root
        prof.stop()
        flat = prof.flat()
        assert flat["engine:tick"]["sim_s"] == 5.0
        assert prof.total_sim == 7.0

    def test_backwards_clock_rebaselines(self):
        # A fresh Simulator in the same run restarts its clock at 0;
        # that must not charge negative sim time.
        prof = Profiler(clock=FakeClock(step=0.0))
        prof.advance_sim(0.0)
        prof.advance_sim(10.0)
        prof.advance_sim(0.0)         # new simulator
        prof.advance_sim(3.0)
        prof.stop()
        assert prof.total_sim == 13.0


class TestExport:
    def _document(self):
        clock = FakeClock(step=0.0)
        prof = Profiler(clock=clock)

        def at(t):
            clock.t = t

        at(0.0); prof.push("cmd:x")           # noqa: E702
        at(1.0); prof.push("kernel.locate")   # noqa: E702
        at(3.0); prof.pop()                   # noqa: E702
        at(4.0); prof.pop()                   # noqa: E702
        at(4.0); prof.stop()                  # noqa: E702
        return profile_document(prof, command="x")

    def test_document_shape(self):
        doc = self._document()
        assert doc["kind"] == "repro.profile"
        assert doc["total_wall_s"] == 4.0
        assert doc["root"]["name"] == "run"
        assert doc["flat"]["kernel.locate"]["self_s"] == 2.0

    def test_collapsed_stack_format(self):
        lines = collapsed_stacks(self._document()["root"])
        # flamegraph.pl's collapsed format: 'frame;frame <int>' with a
        # positive integer count (self-microseconds here).
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert all(frame for frame in stack.split(";"))
        assert "run;cmd:x;kernel.locate 2000000" in lines

    def test_load_profile_round_trip(self, tmp_path):
        doc = self._document()
        path = tmp_path / "p.json"
        path.write_text(json.dumps(doc))
        loaded = load_profile(str(path))
        assert flatten(loaded)["cmd:x"]["wall_s"] == 4.0

    def test_load_profile_rejects_non_profiles(self, tmp_path):
        path = tmp_path / "not.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ProfileError, match="not a repro profile"):
            load_profile(str(path))
        with pytest.raises(ProfileError):
            load_profile(str(tmp_path / "missing.json"))

    def test_render_profile_attribution_line(self):
        text = render_profile(self._document(), top=5)
        assert "100.0% attributed" in text
        assert "kernel.locate" in text


class TestProfiledDecorator:
    def test_frames_only_when_profiler_active(self):
        calls = []

        @profiled("decorated.fn")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6          # no profiler: plain call
        prof = Profiler()
        OBS.profiler = prof
        try:
            assert fn(4) == 8
        finally:
            OBS.profiler = None
        prof.stop()
        assert prof.flat()["decorated.fn"]["calls"] == 1
        assert calls == [3, 4]


class TestDeterminism:
    """Same-seed runs with --profile-out produce byte-identical traces
    (the acceptance criterion: wall-clock data never leaks into the
    deterministic surface)."""

    def test_same_seed_traces_identical_with_profiling(
            self, tmp_path, capsys):
        t_plain = tmp_path / "plain.jsonl"
        t_prof = tmp_path / "prof.jsonl"
        OBS.reset()   # fresh span counters: in-process reruns share OBS
        assert main(["chaos", "--seed", "11", "--scale", "0.05",
                     "--trace-out", str(t_plain)]) == 0
        OBS.reset()
        assert main(["chaos", "--seed", "11", "--scale", "0.05",
                     "--trace-out", str(t_prof),
                     "--profile-out", str(tmp_path / "p.json")]) == 0
        capsys.readouterr()
        assert sha256(t_plain) == sha256(t_prof)
        doc = json.loads((tmp_path / "p.json").read_text())
        assert doc["kind"] == "repro.profile"
        assert doc["flat"]          # something was attributed

    def test_profile_attributes_95_percent(self, tmp_path, capsys):
        # The acceptance bar: ≥95% of measured wall-clock lands on
        # named components (the command frame guarantees it).
        out = tmp_path / "p.json"
        assert main(["trace", "--which", "CC-a",
                     "--profile-out", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        total = doc["total_wall_s"]
        attributed = total - doc["unattributed_s"]
        assert attributed / total >= 0.95
        # ...and the paper-relevant components all appear.
        flat = doc["flat"]
        assert "workload.generate" in flat
        assert any(k.startswith("policy:") for k in flat)


class TestNullProfilerOverhead:
    """Mirror of the null-sink guard: a disabled profiler must add only
    an attribute load + None check to the hot paths."""

    def _per_call(self, fn, n):
        t0 = perf_counter()
        for _ in range(n):
            fn()
        return (perf_counter() - t0) / n

    def test_guard_cost_when_off(self, ech10):
        assert OBS.profiler is None
        # The exact guard idiom used at every call site.
        def guarded():
            prof = OBS.profiler
            if prof is not None:      # pragma: no cover
                prof.push("x")
                prof.pop()
        cost = self._per_call(guarded, 50_000)
        # Loose absolute bound, same spirit as the no-sink emit guard
        # (2 us, ~20x headroom over an attribute load on slow CI).
        assert cost < 2e-6, f"null-profiler guard {cost * 1e9:.0f} ns"

    def test_locate_unaffected_when_off(self, ech10):
        assert OBS.profiler is None
        base = self._per_call(lambda: ech10.locate(42), 2_000)
        # No assertion against `base` itself (machine-dependent); the
        # point is the guard branch above plus this smoke check that
        # locate still runs with no profiler attached.
        assert base > 0
        assert ech10.locate(42) == ech10.locate(42)

    def test_push_pop_cost_when_on(self):
        prof = Profiler()
        def cycle():
            prof.push("frame")
            prof.pop()
        cost = self._per_call(cycle, 20_000)
        prof.stop()
        # Active profiling pays two clock reads + dict work per frame;
        # bounded loosely (20 us) so slow CI never flakes.
        assert cost < 2e-5, f"active push/pop {cost * 1e9:.0f} ns"
