"""Invariant checkers: each checker's trip-wire, the suite, and the
seeded-fault detection path through ``repro check``."""

import json

import pytest

from repro.cli import main
from repro.obs.invariants import (
    BandwidthCapChecker,
    CheckerSink,
    DirtyAckChecker,
    DirtyDisciplineChecker,
    FlowAccountingChecker,
    InvariantSuite,
    MachineHourChecker,
    NoLostObjectChecker,
    PoweredMoveChecker,
    ReplicationRestoredChecker,
    SWEEP_BOUNDARY_KIND,
    ServeQueueBoundedChecker,
    VersionMonotonicChecker,
    check_events,
    default_checkers,
)
from repro.obs.trace import TraceBus


def run_checker(checker, events):
    for i, ev in enumerate(events, start=1):
        checker.observe(ev, i)
    checker.finish()
    return checker.violations


class TestVersionMonotonic:
    def test_increasing_ok(self):
        evs = [{"kind": "version.advance", "t": 0.0, "version": v}
               for v in (1, 2, 5)]
        assert run_checker(VersionMonotonicChecker(), evs) == []

    def test_regression_caught(self):
        evs = [{"kind": "version.advance", "t": 0.0, "version": 3},
               {"kind": "version.advance", "t": 1.0, "version": 3}]
        v = run_checker(VersionMonotonicChecker(), evs)
        assert len(v) == 1 and "3 -> 3" in v[0].message

    def test_missing_version_field_caught(self):
        v = run_checker(VersionMonotonicChecker(),
                        [{"kind": "version.advance", "t": 0.0}])
        assert len(v) == 1


class TestPoweredMove:
    def test_move_to_on_rank_ok(self):
        evs = [{"kind": "server.state", "t": 0, "rank": 4, "state": "on"},
               {"kind": "migration.move", "t": 1, "oid": 7, "to": [4]}]
        assert run_checker(PoweredMoveChecker(), evs) == []

    def test_move_to_off_rank_caught(self):
        evs = [{"kind": "server.state", "t": 0, "rank": 9, "state": "off"},
               {"kind": "migration.move", "t": 1, "oid": 7, "to": [9]}]
        v = run_checker(PoweredMoveChecker(), evs)
        assert len(v) == 1 and "rank 9" in v[0].message

    def test_failed_rank_counts_as_off(self):
        evs = [{"kind": "server.fail", "t": 0, "rank": 2},
               {"kind": "migration.move", "t": 1, "oid": 1, "to": [2]}]
        assert len(run_checker(PoweredMoveChecker(), evs)) == 1

    def test_repowered_rank_is_fine_again(self):
        evs = [{"kind": "server.state", "t": 0, "rank": 9, "state": "off"},
               {"kind": "server.state", "t": 1, "rank": 9, "state": "on"},
               {"kind": "migration.move", "t": 2, "oid": 7, "to": [9]}]
        assert run_checker(PoweredMoveChecker(), evs) == []


class TestDirtyDiscipline:
    def test_insert_below_full_power_ok(self):
        evs = [{"kind": "version.advance", "t": 0, "version": 2,
                "full_power": False},
               {"kind": "dirty.insert", "t": 1, "oid": 5, "version": 2}]
        assert run_checker(DirtyDisciplineChecker(), evs) == []

    def test_insert_at_full_power_caught(self):
        evs = [{"kind": "version.advance", "t": 0, "version": 2,
                "full_power": True},
               {"kind": "dirty.insert", "t": 1, "oid": 5, "version": 2}]
        v = run_checker(DirtyDisciplineChecker(), evs)
        assert len(v) == 1 and "full" in v[0].message

    def test_move_of_untracked_object_caught(self):
        v = run_checker(DirtyDisciplineChecker(),
                        [{"kind": "migration.move", "t": 0, "oid": 99,
                          "to": [3]}])
        assert len(v) == 1 and "99" in v[0].message

    def test_move_of_tracked_object_ok(self):
        evs = [{"kind": "version.advance", "t": 0, "version": 2,
                "full_power": False},
               {"kind": "dirty.insert", "t": 1, "oid": 5, "version": 2},
               {"kind": "migration.move", "t": 2, "oid": 5, "to": [3]}]
        assert run_checker(DirtyDisciplineChecker(), evs) == []


class TestBandwidthCap:
    def test_under_cap_ok(self):
        evs = [{"kind": "bandwidth.solve", "t": 0, "max_util": 1.0}]
        assert run_checker(BandwidthCapChecker(), evs) == []

    def test_over_cap_caught(self):
        evs = [{"kind": "bandwidth.solve", "t": 0, "max_util": 1.5,
                "max_util_rank": 3}]
        v = run_checker(BandwidthCapChecker(), evs)
        assert len(v) == 1 and "server 3" in v[0].message

    def test_legacy_trace_without_field_skipped(self):
        evs = [{"kind": "bandwidth.solve", "t": 0, "flows": 2}]
        assert run_checker(BandwidthCapChecker(), evs) == []


class TestServeQueueBounded:
    def test_depth_within_bound_ok(self):
        evs = [{"kind": "serve.queue", "t": 1.0, "server": 2,
                "depth": 64, "bound": 64}]
        assert run_checker(ServeQueueBoundedChecker(), evs) == []

    def test_depth_over_bound_caught(self):
        evs = [{"kind": "serve.queue", "t": 1.0, "server": 2,
                "depth": 65, "bound": 64}]
        v = run_checker(ServeQueueBoundedChecker(), evs)
        assert len(v) == 1
        assert "server 2" in v[0].message and "65" in v[0].message

    def test_bound_is_per_sample_not_global(self):
        # The bound travels with each sample, so a trace mixing
        # controllers judges each sample against its own contract.
        evs = [{"kind": "serve.queue", "t": 1.0, "server": 1,
                "depth": 10, "bound": 8},
               {"kind": "serve.queue", "t": 2.0, "server": 1,
                "depth": 10, "bound": 64}]
        v = run_checker(ServeQueueBoundedChecker(), evs)
        assert len(v) == 1 and v[0].index == 1

    def test_vacuous_without_serve_events(self):
        evs = [{"kind": "flow.start", "t": 0.0, "span_id": 1,
                "name": "client"}]
        checker = ServeQueueBoundedChecker()
        assert run_checker(checker, evs) == []
        assert checker.ok

    def test_malformed_sample_skipped(self):
        evs = [{"kind": "serve.queue", "t": 0.0, "server": 1,
                "depth": "deep", "bound": 4}]
        assert run_checker(ServeQueueBoundedChecker(), evs) == []

    def test_in_default_suite_and_reconstructible(self):
        # The sweep boundary logic re-instantiates checkers by type —
        # every default checker must be no-arg constructible.
        suite = default_checkers()
        assert any(isinstance(c, ServeQueueBoundedChecker)
                   for c in suite)
        for c in suite:
            type(c)()


class TestFlowAccounting:
    def test_start_finish_pair_ok(self):
        evs = [{"kind": "flow.start", "t": 0, "name": "client",
                "span_id": 1},
               {"kind": "flow.finish", "t": 5, "name": "client",
                "span_id": 1}]
        assert run_checker(FlowAccountingChecker(), evs) == []

    def test_cancel_also_retires(self):
        evs = [{"kind": "flow.start", "t": 0, "name": "client",
                "span_id": 1},
               {"kind": "flow.cancel", "t": 5, "name": "client",
                "span_id": 1}]
        assert run_checker(FlowAccountingChecker(), evs) == []

    def test_unfinished_flow_caught_at_eof(self):
        v = run_checker(FlowAccountingChecker(),
                        [{"kind": "flow.start", "t": 0, "name": "client",
                          "span_id": 1}])
        assert len(v) == 1 and "never finished" in v[0].message

    def test_finish_without_start_caught(self):
        v = run_checker(FlowAccountingChecker(),
                        [{"kind": "flow.finish", "t": 0, "name": "x",
                          "span_id": 9}])
        assert len(v) == 1 and "never started" in v[0].message

    def test_spanless_trace_matches_by_name(self):
        evs = [{"kind": "flow.start", "t": 0, "name": "client"},
               {"kind": "flow.finish", "t": 5, "name": "client"}]
        assert run_checker(FlowAccountingChecker(), evs) == []


class TestMachineHours:
    def test_consistent_samples_ok(self):
        evs = [{"kind": "power.sample", "t": 0, "active": 10},
               {"kind": "server.state", "t": 1, "rank": 7, "state": "off"},
               {"kind": "power.sample", "t": 2, "active": 9}]
        assert run_checker(MachineHourChecker(), evs) == []

    def test_inconsistent_sample_caught(self):
        evs = [{"kind": "power.sample", "t": 0, "active": 10},
               {"kind": "server.state", "t": 1, "rank": 7, "state": "off"},
               {"kind": "power.sample", "t": 2, "active": 10}]
        v = run_checker(MachineHourChecker(), evs)
        assert len(v) == 1 and "imply 9" in v[0].message

    def test_policy_trace_without_states_vacuous(self):
        evs = [{"kind": "power.sample", "t": 0, "active": 10},
               {"kind": "power.sample", "t": 1, "active": 6}]
        assert run_checker(MachineHourChecker(), evs) == []


class TestSuite:
    def test_violations_sorted_by_stream_position(self):
        violations = check_events([
            {"kind": "migration.move", "t": 0, "oid": 1, "to": [1]},
            {"kind": "version.advance", "t": 1, "version": 2},
            {"kind": "version.advance", "t": 2, "version": 1},
        ])
        assert [v.index for v in violations] == sorted(
            v.index for v in violations)
        assert {v.checker for v in violations} == {"dirty-discipline",
                                                   "version-monotonic"}

    def test_finish_runs_once(self):
        suite = InvariantSuite()
        suite.observe({"kind": "flow.start", "t": 0, "name": "c",
                       "span_id": 1}, 1)
        assert len(suite.finish()) == 1
        assert len(suite.finish()) == 1     # not doubled

    def test_checker_sink_counts_ordinals(self):
        bus = TraceBus()
        sink = bus.attach(CheckerSink())
        bus.emit("version.advance", t=0.0, version=2)
        bus.emit("version.advance", t=1.0, version=1)
        violations = sink.finish()
        assert len(violations) == 1 and violations[0].index == 2


class TestSeededFault:
    """ISSUE acceptance: forge a migration.move to a powered-off rank
    into a healthy trace and assert ``repro check`` flags it."""

    @pytest.fixture()
    def healthy_trace(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["three-phase", "--mode", "selective",
                     "--scale", "0.05", "--trace-out", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_healthy_trace_passes(self, healthy_trace, capsys):
        assert main(["check", str(healthy_trace)]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_forged_move_to_powered_off_rank_detected(
            self, healthy_trace, tmp_path, capsys):
        events = [json.loads(ln) for ln
                  in healthy_trace.read_text().splitlines() if ln]
        off_rank = next(e["rank"] for e in events
                        if e["kind"] == "server.state"
                        and e["state"] == "off")
        idx = next(i for i, e in enumerate(events)
                   if e["kind"] == "server.state" and e["state"] == "off")
        forged = dict(events[idx], kind="migration.move", oid=424242,
                      nbytes=4 << 20, to=[off_rank], dropped=[])
        forged.pop("rank", None)
        forged.pop("state", None)
        events.insert(idx + 1, forged)

        bad = tmp_path / "forged.jsonl"
        bad.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        assert main(["check", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "powered-move" in out
        assert f"rank {off_rank}" in out
        assert f"line {idx + 2}" in out     # 1-based JSONL line number


class TestNoLostObject:
    def test_object_lost_event_trips(self):
        violations = run_checker(NoLostObjectChecker(), [
            {"kind": "object.lost", "t": 5.0, "oid": 42, "rank": 3},
        ])
        assert len(violations) == 1
        assert "object 42" in violations[0].message

    def test_audit_with_lost_trips(self):
        violations = run_checker(NoLostObjectChecker(), [
            {"kind": "chaos.audit", "t": 10.0, "lost": 2,
             "under_replicated": 0},
        ])
        assert len(violations) == 1

    def test_healthy_audits_pass(self):
        assert run_checker(NoLostObjectChecker(), [
            {"kind": "chaos.audit", "t": 10.0, "lost": 0,
             "under_replicated": 5},
        ]) == []

    def test_vacuous_without_grounding_events(self):
        assert run_checker(NoLostObjectChecker(), [
            {"kind": "flow.start", "t": 0.0, "name": "client"},
        ]) == []


class TestReplicationRestored:
    def test_final_audit_under_replicated_trips(self):
        violations = run_checker(ReplicationRestoredChecker(), [
            {"kind": "chaos.audit", "t": 10.0, "lost": 0,
             "under_replicated": 3},
        ])
        assert len(violations) == 1
        assert "3 under-replicated" in violations[0].message

    def test_only_the_last_audit_counts(self):
        # Mid-run repair debt is legal; convergence by the end is what
        # matters.
        assert run_checker(ReplicationRestoredChecker(), [
            {"kind": "chaos.audit", "t": 10.0, "lost": 1,
             "under_replicated": 90},
            {"kind": "chaos.audit", "t": 60.0, "lost": 0,
             "under_replicated": 0},
        ]) == []

    def test_vacuous_without_audits(self):
        assert run_checker(ReplicationRestoredChecker(), [
            {"kind": "version.advance", "t": 0.0, "version": 2},
        ]) == []


class TestDirtyAck:
    def test_remove_without_ack_trips(self):
        violations = run_checker(DirtyAckChecker(), [
            {"kind": "transfer.start", "t": 1.0, "key": "r:1"},
            {"kind": "dirty.remove", "t": 2.0, "oid": 7, "version": 3},
        ])
        assert len(violations) == 1
        assert "object 7" in violations[0].message

    def test_remove_after_covering_ack_passes(self):
        assert run_checker(DirtyAckChecker(), [
            {"kind": "transfer.start", "t": 1.0, "key": "r:1"},
            {"kind": "transfer.ack", "t": 2.0, "key": "r:1",
             "oids": [7, 8]},
            {"kind": "dirty.remove", "t": 2.0, "oid": 7, "version": 3},
        ]) == []

    def test_ack_for_other_object_does_not_cover(self):
        violations = run_checker(DirtyAckChecker(), [
            {"kind": "transfer.start", "t": 1.0, "key": "r:1"},
            {"kind": "transfer.ack", "t": 2.0, "key": "r:1",
             "oids": [8]},
            {"kind": "dirty.remove", "t": 2.0, "oid": 7, "version": 3},
        ])
        assert len(violations) == 1

    def test_vacuous_before_transfer_layer(self):
        # Traces from the plain three-phase driver remove dirty entries
        # without any transfer events: grounded only by transfer.start.
        assert run_checker(DirtyAckChecker(), [
            {"kind": "dirty.remove", "t": 2.0, "oid": 7, "version": 3},
        ]) == []


class TestSweepBoundary:
    """A merged sweep trace concatenates independent runs; the
    ``sweep.task`` boundary event must restart every checker so one
    task's state never bleeds into the next — version epochs restart
    at 1 in each run, which a single suite would flag as a regression."""

    @staticmethod
    def run_suite(events):
        suite = InvariantSuite()
        for i, ev in enumerate(events, start=1):
            suite.observe(ev, i)
        return suite

    def test_version_restart_across_boundary_is_clean(self):
        suite = self.run_suite([
            {"kind": "version.advance", "t": 0.0, "version": 5},
            {"kind": SWEEP_BOUNDARY_KIND, "t": 0.0, "task": "b"},
            {"kind": "version.advance", "t": 0.0, "version": 1},
        ])
        assert suite.finish() == [] and suite.ok

    def test_violation_before_boundary_survives_the_restart(self):
        suite = self.run_suite([
            {"kind": "version.advance", "t": 0.0, "version": 3},
            {"kind": "version.advance", "t": 1.0, "version": 2},
            {"kind": SWEEP_BOUNDARY_KIND, "t": 0.0, "task": "b"},
            {"kind": "version.advance", "t": 0.0, "version": 1},
        ])
        violations = suite.finish()
        assert [v.checker for v in violations] == ["version-monotonic"]
        assert not suite.ok

    def test_boundary_triggers_end_of_run_checks(self):
        # An unfinished flow is an end-of-stream violation; the
        # boundary must run it for the task that just ended.
        suite = self.run_suite([
            {"kind": "flow.start", "t": 0.0, "name": "c", "span_id": 1},
            {"kind": SWEEP_BOUNDARY_KIND, "t": 0.0, "task": "b"},
        ])
        assert [v.checker for v in suite.finish()] == ["flow-accounting"]
