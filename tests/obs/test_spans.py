"""Spans: id allocation, event emission, nesting, determinism."""

from repro.obs import OBS
from repro.obs.spans import SpanTracker
from repro.obs.trace import RingBufferSink, TraceBus


def make_tracker():
    bus = TraceBus()
    return bus, SpanTracker(bus)


class TestSpanEvents:
    def test_begin_end_pair_share_id(self):
        bus, spans = make_tracker()
        sink = bus.attach(RingBufferSink())
        bus.clock = 5.0
        span = spans.begin("resize.cycle", version=3)
        bus.clock = 12.0
        span.end(status="drained")

        begin, end = sink.events()
        assert begin["kind"] == "span.begin"
        assert begin["name"] == "resize.cycle"
        assert begin["version"] == 3
        assert end["kind"] == "span.end"
        assert end["span_id"] == begin["span_id"]
        assert end["duration"] == 7.0
        assert end["status"] == "drained"

    def test_no_parent_id_field_on_root_spans(self):
        bus, spans = make_tracker()
        sink = bus.attach(RingBufferSink())
        spans.begin("flow")
        assert "parent_id" not in sink.events()[0]

    def test_parent_linkage(self):
        bus, spans = make_tracker()
        sink = bus.attach(RingBufferSink())
        cycle = spans.begin("resize.cycle")
        child = spans.begin("reintegration.pass", parent=cycle)
        assert child.parent_id == cycle.span_id
        assert sink.events("span.begin")[1]["parent_id"] == cycle.span_id

    def test_child_may_outlive_parent_close(self):
        bus, spans = make_tracker()
        bus.attach(RingBufferSink())
        cycle = spans.begin("resize.cycle")
        cycle.end()
        child = spans.begin("flow", parent=cycle)
        assert child.parent_id == cycle.span_id

    def test_end_is_idempotent(self):
        bus, spans = make_tracker()
        sink = bus.attach(RingBufferSink())
        span = spans.begin("flow")
        span.end()
        span.end()
        assert len(sink.events("span.end")) == 1

    def test_duration_never_negative(self):
        bus, spans = make_tracker()
        bus.attach(RingBufferSink())
        bus.clock = 10.0
        span = spans.begin("flow")
        assert span.end(t=3.0) == 0.0

    def test_context_manager_closes(self):
        bus, spans = make_tracker()
        sink = bus.attach(RingBufferSink())
        with spans.span("recovery.fail", rank=4):
            pass
        assert len(sink.events("span.end")) == 1


class TestDeterminism:
    def test_ids_sequential_and_reset(self):
        bus, spans = make_tracker()
        a = spans.begin("x")
        b = spans.begin("y")
        assert (a.span_id, b.span_id) == (1, 2)
        spans.reset()
        assert spans.begin("z").span_id == 1

    def test_ids_allocated_even_without_sink(self):
        # Spans are always tracked so the id sequence does not depend
        # on whether a sink happened to be attached — the property the
        # byte-identical-trace guarantee rests on.
        bus, spans = make_tracker()
        silent = spans.begin("flow")
        assert not bus.active
        sink = bus.attach(RingBufferSink())
        loud = spans.begin("flow")
        assert loud.span_id == silent.span_id + 1
        assert len(sink.events("span.begin")) == 1

    def test_runtime_reset_rewinds_global_ids(self):
        OBS.reset()
        first = OBS.spans.begin("probe").span_id
        OBS.spans.begin("probe2")
        OBS.reset()
        assert OBS.spans.begin("probe").span_id == first
        OBS.reset()
