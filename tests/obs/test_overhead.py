"""Overhead guards: disabled observability must stay near-free.

The acceptance bar for the instrumentation is that the default state —
no sinks attached, ``OBS.hot`` off — adds only a branch to the hot
paths.  These tests put loose absolute bounds on the per-call cost so
a regression (say, building the event dict before checking for sinks)
fails loudly without making the suite timing-flaky.
"""

from time import perf_counter

from repro.obs import OBS
from repro.obs.trace import NullSink, TraceBus


def _per_call(fn, n):
    t0 = perf_counter()
    for _ in range(n):
        fn()
    return (perf_counter() - t0) / n


class TestEmitCost:
    def test_emit_without_sinks_is_a_branch(self):
        bus = TraceBus()
        cost = _per_call(
            lambda: bus.emit("k", t=0.0, oid=1, nbytes=4194304), 50_000)
        # A real emit builds a dict and touches every sink; the no-sink
        # path must be far below a microsecond even on slow CI (loose:
        # 2 us, ~20x headroom over a dict build).
        assert cost < 2e-6, f"no-sink emit cost {cost * 1e9:.0f} ns"

    def test_null_sink_swallows_cheaply(self):
        bus = TraceBus()
        bus.attach(NullSink())
        cost = _per_call(
            lambda: bus.emit("k", t=0.0, oid=1, nbytes=4194304), 50_000)
        # Active path pays the dict build + one virtual call: still
        # bounded (loose: 10 us).
        assert cost < 1e-5, f"null-sink emit cost {cost * 1e9:.0f} ns"

    def test_guarded_call_sites_skip_field_construction(self):
        # The pattern used at every producer: OBS.bus.active is a cheap
        # property, so the guard itself must be sub-microsecond.
        bus = TraceBus()
        cost = _per_call(lambda: bus.active, 50_000)
        assert cost < 2e-6


class TestHotFlag:
    def test_hot_defaults_off(self):
        assert OBS.hot is False

    def test_locate_unaffected_when_cold(self, ech10):
        # Warm up (ring build, caches), then compare the same loop with
        # instrumentation present-but-disabled against itself; mostly a
        # smoke check that the cold path does not record perf metrics.
        OBS.metrics.reset()
        for oid in range(200):
            ech10.locate(oid)
        assert "perf.core.locate" not in OBS.metrics.snapshot()

    def test_hot_records_perf_metrics(self, ech10):
        OBS.metrics.reset()
        OBS.hot = True
        try:
            for oid in range(50):
                ech10.locate(oid)
        finally:
            OBS.hot = False
        snap = OBS.metrics.snapshot()
        assert snap["perf.core.locate"]["count"] == 50
        assert snap["core.locates"] == 50
        # ...and the deterministic view hides the wall-clock part.
        assert "perf.core.locate" not in OBS.metrics.snapshot(
            include_perf=False)
