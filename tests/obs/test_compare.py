"""Run-vs-run comparison: classification, thresholds, artifact
detection, and the regression gate's exit code."""

import json

import pytest

from repro.obs.compare import (
    CompareError,
    ComparisonResult,
    _bench_timings,
    _diff_maps,
    _run_artifacts,
    compare_runs,
    render_compare,
)


def result(threshold=0.25, min_seconds=1e-4, strict=False):
    return ComparisonResult("A", "B", threshold, min_seconds, strict)


def write_profile(path, flat):
    """Minimal valid repro.profile document with the given flat table."""
    total = sum(v for v in flat.values())
    doc = {
        "kind": "repro.profile", "version": 1, "command": "x",
        "total_wall_s": total, "total_sim_s": 0.0, "unattributed_s": 0.0,
        "root": {"name": "run", "calls": 1, "wall_s": total,
                 "self_s": 0.0, "sim_s": 0.0,
                 "children": [
                     {"name": n, "calls": 1, "wall_s": v, "self_s": v,
                      "sim_s": 0.0, "children": []}
                     for n, v in sorted(flat.items())]},
        "flat": {n: {"calls": 1, "wall_s": v, "self_s": v, "sim_s": 0.0}
                 for n, v in flat.items()},
    }
    path.write_text(json.dumps(doc))
    return path


class TestClassification:
    def test_wall_threshold_gates(self):
        r = result(threshold=0.25)
        _diff_maps(r, "bench", "s",
                   {"fast": 1.0, "slow": 1.0, "same": 1.0, "near": 1.0},
                   {"fast": 0.5, "slow": 2.0, "same": 1.0, "near": 1.1},
                   wall=True)
        kinds = {d.name: d.kind for d in r.deltas}
        assert kinds == {"fast": "improvement", "slow": "regression",
                         "near": "drift"}    # equal values are skipped

    def test_sim_differences_are_drift(self):
        r = result()
        _diff_maps(r, "metrics", "", {"x": 1.0}, {"x": 99.0}, wall=False)
        assert [d.kind for d in r.deltas] == ["drift"]
        assert r.ok

    def test_strict_promotes_drift(self):
        r = result(strict=True)
        _diff_maps(r, "metrics", "", {"x": 1.0}, {"x": 2.0}, wall=False)
        assert not r.ok
        assert r.exit_code == 1

    def test_added_and_removed(self):
        r = result()
        _diff_maps(r, "bench", "s", {"gone": 1.0}, {"new": 1.0},
                   wall=True)
        kinds = {d.name: d.kind for d in r.deltas}
        assert kinds == {"gone": "removed", "new": "added"}

    def test_floor_drops_jitter_pairs(self):
        # Both sides under the floor: ignored entirely, even though the
        # relative change is huge.
        r = result()
        _diff_maps(r, "profile", "s",
                   {"tiny": 1e-6, "big": 1.0},
                   {"tiny": 9e-6, "big": 2.0},
                   wall=True, floor=1e-4)
        assert [d.name for d in r.deltas] == ["big"]
        assert r.deltas[0].kind == "regression"

    def test_no_floor_on_bench_section(self):
        # Micro-bench medians (µs scale) must still gate: _diff_maps is
        # called without a floor for the bench section.
        r = result()
        _diff_maps(r, "bench", "s", {"locate": 5e-6}, {"locate": 2e-5},
                   wall=True)
        assert r.deltas[0].kind == "regression"


class TestBenchTimings:
    def test_baseline_shape(self):
        doc = {"benches": {"bench_locate": {"median_s": 5e-6,
                                            "what": "hot path"}}}
        assert _bench_timings(doc) == {"bench_locate": 5e-6}

    def test_timings_shape_normalises_names(self):
        doc = {"data": {"benchmarks/bench_perf_core.py::bench_locate": {
            "median_s": 6e-6, "mean_s": 7e-6, "rounds": 5}}}
        assert _bench_timings(doc) == {"bench_locate": 6e-6}

    def test_mean_fallback(self):
        doc = {"data": {"b": {"mean_s": 3.0}}}
        assert _bench_timings(doc) == {"b": 3.0}

    def test_non_bench_docs_rejected(self):
        assert _bench_timings({"name": "x", "report": "..."}) is None
        assert _bench_timings([1, 2]) is None
        assert _bench_timings({"data": {}}) is None


class TestArtifactDetection:
    def test_run_directory(self, tmp_path):
        (tmp_path / "metrics.json").write_text('{"events": 3}')
        (tmp_path / "trace.jsonl").write_text("")
        write_profile(tmp_path / "profile.json", {"a": 1.0})
        (tmp_path / "perf.json").write_text(
            '{"benches": {"b": {"median_s": 1.0}}}')
        arts = _run_artifacts(str(tmp_path))
        assert set(arts) == {"metrics", "trace", "profile", "bench"}

    def test_standalone_files(self, tmp_path):
        prof = write_profile(tmp_path / "p.json", {"a": 1.0})
        assert _run_artifacts(str(prof)) == {"profile": str(prof)}
        bench = tmp_path / "b.json"
        bench.write_text('{"benches": {"x": {"median_s": 1.0}}}')
        assert _run_artifacts(str(bench)) == {"bench": str(bench)}
        trace = tmp_path / "t.jsonl"
        trace.write_text("")
        assert _run_artifacts(str(trace)) == {"trace": str(trace)}

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CompareError, match="no comparable artifacts"):
            _run_artifacts(str(tmp_path))

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(CompareError, match="no such file"):
            _run_artifacts(str(tmp_path / "nope"))


class TestCompareRuns:
    def test_same_profile_is_ok(self, tmp_path):
        a = write_profile(tmp_path / "a.json", {"kernel": 1.0})
        b = write_profile(tmp_path / "b.json", {"kernel": 1.0})
        r = compare_runs(str(a), str(b))
        assert r.ok and r.exit_code == 0
        assert "Verdict: OK" in render_compare(r)
        assert "identical." in render_compare(r)

    def test_profile_regression_fails_gate(self, tmp_path):
        a = write_profile(tmp_path / "a.json", {"kernel": 1.0})
        b = write_profile(tmp_path / "b.json", {"kernel": 2.0})
        r = compare_runs(str(a), str(b), threshold=0.25)
        assert r.exit_code == 1
        text = render_compare(r)
        assert "Verdict: REGRESSED" in text
        assert "+100.0%" in text

    def test_threshold_widens_gate(self, tmp_path):
        a = write_profile(tmp_path / "a.json", {"kernel": 1.0})
        b = write_profile(tmp_path / "b.json", {"kernel": 2.0})
        assert compare_runs(str(a), str(b), threshold=2.0).ok

    def test_one_sided_artifacts_skipped_with_note(self, tmp_path):
        da, db = tmp_path / "a", tmp_path / "b"
        da.mkdir(); db.mkdir()           # noqa: E702
        (da / "metrics.json").write_text('{"events": 1}')
        (db / "metrics.json").write_text('{"events": 1}')
        write_profile(da / "profile.json", {"x": 1.0})
        r = compare_runs(str(da), str(db))
        assert r.ok
        assert any("profile" in note and "only present in A" in note
                   for note in r.skipped)

    def test_no_common_artifacts_raises(self, tmp_path):
        a = write_profile(tmp_path / "a.json", {"x": 1.0})
        b = tmp_path / "b.json"
        b.write_text('{"benches": {"y": {"median_s": 1.0}}}')
        with pytest.raises(CompareError, match="no artifact kind"):
            compare_runs(str(a), str(b))

    def test_negative_threshold_rejected(self, tmp_path):
        a = write_profile(tmp_path / "a.json", {"x": 1.0})
        with pytest.raises(ValueError, match="threshold"):
            compare_runs(str(a), str(a), threshold=-0.1)

    def test_baseline_vs_timings_cross_shape(self, tmp_path):
        # The CI gate's exact setup: hand-written baseline vs the
        # pytest-benchmark timings dump, names joined on the bare name.
        base = tmp_path / "base.json"
        base.write_text(json.dumps(
            {"benches": {"bench_locate": {"median_s": 1.0}}}))
        timings = tmp_path / "timings.json"
        timings.write_text(json.dumps(
            {"data": {"benchmarks/x.py::bench_locate": {
                "median_s": 1.1, "mean_s": 1.2, "rounds": 3}}}))
        r = compare_runs(str(base), str(timings), threshold=0.25)
        assert r.ok
        assert {d.name for d in r.deltas} == {"bench_locate"}


class TestAnalyticsComparison:
    @staticmethod
    def analytics(tmp_path, name, sojourn):
        from repro.obs.analytics import build_analytics, dump_analytics
        events = [
            {"kind": "flow.start", "t": 0.0, "name": "client",
             "span_id": 1},
            {"kind": "flow.finish", "t": sojourn, "name": "client",
             "span_id": 1, "nbytes": 100.0},
        ]
        path = tmp_path / name
        dump_analytics(build_analytics(events, source="t"), str(path))
        return path

    def test_identical_analytics_is_ok(self, tmp_path):
        a = self.analytics(tmp_path, "a.json", 3.0)
        b = self.analytics(tmp_path, "b.json", 3.0)
        r = compare_runs(str(a), str(b))
        assert r.ok
        assert "analytics" in r.sections

    def test_run_dir_autodetects_analytics(self, tmp_path):
        da, db = tmp_path / "a", tmp_path / "b"
        da.mkdir(); db.mkdir()           # noqa: E702
        self.analytics(da, "analytics.json", 3.0)
        self.analytics(db, "analytics.json", 5.0)
        arts = _run_artifacts(str(da))
        assert arts.get("analytics", "").endswith("analytics.json")
        r = compare_runs(str(da), str(db))
        # sim-derived differences classify as drift: ok by default...
        assert r.ok
        assert any(d.kind == "drift" for d in r.deltas)

    def test_strict_gates_analytics_drift(self, tmp_path):
        a = self.analytics(tmp_path, "a.json", 3.0)
        b = self.analytics(tmp_path, "b.json", 5.0)
        r = compare_runs(str(a), str(b), strict=True)
        assert not r.ok and r.exit_code == 1
        text = render_compare(r)
        assert "Analytics" in text

    def test_rollup_detected_in_run_dir(self, tmp_path):
        from repro.obs.analytics import (dump_analytics, load_analytics,
                                         merge_analytics)
        da, db = tmp_path / "a", tmp_path / "b"
        da.mkdir(); db.mkdir()           # noqa: E702
        doc = load_analytics(str(self.analytics(tmp_path, "t.json", 3.0)))
        for d in (da, db):
            dump_analytics(merge_analytics({"t0": doc}),
                           str(d / "analytics_rollup.json"))
        r = compare_runs(str(da), str(db))
        assert r.ok and "analytics" in r.sections

    def test_corrupt_analytics_raises_compare_error(self, tmp_path):
        a = self.analytics(tmp_path, "a.json", 3.0)
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "analytics.json").write_text('{"kind": "repro.analytics"}')
        with pytest.raises(CompareError):
            compare_runs(str(a), str(bad / "analytics.json"))
