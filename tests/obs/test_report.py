"""The run-analysis layer: span reconstruction, `repro report`
rendering, and `repro check`'s text/exit-code contract."""

import json

import pytest

from repro.cli import main
from repro.obs.report import (
    EmptyTraceError,
    check_trace,
    collect_spans,
    render_check,
    render_run_report,
)
from repro.obs.trace import TraceParseError


def write_jsonl(path, events):
    path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
    return str(path)


class TestCollectSpans:
    def test_pairs_by_id(self):
        spans = collect_spans([
            {"kind": "span.begin", "t": 1.0, "name": "flow", "span_id": 1},
            {"kind": "span.begin", "t": 2.0, "name": "flow", "span_id": 2},
            {"kind": "span.end", "t": 9.0, "name": "flow", "span_id": 1,
             "duration": 8.0},
        ])
        assert [s.span_id for s in spans] == [1, 2]
        assert spans[0].duration == 8.0 and not spans[0].open
        assert spans[1].open

    def test_end_without_begin_ignored(self):
        assert collect_spans([{"kind": "span.end", "span_id": 7,
                               "t": 1.0, "duration": 1.0}]) == []

    def test_parent_id_preserved(self):
        spans = collect_spans([
            {"kind": "span.begin", "t": 0.0, "name": "resize.cycle",
             "span_id": 1},
            {"kind": "span.begin", "t": 0.0, "name": "flow",
             "span_id": 2, "parent_id": 1},
        ])
        assert spans[1].parent_id == 1


class TestRenderCheck:
    def test_clean_trace_exit_zero(self, tmp_path):
        path = write_jsonl(tmp_path / "ok.jsonl",
                           [{"kind": "version.advance", "t": 0.0,
                             "version": 1}])
        text, code = render_check(path)
        assert code == 0 and "all invariants hold" in text

    def test_violation_exit_one_names_line(self, tmp_path):
        path = write_jsonl(tmp_path / "bad.jsonl", [
            {"kind": "version.advance", "t": 0.0, "version": 2},
            {"kind": "version.advance", "t": 1.0, "version": 1},
        ])
        text, code = render_check(path)
        assert code == 1
        assert "line 2" in text
        assert "version-monotonic" in text
        assert "FAIL" in text

    def test_corrupt_line_raises_parse_error(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"kind":"a","t":0}\n{oops\n')
        with pytest.raises(TraceParseError) as exc:
            check_trace(str(path))
        assert exc.value.line_no == 2


class TestRunReport:
    @pytest.fixture(scope="class")
    def report_text(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("rep") / "run.jsonl"
        assert main(["three-phase", "--mode", "selective",
                     "--scale", "0.05", "--trace-out", str(path)]) == 0
        return render_run_report(str(path))

    def test_has_all_sections(self, report_text):
        for heading in ("# Run report", "## Lifecycle timeline",
                        "## Span durations",
                        "## Migration & recovery bytes per server",
                        "## Invariants"):
            assert heading in report_text

    def test_timeline_shows_resize_milestones(self, report_text):
        assert "power.resize" in report_text
        assert "version.advance" in report_text

    def test_span_stats_cover_lifecycles(self, report_text):
        assert "| flow |" in report_text
        assert "resize.cycle" in report_text
        assert "reintegration.pass" in report_text

    def test_byte_breakdown_totals(self, report_text):
        assert "**total**" in report_text

    def test_invariant_table_all_pass(self, report_text):
        assert "PASS" in report_text
        assert "**FAIL**" not in report_text

    def test_empty_trace_refused(self, tmp_path):
        # A zero-event trace is a broken run, not an all-pass one: both
        # analyses raise EmptyTraceError (the CLI maps it to exit 2).
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(EmptyTraceError, match="empty trace"):
            render_run_report(str(path))
        with pytest.raises(EmptyTraceError, match="empty trace"):
            check_trace(str(path))
