"""Trace-stats guards: window validation and numeric-field hygiene."""

import json

import pytest

from repro.obs.stats import check_window, is_number, render_trace_stats


def write_trace(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return path


class TestCheckWindow:
    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError, match="empty time window"):
            check_window(5.0, 2.0)

    @pytest.mark.parametrize("since,until",
                             [(None, None), (1.0, None), (None, 1.0),
                              (1.0, 1.0), (1.0, 2.0)])
    def test_valid_windows_pass(self, since, until):
        check_window(since, until)

    def test_render_raises_before_reading_the_file(self, tmp_path):
        # The guard fires even for a missing file: bad arguments are
        # the user's bug, reported first.
        with pytest.raises(ValueError, match="empty time window"):
            render_trace_stats(str(tmp_path / "absent.jsonl"),
                               since=9.0, until=1.0)


class TestIsNumber:
    @pytest.mark.parametrize("value", [0, 1, -3, 0.0, 2.5])
    def test_numbers_accepted(self, value):
        assert is_number(value)

    @pytest.mark.parametrize("value", [True, False, None, "1", [1], {}])
    def test_non_numbers_rejected(self, value):
        assert not is_number(value)


class TestBoolTimestampRegression:
    """A corrupt event with ``"t": true`` must not slip through the
    window filter as ``t == 1`` (bool is an int in Python)."""

    def test_bool_t_excluded_from_window(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl", [
            {"kind": "tick", "t": 1.0},
            {"kind": "tick", "t": True},       # corrupt
            {"kind": "tick", "t": 2.0},
        ])
        out = render_trace_stats(str(trace), since=0.0, until=10.0)
        assert "2 events" in out

    def test_bool_bytes_not_summed(self, tmp_path):
        trace = write_trace(tmp_path / "run.jsonl", [
            {"kind": "flow", "t": 1.0, "nbytes": True},  # corrupt
            {"kind": "flow", "t": 2.0, "nbytes": 5e9},
        ])
        out = render_trace_stats(str(trace))
        assert "5.000" in out      # 5 GB from the real event only
