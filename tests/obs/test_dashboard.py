"""repro.obs.dashboard — byte-determinism and structural sanity of the
self-contained HTML dashboard."""

import hashlib
import json
import re

import pytest

from repro.faults import run_chaos
from repro.obs import OBS, JSONLSink
from repro.obs.analytics import (
    AnalyticsError,
    analytics_from_trace,
    build_analytics,
    merge_analytics,
)
from repro.obs.dashboard import render_dashboard, write_dashboard


def small_doc():
    events = [
        {"kind": "flow.start", "t": 0.0, "name": "client", "span_id": 1},
        {"kind": "flow.finish", "t": 4.0, "name": "client", "span_id": 1,
         "nbytes": 1e9},
        {"kind": "bandwidth.solve", "t": 2.0, "max_util": 0.8},
        {"kind": "span.begin", "t": 0.0, "span_id": 2, "parent_id": None,
         "name": "resize.cycle"},
        {"kind": "span.end", "t": 6.0, "span_id": 2, "duration": 6.0},
    ]
    return build_analytics(events, source="t.jsonl")


@pytest.fixture(scope="module")
def chaos_trace(tmp_path_factory):
    """One small fixed-seed chaos run traced to disk."""
    path = tmp_path_factory.mktemp("dash") / "trace.jsonl"
    OBS.reset()
    sink = JSONLSink(str(path))
    OBS.bus.attach(sink)
    try:
        run_chaos(seed=7, scale=0.05, check=False)
    finally:
        OBS.bus.detach(sink)
        sink.close()
    return str(path)


class TestStructure:
    def test_is_a_complete_standalone_page(self):
        html = render_dashboard(small_doc())
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html
        # self-contained: no scripts, no external fetches of any kind
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html

    def test_every_chart_has_a_table_twin(self):
        html = render_dashboard(small_doc())
        # each SVG chart ships a <details> table view for accessibility
        assert html.count("<svg") <= html.count("<details")
        assert "<table" in html

    def test_latency_and_critical_path_sections(self):
        html = render_dashboard(small_doc())
        assert "client" in html
        assert "resize.cycle" in html

    def test_rollup_documents_are_rejected(self):
        rollup = merge_analytics({"t0": small_doc(), "t1": small_doc()})
        with pytest.raises(AnalyticsError):
            render_dashboard(rollup)

    def test_svg_coordinates_stay_inside_the_viewbox(self):
        html = render_dashboard(small_doc())
        for m in re.finditer(r'viewBox="0 0 (\d+) (\d+)"', html):
            assert int(m.group(1)) > 0 and int(m.group(2)) > 0
        for m in re.finditer(r'c?x1?="(-?[\d.]+)"', html):
            assert float(m.group(1)) >= 0.0


class TestDeterminism:
    def test_same_document_renders_identically(self):
        assert render_dashboard(small_doc()) == render_dashboard(
            small_doc())

    def test_same_seed_runs_render_sha256_identical_html(
            self, chaos_trace, tmp_path):
        """The golden test: trace -> analytics -> dashboard twice,
        compare digests end to end."""
        digests = []
        for name in ("a", "b"):
            doc = analytics_from_trace(chaos_trace, bin_seconds=10.0)
            out = tmp_path / f"{name}.html"
            write_dashboard(doc, str(out))
            digests.append(hashlib.sha256(out.read_bytes()).hexdigest())
        assert digests[0] == digests[1]

    def test_two_fresh_chaos_runs_agree(self, chaos_trace, tmp_path):
        """Re-running the simulation itself (same seed) must reproduce
        the same analytics document, hence the same page."""
        rerun = tmp_path / "rerun.jsonl"
        OBS.reset()
        sink = JSONLSink(str(rerun))
        OBS.bus.attach(sink)
        try:
            run_chaos(seed=7, scale=0.05, check=False)
        finally:
            OBS.bus.detach(sink)
            sink.close()
        doc_a = analytics_from_trace(chaos_trace)
        doc_b = analytics_from_trace(str(rerun))
        doc_a["source"] = doc_b["source"] = "trace.jsonl"
        assert (json.dumps(doc_a, sort_keys=True)
                == json.dumps(doc_b, sort_keys=True))
        assert render_dashboard(doc_a) == render_dashboard(doc_b)

    def test_chaos_dashboard_has_every_series_chart(self, chaos_trace):
        doc = analytics_from_trace(chaos_trace)
        html = render_dashboard(doc)
        for title in ("Client throughput", "Selective migration",
                      "Reintegration", "Live flows"):
            assert title in html


class TestWrite:
    def test_write_uses_unix_newlines(self, tmp_path):
        out = tmp_path / "d.html"
        write_dashboard(small_doc(), str(out))
        raw = out.read_bytes()
        assert b"\r\n" not in raw
        assert raw.endswith(b"\n")
