"""Trace bus: sinks, capture scoping, and the JSONL round trip."""

import io

import pytest

from repro.obs import OBS
from repro.obs.trace import (
    JSONLSink,
    NullSink,
    RingBufferSink,
    TraceBus,
    read_jsonl,
)


class TestBus:
    def test_inactive_without_sinks(self):
        bus = TraceBus()
        assert not bus.active
        bus.emit("x", t=0.0)  # no-op, must not raise

    def test_fan_out_to_all_sinks(self):
        bus = TraceBus()
        a, b = RingBufferSink(), RingBufferSink()
        bus.attach(a)
        bus.attach(b)
        bus.emit("k", t=1.0)
        assert len(a) == len(b) == 1

    def test_default_timestamp_is_bus_clock(self):
        bus = TraceBus()
        sink = bus.attach(RingBufferSink())
        bus.clock = 42.5
        bus.emit("tick")
        assert sink.events()[0]["t"] == 42.5

    def test_explicit_timestamp_wins(self):
        bus = TraceBus()
        sink = bus.attach(RingBufferSink())
        bus.clock = 42.5
        bus.emit("tick", t=7.0)
        assert sink.events()[0]["t"] == 7.0

    def test_capture_is_scoped(self):
        bus = TraceBus()
        with bus.capture() as sink:
            bus.emit("inside", t=0.0)
        bus.emit("outside", t=1.0)
        assert [e["kind"] for e in sink.events()] == ["inside"]
        assert not bus.active

    def test_global_bus_capture(self):
        with OBS.bus.capture() as sink:
            OBS.bus.emit("demo", t=0.5, x=1)
        assert sink.events("demo")[0]["x"] == 1
        assert not OBS.bus.active


class TestRingBufferSink:
    def test_bounded(self):
        sink = RingBufferSink(capacity=3)
        for i in range(10):
            sink.write({"kind": "k", "t": float(i)})
        assert [e["t"] for e in sink.events()] == [7.0, 8.0, 9.0]

    def test_kind_filters(self):
        sink = RingBufferSink()
        for kind in ("flow.start", "flow.finish", "engine.tick"):
            sink.write({"kind": kind, "t": 0.0})
        assert len(sink.events("flow.start")) == 1
        assert len(sink.events("flow.")) == 2    # prefix match
        assert len(sink.events()) == 3

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)


class TestJSONLRoundTrip:
    EVENTS = [
        {"kind": "engine.tick", "t": 1.0, "dt": 1.0, "flows": 3},
        {"kind": "flow.start", "t": 1.5, "name": "client-0",
         "total_bytes": 4194304, "rate_cap": None},
        {"kind": "migration.move", "t": 2.0, "oid": 17,
         "nbytes": 4194304, "to": [1, 2], "dropped": [9]},
    ]

    def test_round_trip_field_for_field(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JSONLSink(str(path)) as sink:
            for ev in self.EVENTS:
                sink.write(ev)
        assert sink.events_written == len(self.EVENTS)
        assert read_jsonl(str(path)) == self.EVENTS

    def test_round_trip_through_file_object(self):
        buf = io.StringIO()
        sink = JSONLSink(buf)
        for ev in self.EVENTS:
            sink.write(ev)
        sink.close()   # flushes, does not close a borrowed handle
        buf.seek(0)
        assert read_jsonl(buf) == self.EVENTS

    def test_lines_are_key_sorted_and_compact(self):
        buf = io.StringIO()
        JSONLSink(buf).write({"kind": "z", "t": 0.0, "b": 1, "a": 2})
        assert buf.getvalue() == '{"a":2,"b":1,"kind":"z","t":0.0}\n'

    def test_bus_to_jsonl_end_to_end(self, tmp_path):
        path = tmp_path / "bus.jsonl"
        bus = TraceBus()
        sink = bus.attach(JSONLSink(str(path)))
        bus.clock = 3.0
        bus.emit("server.state", rank=7, state="off")
        bus.detach(sink)
        sink.close()
        (event,) = read_jsonl(str(path))
        assert event == {"kind": "server.state", "t": 3.0,
                         "rank": 7, "state": "off"}


class TestNullSink:
    def test_keeps_bus_active_but_retains_nothing(self):
        bus = TraceBus()
        bus.attach(NullSink())
        assert bus.active
        bus.emit("k", t=0.0)   # swallowed
