"""Metrics registry: instruments, labels, snapshot determinism."""

import pytest

from repro.obs import OBS
from repro.obs.metrics import Histogram, MetricsRegistry


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestInstruments:
    def test_counter(self, reg):
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert reg.snapshot()["x"] == 5

    def test_gauge(self, reg):
        g = reg.gauge("g")
        g.set(7)
        g.inc(2)
        g.dec()
        assert reg.snapshot()["g"] == 8

    def test_histogram_buckets_and_overflow(self, reg):
        h = reg.histogram("h", buckets=[1.0, 10.0])
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        d = reg.snapshot()["h"]
        assert d["count"] == 3
        assert d["sum"] == pytest.approx(105.5)
        assert d["buckets"] == {"le_1": 1, "le_10": 1}
        assert d["overflow"] == 1
        assert h.mean == pytest.approx(105.5 / 3)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=[2.0, 1.0])

    def test_get_or_create_returns_same_instrument(self, reg):
        assert reg.counter("x") is reg.counter("x")

    def test_type_clash_rejected(self, reg):
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_timer_observes_elapsed(self, reg):
        with reg.timer("perf.op"):
            pass
        d = reg.snapshot()["perf.op"]
        assert d["count"] == 1
        assert d["sum"] >= 0.0


class TestHistogramQuantiles:
    def test_interpolates_within_bucket(self):
        h = Histogram("h", buckets=[10.0, 20.0])
        for _ in range(10):
            h.observe(15.0)       # all in the (10, 20] bucket
        # target rank = 0.5 * 10 = 5 of 10 in the bucket -> halfway.
        assert h.quantile(0.5) == pytest.approx(15.0)

    def test_first_bucket_interpolates_from_zero(self):
        h = Histogram("h", buckets=[8.0, 16.0])
        for _ in range(4):
            h.observe(1.0)
        assert h.quantile(0.5) == pytest.approx(4.0)   # 0 + 0.5 * 8

    def test_spread_across_buckets(self):
        h = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        # p25 -> end of the first bucket's single sample.
        assert h.quantile(0.25) == pytest.approx(1.0)
        # p100 -> top bound.
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_overflow_clamps_to_top_bound(self):
        h = Histogram("h", buckets=[1.0])
        h.observe(1000.0)
        assert h.quantile(0.99) == 1.0

    def test_empty_histogram_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_render_includes_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=[1.0, 2.0])
        h.observe(0.5)
        out = reg.render()
        assert "p50=" in out and "p95=" in out and "p99=" in out


class TestLabels:
    def test_labelled_instruments_are_distinct(self, reg):
        reg.counter("moves", rank=1).inc()
        reg.counter("moves", rank=2).inc(3)
        snap = reg.snapshot()
        assert snap["moves{rank=1}"] == 1
        assert snap["moves{rank=2}"] == 3

    def test_label_order_is_canonical(self, reg):
        a = reg.counter("m", b=2, a=1)
        b = reg.counter("m", a=1, b=2)
        assert a is b
        assert a.name == "m{a=1,b=2}"


class TestSnapshot:
    def test_sorted_key_order(self, reg):
        reg.counter("z.last").inc()
        reg.counter("a.first").inc()
        reg.gauge("m.middle").set(1)
        assert list(reg.snapshot()) == ["a.first", "m.middle", "z.last"]

    def test_include_perf_false_hides_wall_clock(self, reg):
        reg.counter("sim.state").inc()
        reg.observe("perf.ring.successor", 1e-6)
        assert "perf.ring.successor" in reg.snapshot()
        assert list(reg.snapshot(include_perf=False)) == ["sim.state"]

    def test_render_lists_every_instrument(self, reg):
        reg.counter("c").inc()
        reg.gauge("g").set(2)
        reg.histogram("h").observe(0.5)
        text = reg.render(title="t")
        for fragment in ("c", "counter", "g", "gauge", "h", "histogram"):
            assert fragment in text

    def test_render_empty(self, reg):
        assert "no metrics" in reg.render()

    def test_reset(self, reg):
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0


class TestRunDeterminism:
    """Two identically-seeded experiment runs must leave identical
    simulation-state metrics and identical traces."""

    @staticmethod
    def _run():
        from repro.experiments import run_three_phase
        OBS.reset()
        with OBS.bus.capture(capacity=200_000) as sink:
            run_three_phase("selective", scale=0.02)
            events = sink.events()
        snap = OBS.metrics.snapshot(include_perf=False)
        OBS.reset()
        return snap, events

    def test_same_seed_same_metrics_and_trace(self):
        snap1, events1 = self._run()
        snap2, events2 = self._run()
        assert snap1 == snap2
        assert events1 == events2
        # The trace actually covers the instrumented subsystems.
        kinds = {str(e["kind"]) for e in events1}
        assert "engine.tick" in kinds
        assert "flow.start" in kinds
        assert "migration.move" in kinds
