"""Bench-history store: the same-sha replacement guard.

Re-running a bench at the same git sha must update that commit's line
in ``history/<name>.jsonl`` in place — never append a duplicate — while
lines from other commits (or with no sha) are left untouched.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_UTILS = (Path(__file__).resolve().parent.parent
          / "benchmarks" / "_bench_utils.py")


@pytest.fixture()
def bench_utils(tmp_path):
    """A private import of benchmarks/_bench_utils.py with its history
    store pointed into tmp_path (the module-level JSON_DIR knob)."""
    spec = importlib.util.spec_from_file_location("_bench_utils_under_test",
                                                  _UTILS)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    mod.JSON_DIR = tmp_path
    return mod


def read_history(mod, name):
    path = mod.history_dir() / f"{name}.jsonl"
    return [json.loads(line) for line in path.read_text().splitlines()]


def meta(sha):
    return {"git_sha": sha, "python": "3.11.0", "platform": "linux-x86"}


class TestSameShaReplacement:
    def test_rerun_at_same_sha_does_not_duplicate(self, bench_utils):
        bench_utils.append_history("b", {"v": 1}, meta("abc"))
        bench_utils.append_history("b", {"v": 2}, meta("abc"))
        lines = read_history(bench_utils, "b")
        assert len(lines) == 1
        assert lines[0]["data"] == {"v": 2}     # freshest wins

    def test_new_sha_appends(self, bench_utils):
        bench_utils.append_history("b", {"v": 1}, meta("abc"))
        bench_utils.append_history("b", {"v": 2}, meta("def"))
        lines = read_history(bench_utils, "b")
        assert [ln["meta"]["git_sha"] for ln in lines] == ["abc", "def"]

    def test_one_line_per_sha_even_after_checkout_roundtrip(
            self, bench_utils):
        # abc ... def ... back to abc: the abc line updates in place,
        # so the store holds exactly one measurement per {bench, sha}.
        bench_utils.append_history("b", {"v": 1}, meta("abc"))
        bench_utils.append_history("b", {"v": 2}, meta("def"))
        bench_utils.append_history("b", {"v": 3}, meta("abc"))
        bench_utils.append_history("b", {"v": 4}, meta("abc"))
        lines = read_history(bench_utils, "b")
        assert [(ln["meta"]["git_sha"], ln["data"]["v"])
                for ln in lines] == [("abc", 4), ("def", 2)]

    def test_missing_sha_always_appends(self, bench_utils):
        # No attribution (e.g. a source tarball, no git): we cannot
        # know it is the same commit, so never overwrite.
        bench_utils.append_history("b", {"v": 1}, meta(None))
        bench_utils.append_history("b", {"v": 2}, meta(None))
        assert len(read_history(bench_utils, "b")) == 2

    def test_other_benches_unaffected(self, bench_utils):
        bench_utils.append_history("x", {"v": 1}, meta("abc"))
        bench_utils.append_history("y", {"v": 2}, meta("abc"))
        assert read_history(bench_utils, "x")[0]["data"] == {"v": 1}
        assert read_history(bench_utils, "y")[0]["data"] == {"v": 2}

    def test_unparsable_lines_are_preserved_verbatim(self, bench_utils):
        bench_utils.append_history("b", {"v": 1}, meta("abc"))
        path = bench_utils.history_dir() / "b.jsonl"
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
        bench_utils.append_history("b", {"v": 2}, meta("abc"))
        raw = path.read_text().splitlines()
        assert raw[1] == "not json"
        assert json.loads(raw[0])["data"] == {"v": 2}
        assert len(raw) == 2

    def test_lines_stay_compact_single_line_json(self, bench_utils):
        bench_utils.append_history("b", {"v": [1, 2]}, meta("abc"))
        raw = (bench_utils.history_dir() / "b.jsonl").read_text()
        assert raw.count("\n") == 1
        assert ": " not in raw      # compact separators
