"""SweepRunner: deterministic aggregation across worker counts, retry
and worker-death accounting, timeouts, and input validation.

The determinism tests are the tentpole's acceptance criterion: the
aggregate ``sweep.json`` and the merged trace must be **byte-identical**
for ``workers=1`` and ``workers=N`` — merge order is the task id, never
completion order.
"""

import hashlib
import json

import pytest

from repro.faults import RetryPolicy
from repro.obs.report import render_check
from repro.runner import SweepRunner, TaskSpec
from repro.runner.worker import OUTCOME_FILENAME, TRACE_FILENAME

CHAOS_CONFIG = {"n": 4, "off_count": 1, "scale": 0.02}


def chaos_specs(count=4):
    return [TaskSpec(task_id=f"chaos-s{seed:03d}", kind="chaos",
                     seed=seed, config=CHAOS_CONFIG)
            for seed in range(count)]


def sha256(path):
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.fixture(scope="module")
def two_sweeps(tmp_path_factory):
    """The same 4-task chaos sweep at workers=1 and workers=4."""
    specs = chaos_specs()
    d1 = tmp_path_factory.mktemp("sweep-w1")
    d4 = tmp_path_factory.mktemp("sweep-w4")
    r1 = SweepRunner(workers=1).run(specs, d1)
    r4 = SweepRunner(workers=4).run(specs, d4)
    return r1, r4


class TestDeterminism:
    def test_aggregate_byte_identical_across_worker_counts(self,
                                                           two_sweeps):
        r1, r4 = two_sweeps
        assert sha256(r1.aggregate_path) == sha256(r4.aggregate_path)

    def test_merged_trace_byte_identical_across_worker_counts(
            self, two_sweeps):
        r1, r4 = two_sweeps
        assert sha256(r1.merged_trace_path) == sha256(r4.merged_trace_path)

    def test_per_task_traces_byte_identical(self, two_sweeps):
        r1, r4 = two_sweeps
        for task in r1.tasks:
            t1 = r1.out_dir / task.spec.task_id / TRACE_FILENAME
            t4 = r4.out_dir / task.spec.task_id / TRACE_FILENAME
            assert sha256(t1) == sha256(t4), task.spec.task_id

    def test_all_tasks_healthy(self, two_sweeps):
        r1, _ = two_sweeps
        assert r1.ok
        assert r1.counts == {"tasks": 4, "ok": 4, "unhealthy": 0,
                             "failed": 0}

    def test_merged_trace_passes_repro_check(self, two_sweeps):
        r1, _ = two_sweeps
        _text, code = render_check(str(r1.merged_trace_path))
        assert code == 0

    def test_aggregate_lists_tasks_in_id_order(self, two_sweeps):
        r1, _ = two_sweeps
        agg = json.loads(r1.aggregate_path.read_text())
        ids = [t["task"] for t in agg["tasks"]]
        assert ids == sorted(ids) and len(ids) == 4

    def test_outcome_json_matches_returned_outcome(self, two_sweeps):
        r1, _ = two_sweeps
        task = r1.tasks[0]
        on_disk = json.loads(
            (r1.out_dir / task.spec.task_id / OUTCOME_FILENAME)
            .read_text())
        assert on_disk == task.outcome

    def test_analytics_rollup_byte_identical_across_worker_counts(
            self, two_sweeps):
        r1, r4 = two_sweeps
        assert r1.analytics_rollup_path is not None
        assert r4.analytics_rollup_path is not None
        assert sha256(r1.analytics_rollup_path) \
            == sha256(r4.analytics_rollup_path)

    def test_per_task_analytics_byte_identical(self, two_sweeps):
        from repro.runner.worker import ANALYTICS_FILENAME
        r1, r4 = two_sweeps
        for task in r1.tasks:
            a1 = r1.out_dir / task.spec.task_id / ANALYTICS_FILENAME
            a4 = r4.out_dir / task.spec.task_id / ANALYTICS_FILENAME
            assert sha256(a1) == sha256(a4), task.spec.task_id

    def test_analytics_rollup_merges_every_task(self, two_sweeps):
        from repro.obs.analytics import ROLLUP_KIND, load_analytics
        r1, _ = two_sweeps
        doc = load_analytics(str(r1.analytics_rollup_path))
        assert doc["kind"] == ROLLUP_KIND
        assert doc["tasks"] == sorted(t.spec.task_id for t in r1.tasks)
        assert doc["latency_bands"]          # at least one flow class

    def test_per_task_analytics_source_is_relative(self, two_sweeps):
        """The document must not bake in the absolute out dir — task
        directories are movable artifacts."""
        from repro.runner.worker import ANALYTICS_FILENAME
        r1, _ = two_sweeps
        task_dir = r1.out_dir / r1.tasks[0].spec.task_id
        doc = json.loads((task_dir / ANALYTICS_FILENAME).read_text())
        assert doc["source"] == TRACE_FILENAME

    def test_wall_clock_stays_out_of_the_aggregate(self, two_sweeps):
        r1, _ = two_sweeps
        text = r1.aggregate_path.read_text()
        assert "wall" not in text and "workers" not in text
        info = json.loads((r1.out_dir / "run_info.json").read_text())
        assert info["workers"] == 1 and info["wall_seconds"] >= 0


class TestRetries:
    def test_flaky_task_retried_to_success(self, tmp_path):
        specs = [TaskSpec(task_id="flaky", kind="selftest", seed=1,
                          config={"fail_attempts": 1, "mode": "raise"}),
                 TaskSpec(task_id="steady", kind="selftest", seed=2)]
        result = SweepRunner(
            workers=2,
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05,
                              max_attempts=3)).run(specs, tmp_path)
        assert result.ok and result.retries == 1
        assert result.task("flaky").attempts == 2
        assert result.task("steady").attempts == 1

    def test_exhausted_retries_surface_as_failed_task(self, tmp_path):
        specs = [TaskSpec(task_id="doomed", kind="selftest", seed=1,
                          config={"fail_attempts": 99, "mode": "raise"})]
        result = SweepRunner(
            workers=1,
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05,
                              max_attempts=2)).run(specs, tmp_path)
        doomed = result.task("doomed")
        assert not result.ok
        assert doomed.status == "failed" and doomed.attempts == 2
        assert "planned failure" in doomed.error
        # Never silently dropped: the aggregate lists the failure too.
        agg = json.loads(result.aggregate_path.read_text())
        assert agg["counts"]["failed"] == 1
        assert agg["tasks"][0]["status"] == "failed"

    def test_killed_worker_fails_task_and_spares_sibling(self, tmp_path):
        """A worker dying mid-task (os._exit) breaks the whole pool;
        the killer is charged attempts until the retry budget runs
        out, the sibling's finished work is recovered from its
        outcome.json, and both are accounted for.  The killer delays
        before dying so the sibling's function has completed by the
        time the pool collapses."""
        specs = [TaskSpec(task_id="killer", kind="selftest", seed=1,
                          config={"fail_attempts": 99, "mode": "exit",
                                  "delay": 0.5}),
                 TaskSpec(task_id="bystander", kind="selftest", seed=2)]
        result = SweepRunner(
            workers=2,
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05,
                              max_attempts=2)).run(specs, tmp_path)
        killer = result.task("killer")
        assert killer.status == "failed" and killer.attempts == 2
        assert "died" in killer.error
        assert result.task("bystander").status == "ok"
        assert result.counts["failed"] == 1 and result.counts["ok"] == 1

    def test_single_worker_kill_accounting_is_deterministic(self,
                                                            tmp_path):
        """With one worker there is no collateral: every pool break is
        the killer's own, so attempts and retries are exact."""
        specs = [TaskSpec(task_id="killer", kind="selftest", seed=1,
                          config={"fail_attempts": 99, "mode": "exit"}),
                 TaskSpec(task_id="after", kind="selftest", seed=2)]
        result = SweepRunner(
            workers=1,
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05,
                              max_attempts=2)).run(specs, tmp_path)
        killer = result.task("killer")
        assert killer.status == "failed" and killer.attempts == 2
        assert result.retries == 1
        assert result.task("after").status == "ok"
        assert result.task("after").attempts == 1

    def test_timeout_treated_like_a_crash(self, tmp_path):
        specs = [TaskSpec(task_id="slow", kind="selftest", seed=1,
                          config={"fail_attempts": 99, "mode": "hang"})]
        result = SweepRunner(
            workers=1, task_timeout=0.5,
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05,
                              max_attempts=2)).run(specs, tmp_path)
        slow = result.task("slow")
        assert slow.status == "failed" and slow.attempts == 2
        assert "timeout" in slow.error


class TestOutcomes:
    def test_unhealthy_run_flagged_not_failed(self, tmp_path):
        specs = [TaskSpec(task_id="sick", kind="selftest", seed=1,
                          config={"unhealthy": True})]
        result = SweepRunner(workers=1).run(specs, tmp_path)
        assert not result.ok
        assert result.task("sick").status == "unhealthy"
        assert result.task("sick").outcome is not None

    def test_failed_task_excluded_from_merged_trace(self, tmp_path):
        specs = [TaskSpec(task_id="doomed", kind="selftest", seed=1,
                          config={"fail_attempts": 99, "mode": "raise"}),
                 TaskSpec(task_id="fine", kind="selftest", seed=2)]
        result = SweepRunner(
            workers=1,
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05,
                              max_attempts=2)).run(specs, tmp_path)
        boundaries = [json.loads(line)
                      for line in result.merged_trace_path.read_text()
                      .splitlines() if '"sweep.task"' in line]
        assert [b["task"] for b in boundaries] == ["fine"]

    def test_events_in_window_counted_when_window_set(self, tmp_path):
        result = SweepRunner(workers=1, since=0.0, until=1e9).run(
            chaos_specs(1), tmp_path)
        agg = json.loads(result.aggregate_path.read_text())
        entry = agg["tasks"][0]
        assert entry["events_in_window"] > 0
        assert entry["events_in_window"] <= entry["events"]


class TestValidation:
    def test_empty_specs_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            SweepRunner().run([], tmp_path)

    def test_duplicate_task_ids_rejected(self, tmp_path):
        specs = [TaskSpec(task_id="dup", kind="selftest"),
                 TaskSpec(task_id="dup", kind="selftest", seed=2)]
        with pytest.raises(ValueError, match="duplicate"):
            SweepRunner().run(specs, tmp_path)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(task_timeout=0.0)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError, match="empty time window"):
            SweepRunner(since=5.0, until=2.0)

    def test_unknown_kind_is_failed_task_not_crash(self, tmp_path):
        specs = [TaskSpec(task_id="mystery", kind="nope")]
        result = SweepRunner(
            workers=1,
            retry=RetryPolicy(base_delay=0.01, max_delay=0.05,
                              max_attempts=1)).run(specs, tmp_path)
        task = result.task("mystery")
        assert task.status == "failed"
        assert "unknown experiment kind" in task.error


class TestProfiledSweep:
    """``profile=True``: per-task wall-clock profiles plus a rollup,
    with zero effect on the deterministic surface."""

    @pytest.fixture(scope="class")
    def profiled(self, tmp_path_factory):
        specs = chaos_specs(2)
        plain_dir = tmp_path_factory.mktemp("sweep-plain")
        prof_dir = tmp_path_factory.mktemp("sweep-prof")
        plain = SweepRunner(workers=1).run(specs, plain_dir)
        prof = SweepRunner(workers=2, profile=True).run(specs, prof_dir)
        return plain, prof

    def test_per_task_profiles_written(self, profiled):
        from repro.runner.worker import PROFILE_FILENAME
        _, prof = profiled
        for task in prof.tasks:
            doc = json.loads(
                (prof.out_dir / task.spec.task_id / PROFILE_FILENAME)
                .read_text())
            assert doc["kind"] == "repro.profile"
            assert doc["meta"]["task"] == task.spec.task_id

    def test_rollup_written_and_keyed_by_task_id(self, profiled):
        _, prof = profiled
        assert prof.profile_rollup_path is not None
        doc = json.loads(prof.profile_rollup_path.read_text())
        assert doc["kind"] == "repro.profile"
        assert sorted(doc["per_task"]) == ["chaos-s000", "chaos-s001"]
        assert [c["name"] for c in doc["root"]["children"]] \
            == ["chaos-s000", "chaos-s001"]
        assert doc["flat"]            # summed component table

    def test_deterministic_surface_unchanged_by_profiling(self, profiled):
        plain, prof = profiled
        assert sha256(plain.aggregate_path) == sha256(prof.aggregate_path)
        assert sha256(plain.merged_trace_path) \
            == sha256(prof.merged_trace_path)

    def test_unprofiled_sweep_has_no_rollup(self, two_sweeps):
        r1, _ = two_sweeps
        assert r1.profile_rollup_path is None


class TestCompletionWaitTimeout:
    """The launch loop's wait bound: block indefinitely when only a
    completion can change the world, wake exactly for future retry
    backoffs and per-launch deadlines, and never busy-spin on retries
    that are already due (they need a completion to free a slot
    anyway)."""

    wait = staticmethod(SweepRunner._completion_wait_timeout)

    def test_unbounded_when_nothing_is_scheduled(self):
        running = {object(): ("spec", 1, float("inf"))}
        assert self.wait([], running, now=100.0) is None

    def test_due_pending_does_not_bound_the_wait(self):
        # A retry whose wake time already passed cannot launch until a
        # slot frees; bounding the wait on it would be a busy-spin.
        pending = [("spec", 2, 99.0)]
        running = {object(): ("spec", 1, float("inf"))}
        assert self.wait(pending, running, now=100.0) is None

    def test_future_wake_bounds_the_wait(self):
        pending = [("a", 2, 103.5), ("b", 2, 101.25)]
        running = {object(): ("spec", 1, float("inf"))}
        assert self.wait(pending, running, now=100.0) == 1.25

    def test_finite_deadline_bounds_the_wait(self):
        running = {object(): ("spec", 1, 102.0),
                   object(): ("spec", 1, float("inf"))}
        assert self.wait([], running, now=100.0) == 2.0

    def test_earliest_of_wakes_and_deadlines_wins(self):
        pending = [("a", 2, 105.0)]
        running = {object(): ("spec", 1, 101.5)}
        assert self.wait(pending, running, now=100.0) == 1.5

    def test_elapsed_deadline_clamps_to_zero(self):
        running = {object(): ("spec", 1, 99.0)}
        assert self.wait([], running, now=100.0) == 0.0


class TestSaturatedPoolBackoff:
    def test_backoff_retry_interleaves_with_saturated_pool(self, tmp_path):
        """workers=1: while the slow sibling owns the only slot, the
        flaky task's backed-off retry must still launch and succeed
        once the slot frees — the bounded wait may not stall it."""
        specs = [
            TaskSpec(task_id="slow", kind="selftest", seed=1,
                     config={"delay": 0.3}),
            TaskSpec(task_id="flaky", kind="selftest", seed=2,
                     config={"fail_attempts": 2, "mode": "raise"}),
        ]
        result = SweepRunner(
            workers=1,
            retry=RetryPolicy(base_delay=0.02, max_delay=0.05,
                              max_attempts=4)).run(specs, tmp_path)
        assert result.ok
        assert result.task("flaky").attempts == 3
        assert result.task("slow").attempts == 1
