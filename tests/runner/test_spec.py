"""TaskSpec: id validation, immutability, dict round-trip."""

import pickle

import pytest

from repro.runner import TaskSpec


class TestValidation:
    def test_minimal_spec(self):
        spec = TaskSpec(task_id="t1", kind="chaos")
        assert spec.seed is None and spec.config == {} and spec.plan is None

    @pytest.mark.parametrize("bad", ["", " ", "a b", "../escape",
                                     "-leading-dash", "tab\tid", "a/b"])
    def test_bad_ids_rejected(self, bad):
        with pytest.raises(ValueError):
            TaskSpec(task_id=bad, kind="chaos")

    @pytest.mark.parametrize("good", ["t1", "chaos-s007", "CC-a.seed_3",
                                      "3phase"])
    def test_good_ids_accepted(self, good):
        assert TaskSpec(task_id=good, kind="chaos").task_id == good

    def test_overlong_id_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(task_id="x" * 129, kind="chaos")

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(task_id="t1", kind="")

    def test_non_int_seed_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec(task_id="t1", kind="chaos", seed="7")

    def test_frozen(self):
        spec = TaskSpec(task_id="t1", kind="chaos")
        with pytest.raises(AttributeError):
            spec.seed = 3


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = TaskSpec(task_id="t1", kind="chaos", seed=7,
                        config={"n": 4, "scale": 0.02}, plan='{"x":1}')
        assert TaskSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_copies_config(self):
        spec = TaskSpec(task_id="t1", kind="chaos", config={"n": 4})
        spec.to_dict()["config"]["n"] = 99
        assert spec.config["n"] == 4

    def test_picklable(self):
        spec = TaskSpec(task_id="t1", kind="trace", seed=11,
                        config={"which": "CC-a"})
        assert pickle.loads(pickle.dumps(spec)) == spec
