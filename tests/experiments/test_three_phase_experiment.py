"""Figures 3/7: the throughput-dip experiment (small scale)."""

import pytest

from repro.experiments import run_three_phase

SCALE = 0.15


@pytest.fixture(scope="module")
def results():
    return {mode: run_three_phase(mode, scale=SCALE)
            for mode in ("none", "original", "full", "selective")}


class TestPhases:
    def test_all_phases_complete(self, results):
        for mode, res in results.items():
            assert set(res.phase_ends) == {"phase1", "phase2", "phase3"}

    def test_phase2_is_rate_limited(self, results):
        res = results["none"]
        p1, p2 = res.phase_ends["phase1"], res.phase_ends["phase2"]
        mid = res.mean_throughput(p1 + 5, p2 - 5)
        assert mid == pytest.approx(20e6, rel=0.15)

    def test_peak_throughput_identical_across_modes(self, results):
        """§V-A: 'there is little difference in the peak IO throughput
        in the three cases'."""
        peaks = {m: max(r.throughput) for m, r in results.items()}
        base = peaks["none"]
        for mode, peak in peaks.items():
            # Modest slack: vnode sampling noise shifts the per-server
            # load fractions a few percent between cluster flavours.
            assert peak == pytest.approx(base, rel=0.10), mode


class TestFigure7Shape:
    def test_selective_recovers_faster_than_original(self, results):
        sel = results["selective"]
        orig = results["original"]
        t_sel = sel.recovery_time_after(sel.phase_ends["phase2"])
        t_orig = orig.recovery_time_after(orig.phase_ends["phase2"])
        assert t_sel < t_orig

    def test_selective_phase3_mean_beats_original(self, results):
        def phase3_mean(res):
            return res.mean_throughput(res.phase_ends["phase2"],
                                       res.phase_ends["phase3"])
        assert phase3_mean(results["selective"]) > \
            phase3_mean(results["original"])

    def test_full_between_selective_and_original(self, results):
        def phase3_mean(res):
            return res.mean_throughput(res.phase_ends["phase2"],
                                       res.phase_ends["phase3"])
        assert (phase3_mean(results["original"])
                <= phase3_mean(results["full"]) + 1e-6)
        assert (phase3_mean(results["full"])
                <= phase3_mean(results["selective"]) + 1e-6)

    def test_no_resizing_has_no_migration(self, results):
        res = results["none"]
        assert res.migrated_bytes == 0
        assert all(v == 0 for v in res.migration_rate)


class TestMigrationVolumes:
    def test_selective_moves_least(self, results):
        assert (results["selective"].migrated_bytes
                < results["full"].migrated_bytes
                < results["original"].migrated_bytes)

    def test_only_original_rereplicates(self, results):
        assert results["original"].rereplicated_bytes > 0
        for mode in ("none", "full", "selective"):
            assert results[mode].rereplicated_bytes == 0


class TestOptions:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_three_phase("bogus", scale=SCALE)

    def test_full_design_lowers_write_peak(self):
        """Ablation: with the real equal-work + primary layout the
        write phase bottlenecks on the primaries (§III-C trade-off)."""
        isolated = run_three_phase("none", scale=SCALE,
                                   isolate_reintegration=True)
        full_design = run_three_phase("none", scale=SCALE,
                                      isolate_reintegration=False)
        p1_iso = isolated.phase_ends["phase1"]
        p1_full = full_design.phase_ends["phase1"]
        assert p1_full > p1_iso
