"""Figure 2's experiment: qualitative shape assertions."""

import pytest

from repro.experiments import run_resize_agility


@pytest.fixture(scope="module")
def result():
    return run_resize_agility(objects=800)


class TestIdealPattern:
    def test_ideal_descends_to_two_then_recovers(self, result):
        vals = [v for _, v in result.ideal.points()]
        assert vals[0] == 10
        assert min(vals) == 2
        assert vals[-1] == 10

    def test_ideal_steps_every_30s(self, result):
        times = [t for t, _ in result.ideal.points()]
        assert times[:3] == [0.0, 30.0, 60.0]


class TestOriginalCH:
    def test_lags_the_ideal_when_shrinking(self, result):
        """The paper's core observation: CH 'lags behind when sizing
        down the cluster'."""
        assert result.lag_seconds() > 60.0

    def test_never_below_ideal_when_shrinking(self, result):
        half = result.duration / 2
        for t in range(0, int(half), 10):
            assert (result.original_ch.value_at(t)
                    >= result.ideal.value_at(t))

    def test_catches_up_when_sizing_up(self, result):
        assert result.original_ch.value_at(result.duration) == 10

    def test_recovery_work_was_paid(self, result):
        assert len(result.recovery_bytes) >= 1
        assert all(b > 0 for b in result.recovery_bytes)


class TestElastic:
    def test_tracks_ideal_exactly(self, result):
        assert result.elastic_lag_seconds() == pytest.approx(0.0)

    def test_matches_ideal_pointwise(self, result):
        for t in range(0, int(result.duration), 15):
            assert (result.elastic.value_at(t)
                    == result.ideal.value_at(t))


class TestScaling:
    def test_more_data_means_more_lag(self):
        small = run_resize_agility(objects=300)
        large = run_resize_agility(objects=1500)
        assert large.lag_seconds() > small.lag_seconds()
