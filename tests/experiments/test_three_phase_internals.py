"""Internals of the 3-phase driver: phases, materialised writes,
flow plumbing — at tiny scale so they run fast."""

import pytest

from repro.experiments import run_three_phase

SCALE = 0.03


class TestTimelineIntegrity:
    @pytest.fixture(scope="class")
    def res(self):
        return run_three_phase("selective", scale=SCALE)

    def test_time_axis_monotone(self, res):
        assert all(b > a for a, b in zip(res.times, res.times[1:]))

    def test_phase_order(self, res):
        assert (res.phase_ends["phase1"] < res.phase_ends["phase2"]
                < res.phase_ends["phase3"])

    def test_client_bytes_match_workload(self, res):
        from repro.workloads.three_phase import three_phase_workload
        expected = sum(p.total_bytes for p in three_phase_workload(SCALE))
        moved = sum(res.throughput)  # dt = 1s
        assert moved == pytest.approx(expected, rel=0.02)

    def test_duration_covers_timeline(self, res):
        assert res.duration == pytest.approx(res.times[-1])

    def test_migration_series_aligned(self, res):
        assert len(res.migration_rate) == len(res.times)


class TestWriteMaterialisation:
    def test_objects_created_match_written_bytes(self):
        res = run_three_phase("none", scale=SCALE)
        from repro.workloads.three_phase import three_phase_workload
        phases = three_phase_workload(SCALE)
        written = sum(p.write_bytes for p in phases)
        # The driver rounds down to whole 4 MB objects per tick; the
        # shortfall is bounded by one object per phase.
        # (We can't reach the cluster from the result, so check via
        # migrated/zero invariants + a fresh run's byte accounting.)
        assert written > 0
        assert res.migrated_bytes == 0

    def test_dirty_objects_only_from_phase2(self):
        res = run_three_phase("selective", scale=SCALE)
        # Selective migration equals the offloaded share of phase-2
        # writes: strictly less than the full replicated phase-2 write
        # volume, and nonzero.
        from repro.workloads.three_phase import three_phase_workload
        phase2_writes = three_phase_workload(SCALE)[1].write_bytes
        assert 0 < res.migrated_bytes < 2 * phase2_writes


class TestModesAtTinyScale:
    def test_all_modes_complete(self):
        for mode in ("none", "original", "full", "selective"):
            res = run_three_phase(mode, scale=SCALE)
            assert set(res.phase_ends) == {"phase1", "phase2", "phase3"}

    def test_full_design_variant_completes(self):
        res = run_three_phase("selective", scale=SCALE,
                              isolate_reintegration=False)
        assert set(res.phase_ends) == {"phase1", "phase2", "phase3"}
        assert res.migrated_bytes > 0

    def test_custom_off_count(self):
        res = run_three_phase("selective", scale=SCALE, off_count=2)
        assert res.migrated_bytes > 0

    def test_phase2_rate_controls_duration(self):
        slow = run_three_phase("none", scale=SCALE, phase2_rate=10e6)
        fast = run_three_phase("none", scale=SCALE, phase2_rate=40e6)
        dur_slow = (slow.phase_ends["phase2"] - slow.phase_ends["phase1"])
        dur_fast = (fast.phase_ends["phase2"] - fast.phase_ends["phase1"])
        assert dur_slow == pytest.approx(4 * dur_fast, rel=0.1)
