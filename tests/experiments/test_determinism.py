"""DESIGN.md invariant 10: same inputs → bit-identical simulations."""

import numpy as np

from repro.experiments import (
    run_layout_versions,
    run_resize_agility,
    run_three_phase,
    run_trace_analysis,
)


class TestDeterminism:
    def test_three_phase_repeatable(self):
        a = run_three_phase("selective", scale=0.05)
        b = run_three_phase("selective", scale=0.05)
        assert a.throughput == b.throughput
        assert a.phase_ends == b.phase_ends
        assert a.migrated_bytes == b.migrated_bytes

    def test_resize_agility_repeatable(self):
        a = run_resize_agility(objects=300)
        b = run_resize_agility(objects=300)
        assert a.original_ch.points() == b.original_ch.points()
        assert a.recovery_bytes == b.recovery_bytes

    def test_layout_versions_repeatable(self):
        a = run_layout_versions(objects_v1=1_000, objects_v2=1_200)
        b = run_layout_versions(objects_v1=1_000, objects_v2=1_200)
        assert a.distributions == b.distributions
        assert a.reintegration_bytes == b.reintegration_bytes

    def test_trace_analysis_repeatable(self):
        a = run_trace_analysis("CC-a")
        b = run_trace_analysis("CC-a")
        assert np.array_equal(a.trace.load, b.trace.load)
        for name in a.analysis.results:
            assert np.array_equal(a.analysis.results[name].servers,
                                  b.analysis.results[name].servers)
