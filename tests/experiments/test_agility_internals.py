"""Knobs of the resize-agility driver (small configurations)."""

import pytest

from repro.experiments import run_resize_agility


class TestKnobs:
    def test_custom_batch_and_interval(self):
        res = run_resize_agility(objects=200, batch=3,
                                 step_interval=20.0, duration=200.0)
        vals = [v for _, v in res.ideal.points()]
        # 10 -> 7 -> 4 -> 2 (floored at replicas).
        assert vals[:4] == [10, 7, 4, 2]

    def test_faster_disks_shrink_lag(self):
        slow = run_resize_agility(objects=600, disk_bw=32e6)
        fast = run_resize_agility(objects=600, disk_bw=256e6)
        assert fast.lag_seconds() < slow.lag_seconds()

    def test_recovery_fraction_scales_lag(self):
        stingy = run_resize_agility(objects=600, recovery_fraction=0.25)
        generous = run_resize_agility(objects=600, recovery_fraction=1.0)
        assert generous.lag_seconds() < stingy.lag_seconds()

    def test_elastic_always_exact(self):
        for objects in (100, 800):
            res = run_resize_agility(objects=objects)
            assert res.elastic_lag_seconds() == 0.0

    def test_ideal_series_bounds(self):
        res = run_resize_agility(objects=100)
        assert res.ideal.max() == 10
        assert res.ideal.min() == 2
