"""Figure 5's experiment: layout shape across versions."""

import pytest

from repro.experiments import run_layout_versions


@pytest.fixture(scope="module")
def result():
    return run_layout_versions(objects_v1=6_000, objects_v2=8_000)


class TestVersion1:
    def test_matches_equal_work_shape(self, result):
        assert result.v1_shape_correlation > 0.99

    def test_monotone_non_increasing(self, result):
        # Primaries are statistically equal, so check the equal-work
        # decay over the secondary ranks only.
        dist = result.distributions["version1 (full power)"]
        secondaries = [dist[r] for r in range(result.p + 1, result.n + 1)]
        assert secondaries == sorted(secondaries, reverse=True)

    def test_primaries_hold_half(self, result):
        dist = result.distributions["version1 (full power)"]
        total = sum(dist.values())
        primary = sum(dist[r] for r in range(1, result.p + 1))
        assert primary / total == pytest.approx(0.5, abs=0.02)


class TestVersion2:
    def test_off_servers_frozen(self, result):
        v1 = result.distributions["version1 (full power)"]
        v2 = result.distributions["version2 (shrunk)"]
        for rank in (9, 10):
            assert v2[rank] == v1[rank]

    def test_active_servers_absorb_writes(self, result):
        v1 = result.distributions["version1 (full power)"]
        v2 = result.distributions["version2 (shrunk)"]
        for rank in range(1, 9):
            assert v2[rank] > v1[rank]


class TestVersion3:
    def test_reintegration_refills_tail(self, result):
        v2 = result.distributions["version2 (shrunk)"]
        v3 = result.distributions["version3 (re-integrated)"]
        for rank in (9, 10):
            assert v3[rank] > v2[rank]

    def test_shape_recovered(self, result):
        dist = result.distributions["version3 (re-integrated)"]
        secondaries = [dist[r] for r in range(result.p + 1, result.n + 1)]
        assert secondaries == sorted(secondaries, reverse=True)

    def test_migration_volume_positive_but_partial(self, result):
        """Only the offloaded tail moves — far less than the v2 write
        volume."""
        assert result.reintegration_objects > 0
        assert result.reintegration_objects < 8_000
