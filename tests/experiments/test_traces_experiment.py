"""Figures 8/9 and Tables I/II: the trace experiment wrapper."""

import pytest

from repro.experiments import run_trace_analysis
from repro.experiments.traces import FIGURE_N_MAX


@pytest.fixture(scope="module")
def cca():
    return run_trace_analysis("CC-a")


@pytest.fixture(scope="module")
def ccb():
    return run_trace_analysis("CC-b")


class TestTable1:
    def test_cc_a_row(self, cca):
        row = cca.table1_row()
        assert row["machines"] == 100
        assert row["length_days"] == pytest.approx(30.0)
        assert row["bytes_processed_TB"] == pytest.approx(69.0, abs=0.5)

    def test_cc_b_row(self, ccb):
        row = ccb.table1_row()
        assert row["machines"] == 300
        assert row["bytes_processed_TB"] == pytest.approx(473.0, abs=2)


class TestTable2:
    def test_ordering_holds_on_both_traces(self, cca, ccb):
        """The paper's Table II ordering:
        selective < full < original, on both traces."""
        for exp in (cca, ccb):
            row = exp.table2_row()
            assert (row["primary-selective"] < row["primary-full"]
                    < row["original-ch"])

    def test_ratios_in_paper_band(self, cca, ccb):
        """Paper values: CC-a 1.32/1.24/1.21, CC-b 1.51/1.37/1.33.
        The simulator must land in the same regime (1.0-2.2)."""
        for exp in (cca, ccb):
            for v in exp.table2_row().values():
                assert 1.0 <= v < 2.2

    def test_ccb_original_worse_than_cca_original(self, cca, ccb):
        assert (ccb.table2_row()["original-ch"]
                > cca.table2_row()["original-ch"])


class TestFigureSeries:
    def test_window_has_four_curves(self, cca):
        series = cca.figure_series()
        assert set(series) == {"ideal", "original-ch", "primary-full",
                               "primary-selective"}
        assert {len(v) for v in series.values()} == {250}

    def test_elastic_floors_at_primaries(self, cca):
        series = cca.analysis.series()
        p = cca.analysis.config.p
        assert series["primary-selective"].min() == p
        assert series["primary-full"].min() == p

    def test_ideal_dips_below_elastic_floor(self, cca):
        series = cca.analysis.series()
        assert series["ideal"].min() < cca.analysis.config.p

    def test_n_max_matches_figure_axis(self, cca, ccb):
        assert cca.analysis.config.n_max == FIGURE_N_MAX["CC-a"] == 50
        assert ccb.analysis.config.n_max == FIGURE_N_MAX["CC-b"] == 180


class TestOptions:
    def test_unknown_trace_rejected(self):
        with pytest.raises(ValueError):
            run_trace_analysis("CC-z")

    def test_seed_override_changes_trace(self):
        a = run_trace_analysis("CC-a", seed=11)
        b = run_trace_analysis("CC-a", seed=12)
        assert not (a.trace.load == b.trace.load).all()
