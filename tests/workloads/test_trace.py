"""LoadTrace container: stats, windows, persistence."""

import numpy as np
import pytest

from repro.workloads.trace import LoadTrace, TraceSpec


@pytest.fixture
def trace():
    load = np.array([10.0, 20.0, 30.0, 40.0, 50.0, 0.0])
    return LoadTrace(load, dt=60.0, write_fraction=0.4, name="t")


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LoadTrace(np.array([]), 1.0)

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            LoadTrace(np.array([-1.0]), 1.0)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError):
            LoadTrace(np.array([1.0]), 0.0)

    def test_rejects_bad_write_fraction(self):
        with pytest.raises(ValueError):
            LoadTrace(np.array([1.0]), 1.0, write_fraction=2.0)


class TestStats:
    def test_duration_and_total(self, trace):
        assert trace.duration == 360.0
        assert trace.total_bytes == pytest.approx(150.0 * 60.0)

    def test_stats_bundle(self, trace):
        st = trace.stats()
        assert st["peak_load"] == 50.0
        assert st["mean_load"] == pytest.approx(25.0)
        assert st["burstiness"] == pytest.approx(2.0)

    def test_write_load(self, trace):
        assert trace.write_load[0] == pytest.approx(4.0)

    def test_times(self, trace):
        assert list(trace.times[:3]) == [0.0, 60.0, 120.0]

    def test_resizing_frequency(self, trace):
        # ideal at bw=10: [1,2,3,4,5,0] -> diffs [1,1,1,1,5] mean 1.8
        assert trace.resizing_frequency(10.0) == pytest.approx(1.8)


class TestTransforms:
    def test_window(self, trace):
        w = trace.window(60.0, 120.0)
        assert len(w) == 2
        assert list(w.load) == [20.0, 30.0]

    def test_window_out_of_range(self, trace):
        with pytest.raises(ValueError):
            trace.window(0.0, 10_000.0)

    def test_resample_preserves_mean(self, trace):
        coarse = trace.resample(120.0)
        assert len(coarse) == 3
        assert coarse.load[0] == pytest.approx(15.0)
        assert coarse.total_bytes == pytest.approx(trace.total_bytes)

    def test_resample_cannot_refine(self, trace):
        with pytest.raises(ValueError):
            trace.resample(30.0)

    def test_resample_non_multiple_rejected(self, trace):
        with pytest.raises(ValueError):
            trace.resample(90.0)

    def test_scaled_to_total(self, trace):
        scaled = trace.scaled_to_total(1e6)
        assert scaled.total_bytes == pytest.approx(1e6)


class TestPersistence:
    def test_csv_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        trace.to_csv(path)
        back = LoadTrace.from_csv(path, write_fraction=0.4)
        assert np.allclose(back.load, trace.load)
        assert back.dt == trace.dt

    def test_jsonl_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.to_jsonl(path)
        back = LoadTrace.from_jsonl(path)
        assert np.allclose(back.load, trace.load)
        assert back.write_fraction == trace.write_fraction
        assert back.name == trace.name


class TestTraceSpec:
    def test_derived_fields(self):
        spec = TraceSpec("x", 100, 86400.0 * 2, 2 * 86400 * 100)
        assert spec.length_days == pytest.approx(2.0)
        assert spec.mean_load == pytest.approx(100.0)
