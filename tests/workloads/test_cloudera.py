"""Synthetic Cloudera traces vs Table I envelopes."""

import pytest

from repro.workloads.cloudera import (
    CC_A,
    CC_B,
    TRACE_DT,
    generate_cc_a,
    generate_cc_b,
)


class TestTableIEnvelope:
    """Table I: the published facts the synthetic traces must match."""

    def test_cc_a_spec(self):
        assert CC_A.machines == 100
        assert CC_A.length_days == pytest.approx(30.0)
        assert CC_A.bytes_processed == 69 * 10 ** 12

    def test_cc_b_spec(self):
        assert CC_B.machines == 300
        assert CC_B.length_days == pytest.approx(9.0)
        assert CC_B.bytes_processed == 473 * 10 ** 12

    def test_cc_a_total_bytes_pinned(self):
        trace = generate_cc_a()
        assert trace.total_bytes == pytest.approx(CC_A.bytes_processed,
                                                  rel=1e-6)

    def test_cc_b_total_bytes_pinned(self):
        trace = generate_cc_b()
        assert trace.total_bytes == pytest.approx(CC_B.bytes_processed,
                                                  rel=1e-6)

    def test_durations(self):
        assert generate_cc_a().duration == pytest.approx(
            CC_A.length_seconds)
        assert generate_cc_b().duration == pytest.approx(
            CC_B.length_seconds)


class TestTexture:
    def test_deterministic_default_seeds(self):
        import numpy as np
        assert np.array_equal(generate_cc_a().load, generate_cc_a().load)

    def test_seed_changes_trace(self):
        import numpy as np
        assert not np.array_equal(generate_cc_a(seed=1).load,
                                  generate_cc_a(seed=2).load)

    def test_minute_resolution(self):
        assert generate_cc_a().dt == TRACE_DT == 60.0

    def test_cc_a_resizes_more_frequently_relative(self):
        """§V-B: 'CC-a trace has significantly higher resizing
        frequency' — compared at each trace's own scale."""
        import numpy as np
        a, b = generate_cc_a(), generate_cc_b()
        bw_a = float(np.percentile(a.load, 99)) / 50
        bw_b = float(np.percentile(b.load, 99)) / 180
        rel_a = a.resizing_frequency(bw_a) / 50
        rel_b = b.resizing_frequency(bw_b) / 180
        assert rel_a > rel_b

    def test_nonnegative_and_bursty(self):
        for trace in (generate_cc_a(), generate_cc_b()):
            assert (trace.load >= 0).all()
            st = trace.stats()
            assert 2 < st["burstiness"] < 60
