"""Filebench-style personalities."""

import pytest

from repro.workloads.filebench import (
    FILESERVER,
    RATE_LIMITED_MIXED,
    READ_MOSTLY,
    SEQ_WRITER,
    VARMAIL,
    WEBSERVER,
    FilebenchPersonality,
    paper_three_phase,
)
from repro.workloads.three_phase import three_phase_workload

MB = 10 ** 6


class TestValidation:
    def test_positive_fields(self):
        with pytest.raises(ValueError):
            FilebenchPersonality("x", nfiles=0, filesize=1, iosize=1)
        with pytest.raises(ValueError):
            FilebenchPersonality("x", 1, 1, 1, write_ratio=1.5)
        with pytest.raises(ValueError):
            FilebenchPersonality("x", 1, 1, 1, rate_ops=0)


class TestPaperPhases:
    def test_matches_three_phase_workload(self):
        via_personality = paper_three_phase()
        direct = three_phase_workload()
        for a, b in zip(via_personality, direct):
            assert a.name == b.name
            assert a.total_bytes == pytest.approx(b.total_bytes)
            assert a.write_ratio == pytest.approx(b.write_ratio)
            if b.rate_cap is None:
                assert a.rate_cap is None
            else:
                assert a.rate_cap == pytest.approx(b.rate_cap)

    def test_phase2_rate_is_20MBps(self):
        assert RATE_LIMITED_MIXED.rate_cap_bytes() == pytest.approx(20e6)

    def test_seq_writer_working_set_is_14GB(self):
        assert SEQ_WRITER.working_set_bytes == 14 * 10 ** 9

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            paper_three_phase(scale=0)


class TestEffectiveThroughput:
    def test_streaming_io_reaches_disk_bw(self):
        rate = SEQ_WRITER.effective_throughput(streaming_bw=100e6)
        assert rate == pytest.approx(100e6)

    def test_small_io_is_iops_bound(self):
        rate = VARMAIL.effective_throughput(streaming_bw=100e6)
        # 16 threads x 8 KiB / 8 ms = 16.4 MB/s << streaming bw.
        assert rate == pytest.approx(16 * 8192 / 0.008)
        assert rate < 100e6

    def test_more_threads_more_throughput(self):
        few = FilebenchPersonality("a", 1, 1, iosize=8192, nthreads=4)
        many = FilebenchPersonality("b", 1, 1, iosize=8192, nthreads=64)
        assert (many.effective_throughput(1e9)
                > few.effective_throughput(1e9))

    def test_rate_attribute_caps(self):
        rate = RATE_LIMITED_MIXED.effective_throughput(streaming_bw=1e9)
        assert rate == pytest.approx(20e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            SEQ_WRITER.effective_throughput(0)


class TestToPhase:
    def test_default_total_is_working_set(self):
        phase = FILESERVER.to_phase()
        assert phase.total_bytes == FILESERVER.working_set_bytes

    def test_custom_total_and_name(self):
        phase = WEBSERVER.to_phase(total_bytes=1e9, phase_name="warm")
        assert phase.total_bytes == 1e9
        assert phase.name == "warm"

    def test_write_ratio_carried(self):
        assert READ_MOSTLY.to_phase().write_ratio == pytest.approx(0.2)
