"""The §V-A 3-phase workload definition."""

import pytest

from repro.workloads.three_phase import GB, MB, Phase, three_phase_workload


class TestPaperParameters:
    def test_three_phases(self):
        phases = three_phase_workload()
        assert [p.name for p in phases] == ["phase1", "phase2", "phase3"]

    def test_phase1_is_14gb_pure_write(self):
        p1 = three_phase_workload()[0]
        assert p1.total_bytes == pytest.approx(14 * GB)
        assert p1.write_ratio == 1.0
        assert p1.rate_cap is None

    def test_phase2_bytes_and_rate(self):
        """4.2 GB read + 8.4 GB written at 20 MB/s."""
        p2 = three_phase_workload()[1]
        assert p2.total_bytes == pytest.approx(12.6 * GB)
        assert p2.write_bytes == pytest.approx(8.4 * GB)
        assert p2.read_bytes == pytest.approx(4.2 * GB)
        assert p2.rate_cap == 20 * MB
        assert p2.min_duration() == pytest.approx(630.0)

    def test_phase3_write_ratio_20pct(self):
        p3 = three_phase_workload()[2]
        assert p3.total_bytes == pytest.approx(14 * GB)
        assert p3.write_ratio == pytest.approx(0.2)

    def test_scale(self):
        phases = three_phase_workload(scale=0.1)
        assert phases[0].total_bytes == pytest.approx(1.4 * GB)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            three_phase_workload(scale=0)


class TestPhaseValidation:
    def test_rejects_zero_bytes(self):
        with pytest.raises(ValueError):
            Phase("p", total_bytes=0, write_ratio=0.5)

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            Phase("p", total_bytes=1, write_ratio=1.5)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Phase("p", total_bytes=1, write_ratio=0.5, rate_cap=0)

    def test_uncapped_duration_is_none(self):
        assert Phase("p", 100, 1.0).min_duration() is None
