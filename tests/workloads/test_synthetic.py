"""Synthetic load generators."""

import numpy as np
import pytest

from repro.workloads.synthetic import (
    burst_profile,
    diurnal_profile,
    synthesize_load,
)


class TestDiurnal:
    def test_bounds(self):
        prof = diurnal_profile(1440, 60.0, trough_ratio=0.3)
        assert prof.min() >= 0.3 - 1e-9
        assert prof.max() <= 1.0 + 1e-9

    def test_periodicity(self):
        prof = diurnal_profile(2880, 60.0)
        assert np.allclose(prof[:1440], prof[1440:], atol=1e-9)

    def test_bad_trough_rejected(self):
        with pytest.raises(ValueError):
            diurnal_profile(10, 1.0, trough_ratio=1.5)


class TestBursts:
    def test_nonnegative(self, rng):
        prof = burst_profile(1000, 60.0, rng)
        assert (prof >= 0).all()

    def test_some_bursts_occur(self, rng):
        prof = burst_profile(2000, 60.0, rng,
                             mean_interarrival_s=1800.0)
        assert prof.max() > 0

    def test_interarrival_controls_density(self):
        rng1 = np.random.default_rng(1)
        rng2 = np.random.default_rng(1)
        dense = burst_profile(2000, 60.0, rng1,
                              mean_interarrival_s=300.0)
        sparse = burst_profile(2000, 60.0, rng2,
                               mean_interarrival_s=10_000.0)
        assert (dense > 0).sum() > (sparse > 0).sum()

    def test_bad_magnitude_rejected(self, rng):
        with pytest.raises(ValueError):
            burst_profile(10, 1.0, rng, magnitude_scale=0)


class TestSynthesizeLoad:
    def test_mean_calibrated_exactly(self):
        load = synthesize_load(86400.0, 60.0, mean_load=123.0, seed=7)
        assert load.mean() == pytest.approx(123.0)

    def test_deterministic_given_seed(self):
        a = synthesize_load(86400.0, 60.0, 100.0, seed=42)
        b = synthesize_load(86400.0, 60.0, 100.0, seed=42)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = synthesize_load(86400.0, 60.0, 100.0, seed=1)
        b = synthesize_load(86400.0, 60.0, 100.0, seed=2)
        assert not np.array_equal(a, b)

    def test_nonnegative(self):
        load = synthesize_load(86400.0, 60.0, 100.0, seed=3)
        assert (load >= 0).all()

    def test_reasonable_burstiness(self):
        load = synthesize_load(7 * 86400.0, 60.0, 100.0, seed=4)
        assert 1.5 < load.max() / load.mean() < 50
