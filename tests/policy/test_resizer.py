"""Policy state machines: the §V-B model's qualitative behaviour."""

import numpy as np
import pytest

from repro.policy.resizer import (
    OriginalCHPolicy,
    PolicyConfig,
    PrimaryFullPolicy,
    PrimarySelectivePolicy,
    _equal_work_shares,
    simulate_policy,
)
from repro.workloads.trace import LoadTrace


def make_trace(pattern, dt=60.0, write_fraction=0.5):
    return LoadTrace(np.array(pattern, dtype=float), dt,
                     write_fraction)


@pytest.fixture
def config():
    return PolicyConfig(n_max=20, per_server_bw=10e6, disk_bw=80e6,
                        dataset_bytes=200e9)


# A square-wave trace: high load, deep valley, high load again.
HIGH = 150e6
LOW = 10e6


def square_trace(minutes_high=30, minutes_low=60):
    return make_trace([HIGH] * minutes_high + [LOW] * minutes_low
                      + [HIGH] * minutes_high)


class TestConfig:
    def test_primary_count(self, config):
        assert config.p == 3  # ceil(20 / e^2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolicyConfig(n_max=1, replicas=2)
        with pytest.raises(ValueError):
            PolicyConfig(n_max=10, per_server_bw=0)
        with pytest.raises(ValueError):
            PolicyConfig(n_max=10, migration_fraction=0)


class TestEqualWorkShares:
    def test_sum_to_one(self):
        shares = _equal_work_shares(10, 2, 2)
        assert shares.sum() == pytest.approx(1.0)

    def test_primaries_hold_one_over_r(self):
        shares = _equal_work_shares(10, 2, 2)
        assert shares[:2].sum() == pytest.approx(0.5)

    def test_no_secondaries_case(self):
        shares = _equal_work_shares(2, 2, 2)
        assert shares.sum() == pytest.approx(0.5)


class TestFloors:
    def test_original_floor_is_replicas(self, config):
        res = simulate_policy("original-ch",
                              make_trace([0.0] * 200), config)
        assert res.servers.min() == config.replicas

    def test_elastic_floor_is_primaries(self, config):
        for name in ("primary-full", "primary-selective"):
            res = simulate_policy(name, make_trace([0.0] * 200), config)
            assert res.servers.min() == config.p


class TestShrinkBehaviour:
    def test_elastic_shrinks_instantly(self, config):
        trace = square_trace()
        res = simulate_policy("primary-selective", trace, config)
        # One sample after the valley starts, the count is already at
        # the valley level (or the primary floor, whichever is higher).
        valley_start = 30
        floor = max(int(res.ideal[valley_start]), config.p)
        assert res.servers[valley_start + 1] <= floor + 1

    def test_original_lags_on_shrink(self, config):
        trace = square_trace()
        orig = simulate_policy("original-ch", trace, config)
        sel = simulate_policy("primary-selective", trace, config)
        valley = slice(31, 60)
        assert orig.servers[valley].mean() > sel.servers[valley].mean()

    def test_original_rereplicates_on_shrink(self, config):
        res = simulate_policy("original-ch", square_trace(), config)
        assert res.rereplicated_bytes > 0

    def test_elastic_never_rereplicates(self, config):
        for name in ("primary-full", "primary-selective"):
            res = simulate_policy(name, square_trace(), config)
            assert res.rereplicated_bytes == 0


class TestGrowthDebt:
    def test_growth_triggers_migration(self, config):
        for name in ("original-ch", "primary-full", "primary-selective"):
            res = simulate_policy(name, square_trace(), config)
            assert res.migrated_bytes > 0, name

    def test_selective_migrates_least(self, config):
        trace = square_trace()
        sel = simulate_policy("primary-selective", trace, config)
        full = simulate_policy("primary-full", trace, config)
        orig = simulate_policy("original-ch", trace, config)
        assert sel.migrated_bytes < full.migrated_bytes
        assert sel.migrated_bytes < orig.migrated_bytes

    def test_no_writes_no_selective_debt(self, config):
        trace = make_trace([HIGH] * 20 + [LOW] * 30 + [HIGH] * 20,
                           write_fraction=0.0)
        res = simulate_policy("primary-selective", trace, config)
        assert res.migrated_bytes == 0


class TestMachineHours:
    def test_all_policies_at_least_ideal(self, config):
        trace = square_trace()
        for name in ("original-ch", "primary-full", "primary-selective"):
            res = simulate_policy(name, trace, config)
            assert res.relative_machine_hours >= 1.0 - 1e-9

    def test_paper_ordering(self, config):
        """Table II's ordering: selective <= full <= original."""
        trace = square_trace()
        ratios = {name: simulate_policy(name, trace, config)
                  .relative_machine_hours
                  for name in ("original-ch", "primary-full",
                               "primary-selective")}
        assert ratios["primary-selective"] <= ratios["primary-full"]
        assert ratios["primary-full"] <= ratios["original-ch"]

    def test_flat_trace_costs_nothing_extra(self, config):
        trace = make_trace([HIGH] * 100)
        for name in ("primary-full", "primary-selective"):
            res = simulate_policy(name, trace, config)
            assert res.relative_machine_hours == pytest.approx(1.0)


class TestDispatch:
    def test_unknown_policy_rejected(self, config):
        with pytest.raises(ValueError):
            simulate_policy("bogus", square_trace(), config)

    def test_result_metadata(self, config):
        res = simulate_policy("primary-full", square_trace(), config)
        assert res.name == "primary-full"
        assert res.dt == 60.0
        assert len(res.servers) == len(res.ideal)
