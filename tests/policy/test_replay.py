"""Object-level trace replay (small, fast configurations)."""

import numpy as np
import pytest

from repro.policy.replay import replay_policy
from repro.policy.resizer import PolicyConfig, simulate_policy
from repro.workloads.trace import LoadTrace


@pytest.fixture
def config():
    return PolicyConfig(n_max=10, per_server_bw=1e6, disk_bw=80e6,
                        dataset_bytes=100e6)


@pytest.fixture
def trace():
    # Busy, valley, busy — 10-second samples keep the object counts
    # (and thus the replay runtime) small.
    pattern = [8e6] * 10 + [0.5e6] * 20 + [8e6] * 10
    return LoadTrace(np.array(pattern), dt=10.0, write_fraction=0.5)


OBJ = 1 << 20  # 1 MiB objects keep the replay cheap


class TestReplayMechanics:
    def test_unknown_policy_rejected(self, trace, config):
        with pytest.raises(ValueError):
            replay_policy("greencht", trace, config)

    def test_series_length_matches_trace(self, trace, config):
        rep = replay_policy("primary-selective", trace, config,
                            object_size=OBJ, preload_objects=50)
        assert len(rep.servers) == len(trace)

    def test_writes_materialised(self, trace, config):
        rep = replay_policy("primary-selective", trace, config,
                            object_size=OBJ, preload_objects=50)
        expected = trace.write_load.sum() * trace.dt / OBJ
        assert rep.objects_written == pytest.approx(expected, abs=2)

    def test_machine_hours_at_least_ideal(self, trace, config):
        for name in ("original-ch", "primary-full",
                     "primary-selective"):
            rep = replay_policy(name, trace, config,
                                object_size=OBJ, preload_objects=50)
            assert rep.relative_machine_hours >= 1.0 - 1e-9, name

    def test_elastic_floor_respected(self, trace, config):
        rep = replay_policy("primary-selective", trace, config,
                            object_size=OBJ, preload_objects=50)
        assert rep.servers.min() >= config.p

    def test_baseline_pays_rereplication(self, trace, config):
        rep = replay_policy("original-ch", trace, config,
                            object_size=OBJ, preload_objects=100)
        assert rep.rereplicated_bytes > 0

    def test_selective_migrates_least(self, trace, config):
        reps = {name: replay_policy(name, trace, config,
                                    object_size=OBJ,
                                    preload_objects=100)
                for name in ("original-ch", "primary-full",
                             "primary-selective")}
        assert (reps["primary-selective"].migrated_bytes
                < reps["primary-full"].migrated_bytes)
        assert (reps["primary-selective"].migrated_bytes
                < reps["original-ch"].migrated_bytes)


class TestCrossValidation:
    def test_fluid_and_replay_agree_on_selective(self, trace, config):
        """The fluid model and the object-level replay must land in
        the same regime for the paper's own system."""
        rep = replay_policy("primary-selective", trace, config,
                            object_size=OBJ, preload_objects=100)
        sim = simulate_policy("primary-selective", trace, config)
        assert rep.relative_machine_hours == pytest.approx(
            sim.relative_machine_hours, abs=0.35)
