"""The GreenCHT tiered baseline policy."""

import numpy as np
import pytest

from repro.policy.resizer import (
    GreenCHTPolicy,
    PolicyConfig,
    simulate_policy,
)
from repro.workloads.trace import LoadTrace


@pytest.fixture
def config():
    return PolicyConfig(n_max=20, per_server_bw=10e6, disk_bw=80e6,
                        dataset_bytes=100e9)


def make_trace(pattern, write_fraction=0.5):
    return LoadTrace(np.array(pattern, dtype=float), 60.0,
                     write_fraction)


class TestTiers:
    def test_boundaries_start_at_primary_tier(self, config):
        g = GreenCHTPolicy(config)
        assert g.boundaries[0] == config.p
        assert g.boundaries[-1] == config.n_max

    def test_boundaries_ascending_unique(self, config):
        g = GreenCHTPolicy(config, num_tiers=5)
        assert g.boundaries == sorted(set(g.boundaries))

    def test_quantise_rounds_up(self, config):
        g = GreenCHTPolicy(config)
        for k in range(1, config.n_max + 1):
            q = g._quantise(k)
            assert q >= k or q == g.boundaries[-1]
            assert q in g.boundaries

    def test_too_few_tiers_rejected(self, config):
        with pytest.raises(ValueError):
            GreenCHTPolicy(config, num_tiers=1)


class TestSimulation:
    def test_active_counts_only_on_boundaries(self, config):
        g = GreenCHTPolicy(config)
        trace = make_trace([150e6] * 20 + [10e6] * 40 + [150e6] * 20)
        res = g.simulate(trace)
        assert set(np.unique(res.servers)) <= set(g.boundaries)

    def test_dispatch_by_name(self, config):
        trace = make_trace([50e6] * 50)
        res = simulate_policy("greencht", trace, config)
        assert res.name == "greencht"

    def test_granularity_costs_machine_hours(self, config):
        """The §VI argument: tier-wise resizing wastes machine hours
        relative to per-server elastic resizing."""
        trace = make_trace([150e6] * 20 + [10e6] * 60 + [150e6] * 20)
        tiered = simulate_policy("greencht", trace, config)
        fine = simulate_policy("primary-selective", trace, config)
        assert (tiered.relative_machine_hours
                >= fine.relative_machine_hours)

    def test_never_below_ideal(self, config):
        trace = make_trace([150e6] * 20 + [10e6] * 40)
        res = simulate_policy("greencht", trace, config)
        assert res.relative_machine_hours >= 1.0 - 1e-9
