"""Resizing controllers (the paper's future-work direction)."""

import numpy as np
import pytest

from repro.policy.controller import (
    OracleController,
    PredictiveController,
    ReactiveController,
    evaluate_provisioning,
)
from repro.policy.resizer import PolicyConfig, simulate_policy
from repro.workloads.trace import LoadTrace


@pytest.fixture
def config():
    return PolicyConfig(n_max=20, per_server_bw=10e6, disk_bw=80e6,
                        dataset_bytes=100e9)


def make_trace(pattern):
    return LoadTrace(np.array(pattern, dtype=float), 60.0)


STEP = [20e6] * 30 + [150e6] * 30 + [20e6] * 30
RAMP = list(np.linspace(10e6, 180e6, 60)) + [180e6] * 20


class TestOracle:
    def test_matches_ideal(self, config):
        trace = make_trace(STEP)
        req = OracleController().requested(trace, config)
        assert req[0] == 2 and req[35] == 15

    def test_zero_violations(self, config):
        trace = make_trace(STEP)
        req = OracleController().requested(trace, config)
        q = evaluate_provisioning(trace, req, config.per_server_bw)
        assert q["violation_fraction"] == 0.0


class TestReactive:
    def test_grows_immediately_after_observation(self, config):
        trace = make_trace(STEP)
        req = ReactiveController(headroom=1.0).requested(trace, config)
        # Load steps up at t=30; the controller sees it at t=31.
        assert req[30] < 10
        assert req[31] >= 15

    def test_shrinks_only_after_hold_down(self, config):
        trace = make_trace(STEP)
        ctrl = ReactiveController(headroom=1.0, hold_samples=5)
        req = ctrl.requested(trace, config)
        # Load drops at t=60; the shrink happens hold_samples later.
        assert req[62] >= 15
        assert req[60 + 6] < 15

    def test_headroom_overprovisions(self, config):
        trace = make_trace(STEP)
        lo = ReactiveController(headroom=1.0).requested(trace, config)
        hi = ReactiveController(headroom=1.5).requested(trace, config)
        assert hi.sum() > lo.sum()

    def test_one_sample_lag_causes_violation_on_step(self, config):
        trace = make_trace(STEP)
        req = ReactiveController(headroom=1.0).requested(trace, config)
        q = evaluate_provisioning(trace, req, config.per_server_bw)
        assert q["violation_fraction"] > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReactiveController(headroom=0.5)
        with pytest.raises(ValueError):
            ReactiveController(hold_samples=0)


class TestPredictive:
    def test_anticipates_a_ramp(self, config):
        trace = make_trace(RAMP)
        reactive = ReactiveController(headroom=1.0).requested(trace, config)
        predictive = PredictiveController(
            headroom=1.0, horizon_samples=5).requested(trace, config)
        # Mid-ramp, the forecaster runs ahead of the follower.
        mid = slice(15, 55)
        assert predictive[mid].mean() > reactive[mid].mean()

    def test_fewer_violations_than_reactive_on_ramp(self, config):
        trace = make_trace(RAMP)
        r = ReactiveController(headroom=1.0).requested(trace, config)
        p = PredictiveController(headroom=1.0,
                                 horizon_samples=5).requested(trace, config)
        qr = evaluate_provisioning(trace, r, config.per_server_bw)
        qp = evaluate_provisioning(trace, p, config.per_server_bw)
        assert (qp["violation_fraction"] <= qr["violation_fraction"])

    def test_forecast_never_undercuts_observed(self, config):
        trace = make_trace(STEP)
        req = PredictiveController(headroom=1.0).requested(trace, config)
        # One sample after observation, capacity covers the previous
        # load at minimum.
        for t in range(1, len(trace)):
            assert (req[t] * config.per_server_bw
                    >= trace.load[t - 1] - 1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveController(alpha=0.0)
        with pytest.raises(ValueError):
            PredictiveController(horizon_samples=-1)
        with pytest.raises(ValueError):
            PredictiveController(headroom=0.9)


class TestIntegrationWithPolicies:
    def test_requested_series_drives_policy(self, config):
        trace = make_trace(STEP)
        req = ReactiveController().requested(trace, config)
        res = simulate_policy("primary-selective", trace, config,
                              requested=req)
        # The policy's servers track the controller's requests (floored
        # at p, plus migration overheads).
        assert res.servers.max() >= req.max()
        assert res.servers.min() >= config.p

    def test_length_mismatch_rejected(self, config):
        trace = make_trace(STEP)
        with pytest.raises(ValueError):
            simulate_policy("primary-selective", trace, config,
                            requested=np.array([1, 2, 3]))


class TestEvaluateProvisioning:
    def test_perfect_provisioning(self, config):
        trace = make_trace([50e6] * 10)
        servers = np.full(10, 5)
        q = evaluate_provisioning(trace, servers, 10e6)
        assert q["violation_fraction"] == 0.0
        assert q["mean_extra_servers"] == 0.0

    def test_shortfall_measured(self):
        trace = make_trace([100e6] * 10)
        servers = np.full(10, 5)  # capacity 50e6 -> 50% short
        q = evaluate_provisioning(trace, servers, 10e6)
        assert q["violation_fraction"] == 1.0
        assert q["mean_shortfall_fraction"] == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        trace = make_trace([1.0] * 5)
        with pytest.raises(ValueError):
            evaluate_provisioning(trace, np.array([1]), 1.0)
