"""End-to-end trace analysis wrapper."""

import numpy as np
import pytest

from repro.policy.analysis import analyze_trace, config_for_trace
from repro.policy.resizer import PolicyConfig
from repro.workloads.trace import LoadTrace


@pytest.fixture
def trace():
    rng = np.random.default_rng(5)
    load = 50e6 + 100e6 * rng.random(600)
    load[200:300] = 5e6  # a deep valley
    return LoadTrace(load, dt=60.0, name="synthetic")


class TestConfigForTrace:
    def test_per_server_bw_from_p99(self, trace):
        cfg = config_for_trace(trace, n_max=20)
        p99 = float(np.percentile(trace.load, 99))
        assert cfg.per_server_bw == pytest.approx(p99 / 20)

    def test_dataset_is_working_set(self, trace):
        cfg = config_for_trace(trace, n_max=20, working_set_hours=2.0)
        assert cfg.dataset_bytes == pytest.approx(
            trace.stats()["mean_load"] * 7200.0)

    def test_overrides_win(self, trace):
        cfg = config_for_trace(trace, n_max=20, per_server_bw=123.0)
        assert cfg.per_server_bw == 123.0


class TestAnalyzeTrace:
    def test_runs_all_policies(self, trace):
        an = analyze_trace(trace, n_max=20)
        assert set(an.results) == {"original-ch", "primary-full",
                                   "primary-selective"}

    def test_requires_config_or_n_max(self, trace):
        with pytest.raises(ValueError):
            analyze_trace(trace)

    def test_series_aligned(self, trace):
        an = analyze_trace(trace, n_max=20)
        series = an.series()
        assert set(series) == {"ideal", "original-ch", "primary-full",
                               "primary-selective"}
        lengths = {len(v) for v in series.values()}
        assert lengths == {len(trace)}

    def test_relative_machine_hours_ordering(self, trace):
        an = analyze_trace(trace, n_max=20)
        rel = an.relative_machine_hours()
        assert rel["primary-selective"] <= rel["primary-full"] + 1e-9
        assert all(v >= 1.0 - 1e-9 for v in rel.values())

    def test_savings_vs_original(self, trace):
        an = analyze_trace(trace, n_max=20)
        savings = an.savings_vs_original()
        assert set(savings) == {"primary-full", "primary-selective"}
        assert savings["primary-selective"] >= savings["primary-full"] - 1e-9

    def test_explicit_config_used(self, trace):
        cfg = PolicyConfig(n_max=15, per_server_bw=20e6,
                           dataset_bytes=1e11)
        an = analyze_trace(trace, config=cfg)
        assert an.config is cfg
        assert an.ideal.max() <= 15


class TestEnergySummary:
    def test_all_policies_plus_always_on(self, trace):
        an = analyze_trace(trace, n_max=20)
        summary = an.energy_summary()
        assert set(summary) == {"original-ch", "primary-full",
                                "primary-selective", "always-on"}

    def test_always_on_saves_nothing(self, trace):
        an = analyze_trace(trace, n_max=20)
        summary = an.energy_summary()
        assert summary["always-on"]["savings_vs_always_on"] == 0.0

    def test_selective_saves_at_least_full(self, trace):
        an = analyze_trace(trace, n_max=20)
        s = an.energy_summary()
        assert (s["primary-selective"]["savings_vs_always_on"]
                >= s["primary-full"]["savings_vs_always_on"] - 1e-9)
        for name, row in s.items():
            assert 0.0 <= row["savings_vs_always_on"] < 1.0, name

    def test_residual_draw_reduces_savings(self, trace):
        from repro.cluster.power import PowerModel
        an = analyze_trace(trace, n_max=20)
        off0 = an.energy_summary(PowerModel(watts_off=0.0))
        off20 = an.energy_summary(PowerModel(watts_off=20.0))
        assert (off20["primary-selective"]["savings_vs_always_on"]
                < off0["primary-selective"]["savings_vs_always_on"])
