"""The ideal resizing oracle."""

import numpy as np
import pytest

from repro.policy.ideal import IdealPolicy, ideal_servers
from repro.workloads.trace import LoadTrace


class TestIdealServers:
    def test_ceil_semantics(self):
        load = np.array([0.0, 1.0, 99.0, 100.0, 101.0])
        servers = ideal_servers(load, per_server_bw=100.0, n_max=10)
        assert list(servers) == [1, 1, 1, 1, 2]

    def test_clamped_to_n_max(self):
        servers = ideal_servers(np.array([1e9]), 10.0, n_max=5)
        assert servers[0] == 5

    def test_n_min_respected(self):
        servers = ideal_servers(np.array([0.0]), 10.0, n_max=5, n_min=2)
        assert servers[0] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_servers(np.array([1.0]), 0.0, 5)
        with pytest.raises(ValueError):
            ideal_servers(np.array([1.0]), 1.0, 5, n_min=6)


class TestIdealPolicy:
    def test_machine_hours(self):
        trace = LoadTrace(np.full(60, 100.0), dt=60.0)
        policy = IdealPolicy(per_server_bw=50.0, n_max=10)
        # 2 servers for 1 hour.
        assert policy.machine_hours(trace) == pytest.approx(2.0)

    def test_servers_series(self):
        trace = LoadTrace(np.array([10.0, 200.0]), dt=60.0)
        policy = IdealPolicy(per_server_bw=50.0, n_max=10)
        assert list(policy.servers(trace)) == [1, 4]
