"""Guard the documented public API surface (docs/API.md).

If a symbol documented there disappears or moves, this fails before
any downstream user notices.
"""

import importlib

import pytest

SURFACE = {
    "repro": [
        "ElasticConsistentHash", "ReintegrationEngine", "DirtyTable",
        "MembershipTable", "VersionHistory", "EqualWorkLayout",
        "primary_count", "equal_work_weights", "place_original",
        "place_primary", "PlacementResult", "HashRing", "__version__",
    ],
    "repro.core": [
        "ElasticConsistentHash", "ReintegrationEngine", "MigrationTask",
        "DirtyEntry", "DirtyTable", "CapacityPlan", "ChainMode",
    ],
    "repro.core.dynamic_primaries": [
        "plan_primary_resize", "apply_relayout", "PrimaryResizePlan",
    ],
    "repro.cluster": [
        "ElasticCluster", "OriginalCHCluster", "StorageServer",
        "DataObject", "ObjectCatalog", "PowerState",
        "plan_departure_recovery", "RecoveryPlan", "TokenBucket",
        "MigrationPlan", "full_reintegration_plan",
        "addition_migration_plan", "VirtualDisk", "VdiRange",
        "check_cluster", "FsckReport", "FsckIssue",
        "MachineHourMeter", "PowerModel",
    ],
    "repro.simulation": [
        "Simulator", "Event", "max_min_fair", "FluidFlow", "FlowSet",
        "IOModel",
    ],
    "repro.workloads": [
        "three_phase_workload", "Phase", "FilebenchPersonality",
        "paper_three_phase", "generate_cc_a", "generate_cc_b",
        "generate_trace", "LoadTrace", "TraceSpec", "synthesize_load",
        "diurnal_profile", "burst_profile", "CC_A", "CC_B",
    ],
    "repro.policy": [
        "PolicyConfig", "PolicyResult", "simulate_policy",
        "OriginalCHPolicy", "PrimaryFullPolicy",
        "PrimarySelectivePolicy", "GreenCHTPolicy",
        "OracleController", "ReactiveController",
        "PredictiveController", "evaluate_provisioning",
        "replay_policy", "ReplayResult", "analyze_trace",
        "TraceAnalysis", "ideal_servers", "IdealPolicy",
    ],
    "repro.experiments": [
        "run_resize_agility", "ResizeAgilityResult",
        "run_three_phase", "ThreePhaseResult",
        "run_layout_versions", "LayoutVersionsResult",
        "run_trace_analysis", "TraceExperiment",
    ],
    "repro.metrics": [
        "StepSeries", "distribution_stats", "gini",
        "normalized_shape", "shape_correlation", "holder_groups",
        "read_capacity", "proportionality_curve", "render_table",
        "render_series",
    ],
    "repro.faults": [
        "FaultEvent", "FaultPlan", "FaultInjector", "RetryPolicy",
        "PlannedTransfer", "TransferJob", "TransferManager",
        "ChaosResult", "run_chaos", "render_chaos_report",
    ],
    "repro.kvstore": [
        "KVStore", "WrongTypeError", "ShardedKVStore",
        "ReplicatedKVStore", "NoQuorumError", "StaleSessionError",
        "Session", "View", "KVChurnResult", "run_kv_churn",
        "render_kv_churn_report",
    ],
    "repro.serving": [
        "FlowController", "UnthrottledController",
        "FixedConcurrencyController", "AdaptiveQueueController",
        "make_controller", "Request", "AdmissionCoordinator",
        "ClosedLoopPopulation", "OpenLoopPopulation",
        "ServeResult", "run_serve", "render_serve_report",
    ],
    "repro.obs": [
        "OBS", "TraceBus", "JSONLSink", "MetricsRegistry",
        "InvariantSuite", "TraceParseError", "EmptyTraceError",
        "Profiler", "ProfileNode", "ProfileError", "profile_document",
        "collapsed_stacks", "load_profile", "render_profile",
        "compare_runs", "render_compare", "render_run_report",
        "render_trace_stats", "check_trace", "render_check",
        "AnalyticsError", "build_analytics", "analytics_from_trace",
        "merge_analytics", "validate_analytics", "load_analytics",
        "dump_analytics", "render_timeline", "percentile",
        "render_dashboard", "write_dashboard",
    ],
    "repro.runner": [
        "TaskSpec", "TaskResult", "SweepRunner", "SweepResult",
        "render_sweep_report", "run_task",
    ],
    "repro.cli": ["main", "build_parser"],
}


@pytest.mark.parametrize("module_name", sorted(SURFACE))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    missing = [name for name in SURFACE[module_name]
               if not hasattr(module, name)]
    assert not missing, f"{module_name} lost: {missing}"


@pytest.mark.parametrize("module_name",
                         [m for m in sorted(SURFACE) if m != "repro.cli"])
def test_all_lists_are_importable(module_name):
    module = importlib.import_module(module_name)
    if not hasattr(module, "__all__"):
        return
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.__all__: {name}"
