"""Bit-for-bit identity of the columnar solver vs the scalar reference.

The contract is exact float equality (never ``approx``): traces hash
the rates, so the two backends must produce the identical IEEE-754
doubles on every instance, including the awkward ones (elastic flows,
zero demands, zero-capacity resources, unknown resources).
"""

import math
import random

import pytest

from repro.simulation.bandwidth import (
    FlowSpec,
    max_min_fair,
    max_min_fair_scalar,
    solver_mode,
)
from repro.simulation.columnar import (
    compile_problem,
    max_min_fair_columnar,
)


def random_instance(rng):
    """One randomized allocation problem mixing every flow species:
    elastic / capped / zero-demand, some touching a zero-capacity
    resource, some an unknown resource."""
    n_res = rng.randint(1, 12)
    resources = [f"s{i}" for i in range(n_res)]
    capacities = {}
    for r in resources:
        capacities[r] = 0.0 if rng.random() < 0.12 else rng.uniform(1.0, 200.0)
    flows = []
    for _ in range(rng.randint(1, 20)):
        k = rng.randint(1, min(4, n_res))
        coeffs = {r: rng.uniform(0.05, 3.0)
                  for r in rng.sample(resources, k)}
        if rng.random() < 0.15:
            coeffs["ghost"] = rng.uniform(0.1, 2.0)   # unknown resource
        roll = rng.random()
        if roll < 0.15:
            demand = math.inf
        elif roll < 0.25:
            demand = 0.0
        else:
            demand = rng.uniform(0.1, 300.0)
        flows.append(FlowSpec(coefficients=coeffs, demand=demand))
    return flows, capacities


def assert_bit_identical(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        # == plus sign-of-zero: full bit equality for non-NaN doubles.
        assert x == y
        assert math.copysign(1.0, x) == math.copysign(1.0, y)


class TestBitIdentity:
    def test_property_randomized_instances(self):
        rng = random.Random(0xC01)
        for _ in range(300):
            flows, capacities = random_instance(rng)
            assert_bit_identical(max_min_fair_scalar(flows, capacities),
                                 max_min_fair_columnar(flows, capacities))

    def test_large_instance(self):
        rng = random.Random(7)
        capacities = {i: rng.uniform(10.0, 100.0) for i in range(1000)}
        flows = [FlowSpec(coefficients={r: rng.uniform(0.1, 2.0)
                                        for r in rng.sample(range(1000), 8)},
                          demand=(math.inf if i % 5 == 0
                                  else rng.uniform(1.0, 500.0)))
                 for i in range(60)]
        assert_bit_identical(max_min_fair_scalar(flows, capacities),
                             max_min_fair_columnar(flows, capacities))

    def test_empty_flows(self):
        assert max_min_fair_columnar([], {"s": 10.0}) == []

    def test_no_resources_capped_flow(self):
        flows = [FlowSpec(coefficients={"ghost": 1.0}, demand=5.0)]
        assert_bit_identical(max_min_fair_scalar(flows, {}),
                             max_min_fair_columnar(flows, {}))


class TestIdenticalErrors:
    @pytest.mark.parametrize("flows,capacities", [
        ([FlowSpec({"s": -1.0}, 1.0)], {"s": 10.0}),
        ([FlowSpec({"s": 1.0}, -2.0)], {"s": 10.0}),
        ([FlowSpec({"s": 1.0}, 1.0)], {"s": -5.0}),
        ([FlowSpec({"ghost": 1.0}, math.inf)], {"s": 10.0}),
    ])
    def test_same_exception_and_message(self, flows, capacities):
        with pytest.raises(ValueError) as scalar_err:
            max_min_fair_scalar(flows, capacities)
        with pytest.raises(ValueError) as columnar_err:
            max_min_fair_columnar(flows, capacities)
        assert str(scalar_err.value) == str(columnar_err.value)


class TestDispatch:
    def test_default_mode_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        assert solver_mode() == "auto"

    def test_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER", "quantum")
        with pytest.raises(ValueError):
            solver_mode()

    @pytest.mark.parametrize("mode", ["scalar", "columnar"])
    def test_forced_modes_agree(self, monkeypatch, mode):
        rng = random.Random(42)
        flows, capacities = random_instance(rng)
        reference = max_min_fair_scalar(flows, capacities)
        monkeypatch.setenv("REPRO_SOLVER", mode)
        assert_bit_identical(max_min_fair(flows, capacities), reference)

    def test_auto_cutover_matches_scalar(self, monkeypatch):
        # Large enough that auto dispatches columnar.
        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        rng = random.Random(3)
        capacities = {i: rng.uniform(10.0, 100.0) for i in range(256)}
        flows = [FlowSpec({r: 1.0 for r in rng.sample(range(256), 4)},
                          rng.uniform(1.0, 50.0)) for _ in range(32)]
        assert_bit_identical(max_min_fair(flows, capacities),
                             max_min_fair_scalar(flows, capacities))


class TestCompile:
    def test_unknown_resources_dropped(self):
        flows = [FlowSpec({"a": 1.0, "ghost": 2.0}, 5.0)]
        problem = compile_problem(flows, {"a": 10.0, "b": 20.0})
        assert problem.nnz == 1
        assert problem.n_flows == 1
        assert problem.n_resources == 2
        assert problem.resources == ("a", "b")

    def test_flow_major_entry_order(self):
        flows = [FlowSpec({"b": 1.0, "a": 2.0}, 5.0),
                 FlowSpec({"a": 3.0}, 1.0)]
        problem = compile_problem(flows, {"a": 10.0, "b": 20.0})
        assert problem.flow_idx.tolist() == [0, 0, 1]
        # Within a flow, entries keep the coefficient dict's order.
        assert problem.res_idx.tolist() == [1, 0, 0]
        assert problem.coef.tolist() == [1.0, 2.0, 3.0]
