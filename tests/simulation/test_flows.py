"""Fluid flows and the flow set."""

import math

import pytest

from repro.simulation.flows import FluidFlow, FlowSet


class TestFluidFlow:
    def test_finite_flow_progress(self):
        f = FluidFlow("m", {"d": 1.0}, total_bytes=100.0)
        assert f.remaining == 100.0
        f.progressed = 30.0
        assert f.remaining == 70.0
        assert not f.done

    def test_done(self):
        f = FluidFlow("m", {"d": 1.0}, total_bytes=100.0)
        f.progressed = 100.0
        assert f.done

    def test_stream_never_done(self):
        f = FluidFlow("c", {"d": 1.0})
        f.progressed = 1e12
        assert not f.done
        assert f.remaining == math.inf

    def test_demand_capped_by_remaining(self):
        f = FluidFlow("m", {"d": 1.0}, total_bytes=50.0)
        assert f.demand_for(1.0) == 50.0
        assert f.demand_for(10.0) == 5.0

    def test_demand_capped_by_rate(self):
        f = FluidFlow("m", {"d": 1.0}, total_bytes=1e9, rate_cap=25.0)
        assert f.demand_for(1.0) == 25.0


class TestFlowSet:
    def test_advance_shares_capacity(self):
        fs = FlowSet()
        fs.add(FluidFlow("a", {"d": 1.0}))
        fs.add(FluidFlow("b", {"d": 1.0}))
        achieved = fs.advance(1.0, {"d": 100.0})
        assert achieved == {"a": pytest.approx(50.0),
                            "b": pytest.approx(50.0)}

    def test_same_name_flows_aggregate(self):
        fs = FlowSet()
        fs.add(FluidFlow("m", {"d": 1.0}))
        fs.add(FluidFlow("m", {"d": 1.0}))
        achieved = fs.advance(1.0, {"d": 100.0})
        assert achieved == {"m": pytest.approx(100.0)}

    def test_completion_callback_and_retirement(self):
        fs = FlowSet()
        done = []
        fs.add(FluidFlow("m", {"d": 1.0}, total_bytes=80.0,
                         on_complete=lambda f: done.append(f.name)))
        fs.advance(1.0, {"d": 100.0})
        assert done == ["m"]
        assert len(fs) == 0

    def test_partial_progress_keeps_flow(self):
        fs = FlowSet()
        fs.add(FluidFlow("m", {"d": 1.0}, total_bytes=500.0))
        fs.advance(1.0, {"d": 100.0})
        assert len(fs) == 1

    def test_freed_capacity_goes_to_streams(self):
        fs = FlowSet()
        fs.add(FluidFlow("m", {"d": 1.0}, total_bytes=20.0))
        fs.add(FluidFlow("c", {"d": 1.0}))
        achieved = fs.advance(1.0, {"d": 100.0})
        assert achieved["m"] == pytest.approx(20.0)
        assert achieved["c"] == pytest.approx(80.0)

    def test_last_rate_recorded(self):
        fs = FlowSet()
        f = fs.add(FluidFlow("c", {"d": 1.0}))
        fs.advance(1.0, {"d": 40.0})
        assert f.last_rate == pytest.approx(40.0)

    def test_empty_set(self):
        assert FlowSet().advance(1.0, {"d": 100.0}) == {}

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            FlowSet().advance(0.0, {})

    def test_by_name_and_remove(self):
        fs = FlowSet()
        f = fs.add(FluidFlow("x", {"d": 1.0}))
        assert fs.by_name("x") == [f]
        fs.remove(f)
        assert len(fs) == 0
