"""Fluid flows and the flow set."""

import math

import pytest

from repro.simulation.flows import FluidFlow, FlowSet


class TestFluidFlow:
    def test_finite_flow_progress(self):
        f = FluidFlow("m", {"d": 1.0}, total_bytes=100.0)
        assert f.remaining == 100.0
        f.progressed = 30.0
        assert f.remaining == 70.0
        assert not f.done

    def test_done(self):
        f = FluidFlow("m", {"d": 1.0}, total_bytes=100.0)
        f.progressed = 100.0
        assert f.done

    def test_stream_never_done(self):
        f = FluidFlow("c", {"d": 1.0})
        f.progressed = 1e12
        assert not f.done
        assert f.remaining == math.inf

    def test_demand_capped_by_remaining(self):
        f = FluidFlow("m", {"d": 1.0}, total_bytes=50.0)
        assert f.demand_for(1.0) == 50.0
        assert f.demand_for(10.0) == 5.0

    def test_demand_capped_by_rate(self):
        f = FluidFlow("m", {"d": 1.0}, total_bytes=1e9, rate_cap=25.0)
        assert f.demand_for(1.0) == 25.0


class TestFlowSet:
    def test_advance_shares_capacity(self):
        fs = FlowSet()
        fs.add(FluidFlow("a", {"d": 1.0}))
        fs.add(FluidFlow("b", {"d": 1.0}))
        achieved = fs.advance(1.0, {"d": 100.0})
        assert achieved == {"a": pytest.approx(50.0),
                            "b": pytest.approx(50.0)}

    def test_same_name_flows_aggregate(self):
        fs = FlowSet()
        fs.add(FluidFlow("m", {"d": 1.0}))
        fs.add(FluidFlow("m", {"d": 1.0}))
        achieved = fs.advance(1.0, {"d": 100.0})
        assert achieved == {"m": pytest.approx(100.0)}

    def test_completion_callback_and_retirement(self):
        fs = FlowSet()
        done = []
        fs.add(FluidFlow("m", {"d": 1.0}, total_bytes=80.0,
                         on_complete=lambda f: done.append(f.name)))
        fs.advance(1.0, {"d": 100.0})
        assert done == ["m"]
        assert len(fs) == 0

    def test_partial_progress_keeps_flow(self):
        fs = FlowSet()
        fs.add(FluidFlow("m", {"d": 1.0}, total_bytes=500.0))
        fs.advance(1.0, {"d": 100.0})
        assert len(fs) == 1

    def test_freed_capacity_goes_to_streams(self):
        fs = FlowSet()
        fs.add(FluidFlow("m", {"d": 1.0}, total_bytes=20.0))
        fs.add(FluidFlow("c", {"d": 1.0}))
        achieved = fs.advance(1.0, {"d": 100.0})
        assert achieved["m"] == pytest.approx(20.0)
        assert achieved["c"] == pytest.approx(80.0)

    def test_last_rate_recorded(self):
        fs = FlowSet()
        f = fs.add(FluidFlow("c", {"d": 1.0}))
        fs.advance(1.0, {"d": 40.0})
        assert f.last_rate == pytest.approx(40.0)

    def test_empty_set(self):
        assert FlowSet().advance(1.0, {"d": 100.0}) == {}

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            FlowSet().advance(0.0, {})

    def test_by_name_and_remove(self):
        fs = FlowSet()
        f = fs.add(FluidFlow("x", {"d": 1.0}))
        assert fs.by_name("x") == [f]
        fs.remove(f)
        assert len(fs) == 0


class TestFlowSetIndex:
    """The tombstone position index behind O(1) remove/interrupt must
    preserve deterministic insertion order through storms and
    compaction."""

    def test_remove_preserves_order(self):
        fs = FlowSet()
        flows = [fs.add(FluidFlow(f"f{i}", {"d": 1.0})) for i in range(10)]
        fs.remove(flows[3])
        fs.remove(flows[7])
        expected = [f for i, f in enumerate(flows) if i not in (3, 7)]
        assert list(fs) == expected
        assert len(fs) == 8

    def test_interrupt_storm_preserves_order(self):
        fs = FlowSet()
        flows = [fs.add(FluidFlow(f"f{i}", {"d": 1.0},
                                  ranks=frozenset({i % 5})))
                 for i in range(100)]
        wasted = fs.interrupt_involving(2)
        assert wasted == 0.0
        survivors = [f for f in flows if 2 not in f.ranks]
        assert list(fs) == survivors
        assert len(fs) == 80

    def test_compaction_keeps_order_and_index(self):
        fs = FlowSet()
        flows = [fs.add(FluidFlow(f"f{i}", {"d": 1.0})) for i in range(100)]
        # Remove 60 (more than half, above the compaction floor) in a
        # scattered pattern, forcing at least one compaction.
        removed = set(range(0, 100, 5)) | set(range(1, 81, 2))
        for i in sorted(removed):
            fs.remove(flows[i])
        survivors = [f for i, f in enumerate(flows) if i not in removed]
        assert list(fs) == survivors
        # The index stays consistent after compaction: removal and
        # re-adding still work.
        fs.remove(survivors[0])
        fs.add(survivors[0])
        assert list(fs) == survivors[1:] + [survivors[0]]

    def test_involving_in_insertion_order(self):
        fs = FlowSet()
        a = fs.add(FluidFlow("a", {"d": 1.0}, ranks=frozenset({1, 2})))
        fs.add(FluidFlow("b", {"d": 1.0}, ranks=frozenset({3})))
        c = fs.add(FluidFlow("c", {"d": 1.0}, ranks=frozenset({2})))
        assert fs.involving(2) == [a, c]

    def test_duplicate_add_rejected(self):
        fs = FlowSet()
        f = fs.add(FluidFlow("x", {"d": 1.0}))
        with pytest.raises(ValueError):
            fs.add(f)

    def test_remove_unknown_rejected(self):
        fs = FlowSet()
        with pytest.raises(ValueError):
            fs.remove(FluidFlow("ghost", {"d": 1.0}))

    def test_generation_bumps_on_membership_changes(self):
        fs = FlowSet()
        g0 = fs.generation
        f = fs.add(FluidFlow("x", {"d": 1.0}))
        assert fs.generation > g0
        g1 = fs.generation
        fs.remove(f)
        assert fs.generation > g1
        g2 = fs.generation
        done = fs.add(FluidFlow("m", {"d": 1.0}, total_bytes=10.0))
        fs.advance(1.0, {"d": 100.0})     # completes and retires "m"
        assert done.done
        assert fs.generation > g2

    def test_iteration_snapshot_allows_mutation(self):
        fs = FlowSet()
        flows = [fs.add(FluidFlow(f"f{i}", {"d": 1.0})) for i in range(5)]
        seen = []
        for f in fs:
            seen.append(f)
            fs.remove(f)
        assert seen == flows
        assert len(fs) == 0
