"""Discrete-event engine: ordering, cancellation, periodic ticks."""

import pytest

from repro.simulation.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5.0, log.append, "late")
        sim.schedule(1.0, log.append, "early")
        sim.run()
        assert log == ["early", "late"]
        assert sim.now == 5.0

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, "first")
        sim.schedule(1.0, log.append, "second")
        sim.run()
        assert log == ["first", "second"]

    def test_schedule_at_absolute(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.schedule_at(12.0, fired.append, True)
        sim.run()
        assert fired and sim.now == 12.0

    def test_past_scheduling_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        log = []

        def chain():
            log.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert log == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, True)
        ev.cancel()
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        ev.cancel()
        assert sim.pending == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek_time() == 2.0


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(5.0, log.append, 5)
        sim.run_until(3.0)
        assert log == [1] and sim.now == 3.0
        sim.run_until(6.0)
        assert log == [1, 5]

    def test_inclusive_boundary(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, log.append, 3)
        sim.run_until(3.0)
        assert log == [3]

    def test_backwards_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(ValueError):
            sim.run_until(1.0)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        sim = Simulator()
        log = []
        sim.every(1.0, lambda: log.append(sim.now), until=3.5)
        sim.run()
        assert log == [1.0, 2.0, 3.0]

    def test_stop_iteration_halts_chain(self):
        sim = Simulator()
        log = []

        def cb():
            log.append(sim.now)
            if sim.now >= 2.0:
                raise StopIteration

        sim.every(1.0, cb)
        sim.run()
        assert log == [1.0, 2.0]

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            Simulator().every(0, lambda: None)


class TestFiniteTimes:
    """NaN compares false against everything, so an unguarded NaN
    timestamp would sail past the `< now` check and then violate the
    heap's strict weak ordering — silently, nondeterministically."""

    def test_nan_time_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="non-finite"):
            sim.schedule_at(float("nan"), lambda: None)

    def test_nan_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="non-finite"):
            sim.schedule(float("nan"), lambda: None)

    @pytest.mark.parametrize("t", [float("inf"), float("-inf")])
    def test_infinite_time_rejected(self, t):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_at(t, lambda: None)

    def test_rejected_event_leaves_no_residue(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_at(float("nan"), lambda: None)
        assert sim.pending == 0
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.now == 1.0


class TestTieBreakAtScale:
    """The documented (time, seq) total order: thousands of
    same-instant events — the shape a large client population
    produces every tick — fire exactly in scheduling order."""

    def test_same_instant_insertion_order_5000_events(self):
        sim = Simulator()
        fired = []
        for i in range(5000):
            sim.schedule_at(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(5000))

    def test_interleaved_instants_totally_ordered(self):
        # Events at mixed times, many collisions per instant: within
        # an instant the sequence number (scheduling order) decides.
        sim = Simulator()
        fired = []
        expect = {}
        for i in range(3000):
            t = float(i % 7)
            sim.schedule_at(t, fired.append, (t, i))
            expect.setdefault(t, []).append((t, i))
        sim.run()
        want = [item for t in sorted(expect) for item in expect[t]]
        assert fired == want
