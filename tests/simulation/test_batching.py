"""Batching and allocation reuse must never change a result.

Two layers of pinning:

* sha256 trace identity — same-seed experiment runs produce the
  byte-identical event stream with batching on or off and with either
  solver backend (the traces carry every per-tick ``bandwidth.solve``
  / ``engine.tick`` event and every rate, so this is the strongest
  cheap check we have);
* sample identity — ``IOModel.run``'s vectorised horizon batches
  reproduce the per-tick loop's ``samples`` exactly (timestamps and
  rates bit-for-bit), and every cache-invalidation edge (capacity,
  coefficient, rate-cap, membership changes, completions) re-solves.
"""

import hashlib
import io

import pytest

from repro.experiments.three_phase import run_three_phase
from repro.faults.harness import run_chaos
from repro.obs.runtime import OBS
from repro.obs.trace import JSONLSink
from repro.simulation.flows import FluidFlow
from repro.simulation.iomodel import IOModel, batching_enabled


def traced_digest(fn):
    OBS.reset()
    buf = io.StringIO()
    sink = JSONLSink(buf)
    OBS.bus.attach(sink)
    try:
        fn()
    finally:
        OBS.bus.detach(sink)
        OBS.reset()
    return hashlib.sha256(buf.getvalue().encode()).hexdigest()


class TestTraceIdentity:
    def test_fig7_batching_and_solver_invariant(self, monkeypatch):
        def replay():
            run_three_phase(mode="selective", scale=0.02)

        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        monkeypatch.delenv("REPRO_BATCH_TICKS", raising=False)
        base = traced_digest(replay)
        monkeypatch.setenv("REPRO_BATCH_TICKS", "0")
        assert traced_digest(replay) == base
        monkeypatch.setenv("REPRO_SOLVER", "columnar")
        assert traced_digest(replay) == base
        monkeypatch.delenv("REPRO_BATCH_TICKS")
        assert traced_digest(replay) == base

    def test_chaos_batching_invariant(self, monkeypatch):
        def replay():
            run_chaos(seed=7, scale=0.1, check=False)

        monkeypatch.delenv("REPRO_SOLVER", raising=False)
        monkeypatch.delenv("REPRO_BATCH_TICKS", raising=False)
        base = traced_digest(replay)
        monkeypatch.setenv("REPRO_BATCH_TICKS", "0")
        assert traced_digest(replay) == base
        monkeypatch.setenv("REPRO_SOLVER", "columnar")
        monkeypatch.delenv("REPRO_BATCH_TICKS")
        assert traced_digest(replay) == base


def run_samples(build, duration, monkeypatch, batch):
    """Run a scenario and return (samples, final flow progress)."""
    monkeypatch.setenv("REPRO_BATCH_TICKS", "1" if batch else "0")
    io_model, flows = build()
    io_model.run(duration)
    return io_model.samples, [(f.name, f.progressed) for f in flows]


class TestRunBatchIdentity:
    def scenario_mixed(self):
        io_model = IOModel(lambda: {"a": 100.0, "b": 80.0}, dt=1.0)
        stream = io_model.flows.add(
            FluidFlow("client", {"a": 1.0, "b": 0.5}, rate_cap=60.0))
        finite = io_model.flows.add(
            FluidFlow("migration", {"a": 0.5, "b": 1.0},
                      total_bytes=2_000.0, rate_cap=45.0))
        return io_model, [stream, finite]

    def test_samples_bitwise_identical(self, monkeypatch):
        batched, prog_b = run_samples(self.scenario_mixed, 300.0,
                                      monkeypatch, batch=True)
        pertick, prog_p = run_samples(self.scenario_mixed, 300.0,
                                      monkeypatch, batch=False)
        assert len(batched) == len(pertick) == 300
        for (tb, sb), (tp, sp) in zip(batched, pertick):
            assert tb == tp
            assert sb == sp
        assert prog_b == prog_p

    def test_completion_lands_on_same_tick(self, monkeypatch):
        completions = []

        def build():
            io_model = IOModel(lambda: {"a": 50.0}, dt=1.0)
            f = io_model.flows.add(
                FluidFlow("m", {"a": 1.0}, total_bytes=333.0, rate_cap=10.0,
                          on_complete=lambda fl: completions.append(
                              len(io_model.samples))))
            return io_model, [f]

        batched, _ = run_samples(build, 100.0, monkeypatch, batch=True)
        tick_batched = completions.pop()
        pertick, _ = run_samples(build, 100.0, monkeypatch, batch=False)
        tick_pertick = completions.pop()
        assert tick_batched == tick_pertick
        assert batched == pertick

    def test_fractional_final_tick(self, monkeypatch):
        def build():
            io_model = IOModel(lambda: {"a": 40.0}, dt=1.0)
            f = io_model.flows.add(FluidFlow("c", {"a": 1.0}, rate_cap=30.0))
            return io_model, [f]

        batched, prog_b = run_samples(build, 10.5, monkeypatch, batch=True)
        pertick, prog_p = run_samples(build, 10.5, monkeypatch, batch=False)
        assert batched == pertick
        assert prog_b == prog_p


class TestCacheInvalidation:
    def test_capacity_change_via_token(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_TICKS", "1")
        state = {"cap": 100.0, "version": 0}
        io_model = IOModel(lambda: {"a": state["cap"]}, dt=1.0,
                           capacity_token=lambda: state["version"])
        io_model.flows.add(FluidFlow("c", {"a": 1.0}))
        io_model.step(1.0)
        state["cap"] = 40.0
        state["version"] += 1
        io_model.step(2.0)
        _, vals = io_model.series("c")
        assert vals == [100.0, 40.0]

    def test_capacity_change_via_dict_compare(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_TICKS", "1")
        state = {"cap": 100.0}
        io_model = IOModel(lambda: {"a": state["cap"]}, dt=1.0)
        io_model.flows.add(FluidFlow("c", {"a": 1.0}))
        io_model.step(1.0)
        state["cap"] = 40.0
        io_model.step(2.0)
        _, vals = io_model.series("c")
        assert vals == [100.0, 40.0]

    def test_coefficient_change_invalidates(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_TICKS", "1")
        io_model = IOModel(lambda: {"a": 100.0, "b": 100.0}, dt=1.0)
        f = io_model.flows.add(FluidFlow("c", {"a": 1.0}))
        io_model.step(1.0)
        io_model.step(2.0)
        f.coefficients = {"b": 2.0}      # re-pointed at another disk
        io_model.step(3.0)
        _, vals = io_model.series("c")
        assert vals == [100.0, 100.0, 50.0]

    def test_rate_cap_change_invalidates(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_TICKS", "1")
        io_model = IOModel(lambda: {"a": 100.0}, dt=1.0)
        f = io_model.flows.add(FluidFlow("c", {"a": 1.0}))
        io_model.step(1.0)
        f.rate_cap = 25.0
        io_model.step(2.0)
        _, vals = io_model.series("c")
        assert vals == [100.0, 25.0]

    def test_membership_change_invalidates(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_TICKS", "1")
        io_model = IOModel(lambda: {"a": 100.0}, dt=1.0)
        io_model.flows.add(FluidFlow("c", {"a": 1.0}))
        io_model.step(1.0)
        second = io_model.flows.add(FluidFlow("d", {"a": 1.0}))
        io_model.step(2.0)
        io_model.flows.remove(second)
        io_model.step(3.0)
        _, vals = io_model.series("c")
        assert vals == [100.0, 50.0, 100.0]

    def test_in_place_coefficient_mutation_invalidates(self, monkeypatch):
        # A driver may mutate the coefficient mapping *in place*
        # (identity unchanged).  The cached fast path compares by
        # ordered value, so the next step must re-solve.
        monkeypatch.setenv("REPRO_BATCH_TICKS", "1")
        io_model = IOModel(lambda: {"a": 100.0}, dt=1.0)
        coeffs = {"a": 1.0}
        io_model.flows.add(FluidFlow("c", coeffs))
        io_model.step(1.0)
        io_model.step(2.0)          # cached fast path engages
        coeffs["a"] = 2.0           # same dict object, new value
        io_model.step(3.0)
        _, vals = io_model.series("c")
        assert vals == [100.0, 100.0, 50.0]

    def test_in_place_mutation_cuts_batch_horizon(self, monkeypatch):
        # Same property through the vectorised _run_batch path: a
        # mutation between run() segments must cut the horizon, not
        # ride a stale allocation.
        monkeypatch.setenv("REPRO_BATCH_TICKS", "1")
        io_model = IOModel(lambda: {"a": 100.0}, dt=1.0)
        coeffs = {"a": 1.0}
        io_model.flows.add(FluidFlow("c", coeffs))
        io_model.run(5.0)
        coeffs["a"] = 4.0
        io_model.run(5.0, start=5.0)
        _, vals = io_model.series("c")
        assert vals == [100.0] * 5 + [25.0] * 5

    def test_demand_change_mid_stretch_differs_from_stale_cache(
            self, monkeypatch):
        # The regression the serving throttle flushed out: a demand
        # (rate_cap) change mid-stretch must produce the same rates
        # the never-cached path computes — i.e. genuinely different
        # from what replaying the stale allocation would give.
        def run(batch):
            monkeypatch.setenv("REPRO_BATCH_TICKS", "1" if batch else "0")
            io_model = IOModel(lambda: {"a": 100.0}, dt=1.0)
            f = io_model.flows.add(FluidFlow("c", {"a": 1.0}))
            io_model.run(4.0)
            f.rate_cap = 30.0       # throttled mid-stretch
            io_model.run(4.0, start=4.0)
            return io_model.series("c")[1]

        cached = run(batch=True)
        fresh = run(batch=False)
        assert cached == fresh == [100.0] * 4 + [30.0] * 4

    def test_retired_by_total_bytes_clamp(self, monkeypatch):
        # The original-CH driver retires a flow by setting
        # total_bytes = progressed; the next tick must notice despite
        # no generation bump (the demand check catches it).
        monkeypatch.setenv("REPRO_BATCH_TICKS", "1")
        io_model = IOModel(lambda: {"a": 100.0}, dt=1.0)
        f = io_model.flows.add(
            FluidFlow("r", {"a": 1.0}, total_bytes=1e9, rate_cap=10.0))
        io_model.flows.add(FluidFlow("c", {"a": 1.0}))
        io_model.step(1.0)
        io_model.step(2.0)
        f.total_bytes = f.progressed
        io_model.step(3.0)
        assert len(io_model.flows) == 1
        _, vals = io_model.series("c")
        assert vals == [90.0, 90.0, 100.0]


class TestSwitchParsing:
    @pytest.mark.parametrize("val", ["0", "off", "false", "no", "OFF"])
    def test_disabled_values(self, monkeypatch, val):
        monkeypatch.setenv("REPRO_BATCH_TICKS", val)
        assert batching_enabled() is False

    @pytest.mark.parametrize("val", [None, "1", "on", "yes"])
    def test_enabled_values(self, monkeypatch, val):
        if val is None:
            monkeypatch.delenv("REPRO_BATCH_TICKS", raising=False)
        else:
            monkeypatch.setenv("REPRO_BATCH_TICKS", val)
        assert batching_enabled() is True
