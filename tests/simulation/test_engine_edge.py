"""Additional engine edge cases surfaced while building the drivers."""

import pytest

from repro.simulation.engine import Simulator


class TestReentrancy:
    def test_callback_scheduling_at_now(self):
        sim = Simulator()
        log = []

        def first():
            log.append("first")
            sim.schedule(0.0, log.append, "second")

        sim.schedule(1.0, first)
        sim.run()
        assert log == ["first", "second"]
        assert sim.now == 1.0

    def test_cancel_from_within_callback(self):
        sim = Simulator()
        fired = []
        later = sim.schedule(2.0, fired.append, "later")
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []

    def test_run_until_then_schedule(self):
        sim = Simulator()
        sim.run_until(10.0)
        fired = []
        sim.schedule(1.0, fired.append, True)
        sim.run()
        assert fired == [True]
        assert sim.now == 11.0


class TestPendingCounter:
    """The O(1) live-event counter must track a naive heap scan
    through every schedule / cancel / step / clear interleaving."""

    @staticmethod
    def naive_pending(sim):
        return sum(1 for ev in sim._heap if not ev.cancelled)

    def test_counter_matches_scan_under_random_ops(self):
        import random
        rng = random.Random(0xE17)
        sim = Simulator()
        events = []
        for _ in range(600):
            op = rng.random()
            if op < 0.45 or not events:
                events.append(sim.schedule(rng.uniform(0.0, 10.0),
                                           lambda: None))
            elif op < 0.70:
                rng.choice(events).cancel()
            elif op < 0.95:
                sim.step()
            else:
                sim.clear()
            assert sim.pending == self.naive_pending(sim)
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        assert sim.pending == 1
        ev.cancel()
        ev.cancel()
        assert sim.pending == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        ev.cancel()
        assert sim.pending == 0

    def test_clear_then_schedule(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.clear() == 5
        assert sim.pending == 0
        sim.schedule(1.0, lambda: None)
        assert sim.pending == 1


class TestClockDiscipline:
    def test_now_is_event_time_inside_callback(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_run_until_sets_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_many_same_time_events_ordered(self):
        sim = Simulator()
        log = []
        for i in range(50):
            sim.schedule(1.0, log.append, i)
        sim.run()
        assert log == list(range(50))
