"""IOModel and the placement→load bridge."""

import numpy as np
import pytest

from repro.core.elastic import ElasticConsistentHash
from repro.simulation.flows import FluidFlow
from repro.simulation.iomodel import (
    IOModel,
    client_coefficients,
    replica_load_fractions,
    replica_load_fractions_from_matrix,
)


def scalar_fractions_from_matrix(servers):
    """The reference first-encounter probe loop the vectorised
    implementation must reproduce exactly (values and key order)."""
    flat = np.asarray(servers).ravel().tolist()
    counts, order = {}, []
    total = 0
    for s in flat:
        if s < 0:
            continue
        if s not in counts:
            counts[s] = 0
            order.append(s)
        counts[s] += 1
        total += 1
    if total == 0:
        raise ValueError("probe produced no placements")
    return {s: counts[s] / total for s in order}


class TestReplicaLoadFractions:
    def test_fractions_sum_to_one(self, ech10):
        fracs = replica_load_fractions(
            lambda oid: ech10.locate(oid).servers, range(2000))
        assert sum(fracs.values()) == pytest.approx(1.0)

    def test_equal_work_concentrates_on_primaries(self, ech10):
        fracs = replica_load_fractions(
            lambda oid: ech10.locate(oid).servers, range(2000))
        # One of two replicas always lands on a primary: primaries
        # carry half the replica traffic.
        assert fracs[1] + fracs[2] == pytest.approx(0.5, abs=0.03)

    def test_uniform_layout_spreads_evenly(self):
        ech = ElasticConsistentHash(n=10, layout_mode="uniform",
                                    placement_mode="original")
        fracs = replica_load_fractions(
            lambda oid: ech.locate(oid).servers, range(3000))
        assert max(fracs.values()) < 0.16

    def test_empty_probe_rejected(self):
        with pytest.raises(ValueError):
            replica_load_fractions(lambda oid: [], [])


class TestReplicaLoadFractionsFromMatrix:
    def test_matches_scalar_probe_on_real_placement(self, ech10):
        matrix = ech10.locate_bulk(range(2000)).servers
        vectorised = replica_load_fractions_from_matrix(matrix)
        reference = scalar_fractions_from_matrix(matrix)
        # Equality of values AND first-encounter key order.
        assert list(vectorised.items()) == list(reference.items())

    def test_matches_probe_function(self, ech10):
        matrix = ech10.locate_bulk(range(2000)).servers
        probe = replica_load_fractions(
            lambda oid: ech10.locate(oid).servers, range(2000))
        assert replica_load_fractions_from_matrix(matrix) == probe

    def test_randomized_matrices_with_unplaceable_rows(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            shape = (int(rng.integers(1, 400)), int(rng.integers(1, 4)))
            matrix = rng.integers(-1, 20, size=shape)
            if (matrix < 0).all():
                continue
            vectorised = replica_load_fractions_from_matrix(matrix)
            reference = scalar_fractions_from_matrix(matrix)
            assert list(vectorised.items()) == list(reference.items())

    def test_all_unplaceable_rejected(self):
        with pytest.raises(ValueError):
            replica_load_fractions_from_matrix(np.full((4, 2), -1))

    def test_keys_are_python_ints(self):
        fracs = replica_load_fractions_from_matrix(np.array([[0, 1]]))
        assert all(type(k) is int for k in fracs)


class TestClientCoefficients:
    def test_pure_write_amplifies_by_r(self):
        coeffs = client_coefficients({1: 0.5, 2: 0.5}, replicas=2,
                                     write_ratio=1.0)
        assert coeffs == {1: pytest.approx(1.0), 2: pytest.approx(1.0)}

    def test_pure_read_no_amplification(self):
        coeffs = client_coefficients({1: 0.5, 2: 0.5}, replicas=3,
                                     write_ratio=0.0)
        assert sum(coeffs.values()) == pytest.approx(1.0)

    def test_mixed_ratio(self):
        coeffs = client_coefficients({1: 1.0}, replicas=2,
                                     write_ratio=0.2)
        assert coeffs[1] == pytest.approx(1.2)

    def test_zero_fraction_dropped(self):
        coeffs = client_coefficients({1: 1.0, 2: 0.0}, replicas=2)
        assert 2 not in coeffs

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            client_coefficients({1: 1.0}, 2, write_ratio=1.5)


class TestIOModel:
    def test_step_records_samples(self):
        io = IOModel(lambda: {"s": 100.0}, dt=1.0)
        io.flows.add(FluidFlow("client", {"s": 1.0}))
        io.step(1.0)
        io.step(2.0)
        times, vals = io.series("client")
        assert times == [1.0, 2.0]
        assert vals == [pytest.approx(100.0)] * 2

    def test_capacity_changes_take_effect(self):
        caps = {"value": 100.0}
        io = IOModel(lambda: {"s": caps["value"]}, dt=1.0)
        io.flows.add(FluidFlow("client", {"s": 1.0}))
        io.step(1.0)
        caps["value"] = 40.0
        io.step(2.0)
        _, vals = io.series("client")
        assert vals == [pytest.approx(100.0), pytest.approx(40.0)]

    def test_run_loop_with_on_tick(self):
        io = IOModel(lambda: {"s": 10.0}, dt=1.0)
        io.flows.add(FluidFlow("client", {"s": 1.0}))
        seen = []
        io.run(5.0, on_tick=seen.append)
        assert len(seen) == 5
        assert len(io.samples) == 5

    def test_total_moved(self):
        io = IOModel(lambda: {"s": 50.0}, dt=1.0)
        io.flows.add(FluidFlow("m", {"s": 1.0}, total_bytes=120.0))
        io.run(5.0)
        assert io.total_moved("m") == pytest.approx(120.0)

    def test_absent_flow_series_is_zero(self):
        io = IOModel(lambda: {"s": 50.0}, dt=1.0)
        io.step(1.0)
        _, vals = io.series("ghost")
        assert vals == [0.0]

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            IOModel(lambda: {}, dt=0.0)
