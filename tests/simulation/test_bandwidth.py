"""Max-min fair allocation with coefficients."""

import math

import pytest

from repro.simulation.bandwidth import FlowSpec, max_min_fair


class TestBasicFairness:
    def test_equal_split(self):
        rates = max_min_fair([FlowSpec({"d": 1.0}), FlowSpec({"d": 1.0})],
                             {"d": 100.0})
        assert rates == [pytest.approx(50.0)] * 2

    def test_capped_flow_releases_capacity(self):
        rates = max_min_fair(
            [FlowSpec({"d": 1.0}, demand=20.0), FlowSpec({"d": 1.0})],
            {"d": 100.0})
        assert rates == [pytest.approx(20.0), pytest.approx(80.0)]

    def test_three_flows_two_capped(self):
        rates = max_min_fair(
            [FlowSpec({"d": 1.0}, demand=10.0),
             FlowSpec({"d": 1.0}, demand=15.0),
             FlowSpec({"d": 1.0})],
            {"d": 100.0})
        assert rates == [pytest.approx(10.0), pytest.approx(15.0),
                         pytest.approx(75.0)]

    def test_disjoint_resources_independent(self):
        rates = max_min_fair(
            [FlowSpec({"a": 1.0}), FlowSpec({"b": 1.0})],
            {"a": 30.0, "b": 70.0})
        assert rates == [pytest.approx(30.0), pytest.approx(70.0)]

    def test_bottleneck_link_shared(self):
        # Flow 0 uses a+b, flow 1 only b.  b is the bottleneck.
        rates = max_min_fair(
            [FlowSpec({"a": 1.0, "b": 1.0}), FlowSpec({"b": 1.0})],
            {"a": 100.0, "b": 60.0})
        assert rates == [pytest.approx(30.0), pytest.approx(30.0)]


class TestCoefficients:
    def test_replication_amplification(self):
        # Coefficient 2 on one disk: a write stream at rate x consumes
        # 2x of the disk.
        rates = max_min_fair([FlowSpec({"d": 2.0})], {"d": 100.0})
        assert rates == [pytest.approx(50.0)]

    def test_mixed_coefficients(self):
        rates = max_min_fair(
            [FlowSpec({"d": 2.0}), FlowSpec({"d": 1.0})],
            {"d": 90.0})
        # Progressive filling: equal rates until d saturates: 3x = 90.
        assert rates == [pytest.approx(30.0)] * 2

    def test_zero_coefficient_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair([FlowSpec({"d": 0.0})], {"d": 10.0})


class TestEdgeCases:
    def test_zero_capacity_freezes_flow(self):
        rates = max_min_fair([FlowSpec({"d": 1.0})], {"d": 0.0})
        assert rates == [0.0]

    def test_zero_demand(self):
        rates = max_min_fair(
            [FlowSpec({"d": 1.0}, demand=0.0), FlowSpec({"d": 1.0})],
            {"d": 100.0})
        assert rates == [0.0, pytest.approx(100.0)]

    def test_unbounded_flow_with_no_resource_raises(self):
        with pytest.raises(ValueError):
            max_min_fair([FlowSpec({"ghost": 1.0})], {"d": 10.0})

    def test_bounded_flow_on_unknown_resource_gets_demand(self):
        rates = max_min_fair([FlowSpec({"ghost": 1.0}, demand=5.0)],
                             {"d": 10.0})
        assert rates == [pytest.approx(5.0)]

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair([FlowSpec({"d": 1.0}, demand=-1.0)], {"d": 10.0})

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            max_min_fair([FlowSpec({"d": 1.0})], {"d": -10.0})

    def test_no_flows(self):
        assert max_min_fair([], {"d": 10.0}) == []


class TestConservation:
    def test_no_resource_overcommitted(self):
        flows = [FlowSpec({"a": 1.0, "b": 2.0}),
                 FlowSpec({"b": 1.0}, demand=10.0),
                 FlowSpec({"a": 1.5, "c": 1.0})]
        caps = {"a": 50.0, "b": 40.0, "c": 30.0}
        rates = max_min_fair(flows, caps)
        for res, cap in caps.items():
            used = sum(f.coefficients.get(res, 0.0) * r
                       for f, r in zip(flows, rates))
            assert used <= cap + 1e-6

    def test_work_conserving_on_bottleneck(self):
        """Some resource must be fully used (or all demands met)."""
        flows = [FlowSpec({"a": 1.0}), FlowSpec({"a": 1.0, "b": 1.0})]
        caps = {"a": 100.0, "b": 10.0}
        rates = max_min_fair(flows, caps)
        used_a = rates[0] + rates[1]
        assert used_a == pytest.approx(100.0)
