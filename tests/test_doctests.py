"""Run the doctests embedded in module/class docstrings — the examples
users copy first must never rot."""

import doctest

import pytest

import repro.cluster.cluster
import repro.core.elastic
import repro.hashring.ring
import repro.kvstore.store
import repro.obs
import repro.obs.metrics
import repro.obs.trace
import repro.simulation.engine

MODULES = [
    repro.hashring.ring,
    repro.kvstore.store,
    repro.simulation.engine,
    repro.core.elastic,
    repro.cluster.cluster,
    repro.obs,
    repro.obs.trace,
    repro.obs.metrics,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "module has no doctests to run"
