"""The chaos harness end to end: the crash-mid-reintegration
acceptance scenario, byte-identical replay, and the report."""

import hashlib
import io

import pytest

from repro.faults.harness import ChaosResult, render_chaos_report, run_chaos
from repro.faults.plan import FaultPlan
from repro.obs import OBS
from repro.obs.trace import JSONLSink


@pytest.fixture(scope="module")
def result():
    """One small seed-7 run shared by the assertions below (~1 s)."""
    return run_chaos(seed=7, scale=0.05)


class TestAcceptanceScenario:
    def test_run_ends_healthy(self, result):
        assert result.violations == []
        assert result.ok

    def test_crash_preempts_then_work_is_reenqueued_not_dropped(
            self, result):
        """The tentpole acceptance check: the triggered crash lands
        mid-reintegration, the transfer is interrupted (partial bytes
        wasted), and the dirty entries survive to be drained — nothing
        lost, backlog zero at the end."""
        assert result.transfers["interrupted"] >= 1
        assert result.transfers["retries"] >= 1
        assert sum(result.wasted_bytes.values()) > 0
        assert result.lost_objects == []
        assert result.degraded_objects == []
        assert result.dirty_backlog == 0

    def test_faults_all_fired(self, result):
        kinds = [f["kind"] for f in result.faults]
        assert "crash" in kinds and "repair" in kinds
        assert "slow_disk.start" in kinds and "link_loss.start" in kinds

    def test_final_audit_fully_replicated(self, result):
        assert result.final_audit["label"] == "final"
        assert result.final_audit["lost"] == 0
        assert result.final_audit["under_replicated"] == 0
        assert result.final_audit["quarantined"] == 0

    def test_three_phases_completed(self, result):
        assert set(result.phase_ends) == {"phase1", "phase2", "phase3"}

    def test_checkers_were_attached_and_fed(self, result):
        assert result.checkers == 15
        assert result.events_seen > 0


class TestDeterminism:
    @staticmethod
    def _traced_digest(seed):
        OBS.reset()
        buf = io.StringIO()
        sink = OBS.bus.attach(JSONLSink(buf))
        try:
            run_chaos(seed=seed, scale=0.05, check=False)
        finally:
            OBS.bus.detach(sink)
        return hashlib.sha256(buf.getvalue().encode()).hexdigest()

    def test_same_seed_byte_identical_trace(self):
        assert self._traced_digest(7) == self._traced_digest(7)

    def test_different_seed_different_trace(self):
        assert self._traced_digest(7) != self._traced_digest(8)


class TestParameterValidation:
    def test_off_count_bounds(self):
        with pytest.raises(ValueError, match="off_count"):
            run_chaos(n=10, off_count=10)

    def test_phase2_must_hold_replicas(self):
        with pytest.raises(ValueError, match="replicas"):
            run_chaos(n=4, replicas=2, off_count=3)

    def test_plan_ranks_validated(self):
        plan = FaultPlan.three_phase_default(seed=1, n=25, off_count=8)
        with pytest.raises(ValueError, match="rank"):
            run_chaos(n=10, plan=plan)


class TestReport:
    def test_report_sections(self, result):
        report = render_chaos_report(result)
        for heading in ("# chaos report", "## fault timeline",
                        "## transfers", "## replication audits",
                        "## invariants", "## outcome"):
            assert heading in report
        assert "verdict: **OK**" in report
        assert "all 15 checkers hold" in report

    def test_check_false_skips_checkers(self):
        result = run_chaos(seed=7, scale=0.02, check=False)
        assert result.checkers == 0
        report = render_chaos_report(result)
        assert "checkers not attached" in report

    def test_degraded_verdict(self):
        bad = ChaosResult(seed=1, n=10, replicas=2, scale=0.1,
                          duration=10.0, lost_objects=[5])
        assert not bad.ok
        assert "verdict: **DEGRADED**" in render_chaos_report(bad)
