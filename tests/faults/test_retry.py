"""Retry policy: backoff shape, deterministic jitter, quarantine
threshold."""

import pytest

from repro.faults.retry import RetryPolicy


class TestBackoff:
    def test_exponential_then_capped(self):
        p = RetryPolicy(base_delay=1.0, factor=2.0, max_delay=5.0,
                        jitter=0.0)
        assert [p.delay(a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]

    def test_attempt_is_one_based(self):
        p = RetryPolicy(jitter=0.0)
        with pytest.raises(ValueError):
            p.delay(0)

    def test_jitter_shaves_at_most_the_fraction(self):
        p = RetryPolicy(base_delay=2.0, factor=1.0, max_delay=2.0,
                        jitter=0.25, seed=1)
        for attempt in range(1, 8):
            d = p.delay(attempt, key="x")
            assert 2.0 * 0.75 <= d <= 2.0

    def test_jitter_deterministic_per_key_and_attempt(self):
        p = RetryPolicy(jitter=0.5, seed=3)
        assert p.delay(2, "a") == p.delay(2, "a")
        assert p.delay(2, "a") != p.delay(3, "a")
        assert p.delay(2, "a") != p.delay(2, "b")

    def test_seed_namespaces_jitter(self):
        a = RetryPolicy(jitter=0.5, seed=1)
        b = RetryPolicy(jitter=0.5, seed=2)
        assert a.delay(1, "k") != b.delay(1, "k")


class TestExhaustion:
    def test_threshold(self):
        p = RetryPolicy(max_attempts=3)
        assert not p.exhausted(2)
        assert p.exhausted(3)
        assert p.exhausted(4)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"base_delay": 0.0},
        {"base_delay": float("nan")},
        {"factor": 0.5},
        {"max_delay": 0.1},          # < base_delay
        {"max_attempts": 0},
        {"jitter": 1.0},
        {"jitter": -0.1},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
