"""Retry policy: backoff shape, deterministic jitter, quarantine
threshold."""

import pytest

from repro.faults.retry import RetryPolicy


class TestBackoff:
    def test_exponential_then_capped(self):
        p = RetryPolicy(base_delay=1.0, factor=2.0, max_delay=5.0,
                        jitter=0.0)
        assert [p.delay(a) for a in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]

    def test_attempt_is_one_based(self):
        p = RetryPolicy(jitter=0.0)
        with pytest.raises(ValueError):
            p.delay(0)

    def test_jitter_shaves_at_most_the_fraction(self):
        p = RetryPolicy(base_delay=2.0, factor=1.0, max_delay=2.0,
                        jitter=0.25, seed=1)
        for attempt in range(1, 8):
            d = p.delay(attempt, key="x")
            assert 2.0 * 0.75 <= d <= 2.0

    def test_jitter_deterministic_per_key_and_attempt(self):
        p = RetryPolicy(jitter=0.5, seed=3)
        assert p.delay(2, "a") == p.delay(2, "a")
        assert p.delay(2, "a") != p.delay(3, "a")
        assert p.delay(2, "a") != p.delay(2, "b")

    def test_seed_namespaces_jitter(self):
        a = RetryPolicy(jitter=0.5, seed=1)
        b = RetryPolicy(jitter=0.5, seed=2)
        assert a.delay(1, "k") != b.delay(1, "k")


class TestExhaustion:
    def test_threshold(self):
        p = RetryPolicy(max_attempts=3)
        assert not p.exhausted(2)
        assert p.exhausted(3)
        assert p.exhausted(4)


class TestBoundaries:
    def test_jitter_zero_is_exact(self):
        # At jitter=0 the interval [(1-jitter)*d, d] collapses to a
        # point: every delay is exactly the capped exponential.
        p = RetryPolicy(base_delay=0.25, factor=3.0, max_delay=2.0,
                        jitter=0.0)
        assert [p.delay(a, "k") for a in (1, 2, 3, 4)] == \
            [0.25, 0.75, 2.0, 2.0]

    def test_factor_one_is_constant(self):
        # factor=1 degenerates to fixed-delay retry; jitter still
        # shaves off at most its fraction.
        p = RetryPolicy(base_delay=1.5, factor=1.0, max_delay=1.5,
                        jitter=0.0)
        assert [p.delay(a) for a in range(1, 6)] == [1.5] * 5
        j = RetryPolicy(base_delay=1.5, factor=1.0, max_delay=1.5,
                        jitter=0.5, seed=9)
        for a in range(1, 6):
            assert 0.75 <= j.delay(a, "k") <= 1.5

    @pytest.mark.parametrize("jitter", [0.0, 0.25, 0.999])
    @pytest.mark.parametrize("factor", [1.0, 2.0, 10.0])
    def test_delay_always_in_documented_interval(self, jitter, factor):
        # The delay() contract: for every valid policy and attempt,
        # the result lands in [(1-jitter)*d, d] and in (0, max_delay].
        p = RetryPolicy(base_delay=0.5, factor=factor, max_delay=6.0,
                        jitter=jitter, seed=4)
        for attempt in range(1, 12):
            d = min(0.5 * factor ** (attempt - 1), 6.0)
            got = p.delay(attempt, key=f"t{attempt}")
            assert (1.0 - jitter) * d <= got <= d
            assert 0.0 < got <= 6.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"base_delay": 0.0},
        {"base_delay": float("nan")},
        {"base_delay": float("inf")},
        {"factor": 0.5},
        {"factor": float("nan")},
        {"factor": float("inf")},
        {"max_delay": 0.1},          # < base_delay
        {"max_delay": float("nan")},
        {"max_delay": float("inf")},
        {"max_attempts": 0},
        {"jitter": 1.0},
        {"jitter": -0.1},
        {"jitter": float("nan")},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_max_delay_equal_to_base_is_allowed(self):
        p = RetryPolicy(base_delay=2.0, factor=2.0, max_delay=2.0,
                        jitter=0.0)
        assert p.delay(5) == 2.0
