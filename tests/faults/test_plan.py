"""Fault plans: validation, JSON round-trip, seeded generation."""

import pytest

from repro.faults.plan import FaultEvent, FaultPlan


class TestFaultEvent:
    def test_crash_requires_repair_window(self):
        with pytest.raises(ValueError, match="repair_after"):
            FaultEvent(kind="crash", time=1.0, rank=3)

    def test_crash_ok(self):
        e = FaultEvent(kind="crash", time=1.0, rank=3, repair_after=5.0)
        assert e.rank == 3 and e.repair_after == 5.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor", time=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(kind="crash", time=-1.0, rank=1, repair_after=1.0)

    def test_slow_disk_needs_factor_below_one(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent(kind="slow_disk", time=0.0, rank=1,
                       duration=5.0, factor=1.5)

    def test_link_loss_endpoints_must_differ(self):
        with pytest.raises(ValueError, match="differ"):
            FaultEvent(kind="link_loss", time=0.0, rank=2, peer=2,
                       duration=1.0)

    def test_unknown_trigger_rejected(self):
        with pytest.raises(ValueError, match="trigger"):
            FaultEvent(kind="crash", time=0.0, rank=1, repair_after=1.0,
                       trigger="full-moon")

    def test_dict_round_trip_drops_nones(self):
        e = FaultEvent(kind="slow_disk", time=2.0, rank=4,
                       duration=10.0, factor=0.5)
        d = e.to_dict()
        assert "peer" not in d and "repair_after" not in d
        assert FaultEvent.from_dict(d) == e

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown fault-event"):
            FaultEvent.from_dict({"kind": "crash", "time": 0.0,
                                  "rank": 1, "repair_after": 1.0,
                                  "severity": "high"})


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.three_phase_default(seed=11)
        path = tmp_path / "plan.json"
        plan.dump(str(path))
        loaded = FaultPlan.load(str(path))
        assert loaded.seed == 11
        assert loaded.events == plan.events

    def test_from_json_rejects_non_plan(self):
        with pytest.raises(ValueError, match="events"):
            FaultPlan.from_json("[1, 2, 3]")

    def test_check_ranks(self):
        plan = FaultPlan([FaultEvent(kind="crash", time=0.0, rank=12,
                                     repair_after=1.0)])
        with pytest.raises(ValueError, match="rank 12"):
            plan.check_ranks(10)
        plan.check_ranks(12)  # fine at n=12

    def test_timed_vs_triggered_split(self):
        plan = FaultPlan.three_phase_default(seed=3)
        assert not plan.timed()          # all curated events triggered
        assert plan.triggered("reintegration")
        assert len(plan.triggered("phase2")) == 1


class TestGenerate:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(seed=5, n=10, duration=300.0)
        b = FaultPlan.generate(seed=5, n=10, duration=300.0)
        assert a.events == b.events

    def test_different_seed_different_plan(self):
        a = FaultPlan.generate(seed=5, n=10, duration=300.0)
        b = FaultPlan.generate(seed=6, n=10, duration=300.0)
        assert a.events != b.events

    def test_crashes_never_overlap(self):
        """Each crash repairs before the next one lands, so two
        overlapping outages can never eat both replicas."""
        plan = FaultPlan.generate(seed=9, n=10, duration=600.0,
                                  crashes=4)
        crashes = sorted((e for e in plan if e.kind == "crash"),
                         key=lambda e: e.time)
        for prev, nxt in zip(crashes, crashes[1:]):
            assert prev.time + prev.repair_after < nxt.time

    def test_generated_events_validate_against_n(self):
        plan = FaultPlan.generate(seed=2, n=6, duration=120.0,
                                  crashes=2, slow_disks=2, link_losses=2)
        plan.check_ranks(6)
        assert len(plan) == 6

    def test_default_default_plan_spares_rank_one(self):
        for seed in range(20):
            plan = FaultPlan.generate(seed=seed, n=10, duration=200.0)
            assert all(e.rank != 1 for e in plan if e.kind == "crash")


class TestThreePhaseDefault:
    def test_crash_targets_a_repowered_secondary(self):
        for seed in range(10):
            plan = FaultPlan.three_phase_default(seed, n=10, off_count=4)
            crash = next(e for e in plan if e.kind == "crash")
            assert crash.rank in range(7, 11)
            assert crash.trigger == "reintegration"
            assert crash.repair_after > 0

    def test_deterministic(self):
        a = FaultPlan.three_phase_default(7)
        b = FaultPlan.three_phase_default(7)
        assert a.events == b.events
