"""The fault injector: deterministic expansion, triggers, ambient
state."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs import OBS
from repro.obs.trace import RingBufferSink
from repro.simulation.engine import Simulator


def crash(t, rank, repair_after=5.0, trigger=None):
    return FaultEvent(kind="crash", time=t, rank=rank,
                      repair_after=repair_after, trigger=trigger)


class TestArming:
    def test_timed_events_expand_to_paired_actions(self):
        plan = FaultPlan([
            crash(10.0, 3, repair_after=7.0),
            FaultEvent(kind="slow_disk", time=2.0, rank=5, duration=4.0,
                       factor=0.5),
        ])
        sim = Simulator()
        injector = FaultInjector(plan)
        fired = []
        assert injector.arm(sim, lambda a: fired.append(
            (sim.now, a.kind, a.rank))) == 4
        sim.run()
        assert fired == [
            (2.0, "slow_disk.start", 5),
            (6.0, "slow_disk.end", 5),
            (10.0, "crash", 3),
            (17.0, "repair", 3),
        ]

    def test_triggered_events_wait_for_fire_trigger(self):
        plan = FaultPlan([crash(2.0, 4, trigger="reintegration")])
        sim = Simulator()
        injector = FaultInjector(plan)
        fired = []
        assert injector.arm(sim, lambda a: fired.append(
            (sim.now, a.kind))) == 0
        sim.run_until(30.0)
        assert fired == []
        assert injector.fire_trigger("reintegration", now=30.0) == 2
        sim.run()
        assert fired == [(32.0, "crash"), (37.0, "repair")]

    def test_trigger_fires_only_once(self):
        plan = FaultPlan([crash(1.0, 4, trigger="recovery")])
        sim = Simulator()
        injector = FaultInjector(plan)
        injector.arm(sim, lambda a: None)
        assert injector.fire_trigger("recovery", now=0.0) == 2
        assert injector.fire_trigger("recovery", now=5.0) == 0

    def test_fire_trigger_requires_arming(self):
        injector = FaultInjector(FaultPlan([]))
        with pytest.raises(RuntimeError, match="not armed"):
            injector.fire_trigger("phase2")


class TestAmbientState:
    def test_disk_factor_window(self):
        plan = FaultPlan([FaultEvent(kind="slow_disk", time=1.0, rank=2,
                                     duration=3.0, factor=0.4)])
        sim = Simulator()
        injector = FaultInjector(plan)
        injector.arm(sim, lambda a: None)
        assert injector.disk_factor(2) == 1.0
        sim.run_until(1.5)
        assert injector.disk_factor(2) == 0.4
        assert injector.capacity_factors() == {2: 0.4}
        sim.run_until(5.0)
        assert injector.disk_factor(2) == 1.0
        assert injector.capacity_factors() == {}

    def test_overlapping_degradations_compose_worst_case(self):
        plan = FaultPlan([
            FaultEvent(kind="slow_disk", time=0.0, rank=2, duration=10.0,
                       factor=0.5),
            FaultEvent(kind="slow_disk", time=2.0, rank=2, duration=2.0,
                       factor=0.2),
        ])
        sim = Simulator()
        injector = FaultInjector(plan)
        injector.arm(sim, lambda a: None)
        sim.run_until(3.0)
        assert injector.disk_factor(2) == 0.2
        sim.run_until(5.0)
        assert injector.disk_factor(2) == 0.5

    def test_link_blocked_during_window_only(self):
        plan = FaultPlan([FaultEvent(kind="link_loss", time=1.0, rank=3,
                                     peer=7, duration=4.0)])
        sim = Simulator()
        injector = FaultInjector(plan)
        injector.arm(sim, lambda a: None)
        assert not injector.link_blocked({3, 7, 9})
        sim.run_until(2.0)
        assert injector.link_blocked({3, 7, 9})
        assert not injector.link_blocked({3, 9})    # one endpoint only
        sim.run_until(6.0)
        assert not injector.link_blocked({3, 7})


class TestEvents:
    def test_fault_inject_events_emitted(self):
        plan = FaultPlan([crash(1.0, 6, repair_after=2.0)])
        sim = Simulator()
        injector = FaultInjector(plan)
        injector.arm(sim, lambda a: None)
        sink = OBS.bus.attach(RingBufferSink())
        try:
            sim.run()
        finally:
            OBS.bus.detach(sink)
        injected = sink.events("fault.inject")
        assert [e["action"] for e in injected] == ["crash", "repair"]
        assert all(e["rank"] == 6 for e in injected)
        assert [(t, a.kind) for t, a in injector.applied] == \
            [(1.0, "crash"), (3.0, "repair")]
