"""Interruptible transfers: ack-before-commit, re-enqueue on
preemption, backoff, quarantine."""

from collections import Counter

import pytest

from repro.faults.retry import RetryPolicy
from repro.faults.transfers import PlannedTransfer, TransferJob, TransferManager
from repro.obs import OBS
from repro.obs.trace import RingBufferSink
from repro.simulation.flows import FlowSet


class FakeCluster:
    """Just the surface TransferManager needs: rank pinning and waste
    accounting."""

    def __init__(self):
        self.inflight = Counter()
        self.wasted = Counter()

    def acquire_ranks(self, ranks):
        for r in ranks:
            self.inflight[r] += 1

    def release_ranks(self, ranks):
        for r in ranks:
            self.inflight[r] -= 1
            if self.inflight[r] == 0:
                del self.inflight[r]

    def record_wasted_bytes(self, kind, nbytes):
        self.wasted[kind] += nbytes


@pytest.fixture
def rig():
    cluster = FakeCluster()
    flows = FlowSet()
    policy = RetryPolicy(base_delay=1.0, factor=2.0, max_delay=8.0,
                         max_attempts=3, jitter=0.0)
    manager = TransferManager(cluster, flows, policy)
    sink = OBS.bus.attach(RingBufferSink())
    yield cluster, flows, manager, sink
    OBS.bus.detach(sink)


def simple_job(key="recovery:r3v1", nbytes=200.0, ranks=(1,),
               oids=(10, 11), commit=None):
    def plan_fn():
        return PlannedTransfer(
            nbytes=nbytes, ranks=frozenset(ranks), oids=tuple(oids),
            commit=commit or (lambda: None))
    return TransferJob(key=key, kind="recovery", plan_fn=plan_fn)


class TestCompletion:
    def test_ack_precedes_commit(self, rig):
        cluster, flows, manager, sink = rig
        acked_before_commit = []

        def commit():
            acked_before_commit.append(
                bool(sink.events("transfer.ack")))

        manager.submit(simple_job(commit=commit), now=0.0)
        assert manager.poll(0.0) == 1
        assert cluster.inflight == {1: 1}
        flows.advance(1.0, {1: 100.0})
        flows.advance(1.0, {1: 100.0})   # 200 bytes drained
        assert acked_before_commit == [True]
        assert manager.completed == 1
        assert manager.idle
        assert not cluster.inflight
        starts = sink.events("transfer.start")
        assert starts[0]["transfer"] == "recovery"
        assert starts[0]["attempt"] == 1

    def test_zero_byte_plan_acks_and_commits_immediately(self, rig):
        cluster, flows, manager, sink = rig
        committed = []
        job = simple_job(nbytes=0.0, commit=lambda: committed.append(1))
        manager.submit(job, now=0.0)
        manager.poll(0.0)
        assert committed == [1]
        assert job.status == "done"
        assert len(flows) == 0
        assert sink.events("transfer.ack")
        assert not cluster.inflight

    def test_plan_fn_returning_none_means_done(self, rig):
        cluster, flows, manager, sink = rig
        job = TransferJob(key="k", kind="recovery", plan_fn=lambda: None)
        manager.submit(job, now=0.0)
        assert manager.poll(0.0) == 0
        assert job.status == "done"
        assert manager.completed == 1
        assert not sink.events("transfer.start")


class TestInterruption:
    def test_crash_reenqueues_with_wasted_bytes(self, rig):
        cluster, flows, manager, sink = rig
        committed = []
        job = simple_job(ranks=(3, 4), commit=lambda: committed.append(1))
        manager.submit(job, now=0.0)
        manager.poll(0.0)
        flows.advance(1.0, {3: 50.0, 4: 50.0})   # partial progress
        OBS.bus.clock = 1.0
        assert manager.on_crash(3) == 1
        # No commit happened, ranks released, waste accounted, and the
        # job is back in the queue with a backoff.
        assert committed == []
        assert not cluster.inflight
        assert job.status == "pending"
        assert job.wasted_bytes > 0
        assert cluster.wasted["recovery"] == job.wasted_bytes
        assert job.ready_at == pytest.approx(1.0 + 1.0)  # base_delay
        retry = sink.events("transfer.retry")[0]
        assert retry["reason"] == "interrupted"
        assert manager.stats()["interrupted"] == 1

    def test_interrupted_job_relaunches_and_completes(self, rig):
        cluster, flows, manager, sink = rig
        committed = []
        job = simple_job(ranks=(3,), commit=lambda: committed.append(1))
        manager.submit(job, now=0.0)
        manager.poll(0.0)
        flows.advance(1.0, {3: 50.0})
        OBS.bus.clock = 1.0
        manager.on_crash(3)
        assert manager.poll(1.5) == 0        # backoff not expired yet
        assert manager.poll(2.0) == 1        # re-launched, fresh plan
        flows.advance(2.0, {3: 100.0})       # full 200 bytes again
        assert committed == [1]
        assert job.attempts == 2

    def test_crash_only_hits_dependent_transfers(self, rig):
        cluster, flows, manager, sink = rig
        a = simple_job(key="a", ranks=(3,))
        b = simple_job(key="b", ranks=(5,))
        manager.submit(a, now=0.0)
        manager.submit(b, now=0.0)
        manager.poll(0.0)
        OBS.bus.clock = 0.5
        assert manager.on_crash(3) == 1
        assert a.status == "pending" and b.status == "active"

    def test_link_loss_hits_spanning_transfers(self, rig):
        cluster, flows, manager, sink = rig
        a = simple_job(key="a", ranks=(3, 7))
        b = simple_job(key="b", ranks=(3, 5))
        manager.submit(a, now=0.0)
        manager.submit(b, now=0.0)
        manager.poll(0.0)
        OBS.bus.clock = 0.5
        assert manager.on_link_loss({3, 7}) == 1
        assert a.status == "pending" and b.status == "active"


class TestBackoffAndQuarantine:
    def test_link_blocked_launch_backs_off_without_spinning(self, rig):
        cluster, flows, manager, sink = rig
        job = simple_job(ranks=(3, 7))
        manager._link_blocked = lambda ranks: True
        manager.submit(job, now=0.0)
        assert manager.poll(0.0) == 0
        assert job.status == "pending"
        assert job.ready_at > 0.0           # future: the poll can't spin
        assert len(flows) == 0
        assert not cluster.inflight
        assert sink.events("transfer.retry")[0]["reason"] == "link-blocked"

    def test_quarantine_after_max_attempts_surfaces_degraded(self, rig):
        cluster, flows, manager, sink = rig
        job = simple_job(oids=(42, 43), ranks=(3, 7))
        manager._link_blocked = lambda ranks: True
        manager.submit(job, now=0.0)
        now = 0.0
        for _ in range(5):
            manager.poll(now)
            now = max(now + 0.1, job.ready_at)
            if job.status == "quarantined":
                break
        assert job.status == "quarantined"
        assert job.attempts == 3
        assert manager.degraded_objects() == (42, 43)
        assert manager.idle                  # quarantined ≠ waiting
        q = sink.events("transfer.quarantine")[0]
        assert q["oids"] == [42, 43]
        assert q["attempts"] == 3
