"""run_serve: determinism, flow-control outcomes, SLO verdicts.

The configs here are deliberately small (tens of seconds, tens of
clients) so the whole file runs in a few seconds; the CI
``serving-smoke`` job exercises the full default scale.
"""

import hashlib
import io

import pytest

from repro.obs.runtime import OBS
from repro.obs.trace import JSONLSink
from repro.serving import render_serve_report, run_serve

#: Small but genuinely contended: 6 servers with 2 off leaves little
#: headroom, so the resize window pressures the queues.
SMALL = dict(seed=11, n=6, off_count=2, clients=40, users=400_000,
             duration=30.0, resize_at=10.0, resize_back_at=20.0)

#: Overloaded during the shrink window: enough open-loop arrival rate
#: that an unenforced bound is guaranteed to blow through.
OVERLOAD = dict(seed=7, n=6, off_count=3, clients=120, users=2_500_000,
                duration=40.0, resize_at=10.0, resize_back_at=30.0)


def traced_digest(**kwargs):
    OBS.reset()
    buf = io.StringIO()
    sink = JSONLSink(buf)
    OBS.bus.attach(sink)
    try:
        run_serve(**kwargs)
    finally:
        OBS.bus.detach(sink)
        OBS.reset()
    return hashlib.sha256(buf.getvalue().encode()).hexdigest()


class TestDeterminism:
    def test_same_seed_traces_byte_identical(self):
        a = traced_digest(controller="adaptive", **SMALL)
        b = traced_digest(controller="adaptive", **SMALL)
        assert a == b

    def test_seed_changes_the_trace(self):
        base = dict(SMALL)
        base.pop("seed")
        a = traced_digest(seed=11, **base)
        b = traced_digest(seed=12, **base)
        assert a != b

    def test_closed_loop_only_byte_identical(self):
        # users=1 at a vanishing rate: the first open-loop arrival
        # lands far past the horizon, leaving pure closed-loop load.
        cfg = dict(SMALL, users=1, per_user_rate=1e-12)
        assert (traced_digest(controller="adaptive", **cfg)
                == traced_digest(controller="adaptive", **cfg))

    def test_open_loop_only_byte_identical(self):
        cfg = dict(SMALL, clients=1, think_time=1e6)
        assert (traced_digest(controller="adaptive", **cfg)
                == traced_digest(controller="adaptive", **cfg))


class TestFlowControlOutcomes:
    @pytest.fixture(scope="class")
    def overloaded(self):
        OBS.reset()
        out = {ctrl: run_serve(controller=ctrl, **OVERLOAD)
               for ctrl in ("unthrottled", "adaptive", "fixed")}
        OBS.reset()
        return out

    def test_unthrottled_blows_its_declared_bound(self, overloaded):
        r = overloaded["unthrottled"]
        assert not r.bounded
        assert r.max_queue_depth > r.queue_bound
        assert any("serve-queue-bounded" in v for v in r.violations)
        assert not r.ok

    def test_adaptive_keeps_the_bound_checker_green(self, overloaded):
        r = overloaded["adaptive"]
        assert r.bounded
        assert not any("serve-queue-bounded" in v for v in r.violations)

    def test_fixed_keeps_the_bound(self, overloaded):
        assert overloaded["fixed"].bounded

    def test_adaptive_slows_closed_loop_instead_of_shedding(
            self, overloaded):
        # Backpressure substitutes delay for rejection: the adaptive
        # policy sheds less than the fixed limit at the same bound.
        rej_adaptive = sum(overloaded["adaptive"].rejected.values())
        rej_fixed = sum(overloaded["fixed"].rejected.values())
        assert rej_adaptive < rej_fixed

    def test_latency_surfaced_per_population_and_pooled(self, overloaded):
        r = overloaded["adaptive"]
        for pop in ("closed", "open", "overall"):
            stats = r.latency[pop]
            assert stats["count"] > 0
            assert 0.0 < stats["p50"] <= stats["p99"] <= stats["p999"]


class TestReportAndVerdicts:
    def test_report_sections(self):
        OBS.reset()
        r = run_serve(controller="adaptive", **SMALL)
        OBS.reset()
        text = render_serve_report(r)
        for needle in ("# serve report", "client-perceived latency",
                       "flow control", "invariants", "outcome",
                       "p999"):
            assert needle in text

    def test_missed_slo_flips_verdict(self):
        OBS.reset()
        r = run_serve(controller="adaptive", slo_p99=1e-9, **SMALL)
        OBS.reset()
        assert r.slo_met is False and not r.ok
        assert "MISSED" in render_serve_report(r)

    def test_migration_competes_during_resize_back(self):
        OBS.reset()
        r = run_serve(controller="adaptive", **SMALL)
        OBS.reset()
        assert r.migration_bytes > 0

    @pytest.mark.parametrize("kwargs", [
        {"off_count": 6},                     # nothing left
        {"off_count": 5},                     # cannot hold replicas
        {"resize_at": 25.0},                  # after resize_back_at
        {"write_ratio": 1.5},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        cfg = dict(SMALL, n=6)
        cfg.update(kwargs)
        with pytest.raises(ValueError):
            run_serve(**cfg)
