"""Admission coordinator: queue discipline, drain accounting,
backpressure delays, failover, and event emission."""

import pytest

from repro.obs.runtime import OBS
from repro.obs.trace import RingBufferSink
from repro.serving.coordinator import AdmissionCoordinator, Request
from repro.serving.flowcontrol import (
    AdaptiveQueueController,
    FixedConcurrencyController,
    UnthrottledController,
)
from repro.simulation.engine import Simulator
from repro.simulation.iomodel import IOModel


def make_stack(controller=None, caps=None, dt=1.0):
    OBS.reset()
    sim = Simulator()
    io = IOModel(lambda: dict(caps or {1: 100.0, 2: 100.0}), dt=dt)
    coord = AdmissionCoordinator(
        sim, io, controller or UnthrottledController(), dt)
    return sim, io, coord


def req(rid, server=1, nbytes=50.0, pop="closed", t=0.0, **kw):
    return Request(rid=rid, pop=pop, oid=rid, is_write=False,
                   server=server, nbytes=nbytes, t_enqueue=t, **kw)


def tick(sim, io, coord, now):
    coord.begin_tick()
    sim.run_until(now)
    coord.end_tick(now, io.step(now))


class TestAdmission:
    def test_enqueue_counts_and_creates_flow(self):
        _, io, coord = make_stack()
        assert coord.enqueue(req(1))
        assert coord.enqueued == {"closed": 1}
        assert len(io.flows.by_name("serve:1")) == 1

    def test_reject_fires_on_reject_and_counts(self):
        _, _, coord = make_stack(FixedConcurrencyController(limit=1))
        bounced = []
        assert coord.enqueue(req(1))
        assert not coord.enqueue(req(2, on_reject=bounced.append))
        assert [r.rid for r in bounced] == [2]
        assert coord.rejected == {"closed": 1}

    def test_bad_nbytes_rejected(self):
        with pytest.raises(ValueError):
            req(1, nbytes=0.0)


class TestDrain:
    def test_fifo_completion_order_and_latency(self):
        sim, io, coord = make_stack()
        done = []
        coord.enqueue(req(1, nbytes=60.0,
                          on_complete=lambda r, t: done.append((r.rid, t))))
        coord.enqueue(req(2, nbytes=60.0,
                          on_complete=lambda r, t: done.append((r.rid, t))))
        tick(sim, io, coord, 1.0)   # 100 B/s: drains req1 + 40 of req2
        assert [d[0] for d in done] == []
        sim.run_until(1.0)          # completion callbacks were scheduled
        assert [d[0] for d in done] == [1]
        tick(sim, io, coord, 2.0)
        sim.run_until(2.0)
        assert [d[0] for d in done] == [1, 2]
        assert coord.latencies["closed"] == [1.0, 2.0]
        assert coord.served_bytes == 120.0

    def test_new_arrival_cannot_drain_in_its_own_tick(self):
        # begin_tick fixes the budget from the start-of-tick backlog;
        # a request arriving mid-tick waits for the next one even if
        # the disk had spare capacity.
        sim, io, coord = make_stack()
        coord.begin_tick()          # empty queue -> zero demand
        sim.schedule_at(0.5, lambda: coord.enqueue(req(1, nbytes=10.0)))
        sim.run_until(1.0)
        coord.end_tick(1.0, io.step(1.0))
        assert coord.completed == {}
        tick(sim, io, coord, 2.0)
        assert coord.completed == {"closed": 1}

    def test_queues_share_capacity_fairly(self):
        sim, io, coord = make_stack(caps={1: 100.0})
        coord.enqueue(req(1, server=1, nbytes=80.0))
        coord.enqueue(req(2, server=1, nbytes=80.0, pop="open"))
        for i in range(1, 3):
            tick(sim, io, coord, float(i))
        assert coord.completed == {"closed": 1, "open": 1}

    def test_max_depth_tracked(self):
        _, _, coord = make_stack()
        for rid in range(5):
            coord.enqueue(req(rid))
        assert coord.max_depth == 5
        assert coord.outstanding == 5


class TestBackpressure:
    def test_delay_added_to_latency_and_schedule(self):
        ctrl = AdaptiveQueueController(bound=64, target=1, gain=1.0,
                                       max_delay=10.0)
        sim, io, coord = make_stack(ctrl, caps={1: 100.0})
        coord.background_active = True
        done = []
        coord.enqueue(req(1, nbytes=100.0,
                          on_complete=lambda r, t: done.append(t)))
        for _ in range(3):          # backlog keeps depth at 3 post-drain
            coord.enqueue(req(99, nbytes=1e6))
        tick(sim, io, coord, 1.0)
        # depth after drain = 3 > target 1: delay = 1.0*(3-1)/1*2 = 4.0
        assert coord.latencies["closed"] == [5.0]
        assert done == []           # held back...
        sim.run_until(5.0)
        assert done == [5.0]        # ...and released at now+delay


class TestFailover:
    def test_requests_relocated_with_original_enqueue_time(self):
        sim, io, coord = make_stack()
        coord.enqueue(req(1, server=1, nbytes=50.0, t=0.0))
        moved = coord.failover([1], lambda r: 2)
        assert moved == 1
        assert not io.flows.by_name("serve:1")
        tick(sim, io, coord, 1.0)
        assert coord.completed == {"closed": 1}
        assert coord.latencies["closed"] == [1.0]   # from t_enqueue=0
        # net accounting: admitted once, not twice
        assert coord.enqueued == {"closed": 1}

    def test_failover_respects_admission(self):
        ctrl = FixedConcurrencyController(limit=1)
        sim, io, coord = make_stack(ctrl)
        bounced = []
        coord.enqueue(req(1, server=2))
        coord.enqueue(req(2, server=1, on_reject=bounced.append))
        coord.failover([1], lambda r: 2)     # queue 2 already full
        assert [r.rid for r in bounced] == [2]
        assert coord.rejected == {"closed": 1}

    def test_shutdown_retires_serve_flows(self):
        _, io, coord = make_stack()
        coord.enqueue(req(1, server=1))
        coord.enqueue(req(2, server=2))
        assert len(io.flows) == 2
        coord.shutdown()
        assert len(io.flows) == 0
        assert coord.outstanding == 2        # honest: still unfinished


class TestEvents:
    def test_serve_event_family_emitted(self):
        sim, io, coord = make_stack(FixedConcurrencyController(limit=1))
        sink = RingBufferSink()
        OBS.bus.attach(sink)
        try:
            coord.enqueue(req(1, nbytes=50.0))
            coord.enqueue(req(2))
            tick(sim, io, coord, 1.0)
            coord.failover([1], lambda r: 2)
        finally:
            OBS.bus.detach(sink)
        kinds = [e["kind"] for e in sink.events()
                 if e["kind"].startswith("serve.")]
        assert "serve.enqueue" in kinds
        assert "serve.reject" in kinds
        assert "serve.complete" in kinds
        assert "serve.queue" in kinds
        queue_ev = sink.events("serve.queue")[0]
        assert queue_ev["bound"] == 1
