"""Flow-control policies: admission, backpressure shape, validation."""

import pytest

from repro.serving.flowcontrol import (
    AdaptiveQueueController,
    FixedConcurrencyController,
    FlowController,
    UnthrottledController,
    make_controller,
)


class TestUnthrottled:
    def test_admits_at_any_depth(self):
        c = UnthrottledController(declared_bound=4)
        assert c.admit(1, 0) and c.admit(1, 4) and c.admit(1, 10_000)

    def test_never_delays(self):
        c = UnthrottledController()
        assert c.completion_delay(1, 500, True) == 0.0

    def test_declares_a_bound_it_does_not_enforce(self):
        # The asymmetry the serve-queue-bounded checker exploits.
        c = UnthrottledController(declared_bound=8)
        assert c.queue_bound() == 8
        assert c.admit(1, 9)


class TestFixedConcurrency:
    def test_admits_strictly_below_limit(self):
        c = FixedConcurrencyController(limit=3)
        assert c.admit(1, 2)
        assert not c.admit(1, 3)
        assert not c.admit(1, 4)

    def test_bound_equals_limit(self):
        assert FixedConcurrencyController(limit=7).queue_bound() == 7

    def test_never_delays(self):
        c = FixedConcurrencyController(limit=3)
        assert c.completion_delay(1, 2, True) == 0.0

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            FixedConcurrencyController(limit=0)


class TestAdaptive:
    def test_invisible_at_or_below_target(self):
        c = AdaptiveQueueController(bound=64, target=8)
        assert c.completion_delay(1, 8, False) == 0.0
        assert c.completion_delay(1, 0, True) == 0.0

    def test_delay_grows_with_depth(self):
        c = AdaptiveQueueController(bound=64, target=8, gain=0.1,
                                    max_delay=10.0)
        d16 = c.completion_delay(1, 16, False)
        d32 = c.completion_delay(1, 32, False)
        assert 0.0 < d16 < d32
        assert d16 == pytest.approx(0.1 * (16 - 8) / 8)

    def test_background_scales_the_delay(self):
        c = AdaptiveQueueController(bound=64, target=8, gain=0.1,
                                    background_factor=2.0, max_delay=10.0)
        quiet = c.completion_delay(1, 24, False)
        busy = c.completion_delay(1, 24, True)
        assert busy == pytest.approx(2.0 * quiet)

    def test_delay_capped(self):
        c = AdaptiveQueueController(bound=64, target=1, gain=5.0,
                                    max_delay=1.5)
        assert c.completion_delay(1, 64, True) == 1.5

    def test_admission_backstop_at_bound(self):
        c = AdaptiveQueueController(bound=16, target=4)
        assert c.admit(1, 15)
        assert not c.admit(1, 16)

    @pytest.mark.parametrize("kwargs", [
        {"bound": 0},
        {"target": 0},
        {"bound": 8, "target": 9},
        {"gain": -0.1},
        {"background_factor": 0.5},
        {"max_delay": 0.0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveQueueController(**kwargs)


class TestFactory:
    @pytest.mark.parametrize("kind, cls", [
        ("unthrottled", UnthrottledController),
        ("fixed", FixedConcurrencyController),
        ("adaptive", AdaptiveQueueController),
    ])
    def test_builds_each_policy(self, kind, cls):
        c = make_controller(kind)
        assert isinstance(c, cls)
        assert isinstance(c, FlowController)
        assert c.name == kind

    def test_kwargs_forwarded(self):
        assert make_controller("fixed", limit=5).queue_bound() == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown flow controller"):
            make_controller("bogus")
