"""Algorithm 2 — selective data re-integration (§III-E-3)."""

import pytest

from repro.core.elastic import ElasticConsistentHash
from repro.core.reintegration import ReintegrationEngine


def shrink_write_grow(n=10, write_oids=range(100), shrink_to=5, grow_to=10):
    ech = ElasticConsistentHash(n=n, replicas=2)
    ech.set_active(shrink_to)
    for oid in write_oids:
        ech.record_write(oid)
    ech.set_active(grow_to)
    return ech


class TestBasicFlow:
    def test_full_power_drains_table(self):
        ech = shrink_write_grow()
        engine = ReintegrationEngine(ech)
        report = engine.step()
        assert report.caught_up
        assert report.entries_processed == 100
        assert report.entries_removed == 100
        assert ech.dirty.is_empty()

    def test_migrations_match_placement_diffs(self):
        ech = shrink_write_grow()
        engine = ReintegrationEngine(ech)
        report = engine.step()
        for task in report.tasks:
            old = ech.locate(task.oid, task.entry_version).servers
            new = ech.locate(task.oid, task.target_version).servers
            assert set(task.moved_to) == set(new) - set(old)
            assert set(task.dropped_from) == set(old) - set(new)

    def test_unmoved_objects_produce_no_tasks(self):
        ech = shrink_write_grow()
        engine = ReintegrationEngine(ech)
        report = engine.step()
        # Objects whose placement did not change are processed but not
        # migrated.
        assert report.entries_migrated < report.entries_processed

    def test_bytes_counted_per_receiving_server(self):
        ech = shrink_write_grow()
        engine = ReintegrationEngine(ech, object_size=lambda oid: 100)
        report = engine.step()
        expected = sum(len(t.moved_to) * 100 for t in report.tasks)
        assert report.bytes_migrated == expected

    def test_callback_invoked_per_task(self):
        ech = shrink_write_grow()
        seen = []
        engine = ReintegrationEngine(ech, on_migrate=seen.append)
        report = engine.step()
        assert seen == report.tasks


class TestPartialPower:
    def test_entries_kept_below_full_power(self):
        ech = shrink_write_grow(grow_to=8)
        engine = ReintegrationEngine(ech)
        report = engine.step()
        assert report.caught_up
        assert report.entries_removed == 0
        assert len(ech.dirty) == 100  # LRANGE path: nothing popped

    def test_no_migration_when_not_grown(self):
        """Line 6: act only when the current version has *more* active
        servers."""
        ech = ElasticConsistentHash(n=10, replicas=2)
        ech.set_active(5)
        for oid in range(50):
            ech.record_write(oid)
        ech.set_active(4)  # shrank further
        engine = ReintegrationEngine(ech)
        report = engine.step()
        assert report.entries_migrated == 0
        assert report.caught_up

    def test_second_growth_restarts_scan(self):
        ech = shrink_write_grow(grow_to=7)
        engine = ReintegrationEngine(ech)
        first = engine.step()
        assert first.caught_up
        ech.set_active(10)
        second = engine.step()
        # Restart processed every entry again (restart_dirty_entry).
        assert second.entries_processed == 100
        assert ech.dirty.is_empty()


class TestStaleness:
    def test_stale_entry_skipped(self):
        ech = ElasticConsistentHash(n=10, replicas=2)
        ech.set_active(5)
        ech.record_write(42)          # version 2
        ech.set_active(6)
        ech.record_write(42)          # version 3 — supersedes v2 entry
        ech.set_active(10)
        engine = ReintegrationEngine(ech)
        report = engine.step()
        assert report.entries_stale == 1
        # Only the v3 entry may produce migration traffic.
        assert all(t.entry_version == 3 for t in report.tasks)
        assert ech.dirty.is_empty()


class TestBudget:
    def test_budget_pauses_and_resumes(self):
        ech = shrink_write_grow()
        engine = ReintegrationEngine(ech, object_size=lambda oid: 1000)
        total = ReintegrationEngine(
            shrink_write_grow(), object_size=lambda oid: 1000
        ).step().bytes_migrated
        moved = 0
        rounds = 0
        while True:
            rep = engine.step(budget_bytes=5_000)
            moved += rep.bytes_migrated
            rounds += 1
            if rep.caught_up:
                break
            assert rep.bytes_migrated >= 5_000  # budget actually bites
        assert moved == total
        assert rounds > 1

    def test_max_entries_limit(self):
        ech = shrink_write_grow()
        engine = ReintegrationEngine(ech)
        rep = engine.step(max_entries=10)
        assert rep.entries_processed == 10
        assert not rep.caught_up
        assert engine.pending == 90

    def test_pause_blocks_processing(self):
        ech = shrink_write_grow()
        engine = ReintegrationEngine(ech)
        engine.pause()
        assert engine.step().entries_processed == 0
        engine.resume()
        assert engine.step().entries_processed == 100


class TestPendingBytes:
    def test_total_pending_matches_actual(self):
        ech = shrink_write_grow()
        engine = ReintegrationEngine(ech)
        predicted = engine.total_pending_bytes()
        actual = engine.step().bytes_migrated
        assert predicted == actual

    def test_zero_when_nothing_to_do(self):
        ech = ElasticConsistentHash(n=10, replicas=2)
        for oid in range(10):
            ech.record_write(oid)
        assert ReintegrationEngine(ech).total_pending_bytes() == 0


class TestReportMerge:
    def test_merge_accumulates(self):
        ech = shrink_write_grow()
        engine = ReintegrationEngine(ech)
        acc = engine.step(max_entries=30)
        rest = engine.step()
        acc.merge(rest)
        assert acc.entries_processed == 100
        assert acc.caught_up
