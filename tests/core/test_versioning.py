"""Membership tables and version history (§III-E-1)."""

import pytest

from repro.core.versioning import MembershipTable, VersionHistory


def table(version=1, n=5, active=None):
    ranks = tuple(range(1, n + 1))
    return MembershipTable(version=version, ranks=ranks,
                           active=frozenset(active or ranks))


class TestMembershipTable:
    def test_full_power(self):
        t = table()
        assert t.is_full_power
        assert t.num_active == 5

    def test_partial_power(self):
        t = table(active=[1, 2, 3])
        assert not t.is_full_power
        assert t.active_ranks() == [1, 2, 3]
        assert t.inactive_ranks() == [4, 5]

    def test_is_active(self):
        t = table(active=[1, 2])
        assert t.is_active(1)
        assert not t.is_active(5)

    def test_states_rendering(self):
        t = table(active=[1])
        s = t.states()
        assert s[1] == "on" and s[2] == "off"

    def test_version_must_be_positive(self):
        with pytest.raises(ValueError):
            table(version=0)

    def test_unknown_active_rank_rejected(self):
        with pytest.raises(ValueError):
            MembershipTable(version=1, ranks=(1, 2),
                            active=frozenset([3]))

    def test_unsorted_ranks_rejected(self):
        with pytest.raises(ValueError):
            MembershipTable(version=1, ranks=(2, 1), active=frozenset([1]))

    def test_duplicate_ranks_rejected(self):
        with pytest.raises(ValueError):
            MembershipTable(version=1, ranks=(1, 1), active=frozenset([1]))

    def test_immutable(self):
        t = table()
        with pytest.raises(AttributeError):
            t.version = 2  # type: ignore[misc]


class TestVersionHistory:
    def test_starts_at_version_1_full_power(self):
        h = VersionHistory(range(1, 6))
        assert h.current_version == 1
        assert h.current.is_full_power

    def test_initially_active_subset(self):
        h = VersionHistory(range(1, 6), initially_active=[1, 2])
        assert h.current.num_active == 2

    def test_advance_increments_version(self):
        h = VersionHistory(range(1, 6))
        t = h.advance([1, 2, 3])
        assert t.version == 2
        assert h.current_version == 2

    def test_noop_advance_rejected(self):
        h = VersionHistory(range(1, 6))
        with pytest.raises(ValueError):
            h.advance([1, 2, 3, 4, 5])

    def test_history_is_append_only_lookup(self):
        h = VersionHistory(range(1, 6))
        h.advance([1, 2, 3])
        h.advance([1, 2, 3, 4])
        assert h.get(1).num_active == 5
        assert h.get(2).num_active == 3
        assert h.get(3).num_active == 4
        assert len(h) == 3

    def test_unknown_version_rejected(self):
        h = VersionHistory(range(1, 6))
        with pytest.raises(KeyError):
            h.get(9)
        with pytest.raises(KeyError):
            h.get(0)

    def test_num_active_helper(self):
        h = VersionHistory(range(1, 6))
        h.advance([1, 2])
        assert h.num_active(1) == 5
        assert h.num_active(2) == 2

    def test_iteration_in_version_order(self):
        h = VersionHistory(range(1, 4))
        h.advance([1, 2])
        assert [t.version for t in h] == [1, 2]

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            VersionHistory([])
