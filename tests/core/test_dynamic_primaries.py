"""Dynamic primary-count re-layout (the SpringFS-style extension)."""

import pytest

from repro.cluster.cluster import ElasticCluster
from repro.core.dynamic_primaries import (
    apply_relayout,
    plan_primary_resize,
)
from repro.core.elastic import ElasticConsistentHash

MB4 = 4 * 1024 * 1024


class TestPlan:
    def test_plan_is_pure(self, ech10):
        before_weights = ech10.layout.weight_map()
        plan_primary_resize(ech10, 5)
        assert ech10.p == 2
        assert ech10.layout.weight_map() == before_weights

    def test_weight_changes_reported(self, ech10):
        plan = plan_primary_resize(ech10, 5)
        # Every rank changes weight when p goes 2 -> 5 (primaries from
        # B/2 to B/5, secondary denominators shift).
        assert 1 in plan.weight_changes
        old, new = plan.weight_changes[1]
        assert old == 5_000 and new == 2_000

    def test_moved_fraction_in_unit_range(self, ech10):
        plan = plan_primary_resize(ech10, 5, sample_oids=range(500))
        assert 0.0 < plan.moved_fraction <= 1.0

    def test_min_active_tracks_p(self, ech10):
        plan = plan_primary_resize(ech10, 5)
        assert plan.old_min_active == 2
        assert plan.new_min_active == 5

    def test_bigger_change_moves_more(self, ech10):
        small = plan_primary_resize(ech10, 3, sample_oids=range(1000))
        big = plan_primary_resize(ech10, 8, sample_oids=range(1000))
        assert big.moved_fraction > small.moved_fraction

    def test_out_of_range_rejected(self, ech10):
        with pytest.raises(ValueError):
            plan_primary_resize(ech10, 0)
        with pytest.raises(ValueError):
            plan_primary_resize(ech10, 11)


class TestApply:
    def test_roles_and_weights_switch(self, ech10):
        apply_relayout(ech10, 5)
        assert ech10.p == 5
        assert ech10.min_active == 5
        assert ech10.is_primary(5)
        assert ech10.ring.weight_of(1) == 2_000

    def test_invariant_holds_after_relayout(self, ech10):
        apply_relayout(ech10, 5)
        for oid in range(300):
            res = ech10.locate(oid)
            assert sum(1 for s in res.servers if ech10.is_primary(s)) == 1

    def test_requires_full_power(self, ech10):
        ech10.set_active(6)
        with pytest.raises(RuntimeError):
            apply_relayout(ech10, 5)

    def test_requires_empty_dirty_table(self, ech10):
        ech10.set_active(6)
        ech10.record_write(1)
        ech10.set_active(10)
        with pytest.raises(RuntimeError):
            apply_relayout(ech10, 5)

    def test_uniform_layout_mode_supported(self):
        ech = ElasticConsistentHash(n=10, layout_mode="uniform")
        apply_relayout(ech, 5)
        assert ech.p == 5
        # Uniform weights stay uniform across the change.
        assert len({ech.ring.weight_of(r) for r in range(1, 11)}) == 1


class TestClusterIntegration:
    def test_set_primary_count_migrates_and_restores_layout(self):
        cl = ElasticCluster(n=10, replicas=2)
        for oid in range(500):
            cl.write(oid, MB4)
        moved = cl.set_primary_count(5)
        assert moved > 0
        for obj in cl.catalog:
            assert (set(cl.stored_locations(obj.oid))
                    == set(cl.ech.locate(obj.oid).servers))
        assert cl.verify_replication() == []

    def test_write_capacity_grows_with_p(self):
        """The §I motivation: more primaries = more write spindles."""
        from repro.simulation.bandwidth import FlowSpec, max_min_fair
        from repro.simulation.iomodel import (
            client_coefficients,
            replica_load_fractions,
        )

        def capacity(cl):
            fr = replica_load_fractions(
                lambda o: cl.ech.locate(o).servers, range(9000, 11000))
            coeffs = client_coefficients(fr, 2, 1.0)
            return max_min_fair([FlowSpec(coefficients=coeffs)],
                                {r: 64e6 for r in range(1, 11)})[0]

        cl = ElasticCluster(n=10, replicas=2)
        for oid in range(200):
            cl.write(oid, MB4)
        before = capacity(cl)
        cl.set_primary_count(5)
        after = capacity(cl)
        assert after > before * 1.3

    def test_shrink_p_after_grow_roundtrip(self):
        cl = ElasticCluster(n=10, replicas=2)
        for oid in range(300):
            cl.write(oid, MB4)
        cl.set_primary_count(5)
        cl.set_primary_count(2)
        assert cl.ech.p == 2
        for obj in cl.catalog:
            assert (set(cl.stored_locations(obj.oid))
                    == set(cl.ech.locate(obj.oid).servers))

    def test_elasticity_traded_for_writes(self):
        """After growing p, the cluster cannot shrink as far — the
        other side of the SpringFS trade-off."""
        cl = ElasticCluster(n=10, replicas=2)
        for oid in range(100):
            cl.write(oid, MB4)
        cl.set_primary_count(5)
        cl.resize(2)
        assert cl.num_active == 5  # floored at the new p
