"""Dirty-data tracking (§III-E-2, Figure 6)."""

import pytest

from repro.core.dirty_table import DirtyEntry, DirtyTable
from repro.kvstore.sharded import ShardedKVStore


@pytest.fixture
def table():
    return DirtyTable()


class TestInsert:
    def test_insert_and_len(self, table):
        assert table.insert(100, 8)
        assert table.insert(200, 8)
        assert len(table) == 2
        assert not table.is_empty()

    def test_dedupe_same_oid_version(self, table):
        assert table.insert(100, 8)
        assert not table.insert(100, 8)
        assert len(table) == 1

    def test_same_oid_new_version_appends(self, table):
        table.insert(100, 8)
        table.insert(100, 9)
        assert len(table) == 2

    def test_version_regression_rejected(self, table):
        table.insert(100, 9)
        with pytest.raises(ValueError):
            table.insert(200, 8)

    def test_contains(self, table):
        table.insert(100, 8)
        assert table.contains(100, 8)
        assert not table.contains(100, 9)
        assert table.contains_oid(100)
        assert not table.contains_oid(999)


class TestFetchOrder:
    def test_version_then_oid_order(self, table):
        """§III-E-3: 'version ascending and OID ascending if the
        version is the same' — Figure 6's dirty table layout."""
        table.insert(100, 8)
        table.insert(200, 8)
        table.insert(9, 9)
        table.insert(103, 9)
        table.insert(10010, 9)
        table.insert(20400, 9)
        table.insert(102, 10)
        got = [(e.version, e.oid) for e in table.entries()]
        assert got == [(8, 100), (8, 200), (9, 9), (9, 103), (9, 10010),
                       (9, 20400), (10, 102)]

    def test_oid_order_within_version_regardless_of_insert_order(self, table):
        table.insert(500, 3)
        table.insert(10, 3)
        table.insert(99, 3)
        assert [e.oid for e in table.entries()] == [10, 99, 500]

    def test_head(self, table):
        assert table.head() is None
        table.insert(300, 5)
        table.insert(2, 5)
        assert table.head() == DirtyEntry(version=5, oid=2)

    def test_iter_matches_entries(self, table):
        table.insert(1, 1)
        table.insert(2, 1)
        assert list(table) == table.entries()


class TestRemoval:
    def test_remove_specific_entry(self, table):
        table.insert(100, 8)
        table.insert(200, 8)
        assert table.remove(DirtyEntry(version=8, oid=100))
        assert [e.oid for e in table.entries()] == [200]

    def test_remove_missing_is_false(self, table):
        assert not table.remove(DirtyEntry(version=1, oid=1))

    def test_remove_oid_clears_all_versions(self, table):
        table.insert(100, 8)
        table.insert(100, 9)
        table.insert(200, 9)
        assert table.remove_oid(100) == 2
        assert not table.contains_oid(100)
        assert len(table) == 1

    def test_clear(self, table):
        table.insert(1, 1)
        table.insert(2, 2)
        table.clear()
        assert table.is_empty()
        assert table.head() is None


class TestVersionQueries:
    def test_versions_present(self, table):
        table.insert(1, 3)
        table.insert(2, 5)
        assert table.versions_present() == [3, 5]

    def test_entries_for_version(self, table):
        table.insert(1, 3)
        table.insert(2, 3)
        table.insert(3, 5)
        assert [e.oid for e in table.entries_for_version(3)] == [1, 2]


class TestSharding:
    def test_entries_spread_over_shards(self):
        kv = ShardedKVStore([f"s{i}" for i in range(4)])
        table = DirtyTable(kv)
        for oid in range(100):
            table.insert(oid, 1)
        holding = [sid for sid in kv.shard_ids
                   if any(k.startswith("oid:")
                          for k in kv.shard(sid).keys())]
        assert len(holding) == 4

    def test_order_preserved_across_shards(self):
        kv = ShardedKVStore([f"s{i}" for i in range(4)])
        table = DirtyTable(kv)
        for version in (1, 2, 3):
            for oid in range(10):
                table.insert(oid * 7 + version, version)
        entries = table.entries()
        assert entries == sorted(entries)

    def test_dedupe_off_allows_duplicates(self):
        table = DirtyTable(dedupe=False)
        table.insert(1, 1)
        table.insert(1, 1)
        assert len(table) == 2


class TestMembershipChange:
    """§III-E-2: the table follows cluster membership.  Because every
    entry lives under a routed per-OID key, shard add/remove migrates
    the remapped lists and the table's contents survive unchanged."""

    def fill(self, table):
        expected = []
        for version in (1, 2, 3):
            for oid in range(40):
                table.insert(oid * 3 + version, version)
                expected.append(DirtyEntry(version=version,
                                           oid=oid * 3 + version))
        expected.sort()
        return expected

    def test_contents_intact_across_add_shard(self):
        kv = ShardedKVStore([f"s{i}" for i in range(3)])
        table = DirtyTable(kv)
        expected = self.fill(table)
        kv.add_shard("s-new")
        assert table.entries() == expected
        assert len(table) == len(expected)
        assert table.head() == expected[0]

    def test_contents_intact_across_remove_shard(self):
        kv = ShardedKVStore([f"s{i}" for i in range(4)])
        table = DirtyTable(kv)
        expected = self.fill(table)
        kv.remove_shard("s2")
        assert table.entries() == expected
        assert len(table) == len(expected)

    def test_removal_still_routes_after_membership_change(self):
        kv = ShardedKVStore([f"s{i}" for i in range(3)])
        table = DirtyTable(kv)
        expected = self.fill(table)
        kv.add_shard("s-new")
        head = table.head()
        assert table.remove(head)
        assert len(table) == len(expected) - 1
        assert head not in table.entries()
