"""Facade-level failure bookkeeping (mark_failed / mark_repaired) and
the corner cases around locate_current_replicas."""

import pytest

from repro.core.elastic import ElasticConsistentHash


class TestMarkFailed:
    def test_creates_version_excluding_rank(self, ech10):
        t = ech10.mark_failed(7)
        assert t.version == 2
        assert not t.is_active(7)

    def test_failed_while_inactive_is_versionless(self, ech10):
        ech10.set_active(5)
        v = ech10.current_version
        t = ech10.mark_failed(9)   # rank 9 was already off
        assert t.version == v
        assert 9 in ech10.failed

    def test_chain_skips_failed_on_resize(self, ech10):
        ech10.mark_failed(3)
        ech10.set_active(5)
        assert ech10.membership.active_ranks() == [1, 2, 4, 5, 6]

    def test_repair_restores_chain_position(self, ech10):
        ech10.mark_failed(3)
        ech10.set_active(5)
        ech10.mark_repaired(3)
        ech10.set_active(5)
        assert ech10.membership.active_ranks() == [1, 2, 3, 4, 5]

    def test_double_fail_rejected(self, ech10):
        ech10.mark_failed(7)
        with pytest.raises(ValueError):
            ech10.mark_failed(7)

    def test_unknown_rank_rejected(self, ech10):
        with pytest.raises(KeyError):
            ech10.mark_failed(42)

    def test_repair_of_healthy_rejected(self, ech10):
        with pytest.raises(ValueError):
            ech10.mark_repaired(5)

    def test_failing_everything_rejected(self):
        ech = ElasticConsistentHash(n=2, replicas=2, p=1)
        ech.mark_failed(2)
        with pytest.raises(RuntimeError):
            ech.mark_failed(1)

    def test_placement_avoids_failed_rank(self, ech10):
        ech10.mark_failed(4)
        for oid in range(200):
            assert 4 not in ech10.locate(oid).servers

    def test_failed_primary_degrades_placements(self, ech10):
        ech10.mark_failed(1)
        degraded = 0
        for oid in range(200):
            res = ech10.locate(oid)
            assert 1 not in res.servers
            primaries = sum(1 for s in res.servers
                            if ech10.is_primary(s))
            # Only rank 2 remains primary; every object still gets
            # exactly one copy there unless degraded.
            if res.degraded:
                degraded += 1
            else:
                assert primaries == 1
        assert degraded == 0  # one primary is still enough for r=2


class TestLocateCurrentReplicas:
    def test_unwritten_object_rejected(self, ech10):
        with pytest.raises(KeyError):
            ech10.locate_current_replicas(999)

    def test_tracks_write_version(self, ech10):
        ech10.set_active(5)
        ech10.record_write(42)
        ech10.set_active(10)
        # Still located via the write version until re-integration.
        assert (ech10.locate_current_replicas(42).servers
                == ech10.locate(42, version=2).servers)

    def test_advances_with_partial_reintegration(self, ech10):
        from repro.core.reintegration import ReintegrationEngine
        ech10.set_active(5)
        ech10.record_write(42)
        ech10.set_active(8)
        ReintegrationEngine(ech10).step()
        assert (ech10.locate_current_replicas(42).servers
                == ech10.locate(42, version=3).servers)
