"""Equal-work layout (§III-C) and capacity planning (§III-D)."""

import math

import pytest

from repro.core.layout import (
    CapacityPlan,
    EqualWorkLayout,
    equal_work_weights,
    expected_block_fractions,
    primary_count,
)


class TestPrimaryCount:
    def test_paper_example_10_servers(self):
        """§III-C: for n=10, p = ceil(10/e^2) = 2."""
        assert primary_count(10) == 2

    def test_formula(self):
        for n in (1, 5, 20, 50, 100, 500):
            assert primary_count(n) == max(1, math.ceil(n / math.e ** 2))

    def test_at_least_one(self):
        assert primary_count(1) == 1

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            primary_count(0)
        with pytest.raises(ValueError):
            primary_count(10, replicas=0)


class TestEqualWorkWeights:
    def test_paper_example_B1000(self):
        """§III-C's worked example: B=1000, p=2 → primaries get 500,
        server 6 gets 1000/6 = 166 (integer division)."""
        w = equal_work_weights(10, B=1000, p=2)
        assert w[1] == 500 and w[2] == 500
        assert w[6] == 1000 // 6

    def test_secondary_weights_decay_as_one_over_rank(self):
        w = equal_work_weights(20, B=100_000)
        p = primary_count(20)
        for i in range(p + 1, 21):
            assert w[i] == 100_000 // i

    def test_weights_never_zero(self):
        w = equal_work_weights(50, B=50)
        assert all(v >= 1 for v in w.values())

    def test_B_too_small_rejected(self):
        with pytest.raises(ValueError):
            equal_work_weights(100, B=50)

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError):
            equal_work_weights(10, B=1000, p=0)
        with pytest.raises(ValueError):
            equal_work_weights(10, B=1000, p=11)

    def test_fractions_sum_to_one(self):
        fracs = expected_block_fractions(equal_work_weights(10, B=10_000))
        assert sum(fracs.values()) == pytest.approx(1.0)


class TestEqualWorkLayout:
    def test_create_defaults(self):
        lay = EqualWorkLayout.create(10)
        assert lay.p == 2
        assert lay.min_active == 2
        assert list(lay.primary_ranks) == [1, 2]
        assert list(lay.secondary_ranks) == list(range(3, 11))

    def test_roles(self):
        lay = EqualWorkLayout.create(10)
        assert lay.is_primary(1) and lay.is_primary(2)
        assert not lay.is_primary(3)

    def test_weight_of(self):
        lay = EqualWorkLayout.create(10, B=1000)
        assert lay.weight_of(1) == 500
        assert lay.weight_of(10) == 100

    def test_weights_non_increasing_beyond_primaries(self):
        lay = EqualWorkLayout.create(30, B=100_000)
        ws = [lay.weight_of(r) for r in lay.secondary_ranks]
        assert ws == sorted(ws, reverse=True)

    def test_uniform_variant(self):
        lay = EqualWorkLayout.uniform(10, B=10_000)
        assert len(set(lay.weights)) == 1
        assert lay.p == 2  # roles still defined

    def test_uniform_rejects_small_B(self):
        with pytest.raises(ValueError):
            EqualWorkLayout.uniform(100, B=10)


class TestCapacityPlan:
    def test_uses_paper_tiers_by_default(self):
        lay = EqualWorkLayout.create(10)
        plan = CapacityPlan.for_layout(lay)
        assert set(plan.capacities) <= set(CapacityPlan.DEFAULT_TIERS)

    def test_capacity_non_increasing_with_rank(self):
        lay = EqualWorkLayout.create(20)
        plan = CapacityPlan.for_layout(lay)
        caps = list(plan.capacities)
        assert caps == sorted(caps, reverse=True)

    def test_few_distinct_tiers(self):
        """§III-D: 'we use only a few different capacity
        configurations'."""
        lay = EqualWorkLayout.create(100)
        plan = CapacityPlan.for_layout(lay)
        assert len(set(plan.capacities)) <= len(CapacityPlan.DEFAULT_TIERS)

    def test_neighbouring_ranks_share_tiers(self):
        lay = EqualWorkLayout.create(50)
        plan = CapacityPlan.for_layout(lay)
        # Tier assignment must be contiguous in rank: once we step down
        # to a smaller tier we never step back up.
        seen = []
        for cap in plan.capacities:
            if not seen or cap != seen[-1]:
                seen.append(cap)
        assert seen == sorted(set(seen), reverse=True)

    def test_capacity_covers_expected_share(self):
        lay = EqualWorkLayout.create(10)
        total = 10 * 10 ** 12
        plan = CapacityPlan.for_layout(lay, total_capacity=total)
        fracs = lay.expected_fractions()
        for rank in lay.ranks:
            needed = fracs[rank] * total
            assert (plan.capacity_of(rank) >= needed
                    or plan.capacity_of(rank) == max(plan.tiers))

    def test_utilisation(self):
        lay = EqualWorkLayout.create(3, p=1)
        plan = CapacityPlan.for_layout(lay)
        util = plan.utilisation({1: plan.capacity_of(1) // 2})
        assert util[1] == pytest.approx(0.5)
        assert util[2] == 0.0

    def test_bad_tiers_rejected(self):
        lay = EqualWorkLayout.create(5)
        with pytest.raises(ValueError):
            CapacityPlan.for_layout(lay, tiers=[0, 100])
