"""The slot-table placement kernel: table/bulk placement must be
indistinguishable from the reference ring walk, and the memo must drop
itself whenever the state it caches changes."""

import json

import numpy as np
import pytest

from repro.core.elastic import ElasticConsistentHash
from repro.core.kernel import PlacementKernel
from repro.core.placement import (
    place_original_from_slot,
    place_primary_from_slot,
)
from repro.experiments.three_phase import run_three_phase
from repro.hashring.ring import HashRing
from repro.obs.runtime import OBS


def reference(ech, oid, version):
    table = (ech.history.current if version is None
             else ech.history.get(version))
    try:
        return ech._locate_reference(oid, table)
    except LookupError:
        return None


def power_levels(ech):
    """Every legal active count, min upward."""
    return range(ech.min_active, ech.n + 1)


class TestExhaustiveEquivalence:
    """Acceptance criterion: table placement ≡ reference walk for every
    slot of rings at n ∈ {4, 10, 25}, all power levels, both chain
    modes — flags included."""

    @pytest.mark.parametrize("n", [4, 10, 25])
    @pytest.mark.parametrize("chain", ["walk", "rehash"])
    def test_every_slot_every_power_level(self, n, chain):
        ech = ElasticConsistentHash(n=n, replicas=2, B=60, chain=chain)
        # Visit every power level (descending then ascending so both
        # shrink- and grow-created versions are covered).
        for k in sorted(power_levels(ech), reverse=True):
            ech.set_active(k)
        for k in power_levels(ech):
            ech.set_active(k)
        for version in range(1, ech.current_version + 1):
            table = ech.history.get(version)
            tbl = ech._kernel.table(version, table.is_active)
            for slot in range(tbl.num_slots):
                try:
                    ref = place_primary_from_slot(
                        ech.ring, slot, ech.replicas,
                        ech.is_primary, table.is_active, chain)
                except LookupError:
                    ref = None
                if ref is None:
                    with pytest.raises(LookupError):
                        tbl.lookup(slot)
                else:
                    got = tbl.lookup(slot)
                    assert got.servers == ref.servers
                    assert got.degraded == ref.degraded
                    assert got.skipped_inactive == ref.skipped_inactive

    @pytest.mark.parametrize("n", [4, 10])
    def test_every_slot_original_mode(self, n):
        ech = ElasticConsistentHash(n=n, replicas=2, B=60,
                                    placement_mode="original")
        for k in power_levels(ech):
            ech.set_active(k)
        for version in range(1, ech.current_version + 1):
            table = ech.history.get(version)
            tbl = ech._kernel.table(version, table.is_active)
            for slot in range(tbl.num_slots):
                try:
                    ref = place_original_from_slot(
                        ech.ring, slot, ech.replicas, table.is_active)
                except LookupError:
                    ref = None
                if ref is None:
                    with pytest.raises(LookupError):
                        tbl.lookup(slot)
                else:
                    got = tbl.lookup(slot)
                    assert (got.servers, got.degraded,
                            got.skipped_inactive) == \
                        (ref.servers, ref.degraded, ref.skipped_inactive)


class TestLocateEquivalence:
    """Property: kernel-served locate / locate_bulk match the reference
    walk across seeds, cluster sizes, power states and chain modes."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n,chain,mode", [
        (4, "walk", "primary"),
        (10, "rehash", "primary"),
        (25, "walk", "primary"),
        (10, "walk", "original"),
    ])
    def test_scalar_and_bulk_match_reference(self, seed, n, chain, mode):
        rng = np.random.default_rng(seed)
        ech = ElasticConsistentHash(n=n, replicas=3, B=200, chain=chain,
                                    placement_mode=mode)
        for k in rng.choice(list(power_levels(ech)), size=4,
                            replace=True):
            ech.set_active(int(k))
        oids = [int(x) for x in rng.integers(0, 10**9, size=400)]
        for version in [None] + list(range(1, ech.current_version + 1)):
            refs = [reference(ech, oid, version) for oid in oids]
            for oid, ref in zip(oids, refs):
                if ref is None:
                    with pytest.raises(LookupError):
                        ech.locate(oid, version)
                else:
                    assert ech.locate(oid, version) == ref
            bulk = ech.locate_bulk(oids, version)
            assert len(bulk) == len(oids)
            for i, ref in enumerate(refs):
                if ref is None:
                    assert not bulk.ok[i]
                else:
                    assert bulk.ok[i]
                    assert tuple(bulk.servers[i].tolist()) == ref.servers
                    assert bool(bulk.degraded[i]) == ref.degraded
                    assert bool(bulk.skipped_inactive[i]) == \
                        ref.skipped_inactive
                    assert bulk.result(i) == ref

    def test_bulk_positions_match_bulk(self):
        from repro.hashring.hashing import bulk_hash
        ech = ElasticConsistentHash(n=10, replicas=2, B=200)
        ech.set_active(6)
        oids = range(5_000, 5_400)
        a = ech.locate_bulk(oids)
        b = ech.locate_bulk_positions(bulk_hash(oids, "fnv1a"))
        assert np.array_equal(a.servers, b.servers)
        assert np.array_equal(a.degraded, b.degraded)

    def test_empty_bulk(self):
        ech = ElasticConsistentHash(n=4, replicas=2, B=60)
        bulk = ech.locate_bulk([])
        assert len(bulk) == 0 and bulk.all_ok


class TestInvalidation:
    def test_set_active_creates_new_table_keeps_old(self):
        ech = ElasticConsistentHash(n=6, replicas=2, B=100)
        before = ech.locate(42)
        assert ech._kernel.cached_tables == (1,)
        ech.set_active(4)
        after = ech.locate(42)
        # Version 1's table survives (history is append-only) ...
        assert ech.locate(42, version=1) == before
        assert set(ech._kernel.cached_tables) == {1, 2}
        # ... and the new version re-placed against its own membership.
        assert after == reference(ech, 42, None)

    def test_set_weight_drops_every_table(self):
        ech = ElasticConsistentHash(n=6, replicas=2, B=100)
        ech.locate(42)
        ech.locate(43)
        assert ech._kernel.cached_tables
        gen = ech.ring.generation
        ech.ring.set_weight(2, 500)
        assert ech.ring.generation == gen + 1
        # Next locate sees the generation bump and rebuilds from the
        # re-weighted ring.
        got = ech.locate(42)
        assert ech._kernel.cached_tables == (1,)
        assert got == reference(ech, 42, None)

    def test_explicit_invalidate(self):
        ech = ElasticConsistentHash(n=6, replicas=2, B=100)
        ech.locate(42)
        assert ech._kernel.cached_tables
        ech.invalidate_placement_cache()
        assert ech._kernel.cached_tables == ()

    def test_relayout_invalidates_uniform_mode(self):
        # Uniform layout: weights do not change with p, so only the
        # explicit hook in apply_relayout protects the memo.
        from repro.core.dynamic_primaries import apply_relayout
        ech = ElasticConsistentHash(n=8, replicas=2, B=100,
                                    layout_mode="uniform")
        ech.locate(42)
        apply_relayout(ech, ech.p + 2)
        assert ech.locate(42) == reference(ech, 42, None)

    def test_table_lru_caps_versions(self):
        ech = ElasticConsistentHash(n=6, replicas=2, B=60)
        ech._kernel._max_tables = 3
        versions = [ech.current_version]
        for k in (4, 3, 5, 4, 6, 3):
            ech.set_active(k)
            versions.append(ech.current_version)
        for v in versions:
            ech.locate(7, version=v)
        assert len(ech._kernel.cached_tables) == 3
        # Evicted versions still resolve (table rebuilt on demand).
        assert ech.locate(7, version=versions[0]) == \
            reference(ech, 7, versions[0])


class TestKernelInternals:
    def test_lazy_fill(self):
        ech = ElasticConsistentHash(n=10, replicas=2, B=200)
        tbl = ech._kernel.table(1, ech.history.current.is_active)
        assert tbl.filled_slots == 0
        ech.locate(42)
        assert tbl.filled_slots >= 1
        ech.locate_bulk(range(100))
        assert 0 < tbl.filled_slots <= tbl.num_slots

    def test_table_hits_metric(self):
        ech = ElasticConsistentHash(n=10, replicas=2, B=200)
        ech.locate(42)
        OBS.hot = True
        try:
            before = OBS.metrics.counter("ring.table_hits").value
            ech.locate(42)                    # scalar table hit
            ech.locate_bulk([42, 42, 42])     # three bulk table hits
            after = OBS.metrics.counter("ring.table_hits").value
        finally:
            OBS.hot = False
        assert after - before == 4

    def test_requires_primary_oracle(self):
        ring = HashRing()
        ring.add_server(1, weight=10)
        with pytest.raises(ValueError):
            PlacementKernel(ring, 2, placement_mode="primary")
        with pytest.raises(ValueError):
            PlacementKernel(ring, 2, placement_mode="nope")


class TestTraceIdentity:
    """Acceptance criterion: same-seed experiment traces are
    byte-identical with the kernel enabled (vs. the reference path)."""

    def _trace(self):
        OBS.reset()
        with OBS.bus.capture(capacity=100_000) as sink:
            run_three_phase(
                mode="selective", scale=0.01, n=10, probe_objects=200,
                max_duration=400.0)
            events = sink.events()
        OBS.reset()
        return json.dumps(events, sort_keys=True, default=str)

    def test_three_phase_trace_identical(self):
        assert self._trace() == self._trace()

    def test_cluster_scenario_identical_with_and_without_kernel(self):
        def run(enabled):
            OBS.reset()
            from repro.cluster.cluster import ElasticCluster
            with OBS.bus.capture(capacity=100_000) as sink:
                cl = ElasticCluster(n=10, replicas=2, B=200)
                cl.ech.kernel_enabled = enabled
                for oid in range(400):
                    cl.write(oid)
                cl.resize(6)
                for oid in range(400, 800):
                    cl.write(oid)
                cl.resize(10)
                cl.run_selective_reintegration()
                state = (cl.bytes_per_rank(), cl.replicas_per_rank(),
                         sorted(cl.ech.last_written.items()))
                events = sink.events()
            OBS.reset()
            return state, json.dumps(events, sort_keys=True, default=str)

        s_on, t_on = run(True)
        s_off, t_off = run(False)
        assert s_on == s_off
        assert t_on == t_off


class TestFaultInvalidation:
    """Fault-driven membership changes (crash, repair) must drop every
    memoized slot table — a stale table must never serve a placement."""

    def test_mark_failed_drops_tables_and_counts(self):
        ech = ElasticConsistentHash(n=8, replicas=2, B=100)
        ech.locate_bulk(range(50))
        assert ech._kernel.cached_tables
        before = OBS.metrics.counter("kernel.invalidations").value
        ech.mark_failed(5)
        assert ech._kernel.cached_tables == ()
        assert OBS.metrics.counter("kernel.invalidations").value \
            == before + 1

    def test_mark_repaired_drops_tables(self):
        ech = ElasticConsistentHash(n=8, replicas=2, B=100)
        ech.mark_failed(5)
        ech.locate_bulk(range(50))
        assert ech._kernel.cached_tables
        ech.mark_repaired(5)
        assert ech._kernel.cached_tables == ()

    def test_stale_table_never_served_after_crash(self):
        """The warm pre-crash cache must not leak the failed rank into
        any post-crash placement."""
        ech = ElasticConsistentHash(n=8, replicas=2, B=100)
        oids = range(500)
        warm = ech.locate_bulk(oids)
        victim = 3
        assert (warm.servers == victim).any()   # cache knew the rank
        ech.mark_failed(victim)
        got = ech.locate_bulk(oids)
        assert not (got.servers[got.ok] == victim).any()
        for oid in range(0, 500, 50):           # scalar path agrees
            assert ech.locate(oid) == reference(ech, oid, None)

    def test_repaired_rank_stays_out_until_resize(self):
        ech = ElasticConsistentHash(n=8, replicas=2, B=100)
        ech.mark_failed(5)
        ech.locate_bulk(range(100))
        ech.mark_repaired(5)
        got = ech.locate_bulk(range(100))
        # Repair returns the rank to the chain powered-off: placements
        # keep excluding it until set_active brings it back.
        assert not (got.servers[got.ok] == 5).any()
        ech.set_active(8)
        back = ech.locate_bulk(range(500))
        assert (back.servers[back.ok] == 5).any()
