"""Algorithm 1 — primary-server data placement (§III-B)."""

import pytest

from repro.core.layout import EqualWorkLayout
from repro.core.placement import place_original, place_primary
from repro.hashring.ring import HashRing


def make_ring(n=10, B=10_000):
    layout = EqualWorkLayout.create(n, B=B)
    ring = HashRing()
    for rank in layout.ranks:
        ring.add_server(rank, weight=layout.weight_of(rank))
    return ring, layout


@pytest.fixture(params=["walk", "rehash"])
def chain(request):
    return request.param


class TestPlaceOriginal:
    def test_r_distinct_servers(self, uniform_ring):
        res = place_original(uniform_ring, "obj", r=3)
        assert len(set(res.servers)) == 3

    def test_deterministic(self, uniform_ring):
        a = place_original(uniform_ring, "obj", r=2)
        b = place_original(uniform_ring, "obj", r=2)
        assert a.servers == b.servers

    def test_active_filter_skips(self, uniform_ring):
        full = place_original(uniform_ring, "obj", r=2)
        active = lambda s: s != full.servers[0]
        res = place_original(uniform_ring, "obj", r=2, is_active=active)
        assert full.servers[0] not in res.servers
        assert res.skipped_inactive

    def test_no_skip_flag_when_all_active(self, uniform_ring):
        res = place_original(uniform_ring, "obj", r=2,
                             is_active=lambda s: True)
        assert not res.skipped_inactive

    def test_too_few_servers_raises(self, uniform_ring):
        with pytest.raises(LookupError):
            place_original(uniform_ring, "obj", r=11)

    def test_r_must_be_positive(self, uniform_ring):
        with pytest.raises(ValueError):
            place_original(uniform_ring, "obj", r=0)


class TestPrimaryPlacementInvariants:
    """The §III-B contract, checked over many objects and both chain
    modes."""

    def test_exactly_one_primary_copy(self, chain):
        ring, layout = make_ring()
        for oid in range(500):
            res = place_primary(ring, oid, 2, layout.is_primary,
                                lambda s: True, chain=chain)
            primaries = sum(1 for s in res.servers if layout.is_primary(s))
            assert primaries == 1, f"oid {oid}: {res.servers}"

    def test_exactly_one_primary_copy_r3(self, chain):
        ring, layout = make_ring()
        for oid in range(300):
            res = place_primary(ring, oid, 3, layout.is_primary,
                                lambda s: True, chain=chain)
            assert sum(1 for s in res.servers
                       if layout.is_primary(s)) == 1

    def test_distinct_servers(self, chain):
        ring, layout = make_ring()
        for oid in range(300):
            res = place_primary(ring, oid, 3, layout.is_primary,
                                lambda s: True, chain=chain)
            assert len(set(res.servers)) == 3

    def test_inactive_servers_never_selected(self, chain):
        ring, layout = make_ring()
        active = lambda s: s <= 6
        for oid in range(300):
            res = place_primary(ring, oid, 2, layout.is_primary,
                                active, chain=chain)
            assert all(s <= 6 for s in res.servers)

    def test_deterministic(self, chain):
        ring, layout = make_ring()
        a = place_primary(ring, 42, 2, layout.is_primary,
                          lambda s: True, chain=chain)
        b = place_primary(ring, 42, 2, layout.is_primary,
                          lambda s: True, chain=chain)
        assert a.servers == b.servers

    def test_offload_flag_set_when_walking_past_inactive(self, chain):
        ring, layout = make_ring()
        # Find an object whose full-power placement uses rank 10, then
        # deactivate rank 10: its placement must flag the skip.
        for oid in range(2000):
            full = place_primary(ring, oid, 2, layout.is_primary,
                                 lambda s: True, chain=chain)
            if 10 in full.servers:
                res = place_primary(ring, oid, 2, layout.is_primary,
                                    lambda s: s != 10, chain=chain)
                assert res.skipped_inactive
                assert 10 not in res.servers
                return
        pytest.fail("no object mapped to rank 10")

    def test_r1_lands_on_primary(self, chain):
        ring, layout = make_ring()
        for oid in range(100):
            res = place_primary(ring, oid, 1, layout.is_primary,
                                lambda s: True, chain=chain)
            assert layout.is_primary(res.servers[0])

    def test_placement_changes_with_membership(self, chain):
        """Objects placed on inactive servers must move somewhere
        else; others stay (the offloading behaviour)."""
        ring, layout = make_ring()
        moved = stayed = 0
        for oid in range(500):
            full = place_primary(ring, oid, 2, layout.is_primary,
                                 lambda s: True, chain=chain)
            part = place_primary(ring, oid, 2, layout.is_primary,
                                 lambda s: s <= 8, chain=chain)
            if set(full.servers) & {9, 10}:
                assert set(part.servers) != set(full.servers)
                moved += 1
            elif full.servers == part.servers:
                stayed += 1
        assert moved > 0 and stayed > 0


class TestSpecialCase:
    """§III-B: primaries act as secondaries when too few active
    secondaries exist."""

    def test_all_secondaries_inactive(self, chain):
        ring, layout = make_ring()
        active = lambda s: layout.is_primary(s)  # only primaries on
        res = place_primary(ring, 7, 2, layout.is_primary, active,
                            chain=chain)
        assert res.degraded
        assert set(res.servers) == {1, 2}

    def test_one_active_secondary_r3(self, chain):
        ring, layout = make_ring()
        active = lambda s: layout.is_primary(s) or s == 3
        res = place_primary(ring, 7, 3, layout.is_primary, active,
                            chain=chain)
        assert res.degraded
        assert set(res.servers) == {1, 2, 3}

    def test_not_degraded_when_enough_secondaries(self, chain):
        ring, layout = make_ring()
        for oid in range(200):
            res = place_primary(ring, oid, 2, layout.is_primary,
                                lambda s: True, chain=chain)
            assert not res.degraded

    def test_too_few_active_raises(self, chain):
        ring, layout = make_ring()
        with pytest.raises(LookupError):
            place_primary(ring, 7, 3, layout.is_primary,
                          lambda s: s in (1, 2), chain=chain)

    def test_no_active_raises(self, chain):
        ring, layout = make_ring()
        with pytest.raises(LookupError):
            place_primary(ring, 7, 2, layout.is_primary,
                          lambda s: False, chain=chain)


class TestChainModes:
    def test_modes_may_differ_but_both_valid(self):
        ring, layout = make_ring()
        diffs = 0
        for oid in range(200):
            walk = place_primary(ring, oid, 2, layout.is_primary,
                                 lambda s: True, chain="walk")
            rehash = place_primary(ring, oid, 2, layout.is_primary,
                                   lambda s: True, chain="rehash")
            # First replica is chain-independent.
            assert walk.servers[0] == rehash.servers[0]
            if walk.servers != rehash.servers:
                diffs += 1
        # The two strategies genuinely differ on some objects.
        assert diffs > 0

    def test_figure4_style_second_replica(self):
        """Figure 4's rule: when the first replica lands on a primary,
        the second must land on a secondary, and vice versa the second
        must be the next primary."""
        ring, layout = make_ring()
        for oid in range(300):
            res = place_primary(ring, oid, 2, layout.is_primary,
                                lambda s: True)
            first, second = res.servers
            if layout.is_primary(first):
                assert not layout.is_primary(second)
            else:
                assert layout.is_primary(second)
