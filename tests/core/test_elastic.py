"""The ElasticConsistentHash facade."""

import pytest

from repro.core.elastic import ElasticConsistentHash


class TestConstruction:
    def test_defaults(self, ech10):
        assert ech10.n == 10
        assert ech10.p == 2
        assert ech10.replicas == 2
        assert ech10.is_full_power
        assert ech10.current_version == 1

    def test_weights_follow_layout(self, ech10):
        for rank in ech10.layout.ranks:
            assert ech10.ring.weight_of(rank) == ech10.layout.weight_of(rank)

    def test_uniform_layout_mode(self):
        ech = ElasticConsistentHash(n=10, layout_mode="uniform")
        assert len({ech.ring.weight_of(r) for r in range(1, 11)}) == 1

    def test_original_placement_mode(self):
        ech = ElasticConsistentHash(n=10, placement_mode="original")
        res = ech.locate(123)
        assert len(set(res.servers)) == 2

    def test_bad_modes_rejected(self):
        with pytest.raises(ValueError):
            ElasticConsistentHash(n=10, layout_mode="bogus")
        with pytest.raises(ValueError):
            ElasticConsistentHash(n=10, placement_mode="bogus")

    def test_primaries_must_start_active(self):
        with pytest.raises(ValueError):
            ElasticConsistentHash(n=10, initially_active=[3, 4, 5])

    def test_describe_mentions_shape(self, ech10):
        text = ech10.describe()
        assert "n=10" in text and "p=2" in text


class TestResizing:
    def test_set_active_creates_version(self, ech10):
        ech10.set_active(6)
        assert ech10.current_version == 2
        assert ech10.num_active == 6
        assert not ech10.is_full_power

    def test_active_set_is_chain_prefix(self, ech10):
        ech10.set_active(4)
        assert ech10.membership.active_ranks() == [1, 2, 3, 4]

    def test_clamped_at_primary_floor(self, ech10):
        ech10.set_active(1)
        assert ech10.num_active == ech10.min_active == 2

    def test_clamped_at_n(self, ech10):
        ech10.set_active(99)
        assert ech10.num_active == 10
        assert ech10.current_version == 1  # no-op: no new version

    def test_noop_resize_creates_no_version(self, ech10):
        ech10.set_active(10)
        assert ech10.current_version == 1

    def test_power_off_on(self, ech10):
        ech10.power_off(3)
        assert ech10.num_active == 7
        ech10.power_on(2)
        assert ech10.num_active == 9
        assert ech10.current_version == 3

    def test_is_active_per_version(self, ech10):
        ech10.set_active(5)
        assert ech10.is_active(8, version=1)
        assert not ech10.is_active(8, version=2)
        assert not ech10.is_active(8)


class TestLocate:
    def test_pure_function_of_oid_and_version(self, ech10):
        before = ech10.locate(777).servers
        ech10.set_active(5)
        ech10.set_active(10)
        assert ech10.locate(777, version=1).servers == before
        assert ech10.locate(777, version=3).servers == before

    def test_historical_membership_respected(self, ech10):
        ech10.set_active(4)
        res = ech10.locate(777, version=2)
        assert all(s <= 4 for s in res.servers)

    def test_unknown_version_rejected(self, ech10):
        with pytest.raises(KeyError):
            ech10.locate(1, version=5)

    def test_one_primary_copy(self, ech10):
        for oid in range(200):
            res = ech10.locate(oid)
            assert sum(1 for s in res.servers if ech10.is_primary(s)) == 1


class TestRecordWrite:
    def test_full_power_write_is_clean(self, ech10):
        ech10.record_write(42)
        assert ech10.dirty.is_empty()
        assert not ech10.is_dirty(42)
        assert ech10.last_written[42] == 1

    def test_reduced_power_write_is_dirty(self, ech10):
        ech10.set_active(5)
        ech10.record_write(42)
        assert ech10.is_dirty(42)
        assert ech10.dirty.contains(42, 2)

    def test_rewrite_updates_header_version(self, ech10):
        ech10.set_active(5)
        ech10.record_write(42)
        ech10.set_active(6)
        ech10.record_write(42)
        assert ech10.last_written[42] == 3
        assert len(ech10.dirty.entries()) == 2

    def test_mark_clean(self, ech10):
        ech10.set_active(5)
        ech10.record_write(42)
        ech10.mark_clean(42)
        assert not ech10.is_dirty(42)


class TestAnalysisHelpers:
    def test_placement_map(self, ech10):
        pm = ech10.placement_map(range(10))
        assert set(pm) == set(range(10))
        assert all(len(v) == 2 for v in pm.values())

    def test_blocks_per_rank_totals(self, ech10):
        counts = ech10.blocks_per_rank(range(500))
        assert sum(counts.values()) == 1000  # 500 objects x 2 replicas
        # Exactly one copy per object on the primaries.
        assert counts[1] + counts[2] == 500

    def test_blocks_respect_version(self, ech10):
        ech10.set_active(5)
        counts = ech10.blocks_per_rank(range(200), version=2)
        assert all(counts[r] == 0 for r in range(6, 11))
