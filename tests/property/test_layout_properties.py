"""Property tests for the equal-work layout and capacity planning."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layout import (
    CapacityPlan,
    EqualWorkLayout,
    equal_work_weights,
    primary_count,
)

ns = st.integers(min_value=2, max_value=300)
budgets = st.integers(min_value=1_000, max_value=200_000)


class TestPrimaryCountProperties:
    @given(n=ns)
    @settings(max_examples=200, deadline=None)
    def test_formula_and_bounds(self, n):
        p = primary_count(n)
        assert p == max(1, math.ceil(n / math.e ** 2))
        assert 1 <= p <= n

    @given(n=ns)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_n(self, n):
        assert primary_count(n + 1) >= primary_count(n)


class TestWeightProperties:
    @given(n=ns, B=budgets)
    @settings(max_examples=200, deadline=None)
    def test_weights_positive_and_shaped(self, n, B):
        if B < n:
            return
        w = equal_work_weights(n, B)
        p = primary_count(n)
        assert all(v >= 1 for v in w.values())
        # Primaries all equal.
        assert len({w[r] for r in range(1, p + 1)}) == 1
        # Secondaries non-increasing in rank.
        secondaries = [w[r] for r in range(p + 1, n + 1)]
        assert secondaries == sorted(secondaries, reverse=True)
        # Primary weight >= heaviest secondary (B/p >= B/(p+1)).
        if secondaries:
            assert w[1] >= secondaries[0]

    @given(n=st.integers(min_value=2, max_value=60), B=budgets)
    @settings(max_examples=100, deadline=None)
    def test_uniform_variant_is_flat(self, n, B):
        lay = EqualWorkLayout.uniform(n, B=B)
        assert len(set(lay.weights)) == 1


class TestCapacityPlanProperties:
    @given(n=st.integers(min_value=3, max_value=120))
    @settings(max_examples=100, deadline=None)
    def test_plan_contiguous_and_monotone(self, n):
        lay = EqualWorkLayout.create(n)
        plan = CapacityPlan.for_layout(lay)
        caps = list(plan.capacities)
        # Non-increasing with rank and drawn from the tier set.
        assert caps == sorted(caps, reverse=True)
        assert set(caps) <= set(plan.tiers)

    @given(n=st.integers(min_value=3, max_value=120),
           total=st.integers(min_value=10 ** 12, max_value=10 ** 15))
    @settings(max_examples=100, deadline=None)
    def test_plan_covers_demand_or_maxes_out(self, n, total):
        lay = EqualWorkLayout.create(n)
        plan = CapacityPlan.for_layout(lay, total_capacity=total)
        fracs = lay.expected_fractions()
        biggest = max(plan.tiers)
        for rank in lay.ranks:
            needed = fracs[rank] * total
            assert (plan.capacity_of(rank) >= needed
                    or plan.capacity_of(rank) == biggest)
