"""Property tests: the KV store's list type behaves like a deque, and
sharding never changes observable semantics."""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule, invariant

from repro.kvstore.sharded import ShardedKVStore
from repro.kvstore.store import KVStore

values = st.integers(min_value=-1000, max_value=1000)


class TestListModel:
    @given(ops=st.lists(
        st.tuples(st.sampled_from(["rpush", "lpush", "lpop", "rpop"]),
                  values),
        max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_matches_deque_model(self, ops):
        kv = KVStore()
        model = deque()
        for op, v in ops:
            if op == "rpush":
                kv.rpush("l", v)
                model.append(v)
            elif op == "lpush":
                kv.lpush("l", v)
                model.appendleft(v)
            elif op == "lpop":
                got = kv.lpop("l")
                want = model.popleft() if model else None
                assert got == want
            elif op == "rpop":
                got = kv.rpop("l")
                want = model.pop() if model else None
                assert got == want
            assert kv.lrange("l", 0, -1) == list(model)
            assert kv.llen("l") == len(model)

    @given(items=st.lists(values, max_size=30),
           start=st.integers(min_value=-35, max_value=35),
           stop=st.integers(min_value=-35, max_value=35))
    @settings(max_examples=200, deadline=None)
    def test_lrange_matches_redis_model(self, items, start, stop):
        kv = KVStore()
        if items:
            kv.rpush("l", *items)
        n = len(items)
        s = max(n + start, 0) if start < 0 else start
        e = n + stop if stop < 0 else stop
        e = min(e, n - 1)
        expected = items[s:e + 1] if (n and s <= e and s < n) else []
        assert kv.lrange("l", start, stop) == expected


class TestShardingTransparency:
    @given(kvs=st.lists(st.tuples(st.text(min_size=1, max_size=8),
                                  values),
                        max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_sharded_set_get_equals_plain(self, kvs):
        plain = KVStore()
        sharded = ShardedKVStore(["a", "b", "c"])
        for k, v in kvs:
            plain.set(k, v)
            sharded.set(k, v)
        for k, _ in kvs:
            assert sharded.get(k) == plain.get(k)
        assert sorted(sharded.keys()) == sorted(plain.keys())
        assert sharded.dbsize() == plain.dbsize()
