"""Property tests for StepSeries and machine-hour accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.power import MachineHourMeter
from repro.metrics.timeline import StepSeries


@st.composite
def step_series(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    deltas = draw(st.lists(st.floats(min_value=0.1, max_value=100.0),
                           min_size=n, max_size=n))
    values = draw(st.lists(st.integers(min_value=0, max_value=50),
                           min_size=n, max_size=n))
    times = []
    t = 0.0
    for d in deltas:
        times.append(t)
        t += d
    return times, [float(v) for v in values], t


class TestStepSeriesProperties:
    @given(data=step_series())
    @settings(max_examples=200, deadline=None)
    def test_integral_additivity(self, data):
        times, values, end = data
        s = StepSeries.from_points(times, values)
        mid = (times[0] + end) / 2.0
        whole = s.integral(times[0], end)
        split = s.integral(times[0], mid) + s.integral(mid, end)
        assert abs(whole - split) < 1e-6 * max(1.0, abs(whole))

    @given(data=step_series())
    @settings(max_examples=200, deadline=None)
    def test_integral_bounded_by_extremes(self, data):
        times, values, end = data
        s = StepSeries.from_points(times, values)
        span = end - times[0]
        if span <= 0:
            return
        integral = s.integral(times[0], end)
        assert min(values) * span - 1e-6 <= integral
        assert integral <= max(values) * span + 1e-6

    @given(data=step_series())
    @settings(max_examples=200, deadline=None)
    def test_meter_agrees_with_series_integral(self, data):
        times, values, end = data
        meter = MachineHourMeter(times[0], int(values[0]))
        s = StepSeries()
        s.append(times[0], int(values[0]))
        for t, v in zip(times[1:], values[1:]):
            meter.record(t, int(v))
            try:
                s.append(t, int(v))
            except ValueError:
                pass  # coalesced equal value: fine for StepSeries
        hours = meter.finish(end)
        assert abs(hours * 3600.0 - s.integral(times[0], end)) < 1e-3

    @given(data=step_series(),
           probe=st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=200, deadline=None)
    def test_value_at_returns_a_step_value(self, data, probe):
        times, values, _end = data
        s = StepSeries.from_points(times, values)
        assert s.value_at(probe) in values
