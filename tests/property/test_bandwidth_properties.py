"""Property tests for the max-min fair allocator: feasibility,
Pareto efficiency, and fairness."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.bandwidth import FlowSpec, max_min_fair

resources = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def allocation_problem(draw):
    n_flows = draw(st.integers(min_value=1, max_value=6))
    caps = {r: draw(st.floats(min_value=1.0, max_value=1000.0))
            for r in ["a", "b", "c", "d"]}
    flows = []
    for _ in range(n_flows):
        used = draw(st.lists(resources, min_size=1, max_size=3,
                             unique=True))
        coeffs = {r: draw(st.floats(min_value=0.1, max_value=3.0))
                  for r in used}
        demand = draw(st.one_of(
            st.just(math.inf),
            st.floats(min_value=0.0, max_value=500.0)))
        flows.append(FlowSpec(coefficients=coeffs, demand=demand))
    return flows, caps


class TestAllocatorProperties:
    @given(problem=allocation_problem())
    @settings(max_examples=200, deadline=None)
    def test_feasible(self, problem):
        flows, caps = problem
        rates = max_min_fair(flows, caps)
        for res, cap in caps.items():
            used = sum(f.coefficients.get(res, 0.0) * r
                       for f, r in zip(flows, rates))
            assert used <= cap * (1 + 1e-6) + 1e-6

    @given(problem=allocation_problem())
    @settings(max_examples=200, deadline=None)
    def test_demands_respected(self, problem):
        flows, caps = problem
        rates = max_min_fair(flows, caps)
        for f, r in zip(flows, rates):
            assert r <= f.demand + 1e-6
            assert r >= 0.0

    @given(problem=allocation_problem())
    @settings(max_examples=200, deadline=None)
    def test_pareto_no_slack_for_unsatisfied_flow(self, problem):
        """If a flow got less than its demand, at least one of its
        resources is saturated (no free lunch left behind)."""
        flows, caps = problem
        rates = max_min_fair(flows, caps)
        used = {res: sum(f.coefficients.get(res, 0.0) * r
                         for f, r in zip(flows, rates))
                for res in caps}
        for f, r in zip(flows, rates):
            if r < f.demand - 1e-6:
                assert any(
                    used[res] >= caps[res] * (1 - 1e-6) - 1e-9
                    for res in f.coefficients if res in caps
                )

    @given(problem=allocation_problem())
    @settings(max_examples=100, deadline=None)
    def test_symmetric_flows_get_equal_rates(self, problem):
        """Duplicate a flow: both copies must receive the same rate."""
        flows, caps = problem
        twin = FlowSpec(coefficients=dict(flows[0].coefficients),
                        demand=flows[0].demand)
        rates = max_min_fair(flows + [twin], caps)
        assert rates[0] == rates[-1] or abs(rates[0] - rates[-1]) < 1e-6
