"""Property-based tests for the placement invariants (DESIGN.md §5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.elastic import ElasticConsistentHash
from repro.core.layout import EqualWorkLayout, primary_count
from repro.core.placement import place_original, place_primary
from repro.hashring.ring import HashRing

# Rings are expensive to build; cache by configuration.
_ring_cache = {}


def get_ring(n, B=2_000):
    key = (n, B)
    if key not in _ring_cache:
        layout = EqualWorkLayout.create(n, B=B)
        ring = HashRing()
        for rank in layout.ranks:
            ring.add_server(rank, weight=layout.weight_of(rank))
        _ring_cache[key] = (ring, layout)
    return _ring_cache[key]


cluster_sizes = st.integers(min_value=4, max_value=24)
oids = st.integers(min_value=0, max_value=2**48)
chains = st.sampled_from(["walk", "rehash"])


class TestPrimaryPlacementProperties:
    @given(n=cluster_sizes, oid=oids, chain=chains,
           r=st.integers(min_value=2, max_value=3))
    @settings(max_examples=200, deadline=None)
    def test_one_primary_and_distinct(self, n, oid, chain, r):
        ring, layout = get_ring(n)
        if n < r:
            return
        res = place_primary(ring, oid, r, layout.is_primary,
                            lambda s: True, chain=chain)
        assert len(set(res.servers)) == r
        assert sum(1 for s in res.servers if layout.is_primary(s)) == 1
        assert not res.degraded

    @given(n=cluster_sizes, oid=oids, chain=chains,
           k=st.integers(min_value=0, max_value=20))
    @settings(max_examples=200, deadline=None)
    def test_active_only_under_any_prefix(self, n, oid, chain, k):
        """Any expansion-chain prefix with >= max(p, r) active servers
        yields a valid all-active placement."""
        ring, layout = get_ring(n)
        active_count = max(layout.p, 2, min(n, layout.p + k))
        is_active = lambda s: s <= active_count
        res = place_primary(ring, oid, 2, layout.is_primary, is_active,
                            chain=chain)
        assert all(s <= active_count for s in res.servers)
        assert len(set(res.servers)) == 2

    @given(n=cluster_sizes, oid=oids, chain=chains)
    @settings(max_examples=100, deadline=None)
    def test_purity(self, n, oid, chain):
        ring, layout = get_ring(n)
        a = place_primary(ring, oid, 2, layout.is_primary,
                          lambda s: True, chain=chain)
        b = place_primary(ring, oid, 2, layout.is_primary,
                          lambda s: True, chain=chain)
        assert a.servers == b.servers


class TestOriginalPlacementProperties:
    @given(n=cluster_sizes, oid=oids,
           r=st.integers(min_value=1, max_value=3))
    @settings(max_examples=150, deadline=None)
    def test_distinct_servers(self, n, oid, r):
        ring, _ = get_ring(n)
        if n < r:
            return
        res = place_original(ring, oid, r)
        assert len(set(res.servers)) == r

    @given(oid=oids)
    @settings(max_examples=100, deadline=None)
    def test_monotonicity_on_growth(self, oid):
        """Ring monotonicity: growing the ring never moves a key
        between two pre-existing servers (first replica)."""
        ring = HashRing()
        for rank in range(1, 8):
            ring.add_server(rank, weight=64)
        before = place_original(ring, oid, 1).servers[0]
        ring.add_server(99, weight=64)
        try:
            after = place_original(ring, oid, 1).servers[0]
            assert after in (before, 99)
        finally:
            ring.remove_server(99)


class TestVersionedPlacementProperties:
    @given(oid=oids,
           resizes=st.lists(st.integers(min_value=2, max_value=10),
                            min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_historical_placements_stable(self, oid, resizes):
        """Placement under version v never changes, no matter how many
        versions follow (the Algorithm 2 prerequisite)."""
        ech = ElasticConsistentHash(n=10, replicas=2, B=2_000)
        recorded = {1: ech.locate(oid, 1).servers}
        for k in resizes:
            before = ech.current_version
            ech.set_active(k)
            if ech.current_version != before:
                recorded[ech.current_version] = ech.locate(
                    oid, ech.current_version).servers
        for version, servers in recorded.items():
            assert ech.locate(oid, version).servers == servers
