"""Seeded replicated-store properties: across store shapes,
replication factors, and fault plans — curated and generated — no
acked write is ever lost and the replication factor is restored by
the end of every churn run.

Each case is one :func:`repro.kvstore.harness.run_kv_churn` run at a
small scale with the full checker suite attached, so the whole matrix
stays in CI-smoke territory.
"""

import pytest

from repro.faults.plan import FaultEvent, FaultPlan
from repro.kvstore.harness import run_kv_churn

NODES = [3, 5, 9]
REPLICAS = [2, 3]


def curated_plan(nodes, replicas):
    """A hand-written survivable plan valid for any shape here: one
    crash with delayed repair, one link-loss window, both healed well
    before the drain.  With R=2 the write quorum is *both* replicas,
    so every outage window must stay inside the client retry budget
    (~7.5 s); R=3 tolerates a full single-replica outage."""
    outage = 12.0 if replicas >= 3 else 5.0
    return FaultPlan(events=[
        FaultEvent(kind="crash", time=8.0, rank=2,
                   repair_after=outage),
        FaultEvent(kind="link_loss", time=24.0, rank=1,
                   peer=min(3, nodes), duration=outage / 2),
    ])


def generated_plan(seed, nodes, replicas):
    # Same quorum arithmetic as curated_plan: the generator sizes
    # repair windows as a fraction of `duration`, so a shorter plan
    # duration is how R=2 keeps its outages survivable.
    duration = 30.0 if replicas >= 3 else 12.0
    return FaultPlan.generate(seed, n=nodes, duration=duration,
                              crashes=1, slow_disks=0, link_losses=1)


def case_id(nodes, replicas, kind):
    return f"{kind}-n{nodes}-r{replicas}"


CASES = [(n, r, kind)
         for n in NODES for r in REPLICAS for kind in
         ("curated", "generated")]


class TestChurnMatrix:
    @pytest.mark.parametrize(
        "nodes,replicas,kind", CASES,
        ids=[case_id(*c) for c in CASES])
    def test_no_acked_write_lost_and_replication_restored(
            self, nodes, replicas, kind):
        seed = nodes * 10 + replicas
        plan = (curated_plan(nodes, replicas) if kind == "curated"
                else generated_plan(seed, nodes, replicas))
        result = run_kv_churn(seed=seed, nodes=nodes, replicas=replicas,
                              clients=3, duration=60.0,
                              churn_every=20.0, plan=plan)
        assert result.violations == [], result.violations
        assert result.final_audit["lost_acked"] == 0
        assert result.final_audit["under_replicated"] == 0
        assert result.quarantined_writes == 0
        assert result.ok
        # The run did real, faulted work — not a vacuous pass.
        assert result.store_stats["writes_acked"] > 0
        assert any(f["kind"] == "crash" for f in result.faults)
