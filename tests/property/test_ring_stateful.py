"""Stateful property test of the HashRing against a brute-force model.

The model recomputes successor lists from first principles (hash every
vnode, sort, scan); the ring must agree after any sequence of adds,
removes, and re-weightings.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.hashring.hashing import hash64, vnode_positions
from repro.hashring.ring import HashRing

PROBE_KEYS = [f"probe-{i}" for i in range(25)]


def model_successors(weights, key, r):
    """Brute-force placement: hash all vnodes, sort, walk."""
    entries = []
    for idx, (sid, w) in enumerate(weights.items()):
        for j, pos in enumerate(vnode_positions(sid, w)):
            entries.append((int(pos), idx, j, sid))
    entries.sort()
    kpos = hash64(key)
    start = 0
    while start < len(entries) and entries[start][0] < kpos:
        start += 1
    out = []
    seen = set()
    for i in range(len(entries)):
        sid = entries[(start + i) % len(entries)][3]
        if sid not in seen:
            seen.add(sid)
            out.append(sid)
            if len(out) == r:
                break
    return out


class RingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ring = HashRing()
        self.weights = {}
        self.counter = 0

    @rule(weight=st.integers(min_value=1, max_value=40))
    def add_server(self, weight):
        sid = f"s{self.counter}"
        self.counter += 1
        self.ring.add_server(sid, weight)
        self.weights[sid] = weight

    @precondition(lambda self: len(self.weights) > 1)
    @rule(data=st.data())
    def remove_server(self, data):
        sid = data.draw(st.sampled_from(sorted(self.weights)))
        self.ring.remove_server(sid)
        del self.weights[sid]

    @precondition(lambda self: self.weights)
    @rule(data=st.data(),
          weight=st.integers(min_value=1, max_value=40))
    def reweight_server(self, data, weight):
        sid = data.draw(st.sampled_from(sorted(self.weights)))
        self.ring.set_weight(sid, weight)
        self.weights[sid] = weight

    # ------------------------------------------------------------------
    @invariant()
    def vnode_count_matches(self):
        assert self.ring.num_vnodes == sum(self.weights.values())

    @invariant()
    def successors_match_model(self):
        if not self.weights:
            return
        r = min(2, len(self.weights))
        for key in PROBE_KEYS[:5]:
            expected = model_successors(self.weights, key, r)
            actual = self.ring.find(key, r=r)
            assert actual == expected, (key, actual, expected)

    @invariant()
    def arc_shares_sum_to_one(self):
        if self.weights:
            assert abs(sum(self.ring.arc_share().values()) - 1.0) < 1e-9


TestRingMachine = RingMachine.TestCase
TestRingMachine.settings = settings(max_examples=30,
                                    stateful_step_count=20,
                                    deadline=None)
