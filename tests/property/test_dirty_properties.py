"""Property tests: dirty-table ordering and re-integration closure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dirty_table import DirtyTable
from repro.core.elastic import ElasticConsistentHash
from repro.core.reintegration import ReintegrationEngine

oids = st.integers(min_value=0, max_value=10_000)


class TestDirtyTableOrdering:
    @given(batches=st.lists(
        st.lists(oids, min_size=1, max_size=10, unique=True),
        min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_fetch_order_is_version_then_oid(self, batches):
        table = DirtyTable()
        for version, batch in enumerate(batches, start=1):
            for oid in batch:
                table.insert(oid, version)
        entries = table.entries()
        keys = [(e.version, e.oid) for e in entries]
        assert keys == sorted(keys)

    @given(batch=st.lists(oids, min_size=1, max_size=30, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_remove_is_exact(self, batch):
        table = DirtyTable()
        for oid in batch:
            table.insert(oid, 1)
        victim = table.entries()[len(batch) // 2]
        assert table.remove(victim)
        remaining = {e.oid for e in table.entries()}
        assert victim.oid not in remaining
        assert remaining == set(batch) - {victim.oid}


class TestReintegrationClosure:
    @given(
        shrink_to=st.integers(min_value=2, max_value=9),
        dirty_oids=st.lists(oids, min_size=1, max_size=25, unique=True),
    )
    @settings(max_examples=50, deadline=None)
    def test_full_power_reintegration_empties_table(self, shrink_to,
                                                    dirty_oids):
        ech = ElasticConsistentHash(n=10, replicas=2, B=2_000)
        ech.set_active(shrink_to)
        for oid in dirty_oids:
            ech.record_write(oid)
        if ech.current_version == 1:
            return  # shrink_to == 10: nothing dirty
        ech.set_active(10)
        engine = ReintegrationEngine(ech)
        report = engine.step()
        assert report.caught_up
        assert ech.dirty.is_empty()
        # After re-integration, every dirty object's current placement
        # equals its full-power placement.
        for oid in dirty_oids:
            assert (ech.locate(oid).servers
                    == ech.locate(oid, ech.current_version).servers)

    @given(
        budget=st.integers(min_value=1, max_value=64) )
    @settings(max_examples=30, deadline=None)
    def test_budgeted_equals_unbudgeted_total(self, budget):
        """Rate limiting changes pacing, never the total volume."""
        def build():
            ech = ElasticConsistentHash(n=10, replicas=2, B=2_000)
            ech.set_active(5)
            for oid in range(30):
                ech.record_write(oid)
            ech.set_active(10)
            return ech

        whole = ReintegrationEngine(build(),
                                    object_size=lambda o: 10).step()
        engine = ReintegrationEngine(build(), object_size=lambda o: 10)
        moved = 0
        while True:
            rep = engine.step(budget_bytes=budget)
            moved += rep.bytes_migrated
            if rep.caught_up:
                break
        assert moved == whole.bytes_migrated
