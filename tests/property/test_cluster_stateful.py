"""Stateful property test: random lifecycles of an ElasticCluster.

Hypothesis drives arbitrary interleavings of writes, resizes, partial
and full re-integrations, crashes and repairs, checking the system's
standing invariants after every step:

* every object keeps r copies somewhere (crashes are recovered);
* every object stays readable (>= 1 replica on an active server);
* the dirty table only references objects that exist;
* at full power, after selective re-integration runs to completion,
  stored locations equal current placements and the table is empty.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.cluster.cluster import ElasticCluster

OBJ = 1024  # small objects keep the machine fast


class ElasticClusterMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = ElasticCluster(n=8, replicas=2, B=2_000)
        self.next_oid = 0
        self.written = set()

    # ------------------------------------------------------------------
    @rule(count=st.integers(min_value=1, max_value=5))
    def write_new_objects(self, count):
        for _ in range(count):
            self.cluster.write(self.next_oid, OBJ)
            self.written.add(self.next_oid)
            self.next_oid += 1

    @precondition(lambda self: self.written)
    @rule(data=st.data())
    def overwrite_object(self, data):
        oid = data.draw(st.sampled_from(sorted(self.written)))
        self.cluster.write(oid, OBJ)

    @rule(k=st.integers(min_value=1, max_value=8))
    def resize(self, k):
        self.cluster.resize(k)

    @rule()
    def selective_reintegration(self):
        self.cluster.run_selective_reintegration()

    @rule()
    def budgeted_reintegration(self):
        self.cluster.run_selective_reintegration(budget_bytes=3 * OBJ)

    @rule()
    def full_reintegration(self):
        self.cluster.run_full_reintegration()

    @precondition(lambda self: len(self.cluster.ech.failed) == 0
                  and self.written
                  # The paper's operating assumption (§III-B): enough
                  # active servers remain to hold r replicas after a
                  # failure.  Crashing at minimum power with p == r is
                  # outside the design envelope.
                  and self.cluster.ech.num_active > self.cluster.replicas)
    @rule(rank=st.integers(min_value=2, max_value=8))
    def crash_and_repair(self, rank):
        # Keep rank 1 alive so a primary always exists; repair
        # immediately so sequences cannot crash everything at once.
        if self.cluster.ech.membership.is_active(rank):
            self.cluster.fail_server(rank)
            self.cluster.repair_server(rank)

    # ------------------------------------------------------------------
    @invariant()
    def replication_level_holds(self):
        assert self.cluster.verify_replication(require_active=False) == []

    @invariant()
    def fsck_finds_no_structural_issues(self):
        from repro.cluster.fsck import check_cluster
        report = check_cluster(self.cluster)
        assert report.clean, report.summary()

    @invariant()
    def all_objects_readable(self):
        for oid in self.written:
            _, available = self.cluster.read(oid)
            assert available, f"object {oid} unavailable"

    @invariant()
    def dirty_table_references_real_objects(self):
        for entry in self.cluster.ech.dirty.entries():
            assert entry.oid in self.written

    @invariant()
    def full_power_quiescence(self):
        if not self.cluster.ech.is_full_power:
            return
        report = self.cluster.run_selective_reintegration()
        if report.caught_up:
            assert self.cluster.ech.dirty.is_empty()
            for oid in self.written:
                stored = set(self.cluster.stored_locations(oid))
                target = set(self.cluster.ech.locate(oid).servers)
                assert stored == target, oid


TestElasticClusterMachine = ElasticClusterMachine.TestCase
TestElasticClusterMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)
