"""Seeded chaos properties: across cluster shapes and fault plans, no
object is ever lost and replication is eventually restored.

Each case is a full three-phase run under a deterministic fault plan
(crash + delayed repair, disk degradation, link loss) at a tiny scale,
so the whole matrix stays in CI-smoke territory.

The matrix is embarrassingly parallel, so the whole thing runs once
through :class:`repro.runner.SweepRunner` (module-scoped fixture, one
task per case, ``REPRO_SWEEP_WORKERS`` overrides the pool size); the
individual tests then assert against their task's merged outcome.
"""

import os
import tempfile

import pytest

from repro.faults.harness import run_chaos
from repro.faults.plan import FaultPlan
from repro.runner import SweepRunner, TaskSpec

# (n, off_count): the paper's testbed shape flanked by a minimal and a
# wider cluster.
SHAPES = [(4, 1), (10, 4), (25, 8)]
SEEDS = [0, 1, 2, 3, 4]


def _workers() -> int:
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        return max(1, int(env))
    return min(4, os.cpu_count() or 1)


def _specs():
    specs = []
    for n, off_count in SHAPES:
        for seed in SEEDS:
            config = {"n": n, "off_count": off_count, "scale": 0.03}
            specs.append(TaskSpec(
                task_id=f"curated-n{n:02d}-s{seed}", kind="chaos",
                seed=seed, config=config))
            plan = FaultPlan.generate(
                seed=seed, n=n, duration=120.0,
                crashable=range(2, n - off_count + 1))
            specs.append(TaskSpec(
                task_id=f"generated-n{n:02d}-s{seed}", kind="chaos",
                seed=seed, config=config, plan=plan.to_json()))
    return specs


@pytest.fixture(scope="module")
def sweep():
    with tempfile.TemporaryDirectory(prefix="chaos-sweep-") as out:
        yield SweepRunner(workers=_workers()).run(_specs(), out)


def assert_healthy(task):
    assert task is not None and task.outcome is not None, "task never ran"
    summary = task.outcome["summary"]
    assert summary["lost_objects"] == 0, "objects lost under faults"
    assert summary["final_audit"]["lost"] == 0
    assert summary["final_audit"]["under_replicated"] == 0, \
        "replication not restored after repair"
    assert summary["dirty_backlog"] == 0
    assert task.outcome["violations"] == []
    assert task.status == "ok"


class TestCuratedPlan:
    """The three-phase default plan: crash triggered mid-reintegration,
    disk slowdown in phase 2, link loss during recovery."""

    @pytest.mark.parametrize("n,off_count", SHAPES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_loss_and_replication_restored(self, sweep, seed, n,
                                              off_count):
        assert_healthy(sweep.task(f"curated-n{n:02d}-s{seed}"))


class TestGeneratedPlan:
    """Seeded random plans (timed faults at generator-chosen instants),
    crashes confined to phase-2 survivors so an outage can never stack
    on the planned power-down."""

    @pytest.mark.parametrize("n,off_count", SHAPES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_loss_and_replication_restored(self, sweep, seed, n,
                                              off_count):
        assert_healthy(sweep.task(f"generated-n{n:02d}-s{seed}"))


class TestSweepAggregate:
    def test_whole_matrix_is_healthy(self, sweep):
        assert sweep.ok, f"sweep degraded: {sweep.counts}"
        assert sweep.counts["tasks"] == len(SHAPES) * len(SEEDS) * 2


class TestSameSeedSameOutcome:
    def test_run_is_a_pure_function_of_the_seed(self):
        a = run_chaos(seed=11, scale=0.03)
        b = run_chaos(seed=11, scale=0.03)
        assert a.faults == b.faults
        assert a.transfers == b.transfers
        assert a.audits == b.audits
        assert a.duration == b.duration
