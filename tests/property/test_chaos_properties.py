"""Seeded chaos properties: across cluster shapes and fault plans, no
object is ever lost and replication is eventually restored.

Each case is a full three-phase run under a deterministic fault plan
(crash + delayed repair, disk degradation, link loss) at a tiny scale,
so the whole matrix stays in CI-smoke territory.
"""

import pytest

from repro.faults.harness import run_chaos
from repro.faults.plan import FaultPlan

# (n, off_count): the paper's testbed shape flanked by a minimal and a
# wider cluster.
SHAPES = [(4, 1), (10, 4), (25, 8)]
SEEDS = [0, 1, 2, 3, 4]


def assert_healthy(result):
    assert result.lost_objects == [], "objects lost under faults"
    assert result.final_audit["lost"] == 0
    assert result.final_audit["under_replicated"] == 0, \
        "replication not restored after repair"
    assert result.dirty_backlog == 0
    assert result.violations == []


class TestCuratedPlan:
    """The three-phase default plan: crash triggered mid-reintegration,
    disk slowdown in phase 2, link loss during recovery."""

    @pytest.mark.parametrize("n,off_count", SHAPES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_loss_and_replication_restored(self, seed, n, off_count):
        result = run_chaos(seed=seed, n=n, off_count=off_count,
                           scale=0.03)
        assert_healthy(result)
        assert result.ok


class TestGeneratedPlan:
    """Seeded random plans (timed faults at generator-chosen instants),
    crashes confined to phase-2 survivors so an outage can never stack
    on the planned power-down."""

    @pytest.mark.parametrize("n,off_count", SHAPES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_no_loss_and_replication_restored(self, seed, n, off_count):
        plan = FaultPlan.generate(seed=seed, n=n, duration=120.0,
                                  crashable=range(2, n - off_count + 1))
        result = run_chaos(seed=seed, n=n, off_count=off_count,
                           scale=0.03, plan=plan)
        assert_healthy(result)
        assert result.ok


class TestSameSeedSameOutcome:
    def test_run_is_a_pure_function_of_the_seed(self):
        a = run_chaos(seed=11, scale=0.03)
        b = run_chaos(seed=11, scale=0.03)
        assert a.faults == b.faults
        assert a.transfers == b.transfers
        assert a.audits == b.audits
        assert a.duration == b.duration
