"""Departure recovery planning (the baseline's clean-up work)."""

import pytest

from repro.cluster.recovery import plan_departure_recovery

MB4 = 4 * 1024 * 1024


class TestPlan:
    def test_plan_covers_every_held_object(self, loaded_original10):
        held = set(loaded_original10.servers[10].replicas())
        plan = plan_departure_recovery(loaded_original10, 10)
        planned = {t.oid for t in plan.tasks}
        # Every object that loses a replica and needs a new home is in
        # the plan (some may already have a surviving replica at the
        # new placement).
        assert planned <= held
        assert plan.num_objects > 0

    def test_plan_does_not_mutate(self, loaded_original10):
        before = loaded_original10.replicas_per_rank()
        plan_departure_recovery(loaded_original10, 10)
        assert loaded_original10.replicas_per_rank() == before
        assert 10 in loaded_original10.ring

    def test_plan_matches_actual_removal(self, loaded_original10):
        plan = plan_departure_recovery(loaded_original10, 10)
        moved = loaded_original10.remove_server(10)
        assert moved == plan.total_bytes

    def test_destinations_never_departing_server(self, loaded_original10):
        plan = plan_departure_recovery(loaded_original10, 10)
        for t in plan.tasks:
            assert 10 not in t.destinations

    def test_sources_hold_surviving_copies(self, loaded_original10):
        plan = plan_departure_recovery(loaded_original10, 10)
        for t in plan.tasks:
            for src in t.sources:
                assert loaded_original10.servers[src].has_replica(t.oid)

    def test_unknown_server_rejected(self, loaded_original10):
        with pytest.raises(KeyError):
            plan_departure_recovery(loaded_original10, 99)


class TestTimeEstimates:
    def test_parallel_bound_below_serialized(self, loaded_original10):
        plan = plan_departure_recovery(loaded_original10, 10)
        par = plan.estimated_seconds(100e6)
        ser = plan.serialized_seconds(100e6)
        assert par <= ser

    def test_serialized_scales_with_bytes(self, loaded_original10):
        plan = plan_departure_recovery(loaded_original10, 10)
        assert plan.serialized_seconds(100e6) == pytest.approx(
            plan.total_bytes / 100e6)

    def test_fraction_scales_time(self, loaded_original10):
        plan = plan_departure_recovery(loaded_original10, 10)
        assert plan.serialized_seconds(100e6, 0.5) == pytest.approx(
            2 * plan.serialized_seconds(100e6, 1.0))

    def test_bad_bandwidth_rejected(self, loaded_original10):
        plan = plan_departure_recovery(loaded_original10, 10)
        with pytest.raises(ValueError):
            plan.serialized_seconds(0)
        with pytest.raises(ValueError):
            plan.estimated_seconds(100e6, 0)

    def test_bytes_per_destination_sums_to_total(self, loaded_original10):
        plan = plan_departure_recovery(loaded_original10, 10)
        assert sum(plan.bytes_per_destination().values()) == plan.total_bytes


class TestRateGuard:
    """A degraded-bandwidth fault can drive a capacity to zero; the
    estimators must reject it with a clear error instead of dividing
    by it."""

    @pytest.mark.parametrize("bandwidth", [
        0, 0.0, -1.0, -100e6, float("nan"), float("inf"), "fast", None,
    ])
    def test_bad_bandwidth_rejected(self, loaded_original10, bandwidth):
        plan = plan_departure_recovery(loaded_original10, 10)
        with pytest.raises(ValueError, match="per_server_bandwidth"):
            plan.estimated_seconds(bandwidth)
        with pytest.raises(ValueError, match="per_server_bandwidth"):
            plan.serialized_seconds(bandwidth)

    @pytest.mark.parametrize("fraction", [
        0.0, -0.5, 1.5, float("nan"), float("inf"), "half", None,
    ])
    def test_bad_fraction_rejected(self, loaded_original10, fraction):
        plan = plan_departure_recovery(loaded_original10, 10)
        with pytest.raises(ValueError, match="fraction_for_recovery"):
            plan.estimated_seconds(100e6, fraction)
        with pytest.raises(ValueError, match="fraction_for_recovery"):
            plan.serialized_seconds(100e6, fraction)

    def test_full_fraction_boundary_accepted(self, loaded_original10):
        plan = plan_departure_recovery(loaded_original10, 10)
        assert plan.serialized_seconds(100e6, 1.0) > 0
