"""The offline consistency checker."""

import pytest

from repro.cluster.cluster import ElasticCluster
from repro.cluster.fsck import check_cluster

MB4 = 4 * 1024 * 1024


@pytest.fixture
def cluster():
    cl = ElasticCluster(n=10, replicas=2)
    for oid in range(200):
        cl.write(oid, MB4)
    return cl


class TestCleanStates:
    def test_fresh_cluster_is_clean(self, cluster):
        report = check_cluster(cluster, expect_quiescent=True)
        assert report.clean, report.summary()
        assert report.objects_checked == 200
        assert report.replicas_checked == 400

    def test_clean_through_resize_cycle(self, cluster):
        cluster.resize(6)
        for oid in range(200, 250):
            cluster.write(oid, MB4)
        assert check_cluster(cluster).clean
        cluster.resize(10)
        cluster.run_selective_reintegration()
        assert check_cluster(cluster, expect_quiescent=True).clean

    def test_clean_after_crash_recovery(self, cluster):
        cluster.fail_server(7)
        report = check_cluster(cluster)
        assert report.clean, report.summary()

    def test_summary_mentions_counts(self, cluster):
        assert "200 objects" in check_cluster(cluster).summary()


class TestDetection:
    def test_detects_lost_replica(self, cluster):
        victim = next(iter(cluster.servers[5].replicas()))
        cluster.servers[5].drop_replica(victim)
        report = check_cluster(cluster)
        kinds = report.by_kind()
        assert kinds.get("replication") == 1
        assert kinds.get("placement", 0) >= 1
        assert any(i.oid == victim for i in report.issues)

    def test_detects_unavailable_object(self, cluster):
        # Strand an object: drop its active replicas while shrunk.
        cluster.resize(6)
        oid = 0
        for rank in list(cluster.stored_locations(oid)):
            if cluster.servers[rank].is_on:
                cluster.servers[rank].drop_replica(oid)
        report = check_cluster(cluster)
        assert any(i.kind == "availability" and i.oid == oid
                   for i in report.issues)

    def test_detects_misplaced_replica(self, cluster):
        oid = 3
        stored = cluster.stored_locations(oid)
        wrong = next(r for r in range(1, 11) if r not in stored)
        cluster.servers[wrong].store_replica(oid, MB4)
        report = check_cluster(cluster)
        assert any(i.kind == "placement" and i.oid == oid
                   for i in report.issues)

    def test_detects_orphan(self, cluster):
        cluster.servers[4].store_replica(999_999, MB4)
        report = check_cluster(cluster)
        assert any(i.kind == "orphan" and i.oid == 999_999
                   for i in report.issues)

    def test_detects_stale_dirty_entry(self, cluster):
        cluster.ech.dirty.insert(888_888, cluster.current_version)
        report = check_cluster(cluster)
        assert any(i.kind == "dirty" and i.oid == 888_888
                   for i in report.issues)

    def test_quiescence_violation_reported(self, cluster):
        cluster.resize(6)
        cluster.write(500, MB4)
        cluster.resize(10)
        # Dirty entry outstanding at full power.
        report = check_cluster(cluster, expect_quiescent=True)
        assert any(i.kind == "dirty" for i in report.issues)

    def test_not_full_power_quiescence_reported(self, cluster):
        cluster.resize(6)
        report = check_cluster(cluster, expect_quiescent=True)
        assert any("full power" in i.detail for i in report.issues)
