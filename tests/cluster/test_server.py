"""StorageServer: power, replica map, capacity."""

import pytest

from repro.cluster.server import PowerState, StorageServer
from repro.cluster.server import CapacityExceeded


class TestPower:
    def test_starts_on(self):
        assert StorageServer(1).is_on

    def test_power_cycle(self):
        srv = StorageServer(1)
        srv.power_off()
        assert srv.state is PowerState.OFF
        srv.power_on()
        assert srv.is_on

    def test_data_survives_power_off(self):
        """The elastic design's key property (§II-C)."""
        srv = StorageServer(1)
        srv.store_replica(42, 100)
        srv.power_off()
        assert srv.has_replica(42)
        assert srv.used_bytes == 100

    def test_write_to_off_server_rejected(self):
        srv = StorageServer(1)
        srv.power_off()
        with pytest.raises(RuntimeError):
            srv.store_replica(1, 10)


class TestReplicaMap:
    def test_store_and_query(self):
        srv = StorageServer(1)
        srv.store_replica(1, 100)
        assert srv.has_replica(1)
        assert srv.replica_size(1) == 100
        assert srv.num_replicas == 1
        assert list(srv.replicas()) == [1]

    def test_overwrite_replaces_size(self):
        srv = StorageServer(1)
        srv.store_replica(1, 100)
        srv.store_replica(1, 300)
        assert srv.used_bytes == 300
        assert srv.num_replicas == 1

    def test_drop(self):
        srv = StorageServer(1)
        srv.store_replica(1, 100)
        assert srv.drop_replica(1) == 100
        assert srv.used_bytes == 0
        assert not srv.has_replica(1)

    def test_drop_missing_is_zero(self):
        assert StorageServer(1).drop_replica(9) == 0

    def test_drop_allowed_while_off(self):
        srv = StorageServer(1)
        srv.store_replica(1, 100)
        srv.power_off()
        assert srv.drop_replica(1) == 100


class TestCapacity:
    def test_enforced(self):
        srv = StorageServer(1, capacity_bytes=150)
        srv.store_replica(1, 100)
        with pytest.raises(CapacityExceeded):
            srv.store_replica(2, 100)

    def test_overwrite_counts_delta(self):
        srv = StorageServer(1, capacity_bytes=150)
        srv.store_replica(1, 100)
        srv.store_replica(1, 140)  # replaces, fits

    def test_unbounded_by_default(self):
        srv = StorageServer(1)
        srv.store_replica(1, 10**15)
        assert srv.free_bytes is None
        assert srv.utilisation() is None

    def test_free_and_utilisation(self):
        srv = StorageServer(1, capacity_bytes=200)
        srv.store_replica(1, 50)
        assert srv.free_bytes == 150
        assert srv.utilisation() == pytest.approx(0.25)


class TestValidation:
    def test_rank_positive(self):
        with pytest.raises(ValueError):
            StorageServer(0)

    def test_repr_mentions_state(self):
        assert "on" in repr(StorageServer(3))
