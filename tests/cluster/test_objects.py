"""DataObject headers and the catalog."""

import pytest

from repro.cluster.objects import DEFAULT_OBJECT_SIZE, DataObject, ObjectCatalog


class TestDataObject:
    def test_defaults(self):
        obj = DataObject(oid=1)
        assert obj.size == DEFAULT_OBJECT_SIZE == 4 * 1024 * 1024
        assert obj.version == 1
        assert not obj.dirty

    def test_touch_advances_header(self):
        obj = DataObject(oid=1)
        obj.touch(version=3, dirty=True)
        assert obj.version == 3 and obj.dirty

    def test_touch_rejects_version_regression(self):
        obj = DataObject(oid=1, version=5)
        with pytest.raises(ValueError):
            obj.touch(version=4, dirty=False)


class TestObjectCatalog:
    def test_create(self):
        cat = ObjectCatalog()
        obj = cat.create_or_touch(1, 100, version=1, dirty=False)
        assert obj.oid == 1
        assert len(cat) == 1
        assert cat.total_bytes == 100
        assert 1 in cat

    def test_touch_existing(self):
        cat = ObjectCatalog()
        cat.create_or_touch(1, 100, version=1, dirty=False)
        obj = cat.create_or_touch(1, 100, version=2, dirty=True)
        assert obj.version == 2 and obj.dirty
        assert len(cat) == 1

    def test_resize_adjusts_total(self):
        cat = ObjectCatalog()
        cat.create_or_touch(1, 100, version=1, dirty=False)
        cat.create_or_touch(1, 250, version=2, dirty=False)
        assert cat.total_bytes == 250

    def test_get_and_getitem(self):
        cat = ObjectCatalog()
        cat.create_or_touch(7, 10, 1, False)
        assert cat.get(7).oid == 7
        assert cat[7].oid == 7
        assert cat.get(8) is None
        with pytest.raises(KeyError):
            cat[8]

    def test_remove(self):
        cat = ObjectCatalog()
        cat.create_or_touch(1, 100, 1, False)
        removed = cat.remove(1)
        assert removed.oid == 1
        assert cat.total_bytes == 0
        assert 1 not in cat

    def test_dirty_oids(self):
        cat = ObjectCatalog()
        cat.create_or_touch(1, 10, 1, dirty=True)
        cat.create_or_touch(2, 10, 1, dirty=False)
        assert cat.dirty_oids() == [1]

    def test_size_of_oracle(self):
        cat = ObjectCatalog()
        cat.create_or_touch(1, 123, 1, False)
        assert cat.size_of(1) == 123

    def test_iteration(self):
        cat = ObjectCatalog()
        for oid in range(5):
            cat.create_or_touch(oid, 10, 1, False)
        assert sorted(o.oid for o in cat) == list(range(5))
