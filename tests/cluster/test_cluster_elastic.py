"""ElasticCluster: the full write/resize/re-integrate lifecycle."""

import pytest

from repro.cluster.cluster import ElasticCluster

MB4 = 4 * 1024 * 1024


class TestWritePath:
    def test_write_places_r_replicas(self, elastic10):
        placement = elastic10.write(1, MB4)
        assert len(placement.servers) == 2
        for rank in placement.servers:
            assert elastic10.servers[rank].has_replica(1)

    def test_stored_locations(self, elastic10):
        placement = elastic10.write(1, MB4)
        assert set(elastic10.stored_locations(1)) == set(placement.servers)

    def test_full_power_write_is_clean(self, elastic10):
        elastic10.write(1, MB4)
        assert not elastic10.catalog[1].dirty
        assert elastic10.ech.dirty.is_empty()

    def test_reduced_power_write_is_dirty(self, elastic10):
        elastic10.resize(6)
        elastic10.write(1, MB4)
        assert elastic10.catalog[1].dirty
        assert elastic10.ech.dirty.contains_oid(1)

    def test_rewrite_drops_stale_replicas(self, elastic10):
        elastic10.write(1, MB4)
        elastic10.resize(5)
        elastic10.write(1, MB4)
        stored = elastic10.stored_locations(1)
        assert len(stored) == 2
        assert all(r <= 5 for r in stored)

    def test_replication_always_met(self, loaded_elastic10):
        assert loaded_elastic10.verify_replication() == []


class TestRead:
    def test_read_full_power(self, loaded_elastic10):
        servers, available = loaded_elastic10.read(5)
        assert available
        assert set(servers) == set(loaded_elastic10.stored_locations(5))

    def test_read_after_shrink_still_available(self, loaded_elastic10):
        """The primary-design guarantee: one copy always on an active
        server."""
        loaded_elastic10.resize(loaded_elastic10.min_active)
        for oid in range(0, 1000, 97):
            _, available = loaded_elastic10.read(oid)
            assert available

    def test_read_unknown_raises(self, elastic10):
        with pytest.raises(KeyError):
            elastic10.read(999)

    def test_read_of_offloaded_write(self, elastic10):
        elastic10.resize(5)
        elastic10.write(1, MB4)
        servers, available = elastic10.read(1)
        assert available
        assert all(s <= 5 for s in servers)


class TestResize:
    def test_resize_is_instant_and_versioned(self, elastic10):
        v0 = elastic10.current_version
        elastic10.resize(6)
        assert elastic10.num_active == 6
        assert elastic10.current_version == v0 + 1
        for rank, srv in elastic10.servers.items():
            assert srv.is_on == (rank <= 6)

    def test_data_preserved_across_power_off(self, loaded_elastic10):
        bytes_on_10 = loaded_elastic10.servers[10].used_bytes
        assert bytes_on_10 > 0
        loaded_elastic10.resize(6)
        assert loaded_elastic10.servers[10].used_bytes == bytes_on_10

    def test_floor_at_primaries(self, elastic10):
        elastic10.resize(0)
        assert elastic10.num_active == elastic10.min_active

    def test_unverified_tracking(self, elastic10):
        elastic10.resize(6)
        assert elastic10.unverified_ranks == set()
        elastic10.resize(9)
        assert elastic10.unverified_ranks == {7, 8, 9}
        elastic10.resize(8)
        assert elastic10.unverified_ranks == {7, 8}


class TestSelectiveReintegration:
    def _cycle(self, cluster, n_clean=200, n_dirty=100):
        for oid in range(n_clean):
            cluster.write(oid, MB4)
        cluster.resize(6)
        for oid in range(n_clean, n_clean + n_dirty):
            cluster.write(oid, MB4)
        cluster.resize(10)

    def test_only_dirty_objects_move(self, elastic10):
        self._cycle(elastic10)
        report = elastic10.run_selective_reintegration()
        dirty_range = set(range(200, 300))
        assert {t.oid for t in report.tasks} <= dirty_range

    def test_layout_restored(self, elastic10):
        self._cycle(elastic10)
        elastic10.run_selective_reintegration()
        for obj in elastic10.catalog:
            stored = set(elastic10.stored_locations(obj.oid))
            target = set(elastic10.ech.locate(obj.oid).servers)
            assert stored == target

    def test_dirty_bits_cleared_at_full_power(self, elastic10):
        self._cycle(elastic10)
        elastic10.run_selective_reintegration()
        assert elastic10.catalog.dirty_oids() == []
        assert elastic10.ech.dirty.is_empty()
        assert elastic10.unverified_ranks == set()

    def test_backlog_prediction_matches(self, elastic10):
        self._cycle(elastic10)
        predicted = elastic10.selective_backlog_bytes()
        report = elastic10.run_selective_reintegration()
        assert report.bytes_migrated == predicted

    def test_budgeted_rounds_converge(self, elastic10):
        self._cycle(elastic10)
        moved = 0
        for _ in range(1000):
            rep = elastic10.run_selective_reintegration(
                budget_bytes=20 * MB4)
            moved += rep.bytes_migrated
            if rep.caught_up:
                break
        assert elastic10.ech.dirty.is_empty()
        assert elastic10.verify_replication() == []

    def test_replication_never_below_r_during_migration(self, elastic10):
        self._cycle(elastic10)
        reports = elastic10.run_selective_reintegration()
        assert elastic10.verify_replication() == []


class TestFullReintegration:
    def _cycle(self, cluster):
        for oid in range(200):
            cluster.write(oid, MB4)
        cluster.resize(6)
        for oid in range(200, 300):
            cluster.write(oid, MB4)
        cluster.resize(10)

    def test_full_overmigrates_vs_selective(self):
        a = ElasticCluster(n=10, replicas=2)
        b = ElasticCluster(n=10, replicas=2)
        for cl in (a, b):
            self._cycle(cl)
        selective = a.run_selective_reintegration().bytes_migrated
        full = b.run_full_reintegration()
        assert full > selective

    def test_full_restores_layout(self, elastic10):
        self._cycle(elastic10)
        elastic10.run_full_reintegration()
        for obj in elastic10.catalog:
            stored = set(elastic10.stored_locations(obj.oid))
            target = set(elastic10.ech.locate(obj.oid).servers)
            assert stored == target
        assert elastic10.ech.dirty.is_empty()
        assert elastic10.catalog.dirty_oids() == []

    def test_full_bytes_prediction(self, elastic10):
        self._cycle(elastic10)
        predicted = elastic10.full_reintegration_bytes()
        assert elastic10.run_full_reintegration() == predicted

    def test_full_includes_unverified_recopies(self, elastic10):
        """Even with *no* dirty data, full re-copies everything mapped
        onto re-powered servers (§II-C's over-migration)."""
        for oid in range(200):
            elastic10.write(oid, MB4)
        elastic10.resize(6)
        elastic10.resize(10)       # nothing written while down
        assert elastic10.selective_backlog_bytes() == 0
        assert elastic10.full_reintegration_bytes() > 0


class TestAccounting:
    def test_bytes_per_rank_sum(self, loaded_elastic10):
        total = sum(loaded_elastic10.bytes_per_rank().values())
        assert total == 1000 * MB4 * 2

    def test_describe(self, elastic10):
        assert "ElasticCluster" in elastic10.describe()


class TestFullSelectiveComposition:
    """Full and selective re-integration must compose: a partial-power
    full pass may relocate clean objects, but it records them dirty so
    a later selective pass can finish the job (the stateful property
    test found the original violation)."""

    def test_partial_full_then_selective_restores_layout(self):
        cl = ElasticCluster(n=10, replicas=2)
        for oid in range(200):
            cl.write(oid, MB4)
        cl.resize(5)
        cl.resize(7)                 # partial re-power
        moved = cl.run_full_reintegration()
        # Relocated objects are now dirty-tracked.
        assert not cl.ech.dirty.is_empty()
        cl.resize(10)
        report = cl.run_selective_reintegration()
        assert report.caught_up
        assert cl.ech.dirty.is_empty()
        for obj in cl.catalog:
            assert (set(cl.stored_locations(obj.oid))
                    == set(cl.ech.locate(obj.oid).servers))

    def test_full_at_full_power_needs_no_followup(self):
        cl = ElasticCluster(n=10, replicas=2)
        for oid in range(200):
            cl.write(oid, MB4)
        cl.resize(6)
        cl.resize(10)
        cl.run_full_reintegration()
        assert cl.ech.dirty.is_empty()
        for obj in cl.catalog:
            assert (set(cl.stored_locations(obj.oid))
                    == set(cl.ech.locate(obj.oid).servers))
