"""Machine-hour metering and the power model."""

import pytest

from repro.cluster.power import (
    MachineHourMeter,
    PowerModel,
    machine_hours_of_series,
)


class TestMachineHourMeter:
    def test_constant_count(self):
        m = MachineHourMeter(0.0, 10)
        assert m.finish(3600.0) == pytest.approx(10.0)

    def test_step_change(self):
        m = MachineHourMeter(0.0, 10)
        m.record(1800.0, 4)
        assert m.finish(3600.0) == pytest.approx(5.0 + 2.0)

    def test_time_regression_rejected(self):
        m = MachineHourMeter(0.0, 1)
        m.record(10.0, 2)
        with pytest.raises(ValueError):
            m.record(5.0, 3)

    def test_samples_recorded(self):
        m = MachineHourMeter(0.0, 1)
        m.record(5.0, 2)
        assert m.samples[0] == (0.0, 1)
        assert m.samples[1] == (5.0, 2)

    def test_machine_seconds(self):
        m = MachineHourMeter(0.0, 2)
        m.finish(10.0)
        assert m.machine_seconds == pytest.approx(20.0)


class TestSeriesHelper:
    def test_matches_meter(self):
        mh = machine_hours_of_series([0.0, 1800.0], [10, 4],
                                     end_time=3600.0)
        assert mh == pytest.approx(7.0)

    def test_empty_series(self):
        assert machine_hours_of_series([], []) == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            machine_hours_of_series([0.0], [1, 2])


class TestPowerModel:
    def test_energy(self):
        pm = PowerModel(watts_active=200.0, watts_off=10.0)
        assert pm.energy_kwh(10.0, 5.0) == pytest.approx(2.05)

    def test_savings_fraction(self):
        pm = PowerModel(watts_active=200.0, watts_off=0.0)
        # Half the machine hours of always-on -> 50% saved.
        assert pm.savings_vs_always_on(
            active_machine_hours=50.0, n_servers=10,
            duration_hours=10.0) == pytest.approx(0.5)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().savings_vs_always_on(1.0, 10, 0.0)
