"""Migration planning and the token bucket."""

import pytest

from repro.cluster.cluster import ElasticCluster, OriginalCHCluster
from repro.cluster.migration import (
    TokenBucket,
    addition_migration_plan,
    full_reintegration_plan,
)

MB4 = 4 * 1024 * 1024


class TestTokenBucket:
    def test_grant_accrues_rate(self):
        tb = TokenBucket(rate_bytes_per_s=100, burst_bytes=1000)
        tb.grant(0)  # drain the initial burst
        assert tb.grant(1.0) == 100

    def test_burst_cap(self):
        tb = TokenBucket(rate_bytes_per_s=100, burst_bytes=250)
        assert tb.grant(100.0) == 250

    def test_initial_balance_is_burst(self):
        tb = TokenBucket(rate_bytes_per_s=10, burst_bytes=500)
        assert tb.grant(0.0) == 500

    def test_refund(self):
        tb = TokenBucket(rate_bytes_per_s=100, burst_bytes=1000)
        tb.grant(0)
        tb.refund(300)
        assert tb.grant(0.0) == 300

    def test_refund_capped_at_burst(self):
        tb = TokenBucket(rate_bytes_per_s=100, burst_bytes=100)
        tb.refund(10_000)
        assert tb.grant(0.0) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0)
        tb = TokenBucket(10)
        with pytest.raises(ValueError):
            tb.grant(-1)
        with pytest.raises(ValueError):
            tb.refund(-1)

    def test_long_run_rate_respected(self):
        tb = TokenBucket(rate_bytes_per_s=50, burst_bytes=50)
        total = sum(tb.grant(1.0) for _ in range(100))
        assert total <= 50 * 101  # burst + 100s of rate


class TestFullReintegrationPlan:
    def test_plan_matches_run(self):
        a = ElasticCluster(n=10, replicas=2)
        b = ElasticCluster(n=10, replicas=2)
        for cl in (a, b):
            for oid in range(200):
                cl.write(oid, MB4)
            cl.resize(6)
            for oid in range(200, 250):
                cl.write(oid, MB4)
            cl.resize(10)
        plan = full_reintegration_plan(a)
        moved = b.run_full_reintegration()
        assert plan.total_bytes == moved

    def test_empty_when_layout_clean(self, loaded_elastic10):
        plan = full_reintegration_plan(loaded_elastic10)
        assert plan.total_bytes == 0
        assert plan.num_objects == 0

    def test_bytes_per_destination(self, elastic10):
        for oid in range(100):
            elastic10.write(oid, MB4)
        elastic10.resize(6)
        for oid in range(100, 150):
            elastic10.write(oid, MB4)
        elastic10.resize(10)
        plan = full_reintegration_plan(elastic10)
        per_dest = plan.bytes_per_destination()
        assert sum(per_dest.values()) == plan.total_bytes
        # The re-powered ranks are destinations.
        assert any(r in per_dest for r in (7, 8, 9, 10))


class TestAdditionPlan:
    def test_single_server_plan_matches_actual(self, loaded_original10):
        loaded_original10.remove_server(10)
        plan = addition_migration_plan(loaded_original10, [10])
        assert plan.total_bytes == loaded_original10.add_server(10)

    def test_batched_plan_bounds_sequential_additions(self,
                                                      loaded_original10):
        """Adding two servers one at a time migrates at least as much
        as the batched plan: the intermediate ring moves some objects
        twice."""
        loaded_original10.remove_server(10)
        loaded_original10.remove_server(9)
        plan = addition_migration_plan(loaded_original10, [9, 10])
        actual = loaded_original10.add_server(9) + \
            loaded_original10.add_server(10)
        assert plan.total_bytes <= actual

    def test_plan_is_pure(self, loaded_original10):
        loaded_original10.remove_server(10)
        before = loaded_original10.replicas_per_rank()
        addition_migration_plan(loaded_original10, [10])
        assert loaded_original10.replicas_per_rank() == before

    def test_member_rank_rejected(self, loaded_original10):
        with pytest.raises(KeyError):
            addition_migration_plan(loaded_original10, [5])
