"""Failure injection: crashes lose data; the versioning + dirty-table
machinery must absorb them."""

import pytest

from repro.cluster.cluster import ElasticCluster

MB4 = 4 * 1024 * 1024


@pytest.fixture
def cluster():
    cl = ElasticCluster(n=10, replicas=2)
    for oid in range(500):
        cl.write(oid, MB4)
    return cl


class TestFailServer:
    def test_replicas_rerecovered(self, cluster):
        held = cluster.servers[7].num_replicas
        assert held > 0
        moved = cluster.fail_server(7)
        assert moved == held * MB4
        assert cluster.verify_replication(require_active=True) == []

    def test_crash_loses_local_data(self, cluster):
        cluster.fail_server(7)
        assert cluster.servers[7].num_replicas == 0
        assert not cluster.servers[7].is_on

    def test_new_version_excludes_failed_rank(self, cluster):
        v0 = cluster.current_version
        cluster.fail_server(7)
        assert cluster.current_version == v0 + 1
        assert not cluster.ech.membership.is_active(7)

    def test_affected_objects_become_dirty(self, cluster):
        affected = set(cluster.servers[7].replicas())
        cluster.fail_server(7)
        for oid in affected:
            assert cluster.ech.dirty.contains_oid(oid)

    def test_reads_still_available(self, cluster):
        cluster.fail_server(7)
        for oid in range(0, 500, 41):
            _, available = cluster.read(oid)
            assert available

    def test_double_failure_tolerated_sequentially(self, cluster):
        """r=2 survives any sequence of single failures with recovery
        between them."""
        cluster.fail_server(7)
        cluster.fail_server(4)
        assert cluster.verify_replication(require_active=True) == []

    def test_already_failed_rejected(self, cluster):
        cluster.fail_server(7)
        with pytest.raises(ValueError):
            cluster.ech.mark_failed(7)

    def test_unknown_rank_rejected(self, cluster):
        with pytest.raises(KeyError):
            cluster.ech.mark_failed(42)

    def test_primary_failure_degrades_but_survives(self, cluster):
        """Losing a primary breaks the one-copy-on-primary guarantee
        (placements degrade) but not availability."""
        cluster.fail_server(1)
        assert cluster.verify_replication(require_active=True) == []
        placement = cluster.ech.locate(12345)
        assert 1 not in placement.servers


class TestRepair:
    def test_repair_then_resize_restores_layout(self, cluster):
        full_placements = {
            oid: set(cluster.ech.locate(oid, 1).servers)
            for oid in range(0, 500, 7)
        }
        cluster.fail_server(7)
        cluster.repair_server(7)
        cluster.resize(9)           # version without 7... now includes it
        cluster.resize(10)
        report = cluster.run_selective_reintegration()
        assert report.caught_up
        assert cluster.ech.dirty.is_empty()
        for oid, expected in full_placements.items():
            assert set(cluster.stored_locations(oid)) == expected

    def test_resize_skips_failed_rank(self, cluster):
        cluster.fail_server(9)
        cluster.resize(10)
        # The chain takes the first 10 non-failed ranks; only 9 exist.
        assert cluster.ech.num_active == 9
        assert not cluster.ech.membership.is_active(9)

    def test_repair_requires_failure(self, cluster):
        with pytest.raises(ValueError):
            cluster.repair_server(5)

    def test_failed_rank_rejoins_chain_after_repair(self, cluster):
        cluster.fail_server(9)
        cluster.repair_server(9)
        cluster.resize(10)
        assert cluster.ech.membership.is_active(9)
        # It rejoined empty; after reintegration it holds data again.
        cluster.run_selective_reintegration()
        assert cluster.servers[9].num_replicas > 0


class TestFailureDuringReducedPower:
    def test_crash_while_shrunk(self, cluster):
        cluster.resize(6)
        for oid in range(500, 560):
            cluster.write(oid, MB4)
        moved = cluster.fail_server(3)
        assert moved > 0
        # While shrunk the invariant is availability (>= 1 active
        # copy — the primary guarantee), not r active copies: clean
        # objects legitimately keep replicas on powered-down servers.
        for oid in range(0, 560, 23):
            _, available = cluster.read(oid)
            assert available, oid
        # Every object still has r copies *somewhere* (crash recovery
        # restored the count).
        assert cluster.verify_replication(require_active=False) == []
        # Recover everything: repair, grow, reintegrate.
        cluster.repair_server(3)
        cluster.resize(10)
        cluster.run_selective_reintegration()
        assert cluster.ech.dirty.is_empty()
        assert cluster.verify_replication() == []


class TestRepairGuard:
    """A repair must not race an in-flight transfer that still touches
    the rank (the fault-injection layer pins endpoints via
    ``acquire_ranks``)."""

    def test_repair_rejected_while_rank_pinned(self, cluster):
        cluster.crash_server(7)
        cluster.acquire_ranks({7, 3})
        with pytest.raises(RuntimeError, match="in-flight"):
            cluster.repair_server(7)
        # The failed rank is still failed: nothing was half-applied.
        assert 7 in cluster.ech.failed
        cluster.release_ranks({7, 3})
        cluster.repair_server(7)
        assert 7 not in cluster.ech.failed

    def test_pins_are_refcounted(self, cluster):
        cluster.crash_server(7)
        cluster.acquire_ranks({7})
        cluster.acquire_ranks({7})
        cluster.release_ranks({7})
        with pytest.raises(RuntimeError, match="1 in-flight"):
            cluster.repair_server(7)
        cluster.release_ranks({7})
        cluster.repair_server(7)

    def test_unpinned_ranks_unaffected(self, cluster):
        cluster.crash_server(7)
        cluster.acquire_ranks({3, 5})       # transfer elsewhere
        cluster.repair_server(7)            # fine
        assert 7 not in cluster.ech.failed
