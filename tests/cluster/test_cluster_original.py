"""OriginalCHCluster: the §II-C baseline semantics."""

import pytest

from repro.cluster.cluster import OriginalCHCluster

MB4 = 4 * 1024 * 1024


class TestWriteRead:
    def test_write_places_replicas(self, original10):
        placement = original10.write(1, MB4)
        assert len(set(placement.servers)) == 2
        for rank in placement.servers:
            assert original10.servers[rank].has_replica(1)

    def test_read(self, loaded_original10):
        servers, available = loaded_original10.read(7)
        assert available

    def test_read_unknown(self, original10):
        with pytest.raises(KeyError):
            original10.read(1)

    def test_roughly_uniform_distribution(self, loaded_original10):
        counts = loaded_original10.replicas_per_rank()
        mean = sum(counts.values()) / len(counts)
        assert max(counts.values()) / mean < 1.6
        assert min(counts.values()) / mean > 0.5


class TestRemoval:
    def test_removal_rereplicates_before_leaving(self, loaded_original10):
        held = loaded_original10.servers[10].num_replicas
        assert held > 0
        moved = loaded_original10.remove_server(10)
        assert moved > 0
        assert 10 not in loaded_original10.ring
        assert loaded_original10.servers[10].num_replicas == 0
        assert loaded_original10.verify_replication() == []

    def test_removed_server_powered_off(self, loaded_original10):
        loaded_original10.remove_server(10)
        assert not loaded_original10.servers[10].is_on

    def test_cannot_break_replication_level(self):
        cl = OriginalCHCluster(n=2, replicas=2, vnodes_per_server=50)
        cl.write(1, MB4)
        with pytest.raises(RuntimeError):
            cl.remove_server(2)

    def test_remove_unknown_rejected(self, original10):
        with pytest.raises(KeyError):
            original10.remove_server(99)

    def test_sequential_removals_accumulate(self, loaded_original10):
        loaded_original10.remove_server(10)
        loaded_original10.remove_server(9)
        assert loaded_original10.num_active == 8
        assert loaded_original10.verify_replication() == []
        assert loaded_original10.rereplicated_bytes > 0


class TestAddition:
    def test_add_migrates_onto_empty_server(self, loaded_original10):
        loaded_original10.remove_server(10)
        moved = loaded_original10.add_server(10)
        assert moved > 0
        assert loaded_original10.servers[10].num_replicas > 0
        assert loaded_original10.verify_replication() == []

    def test_add_existing_rejected(self, original10):
        with pytest.raises(KeyError):
            original10.add_server(5)

    def test_addition_plan_matches_actual(self, loaded_original10):
        loaded_original10.remove_server(10)
        predicted = loaded_original10.addition_migration_bytes(10)
        actual = loaded_original10.add_server(10)
        assert actual == predicted

    def test_addition_estimate_leaves_state_untouched(self,
                                                      loaded_original10):
        loaded_original10.remove_server(10)
        before = loaded_original10.replicas_per_rank()
        loaded_original10.addition_migration_bytes(10)
        assert loaded_original10.replicas_per_rank() == before
        assert 10 not in loaded_original10.ring

    def test_roundtrip_restores_layout(self, loaded_original10):
        """Remove + re-add: every object's placement is satisfied."""
        loaded_original10.remove_server(10)
        loaded_original10.add_server(10)
        for obj in loaded_original10.catalog:
            stored = set(loaded_original10.stored_locations(obj.oid))
            target = set(loaded_original10.placement(obj.oid).servers)
            assert stored == target


class TestElasticComparison:
    def test_baseline_moves_more_data_on_resize_cycle(self):
        """The headline claim: for the same shrink/grow cycle the
        baseline pays re-replication + full migration, the elastic
        cluster pays only the offloaded data."""
        from repro.cluster.cluster import ElasticCluster
        base = OriginalCHCluster(n=10, replicas=2, vnodes_per_server=200)
        elastic = ElasticCluster(n=10, replicas=2)
        for oid in range(500):
            base.write(oid, MB4)
            elastic.write(oid, MB4)

        # Baseline: remove 2, write a little, add 2 back.
        base_moved = base.remove_server(10) + base.remove_server(9)
        for oid in range(500, 550):
            base.write(oid, MB4)
        base_moved += base.add_server(9) + base.add_server(10)

        # Elastic: same cycle.
        elastic.resize(8)
        for oid in range(500, 550):
            elastic.write(oid, MB4)
        elastic.resize(10)
        elastic_moved = elastic.run_selective_reintegration().bytes_migrated

        assert elastic_moved < base_moved / 3
