"""ElasticCluster under the non-default placement/layout modes."""

import pytest

from repro.cluster.cluster import ElasticCluster

MB4 = 4 * 1024 * 1024


@pytest.fixture(params=[
    {"chain": "rehash"},
    {"layout_mode": "uniform"},
    {"layout_mode": "uniform", "placement_mode": "original"},
    {"chain": "rehash", "layout_mode": "uniform"},
])
def cluster(request):
    return ElasticCluster(n=10, replicas=2, **request.param)


class TestLifecycleUnderAllModes:
    def test_write_resize_reintegrate(self, cluster):
        for oid in range(300):
            cluster.write(oid, MB4)
        cluster.resize(6)
        for oid in range(300, 400):
            cluster.write(oid, MB4)
        cluster.resize(10)
        report = cluster.run_selective_reintegration()
        assert report.caught_up
        assert cluster.ech.dirty.is_empty()
        for obj in cluster.catalog:
            assert (set(cluster.stored_locations(obj.oid))
                    == set(cluster.ech.locate(obj.oid).servers))

    def test_reads_available_while_shrunk(self, cluster):
        for oid in range(200):
            cluster.write(oid, MB4)
        cluster.resize(cluster.min_active)
        availability = [cluster.read(oid)[1] for oid in range(200)]
        if cluster.ech.placement_mode == "primary":
            # The primary guarantee: every object keeps an active copy.
            assert all(availability)
        else:
            # The paper's motivation (§II-C): without primary
            # placement, shrinking strands objects whose replicas all
            # sit on powered-down servers.
            assert not all(availability)

    def test_replication_maintained(self, cluster):
        for oid in range(200):
            cluster.write(oid, MB4)
        cluster.resize(5)
        for oid in range(200, 250):
            cluster.write(oid, MB4)
        assert cluster.verify_replication() == []


class TestUniformLayoutProperties:
    def test_distribution_roughly_even(self):
        cl = ElasticCluster(n=10, replicas=2, layout_mode="uniform",
                            placement_mode="original")
        for oid in range(2_000):
            cl.write(oid, MB4)
        counts = cl.replicas_per_rank()
        mean = sum(counts.values()) / 10
        assert max(counts.values()) < 1.35 * mean
        assert min(counts.values()) > 0.65 * mean

    def test_primary_placement_on_uniform_weights(self):
        """Mixing uniform weights with primary placement still pins
        one copy per object to the primaries."""
        cl = ElasticCluster(n=10, replicas=2, layout_mode="uniform",
                            placement_mode="primary")
        for oid in range(500):
            placement = cl.write(oid, MB4)
            primaries = sum(1 for s in placement.servers
                            if cl.ech.is_primary(s))
            assert primaries == 1
