"""The VDI (virtual disk) layer."""

import pytest

from repro.cluster.cluster import ElasticCluster
from repro.cluster.vdi import VirtualDisk

MB = 1024 * 1024
CHUNK = 4 * MB


@pytest.fixture
def disk(elastic10):
    return VirtualDisk("test-vm", size_bytes=100 * CHUNK,
                       cluster=elastic10)


class TestGeometry:
    def test_chunk_count_rounds_up(self, elastic10):
        d = VirtualDisk("d", size_bytes=CHUNK + 1, cluster=elastic10)
        assert d.num_chunks == 2

    def test_oids_unique_within_disk(self, disk):
        oids = {disk.oid_for_chunk(i) for i in range(disk.num_chunks)}
        assert len(oids) == disk.num_chunks

    def test_oids_distinct_across_disks(self, elastic10):
        a = VirtualDisk("vm-a", 10 * CHUNK, elastic10)
        b = VirtualDisk("vm-b", 10 * CHUNK, elastic10)
        assert {a.oid_for_chunk(i) for i in range(10)}.isdisjoint(
            {b.oid_for_chunk(i) for i in range(10)})

    def test_chunk_out_of_range(self, disk):
        with pytest.raises(IndexError):
            disk.oid_for_chunk(disk.num_chunks)

    def test_validation(self, elastic10):
        with pytest.raises(ValueError):
            VirtualDisk("d", 0, elastic10)
        with pytest.raises(ValueError):
            VirtualDisk("d", 10, elastic10, object_size=0)


class TestRanges:
    def test_aligned_single_chunk(self, disk):
        ranges = list(disk.ranges(0, CHUNK))
        assert len(ranges) == 1
        assert ranges[0].offset_in_chunk == 0
        assert ranges[0].length == CHUNK

    def test_unaligned_spans_two_chunks(self, disk):
        ranges = list(disk.ranges(CHUNK - 100, 200))
        assert len(ranges) == 2
        assert ranges[0].length == 100
        assert ranges[1].offset_in_chunk == 0
        assert ranges[1].length == 100

    def test_lengths_sum(self, disk):
        total = sum(r.length for r in disk.ranges(123456, 10 * MB))
        assert total == 10 * MB

    def test_beyond_end_rejected(self, disk):
        with pytest.raises(ValueError):
            list(disk.ranges(disk.size_bytes - 10, 20))

    def test_negative_rejected(self, disk):
        with pytest.raises(ValueError):
            list(disk.ranges(-1, 10))


class TestIO:
    def test_write_allocates_chunks(self, disk):
        disk.write(0, 3 * CHUNK)
        assert disk.allocated_chunks == 3
        assert disk.allocated_bytes == 3 * CHUNK

    def test_write_stores_objects_in_cluster(self, disk):
        touched = disk.write(0, CHUNK)
        oid = touched[0].oid
        assert oid in disk.cluster.catalog
        assert len(disk.cluster.stored_locations(oid)) == 2

    def test_partial_write_rewrites_whole_chunk(self, disk):
        touched = disk.write(100, 10)
        assert len(touched) == 1
        assert disk.cluster.catalog[touched[0].oid].size == CHUNK

    def test_read_hole_is_available_without_io(self, disk):
        before = len(disk.cluster.catalog)
        results = disk.read(0, CHUNK)
        assert all(avail for _r, avail in results)
        assert len(disk.cluster.catalog) == before

    def test_read_after_write(self, disk):
        disk.write(5 * CHUNK, CHUNK)
        results = disk.read(5 * CHUNK, CHUNK)
        assert all(avail for _r, avail in results)

    def test_reads_survive_resize(self, disk):
        disk.write(0, 10 * CHUNK)
        disk.cluster.resize(disk.cluster.min_active)
        assert all(avail for _r, avail in disk.read(0, 10 * CHUNK))

    def test_write_while_shrunk_is_dirty(self, disk):
        disk.cluster.resize(6)
        touched = disk.write(0, CHUNK)
        assert disk.cluster.ech.dirty.contains_oid(touched[0].oid)


class TestAmplification:
    def test_aligned_full_chunk(self, disk):
        # 4 MB logical -> 2 replicas of one 4 MB object.
        assert disk.write_amplification(0, CHUNK) == pytest.approx(2.0)

    def test_small_write_amplifies_hard(self, disk):
        amp = disk.write_amplification(0, 4096)
        assert amp == pytest.approx(2 * CHUNK / 4096)

    def test_describe(self, disk):
        assert "test-vm" in disk.describe()
