#!/usr/bin/env python3
"""Figure 4 walkthrough: how Algorithm 1 places replicas.

Reconstructs the paper's example — a 10-server cluster with 2
primaries and 2 inactive secondaries — and shows, for a handful of
objects, which servers the walk considers, which it skips and why.

Run:  python examples/placement_walkthrough.py
"""

from repro.core.elastic import ElasticConsistentHash


def walk_commentary(ech, oid):
    """Reproduce the clockwise walk for *oid* and narrate each hop."""
    ring = ech.ring
    table = ech.membership
    selected = []
    lines = []
    for sid in ring.walk_servers(ring.key_position(oid)):
        role = "primary" if ech.is_primary(sid) else "secondary"
        if not table.is_active(sid):
            lines.append(f"    server {sid} ({role}): SKIP — inactive "
                         "(write offloading)")
            continue
        if selected and any(ech.is_primary(s) for s in selected) \
                and ech.is_primary(sid):
            lines.append(f"    server {sid} ({role}): SKIP — already "
                         "have a primary copy")
            continue
        selected.append(sid)
        lines.append(f"    server {sid} ({role}): SELECT "
                     f"(replica {len(selected)})")
        if len(selected) == ech.replicas:
            break
    return selected, lines


def main() -> None:
    # Figure 4's shape: 10 servers, p=2 primaries, servers 9 and 10
    # powered down.
    ech = ElasticConsistentHash(n=10, replicas=2)
    ech.set_active(8)
    print("Figure 4 setup: 10 servers, primaries {1, 2}, "
          "servers 9 & 10 inactive\n")

    shown = 0
    for oid in range(200):
        placement = ech.locate(oid)
        first_primary = ech.is_primary(placement.servers[0])
        # Show one example of each Figure 4 pattern:
        #   D1: first copy on a secondary -> second must find a primary
        #   D2: first copy on a primary   -> second must find a secondary
        if shown == 0 and not first_primary:
            label = "D1-style (first replica on a secondary)"
        elif shown == 1 and first_primary:
            label = "D2-style (first replica on a primary)"
        else:
            continue
        shown += 1
        selected, lines = walk_commentary(ech, oid)
        print(f"object {oid} — {label}")
        print("\n".join(lines))
        print(f"    => placement {tuple(selected)}  "
              f"(algorithm says {placement.servers})\n")
        assert tuple(selected) == placement.servers
        if shown == 2:
            break

    # The §III-B special case: all secondaries off.
    ech2 = ElasticConsistentHash(n=10, replicas=2)
    ech2.set_active(2)
    placement = ech2.locate(12345)
    print("special case — only the 2 primaries active:")
    print(f"    placement of object 12345: {placement.servers} "
          f"(degraded={placement.degraded}) — primaries temporarily "
          "act as secondaries so the replication level holds")


if __name__ == "__main__":
    main()
