#!/usr/bin/env python3
"""The §V-B trace analysis: synthesize a Cloudera-style trace, run the
four resizing policies, and print the Figure 8/9 curves and Table II
row.

Run:  python examples/trace_policy_analysis.py [CC-a|CC-b]
"""

import sys

import numpy as np

from repro.experiments import run_trace_analysis
from repro.metrics.report import render_table


def ascii_curves(series, n_max, width=68, rows=12):
    """Plot the four server-count curves as stacked ASCII strips."""
    out = []
    for name, values in series.items():
        step = max(1, len(values) // width)
        strip = []
        for i in range(0, len(values), step):
            v = max(values[i:i + step])
            strip.append(str(min(9, int(v / n_max * 10))))
        out.append(f"  {name:>18} |{''.join(strip)}|")
    out.append(f"  {'':>18}  (digits = active servers in tenths of "
               f"n_max={n_max})")
    return "\n".join(out)


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "CC-a"
    exp = run_trace_analysis(which)
    trace = exp.trace
    cfg = exp.analysis.config

    print(f"trace {which}: {trace.stats()['total_bytes'] / 1e12:.0f} TB "
          f"over {exp.spec.length_days:g} days, "
          f"analysed on an n={cfg.n_max} cluster "
          f"(p={cfg.p} primaries)\n")

    print("figure window (250 minutes):")
    print(ascii_curves(exp.figure_series(), cfg.n_max))
    print()

    rows = [["ideal", round(exp.analysis.ideal_machine_hours, 1), 1.0]]
    for name, res in exp.analysis.results.items():
        rows.append([name, round(res.machine_hours, 1),
                     round(res.relative_machine_hours, 3)])
    print(render_table(["policy", "machine hours", "relative to ideal"],
                       rows, title="Table II row"))
    print()
    savings = exp.analysis.savings_vs_original()
    for name, frac in savings.items():
        print(f"{name} saves {100 * frac:.1f}% machine hours vs "
              "original CH")


if __name__ == "__main__":
    main()
