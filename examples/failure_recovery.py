#!/usr/bin/env python3
"""Failure vs planned power-down: what each costs.

The elastic design's core economy: powering a server *down* keeps its
data on disk (free), while a *crash* loses the replica map and forces
re-replication.  This example runs both on identical clusters and
compares the IO each incurs, then walks a crash through repair and
selective re-integration back to a healthy full-power layout.

Run:  python examples/failure_recovery.py
"""

from repro.cluster.cluster import ElasticCluster

MB4 = 4 * 1024 * 1024
OBJECTS = 1_000


def build():
    cl = ElasticCluster(n=10, replicas=2)
    for oid in range(OBJECTS):
        cl.write(oid, MB4)
    return cl


def main() -> None:
    # ---- planned power-down -------------------------------------------
    planned = build()
    held = planned.servers[10].used_bytes
    planned.resize(9)
    print("planned power-down of rank 10:")
    print(f"    data it held : {held / 1e9:.2f} GB — stays on disk")
    print(f"    IO required  : 0 GB (no clean-up work; the primaries "
          "guarantee availability)")
    print(f"    dirty entries: {len(planned.ech.dirty)}")
    print()

    # ---- crash ---------------------------------------------------------
    crashed = build()
    held = crashed.servers[10].used_bytes
    moved = crashed.fail_server(10)
    print("crash of rank 10:")
    print(f"    data it held : {held / 1e9:.2f} GB — lost")
    print(f"    IO required  : {moved / 1e9:.2f} GB re-replicated "
          "immediately (replication level restored)")
    print(f"    dirty entries: {len(crashed.ech.dirty)} "
          "(affected objects tracked for later re-integration)")
    print(f"    all objects still readable: "
          f"{all(crashed.read(oid)[1] for oid in range(0, OBJECTS, 37))}")
    print()

    # ---- repair + re-integration ----------------------------------------
    crashed.repair_server(10)
    crashed.resize(10)
    report = crashed.run_selective_reintegration()
    print("repair rank 10, power it back on, selective re-integration:")
    print(f"    objects migrated : {report.entries_migrated} "
          f"({report.bytes_migrated / 1e9:.2f} GB)")
    print(f"    dirty table empty: {crashed.ech.dirty.is_empty()}")
    healthy = all(
        set(crashed.stored_locations(oid))
        == set(crashed.ech.locate(oid).servers)
        for oid in range(OBJECTS))
    print(f"    layout restored  : {healthy}")


if __name__ == "__main__":
    main()
