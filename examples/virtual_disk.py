#!/usr/bin/env python3
"""The Sheepdog data model end to end: a VM's virtual disk on the
elastic cluster.

The paper's testbed attaches a 100 GB virtual disk image (VDI) to a
KVM guest (§V-A); Filebench's byte-level IO then lands on 4 MB objects
placed by elastic consistent hashing.  This example carves a (scaled)
VDI, does guest-style IO, resizes the cluster underneath the running
"VM", and shows that the disk never skips a beat.

Run:  python examples/virtual_disk.py
"""

from repro.cluster.cluster import ElasticCluster
from repro.cluster.vdi import VirtualDisk

MB = 1024 * 1024
GB = 1024 * MB


def main() -> None:
    cluster = ElasticCluster(n=10, replicas=2)
    disk = VirtualDisk("kvm-guest", size_bytes=2 * GB, cluster=cluster)
    print(disk.describe())
    print()

    # Guest formats a filesystem: scattered metadata writes.
    for off in range(0, 2 * GB, 128 * MB):
        disk.write(off, 4096)
    print(f"after 'mkfs' (4 KiB writes every 128 MiB): "
          f"{disk.allocated_chunks} chunks allocated, "
          f"{cluster.total_stored_bytes() / 1e9:.2f} GB stored "
          f"(write amplification "
          f"{disk.write_amplification(0, 4096):.0f}x for 4 KiB)")

    # Guest writes a large file sequentially.
    disk.write(256 * MB, 512 * MB)
    print(f"after a 512 MiB sequential write: "
          f"{disk.allocated_chunks} chunks, "
          f"{cluster.total_stored_bytes() / 1e9:.2f} GB stored")
    print()

    # Ops shrinks the cluster under the running VM.
    cluster.resize(4)
    ok = all(avail for _r, avail in disk.read(256 * MB, 512 * MB))
    print(f"cluster resized 10 -> 4 under the VM; file readable: {ok}")

    # Guest keeps writing while shrunk: offloaded + dirty-tracked.
    disk.write(1 * GB, 128 * MB)
    print(f"guest wrote 128 MiB while shrunk -> "
          f"{len(cluster.ech.dirty)} dirty entries")

    # Back to full power; re-integrate.
    cluster.resize(10)
    report = cluster.run_selective_reintegration()
    print(f"regrown to 10; selective re-integration moved "
          f"{report.bytes_migrated / 1e6:.0f} MB and cleared "
          f"{report.entries_removed} entries")
    ok = all(avail for _r, avail in disk.read(0, 2 * GB))
    print(f"whole disk readable: {ok}")


if __name__ == "__main__":
    main()
