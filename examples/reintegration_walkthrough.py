#!/usr/bin/env python3
"""Figure 6 walkthrough: versioning, the dirty table, and selective
re-integration across three cluster versions.

Follows the paper's storyboard: version A with 5 of 10 servers active
(writes are dirty), version B with 9 active (re-integration runs but
entries stay), version C at full power (entries drain and the table
empties).

Run:  python examples/reintegration_walkthrough.py
"""

from repro.cluster.cluster import ElasticCluster

MB4 = 4 * 1024 * 1024


def show_state(cl, note):
    ech = cl.ech
    print(f"--- version {ech.current_version}: {note}")
    states = ech.membership.states()
    on = [r for r, s in states.items() if s == "on"]
    off = [r for r, s in states.items() if s == "off"]
    print(f"    membership: on={on} off={off}")
    entries = ech.dirty.entries()
    if entries:
        print(f"    dirty table ({len(entries)} entries, fetch order):")
        for e in entries[:8]:
            print(f"      oid={e.oid:<6} version={e.version}")
        if len(entries) > 8:
            print(f"      ... and {len(entries) - 8} more")
    else:
        print("    dirty table: empty")
    print()


def main() -> None:
    cl = ElasticCluster(n=10, replicas=2)

    # Some clean, full-power data first.
    for oid in (100, 200):
        cl.write(oid, MB4)

    # Version with 5 active — everything written here is dirty.
    cl.resize(5)
    for oid in (9, 103, 10010, 20400):
        cl.write(oid, MB4)
    show_state(cl, "5 active; 4 objects written (all dirty)")

    hero = 10010
    print(f"object {hero} is stored on "
          f"{cl.stored_locations(hero)} (offloaded placement)\n")

    # Partial re-power: re-integration migrates but cannot clear.
    cl.resize(9)
    report = cl.run_selective_reintegration()
    show_state(cl, f"9 active; re-integration moved "
                   f"{report.entries_migrated} objects "
                   f"({report.bytes_migrated / 2**20:.0f} MiB) — "
                   "entries kept (not full power)")
    print(f"object {hero} now on {cl.stored_locations(hero)} "
          "(header's location version advanced)\n")

    # Full power: the same entries drain and disappear.
    cl.resize(10)
    report = cl.run_selective_reintegration()
    show_state(cl, f"full power; re-integration moved "
                   f"{report.entries_migrated} more objects and "
                   f"cleared {report.entries_removed} entries")
    print(f"object {hero} finally on {cl.stored_locations(hero)} "
          f"== full-power placement "
          f"{cl.ech.locate(hero).servers}")
    assert cl.ech.dirty.is_empty()


if __name__ == "__main__":
    main()
