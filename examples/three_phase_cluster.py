#!/usr/bin/env python3
"""The §V-A testbed experiment, end to end: the 3-phase workload on a
simulated 10-server cluster, comparing no-resizing, original CH and
selective re-integration (Figure 7).

Run:  python examples/three_phase_cluster.py [scale]

*scale* shrinks the workload (default 0.5 for a quick run; the
benchmark harness runs scale=1.0).
"""

import sys

from repro.experiments import run_three_phase

MB = 1e6


def sparkline(values, width=72):
    """A coarse ASCII plot of the throughput timeline."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    step = max(1, len(values) // width)
    peak = max(values) or 1.0
    out = []
    for i in range(0, len(values), step):
        v = max(values[i:i + step])
        out.append(blocks[min(len(blocks) - 1,
                              int(v / peak * (len(blocks) - 1)))])
    return "".join(out)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    print(f"running the 3-phase workload at scale={scale} "
          "(14 GB write / 20 MB/s mixed / 20%-write read)...\n")

    for mode, label in (("none", "no resizing"),
                        ("original", "original CH"),
                        ("selective", "elastic CH + selective")):
        r = run_three_phase(mode, scale=scale)
        p2 = r.phase_ends["phase2"]
        print(f"{label:>24}: peak {max(r.throughput) / MB:6.1f} MB/s | "
              f"mean 60 s after phase 2 "
              f"{r.mean_throughput(p2, p2 + 60) / MB:6.1f} MB/s | "
              f"migrated {r.migrated_bytes / 1e9:5.2f} GB | "
              f"recovered in {r.recovery_time_after(p2):5.1f} s")
        print(f"{'':>24}  [{sparkline([v / MB for v in r.throughput])}]")
    print("\nreading the plot: the dip after the long flat (phase 2)"
          " stretch is re-integration stealing disk bandwidth —"
          " compare its width across the three runs.")


if __name__ == "__main__":
    main()
