#!/usr/bin/env python3
"""A survey of resizing policies and controllers on one trace.

Runs the paper's three policies, the GreenCHT tiered baseline (§VI),
and — stacked on the best policy — the reactive and predictive
controllers (the paper's future-work direction), reporting machine
hours, energy, and availability side by side.

Run:  python examples/elasticity_policies.py [CC-a|CC-b]
"""

import sys

from repro.cluster.power import PowerModel
from repro.experiments.traces import FIGURE_N_MAX
from repro.metrics.report import render_table
from repro.policy import (
    OracleController,
    PredictiveController,
    ReactiveController,
    evaluate_provisioning,
    simulate_policy,
)
from repro.policy.analysis import analyze_trace, config_for_trace
from repro.workloads.cloudera import generate_cc_a, generate_cc_b


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "CC-a"
    trace = generate_cc_a() if which == "CC-a" else generate_cc_b()
    cfg = config_for_trace(trace, FIGURE_N_MAX[which])

    # ---- mechanisms (clairvoyant targets) --------------------------------
    analysis = analyze_trace(trace, config=cfg)
    energy = analysis.energy_summary(PowerModel(watts_active=200.0))
    greencht = simulate_policy("greencht", trace, cfg)

    rows = []
    for name, res in analysis.results.items():
        rows.append([name, round(res.relative_machine_hours, 3),
                     round(energy[name]["energy_kwh"], 0),
                     f"{energy[name]['savings_vs_always_on'] * 100:.0f}%"])
    rows.append(["greencht (4 tiers)",
                 round(greencht.relative_machine_hours, 3), "-", "-"])
    rows.append(["always-on", "-",
                 round(energy["always-on"]["energy_kwh"], 0), "0%"])
    print(render_table(
        ["mechanism", "rel. machine hours", "energy kWh",
         "saved vs always-on"],
        rows, title=f"{which}: resizing mechanisms "
                    f"(n={cfg.n_max}, p={cfg.p})"))
    print()

    # ---- controllers on top of primary+selective -------------------------
    rows = []
    for ctrl in (OracleController(),
                 ReactiveController(headroom=1.2, hold_samples=5),
                 PredictiveController(headroom=1.1, horizon_samples=3)):
        req = ctrl.requested(trace, cfg)
        res = simulate_policy("primary-selective", trace, cfg,
                              requested=req)
        quality = evaluate_provisioning(trace, res.servers,
                                        cfg.per_server_bw)
        rows.append([ctrl.name,
                     round(res.relative_machine_hours, 3),
                     f"{quality['violation_fraction'] * 100:.1f}%",
                     round(quality["mean_extra_servers"], 1)])
    print(render_table(
        ["controller (on primary+selective)", "rel. machine hours",
         "time under-provisioned", "mean extra servers"],
        rows, title="when to resize: controllers vs the oracle"))
    print("\nreading: mechanisms decide how cheaply the cluster can "
          "follow a target;\ncontrollers decide how good that target "
          "is without seeing the future.")


if __name__ == "__main__":
    main()
