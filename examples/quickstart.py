#!/usr/bin/env python3
"""Quickstart: elastic consistent hashing in five minutes.

Builds the paper's reference cluster (10 servers, 2-way replication,
2 primaries), writes objects, resizes the cluster down and up, and
runs selective re-integration — printing what happens at every step.

Run:  python examples/quickstart.py
"""

from repro import ElasticConsistentHash, ReintegrationEngine


def main() -> None:
    # --- build ----------------------------------------------------------
    ech = ElasticConsistentHash(n=10, replicas=2)
    print("cluster:", ech.describe())
    print(f"primaries: ranks 1..{ech.p}  (p = ceil(n/e^2))")
    print(f"equal-work weights: {ech.layout.weight_map()}")
    print()

    # --- place some objects ---------------------------------------------
    print("placements at full power (exactly one copy on a primary):")
    for oid in (7, 42, 10010):
        placement = ech.locate(oid)
        roles = ["P" if ech.is_primary(s) else "S" for s in placement]
        print(f"  object {oid:>6}: servers {placement.servers}  roles {roles}")
    print()

    # --- resize down: instant, no data movement --------------------------
    ech.set_active(5)
    print(f"resized to 5 active servers -> version {ech.current_version}")
    print("  membership:", ech.membership.states())

    # Writes while shrunk are offloaded and dirty-tracked.
    for oid in (10, 103, 10010, 20400):
        ech.record_write(oid)
    print(f"  wrote 4 objects while shrunk; dirty table now holds "
          f"{len(ech.dirty)} entries:")
    for entry in ech.dirty.entries():
        print(f"    (oid={entry.oid}, version={entry.version})")
    print()

    # --- resize up + selective re-integration ----------------------------
    ech.set_active(10)
    print(f"resized back to 10 -> version {ech.current_version} "
          "(full power)")
    engine = ReintegrationEngine(ech)
    report = engine.step()
    print(f"  selective re-integration: {report.entries_processed} "
          f"entries scanned, {report.entries_migrated} objects migrated "
          f"({report.bytes_migrated / 2**20:.0f} MiB), "
          f"{report.entries_removed} entries cleared")
    for task in report.tasks:
        print(f"    object {task.oid}: {task.from_servers} -> "
              f"{task.to_servers} (copies to {task.moved_to})")
    print(f"  dirty table empty: {ech.dirty.is_empty()}")


if __name__ == "__main__":
    main()
