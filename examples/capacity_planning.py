#!/usr/bin/env python3
"""§III-D node capacity configuration: provisioning heterogeneous disk
sizes for the equal-work layout.

The equal-work layout stores wildly different volumes per rank, so
uniform disks waste capacity on the tail.  This example builds a
capacity plan from the paper's tier set, loads a cluster, and compares
utilisation against a uniform-capacity deployment.

Run:  python examples/capacity_planning.py
"""

from repro.cluster.cluster import ElasticCluster
from repro.core.layout import CapacityPlan, EqualWorkLayout
from repro.metrics.report import render_table

MB4 = 4 * 1024 * 1024
OBJECTS = 5_000


def main() -> None:
    layout = EqualWorkLayout.create(n=10, replicas=2)
    data_volume = OBJECTS * MB4 * 2

    # Demo-scale tier set: the same 2TB/1.5TB/1TB/750GB/500GB/320GB
    # ladder the paper lists (§III-D), scaled down 50x so a 5,000-object
    # run exercises it.
    tiers = [int(t / 50) for t in CapacityPlan.DEFAULT_TIERS]
    plan = CapacityPlan.for_layout(layout, tiers=tiers,
                                   total_capacity=int(data_volume * 2.5))
    uniform_capacity = plan.total // layout.n

    cl = ElasticCluster(n=10, replicas=2,
                        capacities=list(plan.capacities))
    for oid in range(OBJECTS):
        cl.write(oid, MB4)

    used = cl.bytes_per_rank()
    tiered = plan.utilisation(used)
    rows = []
    for rank in layout.ranks:
        rows.append([
            rank,
            "primary" if layout.is_primary(rank) else "secondary",
            f"{used[rank] / 1e9:.1f}",
            f"{plan.capacity_of(rank) / 1e9:.0f}",
            f"{tiered[rank] * 100:.0f}%",
            f"{used[rank] / uniform_capacity * 100:.0f}%",
        ])
    print(render_table(
        ["rank", "role", "stored GB", "tier GB",
         "tiered utilisation", "if uniform disks"],
        rows,
        title="§III-D capacity planning: tiered vs uniform disks "
              f"({OBJECTS} x 4 MB objects, 2-way)"))

    spread_tiered = (max(tiered.values()) - min(tiered.values()))
    uniform = {r: used[r] / uniform_capacity for r in layout.ranks}
    spread_uniform = (max(uniform.values()) - min(uniform.values()))
    print(f"\nutilisation spread (max - min): tiered "
          f"{spread_tiered * 100:.0f} points vs uniform "
          f"{spread_uniform * 100:.0f} points — the paper's 'few "
          "capacity configurations' close most of the gap.")


if __name__ == "__main__":
    main()
