"""Robustness — does Table II's conclusion survive trace regeneration?

The CC-a/CC-b stand-ins are synthetic, so any single seed might
accidentally favour one policy.  This bench regenerates the CC-a trace
under several seeds and checks that the paper's qualitative claims —
ordering and regime — hold for every one of them; the report shows the
spread.
"""

from _bench_utils import emit_report, once
from repro.experiments import run_trace_analysis
from repro.metrics.report import render_table

SEEDS = (11, 23, 47, 89, 131)
POLICIES = ("original-ch", "primary-full", "primary-selective")


def bench_robustness_seeds(benchmark):
    results = once(benchmark,
                   lambda: {seed: run_trace_analysis("CC-a", seed=seed)
                            for seed in SEEDS})

    rows = []
    for seed, exp in results.items():
        rel = exp.table2_row()
        rows.append([seed] + [round(rel[p], 3) for p in POLICIES])
    spread = {
        p: (min(r[i + 1] for r in rows), max(r[i + 1] for r in rows))
        for i, p in enumerate(POLICIES)
    }
    lines = [render_table(
        ["seed"] + list(POLICIES), rows,
        title="Table II (CC-a) across 5 trace seeds — relative "
              "machine hours"),
        "",
        "range over seeds: " + ", ".join(
            f"{p} [{lo:.2f}, {hi:.2f}]" for p, (lo, hi) in spread.items())]
    emit_report("robustness_seeds", "\n".join(lines))

    for seed, exp in results.items():
        rel = exp.table2_row()
        assert (rel["primary-selective"] < rel["primary-full"]
                < rel["original-ch"]), f"ordering broke at seed {seed}"
        assert all(1.0 <= v < 2.5 for v in rel.values()), seed
