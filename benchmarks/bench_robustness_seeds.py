"""Robustness — does Table II's conclusion survive trace regeneration?

The CC-a/CC-b stand-ins are synthetic, so any single seed might
accidentally favour one policy.  This bench regenerates the CC-a trace
under several seeds and checks that the paper's qualitative claims —
ordering and regime — hold for every one of them; the report shows the
spread.

The per-seed runs are independent, so they go through
:class:`repro.runner.SweepRunner`: one task per seed, fanned across a
process pool (``REPRO_SWEEP_WORKERS`` overrides the pool size), results
merged by task id so the numbers are identical at any worker count.
"""

import os
import tempfile

from _bench_utils import emit_report, once
from repro.metrics.report import render_table
from repro.runner import SweepRunner, TaskSpec

SEEDS = (11, 23, 47, 89, 131)
POLICIES = ("original-ch", "primary-full", "primary-selective")


def _workers() -> int:
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        return max(1, int(env))
    return min(4, os.cpu_count() or 1)


def _run_sweep():
    specs = [TaskSpec(task_id=f"cc-a-s{seed:03d}", kind="trace",
                      seed=seed, config={"which": "CC-a"})
             for seed in SEEDS]
    with tempfile.TemporaryDirectory(prefix="robustness-sweep-") as out:
        result = SweepRunner(workers=_workers()).run(specs, out)
        assert result.ok, f"sweep degraded: {result.counts}"
        return {task.spec.seed:
                task.outcome["summary"]["relative_machine_hours"]
                for task in result.tasks}


def bench_robustness_seeds(benchmark):
    rels = once(benchmark, _run_sweep)

    rows = [[seed] + [round(rel[p], 3) for p in POLICIES]
            for seed, rel in rels.items()]
    spread = {
        p: (min(r[i + 1] for r in rows), max(r[i + 1] for r in rows))
        for i, p in enumerate(POLICIES)
    }
    lines = [render_table(
        ["seed"] + list(POLICIES), rows,
        title="Table II (CC-a) across 5 trace seeds — relative "
              "machine hours"),
        "",
        "range over seeds: " + ", ".join(
            f"{p} [{lo:.2f}, {hi:.2f}]" for p, (lo, hi) in spread.items())]
    emit_report("robustness_seeds", "\n".join(lines))

    for seed, rel in rels.items():
        assert (rel["primary-selective"] < rel["primary-full"]
                < rel["original-ch"]), f"ordering broke at seed {seed}"
        assert all(1.0 <= v < 2.5 for v in rel.values()), seed
