"""Engine scale: columnar solver + batched ticks vs the seed hot loop.

Not a paper artefact — this guards the fluid-IO engine's own
performance at the cluster sizes the trace replays and robustness
sweeps want (hundreds to 1000 servers).  Three layers:

* a (servers × flows) grid of ``IOModel.run`` scenarios timed under
  the seed configuration (``REPRO_SOLVER=scalar``,
  ``REPRO_BATCH_TICKS=0``) and the default one (auto solver dispatch +
  allocation reuse + horizon batching), asserting the two produce
  bit-identical samples;
* the two acceptance gates: ≥10× on the 1000-server solve-dominated
  scenario and ≥5× on an end-to-end fig7 replay scaled to 1000
  servers;
* solver micro-medians (scalar vs columnar on one 1000-server
  instance, plus small-instance scalar medians) so CI's history gate
  catches a regression in either backend.

The committed ``benchmarks/reports/engine_scale_baseline.json``
records the medians measured when the columnar engine landed; CI runs
this bench and gates the fresh timings against that file with
``repro compare``.
"""

import math
import os
import random
import time

from _bench_utils import emit_report, once
from repro.experiments import run_three_phase
from repro.metrics.report import render_table
from repro.simulation.bandwidth import FlowSpec, max_min_fair_scalar
from repro.simulation.columnar import max_min_fair_columnar
from repro.simulation.flows import FluidFlow
from repro.simulation.iomodel import IOModel

SEED_ENV = {"REPRO_SOLVER": "scalar", "REPRO_BATCH_TICKS": "0"}
DEFAULT_ENV = {}
ENV_KEYS = ("REPRO_SOLVER", "REPRO_BATCH_TICKS")

#: (servers, flows) grid for the engine-throughput table.
GRID = [(25, 16), (100, 16), (400, 16), (1000, 16), (1000, 64)]
GRID_TICKS = 120

#: The gated solve-dominated scenario and fig7-replay configuration.
GATE_TICKS = 150
GATE_ENGINE_MIN_SPEEDUP = 10.0
GATE_FIG7_MIN_SPEEDUP = 5.0


def _set_env(env):
    for key in ENV_KEYS:
        os.environ.pop(key, None)
    os.environ.update(env)


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _engine_scenario(n, n_flows, ticks, env):
    """Streams (a quarter elastic, the rest rate-capped) over *n*
    servers for *ticks* seconds; returns (elapsed wall seconds,
    samples)."""
    _set_env(env)
    rng = random.Random(0xEC5)
    caps = {i: rng.uniform(40e6, 80e6) for i in range(n)}
    io = IOModel(lambda: caps, dt=1.0)
    for i in range(n_flows):
        coeffs = {r: rng.uniform(0.5, 2.0) for r in range(n)}
        if i % 4 == 0:
            io.flows.add(FluidFlow(f"s{i}", coeffs))
        else:
            io.flows.add(FluidFlow(f"c{i}", coeffs,
                                   rate_cap=rng.uniform(1e6, 5e6)))
    t0 = time.perf_counter()
    io.run(float(ticks))
    return time.perf_counter() - t0, io.samples


def _fig7_replay(env):
    """The three-phase driver end-to-end, scaled to 1000 servers (256 MB
    objects keep the placement write path from drowning the engine
    work this bench is about)."""
    _set_env(env)
    t0 = time.perf_counter()
    r = run_three_phase(
        "selective", n=1000, off_count=400, scale=1.0,
        object_size=256 * 1024 * 1024, disk_bw=64e6, client_cap=3200e6,
        selective_rate_limit=500e6)
    elapsed = time.perf_counter() - t0
    fingerprint = (len(r.times), r.times[-1], r.migrated_bytes,
                   tuple(r.throughput[::25]))
    return elapsed, fingerprint


def _solver_instance(n, n_flows, seed=1):
    rng = random.Random(seed)
    caps = {i: rng.uniform(40e6, 80e6) for i in range(n)}
    flows = []
    for i in range(n_flows):
        coeffs = {r: rng.uniform(0.5, 2.0) for r in range(n)}
        demand = math.inf if i % 4 == 0 else rng.uniform(10e6, 100e6)
        flows.append(FlowSpec(coeffs, demand))
    return flows, caps


def _measure():
    out = {"grid": [], "benches": {}, "speedups": {}}

    # Engine-throughput grid: seed vs default path, identical samples.
    for n, n_flows in GRID:
        seed_s, seed_samples = _engine_scenario(n, n_flows, GRID_TICKS,
                                                SEED_ENV)
        new_s, new_samples = _engine_scenario(n, n_flows, GRID_TICKS,
                                              DEFAULT_ENV)
        assert seed_samples == new_samples, \
            f"samples diverged at n={n} flows={n_flows}"
        out["grid"].append({
            "servers": n, "flows": n_flows, "ticks": GRID_TICKS,
            "seed_s": seed_s, "new_s": new_s,
            "seed_ticks_per_s": GRID_TICKS / seed_s,
            "new_ticks_per_s": GRID_TICKS / new_s,
            "speedup": seed_s / new_s,
        })
        out["benches"][f"engine_{n}x{n_flows}"] = {
            "median_s": new_s, "seed_median_s": seed_s,
            "what": f"IOModel.run, {n} servers x {n_flows} flows x "
                    f"{GRID_TICKS} ticks (default path)"}
    out["benches"]["engine_1000x64_seedpath"] = {
        "median_s": out["grid"][-1]["seed_s"],
        "what": "same 1000x64 scenario forced down the seed path "
                "(REPRO_SOLVER=scalar, REPRO_BATCH_TICKS=0) — guards "
                "the scalar reference against regressions"}

    # Gate 1: solve-dominated 1000-server scenario, >= 10x.
    seed_runs, new_runs = [], []
    for _ in range(3):
        s, seed_samples = _engine_scenario(1000, 64, GATE_TICKS, SEED_ENV)
        seed_runs.append(s)
        t, new_samples = _engine_scenario(1000, 64, GATE_TICKS,
                                          DEFAULT_ENV)
        new_runs.append(t)
        assert seed_samples == new_samples
    engine_seed, engine_new = _median(seed_runs), _median(new_runs)
    engine_speedup = engine_seed / engine_new
    out["benches"]["engine_gate_1000x64"] = {
        "median_s": engine_new, "seed_median_s": engine_seed,
        "what": f"gated scenario: 1000 servers x 64 flows x "
                f"{GATE_TICKS} ticks, median of 3"}
    out["speedups"]["engine_1000x64"] = {
        "required_x": GATE_ENGINE_MIN_SPEEDUP, "measured_x": engine_speedup}

    # Gate 2: end-to-end fig7 replay at 1000 servers, >= 5x.
    seed_runs, new_runs = [], []
    for _ in range(3):
        s, seed_fp = _fig7_replay(SEED_ENV)
        seed_runs.append(s)
        t, new_fp = _fig7_replay(DEFAULT_ENV)
        new_runs.append(t)
        assert seed_fp == new_fp, "fig7 replay results diverged"
    fig7_seed, fig7_new = _median(seed_runs), _median(new_runs)
    fig7_speedup = fig7_seed / fig7_new
    out["benches"]["fig7_replay_1000"] = {
        "median_s": fig7_new, "seed_median_s": fig7_seed,
        "what": "run_three_phase selective, n=1000, end-to-end, "
                "median of 3"}
    out["speedups"]["fig7_replay_1000"] = {
        "required_x": GATE_FIG7_MIN_SPEEDUP, "measured_x": fig7_speedup}

    # Solver micro-medians (both backends, bit-identical results).
    flows, caps = _solver_instance(1000, 64)
    scalar_runs, columnar_runs = [], []
    for _ in range(5):
        t0 = time.perf_counter()
        r_scalar = max_min_fair_scalar(flows, caps)
        scalar_runs.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        r_columnar = max_min_fair_columnar(flows, caps)
        columnar_runs.append(time.perf_counter() - t0)
        assert r_scalar == r_columnar
    out["benches"]["solver_scalar_1000x64"] = {
        "median_s": _median(scalar_runs),
        "what": "one max_min_fair_scalar solve, 1000 servers x 64 "
                "cluster-wide flows"}
    out["benches"]["solver_columnar_1000x64"] = {
        "median_s": _median(columnar_runs),
        "what": "the same solve through the columnar backend"}

    small_flows, small_caps = _solver_instance(25, 8)
    small_runs = []
    for _ in range(20):
        t0 = time.perf_counter()
        max_min_fair_scalar(small_flows, small_caps)
        small_runs.append(time.perf_counter() - t0)
    out["benches"]["solver_scalar_25x8"] = {
        "median_s": _median(small_runs),
        "what": "small-instance scalar solve (the paper-scale per-tick "
                "cost the auto cutover keeps on the dict loop)"}

    assert engine_speedup >= GATE_ENGINE_MIN_SPEEDUP, (
        f"solve-dominated 1000-server scenario speedup "
        f"{engine_speedup:.1f}x below {GATE_ENGINE_MIN_SPEEDUP}x")
    assert fig7_speedup >= GATE_FIG7_MIN_SPEEDUP, (
        f"fig7 replay speedup {fig7_speedup:.1f}x below "
        f"{GATE_FIG7_MIN_SPEEDUP}x")
    return out


def bench_engine_scale(benchmark):
    try:
        out = once(benchmark, _measure)
    finally:
        _set_env(DEFAULT_ENV)

    grid_rows = [[f"{g['servers']}x{g['flows']}", g["ticks"],
                  round(g["seed_ticks_per_s"], 1),
                  round(g["new_ticks_per_s"], 1),
                  f"{g['speedup']:.1f}x"]
                 for g in out["grid"]]
    gate_rows = [
        ["engine 1000x64 (solve-dominated)",
         round(out["benches"]["engine_gate_1000x64"]["seed_median_s"], 3),
         round(out["benches"]["engine_gate_1000x64"]["median_s"], 3),
         f"{out['speedups']['engine_1000x64']['measured_x']:.1f}x",
         f">= {GATE_ENGINE_MIN_SPEEDUP:.0f}x"],
        ["fig7 replay n=1000 (end-to-end)",
         round(out["benches"]["fig7_replay_1000"]["seed_median_s"], 3),
         round(out["benches"]["fig7_replay_1000"]["median_s"], 3),
         f"{out['speedups']['fig7_replay_1000']['measured_x']:.1f}x",
         f">= {GATE_FIG7_MIN_SPEEDUP:.0f}x"],
    ]
    solver_rows = [
        [name, f"{out['benches'][name]['median_s'] * 1e3:.3f}"]
        for name in ("solver_scalar_1000x64", "solver_columnar_1000x64",
                     "solver_scalar_25x8")
    ]
    # Bench entries go at the top level of ``data`` so ``repro
    # compare`` finds their ``median_s`` leaves and can gate this file
    # against the committed baseline.
    emit_report("engine_scale", "\n".join([
        render_table(
            ["servers x flows", "ticks",
             "seed ticks/s", "default ticks/s", "speedup"],
            grid_rows,
            title="IOModel.run throughput, seed path vs default "
                  "(columnar + batching); sim-seconds per wall-second "
                  "= ticks/s (dt=1)"),
        "",
        render_table(
            ["gated scenario", "seed median s", "default median s",
             "measured", "required"],
            gate_rows, title="acceptance gates (bit-identical results "
                             "asserted on every run)"),
        "",
        render_table(["solver instance", "median ms"], solver_rows,
                     title="one-solve medians (both backends produce "
                           "identical rates)"),
    ]), data={**out["benches"], "grid": out["grid"],
              "speedups": out["speedups"]})
