"""Ablation B — the vnode budget ``B``.

§III-C: B must be "large enough for data distribution fairness" (the
paper's example uses 1000 and notes a much larger B in practice).
This bench sweeps B and measures how far the ring's arc shares deviate
from the equal-work weights, and the placement cost of a larger ring.
"""

import time

from repro.core.elastic import ElasticConsistentHash
from repro.hashring.weights import expected_shares, share_error
from repro.metrics.report import render_table

from _bench_utils import emit_report, once

BUDGETS = (100, 1_000, 10_000, 100_000)


def profile(B):
    ech = ElasticConsistentHash(n=10, replicas=2, B=B)
    exp = expected_shares(ech.layout.weight_map())
    err = share_error(ech.ring.arc_share(), exp)
    t0 = time.perf_counter()
    for oid in range(2_000):
        ech.locate(oid)
    locate_us = (time.perf_counter() - t0) / 2_000 * 1e6
    return err, ech.ring.num_vnodes, locate_us


def bench_ablation_vnode_budget(benchmark):
    results = once(benchmark, lambda: {B: profile(B) for B in BUDGETS})

    rows = [[B, vnodes, f"{err * 100:.1f}%", f"{us:.0f}"]
            for B, (err, vnodes, us) in results.items()]
    emit_report("ablation_vnode_budget", render_table(
        ["B", "total vnodes", "worst arc-share error vs weights",
         "locate() µs/object"],
        rows,
        title="Ablation B — vnode budget vs distribution fairness "
              "(paper: 'large enough ... for fairness', example B=1000)"))

    errors = [results[B][0] for B in BUDGETS]
    # Fairness must improve by at least 3x from the smallest to the
    # largest budget.
    assert errors[-1] < errors[0] / 3
