"""Figure 9 — CC-b trace: the same four series on the bigger, heavier
trace (300 machines, 473 TB over 9 days).

Paper shape: same ordering as CC-a, with larger relative overheads for
the non-selective policies (CC-b's deep sustained valleys make the
baseline's shrink lag costlier).
"""

import numpy as np

from _bench_utils import emit_report, once
from repro.experiments import run_trace_analysis
from repro.metrics.report import render_series, render_table


def bench_fig9_ccb_trace(benchmark):
    exp = once(benchmark, run_trace_analysis, "CC-b")

    series = exp.figure_series()
    minutes = [int(m) for m in exp.window_minutes()]
    emit_report("fig9_ccb_trace", "\n".join([
        render_series(minutes[::10],
                      {k: list(np.asarray(v)[::10])
                       for k, v in series.items()},
                      time_label="t(min)",
                      title="Figure 9 — CC-b: active servers over a "
                            "250-minute window (every 10 min)"),
        "",
        render_table(
            ["policy", "machine hours", "relative to ideal"],
            [["ideal", round(exp.analysis.ideal_machine_hours, 1), 1.0]]
            + [[name, round(res.machine_hours, 1),
                round(res.relative_machine_hours, 3)]
               for name, res in exp.analysis.results.items()],
            title="full-trace machine hours (Table II's CC-b column; "
                  "paper: 1.51 / 1.37 / 1.33)"),
    ]))

    rel = exp.table2_row()
    assert (rel["primary-selective"] < rel["primary-full"]
            < rel["original-ch"])
