"""Comparison — GreenCHT-style tiered power-down vs elastic CH.

§VI: "Comparing to GreenCHT, our elastic consistent hashing is able to
achieve finer granularity of resizing with one server as the smallest
resizing unit."  GreenCHT (MSST'15) powers whole tiers together, so
every resize rounds up to a tier boundary.  This bench quantifies the
granularity cost on both traces.
"""

from _bench_utils import emit_report, once
from repro.metrics.report import render_table
from repro.policy.analysis import config_for_trace
from repro.policy.resizer import GreenCHTPolicy, simulate_policy
from repro.workloads.cloudera import generate_cc_a, generate_cc_b
from repro.experiments.traces import FIGURE_N_MAX

POLICIES = ("original-ch", "greencht", "primary-full",
            "primary-selective")


def analyse(which, generate):
    trace = generate()
    cfg = config_for_trace(trace, FIGURE_N_MAX[which])
    out = {}
    for name in POLICIES:
        out[name] = simulate_policy(name, trace, cfg)
    return cfg, out


def bench_comparison_greencht(benchmark):
    results = once(benchmark,
                   lambda: {"CC-a": analyse("CC-a", generate_cc_a),
                            "CC-b": analyse("CC-b", generate_cc_b)})

    rows = []
    for which, (cfg, res) in results.items():
        tiers = GreenCHTPolicy(cfg).boundaries
        for name in POLICIES:
            rows.append([which, name,
                         round(res[name].relative_machine_hours, 3),
                         str(tiers) if name == "greencht" else ""])
    emit_report("comparison_greencht", render_table(
        ["trace", "policy", "relative machine hours",
         "tier boundaries"],
        rows,
        title="GreenCHT (4 tiers) vs per-server elastic CH — the "
              "granularity cost of tier-wise power-down"))

    for which, (cfg, res) in results.items():
        # The paper's argument: per-server elasticity beats tier
        # granularity.
        assert (res["primary-selective"].relative_machine_hours
                < res["greencht"].relative_machine_hours), which
        assert (res["primary-full"].relative_machine_hours
                < res["greencht"].relative_machine_hours), which
