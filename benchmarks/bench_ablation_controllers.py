"""Ablation E — resizing controllers (the paper's future work).

§VII: "We will continue to work on ... a resizing policy based on
workload profiling and prediction."  This bench pairs the
primary+selective mechanics with three controllers on the CC-a trace
and reports the machine-hours vs availability trade-off: the oracle is
the paper's clairvoyant ideal; reactive/predictive are what a real
deployment could run.  On a bursty trace neither real controller
dominates — hysteresis buys availability with machine hours, trend
forecasting the reverse — which is exactly why the paper defers this
to "workload profiling and prediction" future work.
"""

from _bench_utils import emit_report, once
from repro.experiments.traces import FIGURE_N_MAX
from repro.metrics.report import render_table
from repro.policy.analysis import config_for_trace
from repro.policy.controller import (
    OracleController,
    PredictiveController,
    ReactiveController,
    evaluate_provisioning,
)
from repro.policy.resizer import simulate_policy
from repro.workloads.cloudera import generate_cc_a

CONTROLLERS = (
    OracleController(),
    ReactiveController(headroom=1.2, hold_samples=5),
    PredictiveController(headroom=1.1, horizon_samples=3),
)


def run_all():
    trace = generate_cc_a()
    cfg = config_for_trace(trace, FIGURE_N_MAX["CC-a"])
    out = {}
    for ctrl in CONTROLLERS:
        req = ctrl.requested(trace, cfg)
        res = simulate_policy("primary-selective", trace, cfg,
                              requested=req)
        quality = evaluate_provisioning(trace, res.servers,
                                        cfg.per_server_bw)
        out[ctrl.name] = (res, quality)
    return out


def bench_ablation_controllers(benchmark):
    results = once(benchmark, run_all)

    rows = []
    for name, (res, quality) in results.items():
        rows.append([
            name,
            round(res.relative_machine_hours, 3),
            f"{quality['violation_fraction'] * 100:.1f}%",
            f"{quality['mean_shortfall_fraction'] * 100:.1f}%",
            round(quality["mean_extra_servers"], 1),
        ])
    emit_report("ablation_controllers", render_table(
        ["controller", "rel. machine hours",
         "time under-provisioned", "mean shortfall when short",
         "mean extra servers"],
        rows,
        title="Ablation E — resizing controllers on CC-a with "
              "primary+selective mechanics (machine hours vs "
              "availability)"))

    oracle_mh = results["oracle"][0].relative_machine_hours
    # The oracle's only violations are the 1% of samples above the
    # p99-provisioned cluster ceiling.
    assert results["oracle"][1]["violation_fraction"] <= 0.015
    for name, (res, _q) in results.items():
        # Real controllers pay extra machine hours for not being
        # clairvoyant.
        assert res.relative_machine_hours >= oracle_mh - 1e-9, name
    # The finding: on a bursty trace the two controllers trace the
    # same trade-off frontier from opposite ends — the reactive
    # hold-down buys availability with machine hours, the trend
    # forecaster shrinks sooner and violates more.
    r_mh = results["reactive"][0].relative_machine_hours
    p_mh = results["predictive"][0].relative_machine_hours
    r_v = results["reactive"][1]["violation_fraction"]
    p_v = results["predictive"][1]["violation_fraction"]
    assert (r_mh >= p_mh) != (r_v >= p_v), \
        "one controller unexpectedly dominates the other"
