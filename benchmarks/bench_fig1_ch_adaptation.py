"""Figure 1 — consistent hashing's adaptation to a node addition.

The paper's background figure: when server 3 joins a 2-server ring,
only the keys whose successor arcs now belong to server 3 move; every
other key stays put.  We measure the moved fraction against the
theoretical share of the added server and verify zero collateral
movement, then benchmark the lookup path itself.
"""

import numpy as np

from repro.core.placement import place_original
from repro.hashring.ring import HashRing

from _bench_utils import emit_report, once
from repro.metrics.report import render_table

KEYS = 20_000


def movement_on_addition(n_before: int, vnodes: int = 200):
    ring = HashRing()
    for rank in range(1, n_before + 1):
        ring.add_server(rank, weight=vnodes)
    before = {k: place_original(ring, k, 2).servers for k in range(KEYS)}
    ring.add_server(n_before + 1, weight=vnodes)
    moved_onto_new = 0
    collateral = 0
    for k in range(KEYS):
        after = place_original(ring, k, 2).servers
        if after != before[k]:
            if n_before + 1 in after:
                moved_onto_new += 1
            else:
                collateral += 1
    return moved_onto_new / KEYS, collateral


def bench_fig1_adaptation(benchmark):
    rows = []
    for n in (2, 5, 10, 20):
        frac, collateral = movement_on_addition(n)
        # With r=2 a key moves if either of its two successor slots
        # falls to the new server: expected ~ 2/(n+1).
        rows.append([f"{n}->{n + 1}", f"{2 / (n + 1):.3f}",
                     f"{frac:.3f}", collateral])

    ring = HashRing()
    for rank in range(1, 11):
        ring.add_server(rank, weight=200)
    n_keys = 5_000

    def lookups():
        for k in range(n_keys):
            place_original(ring, k, 2)

    once(benchmark, lookups)

    emit_report("fig1_ch_adaptation", render_table(
        ["transition", "expected moved frac (~2/(n+1))",
         "measured moved frac", "collateral moves (must be 0)"],
        rows,
        title="Figure 1 — minimal movement on node addition "
              "(paper: only arcs owned by the new server move)"))
    assert all(r[3] == 0 for r in rows)
