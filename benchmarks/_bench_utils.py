"""Shared plumbing for the benchmark harness.

Every bench regenerates one paper artefact (a table or a figure) and
emits a plain-text report with the paper's numbers next to the
measured ones.  Reports land in ``benchmarks/reports/<name>.txt`` (and
on stdout when pytest runs with ``-s``), so ``pytest benchmarks/
--benchmark-only`` leaves a reviewable trail regardless of output
capture.

Benches that pass ``data=`` to :func:`emit_report` additionally write
``benchmarks/reports/<name>.json`` — the measured series in
machine-readable form, for plotting or regression diffing.  Running
with ``--json DIR`` (registered by ``benchmarks/conftest.py``) mirrors
the JSON documents into *DIR* instead of the default reports tree.

Every structured report is also **appended** to the bench-history
store, ``<json dir>/history/<name>.jsonl`` — one line per run,
carrying the same data plus attribution metadata (git sha, python
version, platform tag) in a side channel.  Re-running at the same git
sha replaces that sha's last line rather than duplicating it, so the
history holds at most one fresh measurement per ``{bench, commit}``.  The ``<name>.json``
document itself stays byte-identical run to run for identical data:
the metadata lives only in the history lines, so the perf trajectory
is queryable without perturbing the diffable artefacts.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from pathlib import Path
from typing import Optional

REPORT_DIR = Path(__file__).parent / "reports"

#: Output directory for the JSON documents; ``benchmarks/conftest.py``
#: points this at the ``--json DIR`` argument when given.
JSON_DIR: Optional[Path] = None

#: History subdirectory name (under the active JSON directory).
HISTORY_DIRNAME = "history"


def run_metadata() -> dict:
    """Attribution for one bench run: git sha, python version, and a
    hostname-free platform tag.  Deliberately excludes anything
    machine-identifying (hostname, user, absolute paths) so history
    lines can be committed or shipped as CI artifacts."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent, capture_output=True, text=True,
            timeout=10).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "git_sha": sha,
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "platform": f"{platform.system()}-{platform.machine()}".lower(),
    }


def history_dir() -> Path:
    """The active history directory (tracks ``--json DIR``)."""
    base = JSON_DIR if JSON_DIR is not None else REPORT_DIR
    return base / HISTORY_DIRNAME


def append_history(name: str, data: dict,
                   meta: Optional[dict] = None) -> Path:
    """Append one ``{"name", "meta", "data"}`` line to the bench's
    history JSONL.  Compact single-line JSON with sorted keys, so the
    store is both greppable and loadable line by line.

    Re-running a bench at the same git sha **replaces** the last line
    with that ``{name, git_sha}`` instead of appending a duplicate:
    the history tracks the trajectory across commits, and the freshest
    measurement at a commit supersedes earlier ones.  Lines from other
    shas (or with no sha at all) are never touched.
    """
    directory = history_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.jsonl"
    meta = meta if meta is not None else run_metadata()
    encoded = json.dumps({"name": name, "meta": meta, "data": data},
                         sort_keys=True, separators=(",", ":"),
                         default=repr) + "\n"
    sha = meta.get("git_sha") if isinstance(meta, dict) else None
    lines = []
    if path.exists():
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    replace_at = None
    if sha is not None:
        for i in range(len(lines) - 1, -1, -1):
            try:
                entry = json.loads(lines[i])
            except ValueError:
                continue
            entry_meta = entry.get("meta")
            if (entry.get("name") == name and isinstance(entry_meta, dict)
                    and entry_meta.get("git_sha") == sha):
                replace_at = i
                break
    if replace_at is None:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(encoded)
    else:
        lines[replace_at] = encoded
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
    return path


def emit_report(name: str, text: str, data: Optional[dict] = None) -> Path:
    """Write (and print) one bench's report.

    With *data*, the measured quantities are also dumped as
    ``<name>.json`` (``{"name", "report", "data"}`` with the ASCII
    report embedded so the JSON document is self-describing) and a
    history line is appended to ``history/<name>.jsonl``; run metadata
    rides only in the history line, keeping ``<name>.json``
    byte-identical for identical data.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if data is not None or JSON_DIR is not None:
        json_dir = JSON_DIR if JSON_DIR is not None else REPORT_DIR
        json_dir.mkdir(parents=True, exist_ok=True)
        document = {"name": name, "report": text, "data": data}
        (json_dir / f"{name}.json").write_text(
            json.dumps(document, indent=2, sort_keys=True, default=repr)
            + "\n")
    if data is not None:
        append_history(name, data)
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n")
    return path


def once(benchmark, fn, *args, **kwargs):
    """Time *fn* exactly once through pytest-benchmark (the experiment
    drivers are seconds-long; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
