"""Shared plumbing for the benchmark harness.

Every bench regenerates one paper artefact (a table or a figure) and
emits a plain-text report with the paper's numbers next to the
measured ones.  Reports land in ``benchmarks/reports/<name>.txt`` (and
on stdout when pytest runs with ``-s``), so ``pytest benchmarks/
--benchmark-only`` leaves a reviewable trail regardless of output
capture.

Benches that pass ``data=`` to :func:`emit_report` additionally write
``benchmarks/reports/<name>.json`` — the measured series in
machine-readable form, for plotting or regression diffing.  Running
with ``--json DIR`` (registered by ``benchmarks/conftest.py``) mirrors
the JSON documents into *DIR* instead of the default reports tree.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

REPORT_DIR = Path(__file__).parent / "reports"

#: Output directory for the JSON documents; ``benchmarks/conftest.py``
#: points this at the ``--json DIR`` argument when given.
JSON_DIR: Optional[Path] = None


def emit_report(name: str, text: str, data: Optional[dict] = None) -> Path:
    """Write (and print) one bench's report.

    With *data*, the measured quantities are also dumped as
    ``<name>.json``: ``{"name", "report", "data"}`` with the ASCII
    report embedded so the JSON document is self-describing.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    if data is not None or JSON_DIR is not None:
        json_dir = JSON_DIR if JSON_DIR is not None else REPORT_DIR
        json_dir.mkdir(parents=True, exist_ok=True)
        document = {"name": name, "report": text, "data": data}
        (json_dir / f"{name}.json").write_text(
            json.dumps(document, indent=2, sort_keys=True, default=repr)
            + "\n")
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n")
    return path


def once(benchmark, fn, *args, **kwargs):
    """Time *fn* exactly once through pytest-benchmark (the experiment
    drivers are seconds-long; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
