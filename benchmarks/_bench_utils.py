"""Shared plumbing for the benchmark harness.

Every bench regenerates one paper artefact (a table or a figure) and
emits a plain-text report with the paper's numbers next to the
measured ones.  Reports land in ``benchmarks/reports/<name>.txt`` (and
on stdout when pytest runs with ``-s``), so ``pytest benchmarks/
--benchmark-only`` leaves a reviewable trail regardless of output
capture.
"""

from __future__ import annotations

from pathlib import Path

REPORT_DIR = Path(__file__).parent / "reports"


def emit_report(name: str, text: str) -> Path:
    """Write (and print) one bench's report."""
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n")
    return path


def once(benchmark, fn, *args, **kwargs):
    """Time *fn* exactly once through pytest-benchmark (the experiment
    drivers are seconds-long; statistical repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
