"""Extension — measured read-performance proportionality (§III-C).

The paper claims the equal-work layout "allows power proportionality
and read performance proportionality at the same time" and cites
Rabbit for the derivation.  This bench *measures* the claim: max-flow
read capacity at every legal power state, equal-work vs uniform
weights (both with primary placement so availability is equal), and
vs a perfectly proportional reference.
"""

from _bench_utils import emit_report, once
from repro.core.elastic import ElasticConsistentHash
from repro.metrics.proportionality import proportionality_curve
from repro.metrics.report import render_table

BW = 64e6
PROBE = range(3_000)


def run():
    eq = ElasticConsistentHash(n=10, replicas=2)
    un = ElasticConsistentHash(n=10, replicas=2, layout_mode="uniform")
    return {
        "equal-work": proportionality_curve(eq, BW, PROBE),
        "uniform": proportionality_curve(un, BW, PROBE),
    }


def bench_extension_proportionality(benchmark):
    curves = once(benchmark, run)

    full_eq = curves["equal-work"][10]
    full_un = curves["uniform"][10]
    rows = []
    for k in range(2, 11):
        ideal_eq = full_eq * k / 10
        rows.append([
            k,
            round(curves["equal-work"][k] / 1e6),
            f"{curves['equal-work'][k] / ideal_eq * 100:.0f}%",
            round(curves["uniform"][k] / 1e6),
            f"{curves['uniform'][k] / (full_un * k / 10) * 100:.0f}%",
        ])
    emit_report("extension_proportionality", render_table(
        ["active k", "equal-work MB/s", "% of proportional",
         "uniform MB/s", "% of proportional"],
        rows,
        title="Read capacity vs power state (max-flow measurement; "
              "§III-C: equal-work is performance-proportional, "
              "uniform is not)"))

    for k in range(2, 11):
        ratio = curves["equal-work"][k] / (full_eq * k / 10)
        assert 0.8 < ratio < 1.25, (k, ratio)
    # Mid-range, the uniform layout falls well short of proportional.
    assert curves["uniform"][5] / (full_un * 0.5) < 0.8
