"""Table II — machine-hour usage relative to the ideal case.

Paper values:

=====  ===========  ============  =================
trace  Original CH  Primary+full  Primary+selective
=====  ===========  ============  =================
CC-a   1.32         1.24          1.21
CC-b   1.51         1.37          1.33
=====  ===========  ============  =================

We do not expect the absolute ratios to match (the traces are
synthetic and the delay model is fluid); the *shape* must: selective <
full < original on both traces, CC-b worse than CC-a, and all ratios
in the same 1.x regime.  The §V-B savings percentages are reported
alongside (paper: full saves 6.3 %/9.3 %, selective 8.5 %/12.1 %).
"""

from _bench_utils import emit_report, once
from repro.experiments import run_trace_analysis
from repro.metrics.report import render_table

PAPER = {
    "CC-a": {"original-ch": 1.32, "primary-full": 1.24,
             "primary-selective": 1.21},
    "CC-b": {"original-ch": 1.51, "primary-full": 1.37,
             "primary-selective": 1.33},
}
PAPER_SAVINGS = {
    "CC-a": {"primary-full": 6.3, "primary-selective": 8.5},
    "CC-b": {"primary-full": 9.3, "primary-selective": 12.1},
}


def bench_table2_machine_hours(benchmark):
    exps = once(benchmark,
                lambda: {w: run_trace_analysis(w)
                         for w in ("CC-a", "CC-b")})

    rows = []
    for which, exp in exps.items():
        measured = exp.table2_row()
        for policy in ("original-ch", "primary-full",
                       "primary-selective"):
            rows.append([which, policy, PAPER[which][policy],
                         round(measured[policy], 3)])

    savings_rows = []
    for which, exp in exps.items():
        savings = exp.analysis.savings_vs_original()
        for policy in ("primary-full", "primary-selective"):
            savings_rows.append([
                which, policy, f"{PAPER_SAVINGS[which][policy]:.1f}%",
                f"{100 * savings[policy]:.1f}%"])

    emit_report("table2_machine_hours", "\n".join([
        render_table(
            ["trace", "policy", "paper (rel. MH)", "measured (rel. MH)"],
            rows,
            title="Table II — machine hours relative to ideal"),
        "",
        render_table(
            ["trace", "policy", "paper savings vs orig",
             "measured savings vs orig"],
            savings_rows,
            title="§V-B machine-hour savings vs original CH"),
    ]), data={
        "paper_relative_machine_hours": PAPER,
        "measured_relative_machine_hours": {
            w: {k: round(v, 4) for k, v in exp.table2_row().items()}
            for w, exp in exps.items()},
        "paper_savings_pct": PAPER_SAVINGS,
        "measured_savings_pct": {
            w: {k: round(100 * v, 2)
                for k, v in exp.analysis.savings_vs_original().items()}
            for w, exp in exps.items()},
    })

    for which, exp in exps.items():
        rel = exp.table2_row()
        assert (rel["primary-selective"] < rel["primary-full"]
                < rel["original-ch"]), which
        assert all(1.0 <= v < 2.2 for v in rel.values()), which
    assert (exps["CC-b"].table2_row()["original-ch"]
            > exps["CC-a"].table2_row()["original-ch"])
