"""Figure 7 — the headline evaluation: 3-phase workload under
"no resizing", "original CH" and "selective" re-integration.

Paper shape: near-identical peaks across cases; the original CH run's
throughput stays depressed for an extended window after phase 2 (the
"resize delayed" annotation) while selective re-integration recovers
almost immediately.  We add the "full" case (the §V-B primary+full
configuration) for completeness.
"""

from _bench_utils import emit_report, once
from repro.experiments import run_three_phase
from repro.metrics.report import render_series, render_table

MB = 1e6
MODES = ("none", "original", "full", "selective")
LABEL = {"none": "no resizing", "original": "original CH",
         "full": "primary+full", "selective": "selective"}


def bench_fig7_three_phase(benchmark):
    results = once(benchmark,
                   lambda: {m: run_three_phase(m, scale=1.0)
                            for m in MODES})

    rows = []
    for mode in MODES:
        r = results[mode]
        p2 = r.phase_ends["phase2"]
        p3 = r.phase_ends["phase3"]
        rows.append([
            LABEL[mode],
            round(max(r.throughput) / MB, 1),
            round(r.mean_throughput(p2, p3) / MB, 1),
            round(r.recovery_time_after(p2), 1),
            round(r.migrated_bytes / 1e9, 2),
            round(r.rereplicated_bytes / 1e9, 2),
        ])

    n = min(len(r.times) for r in results.values())
    grid = [round(t) for t in results["none"].times[:n:20]]
    series = {LABEL[m]: [v / MB for v in results[m].throughput[:n:20]]
              for m in MODES}

    emit_report("fig7_three_phase", "\n".join([
        render_table(
            ["case", "peak MB/s", "mean phase-3 MB/s",
             "s to 90% peak after phase 2", "migrated GB",
             "re-replicated GB"],
            rows,
            title="Figure 7 — 3-phase workload "
                  "(paper: selective recovers fastest; little peak "
                  "difference between cases)"),
        "",
        render_series(grid, series, time_label="t(s)",
                      title="throughput timeline (MB/s, every 20 s)"),
    ]), data={
        "grid_s": grid,
        "throughput_mb_s": series,
        "summary_rows": {
            LABEL[m]: {
                "peak_mb_s": rows[i][1],
                "mean_phase3_mb_s": rows[i][2],
                "recovery_s": rows[i][3],
                "migrated_gb": rows[i][4],
                "rereplicated_gb": rows[i][5],
            } for i, m in enumerate(MODES)
        },
        "phase_ends_s": {m: {k: round(v, 1)
                             for k, v in results[m].phase_ends.items()}
                         for m in MODES},
    })

    sel, orig = results["selective"], results["original"]
    t_sel = sel.recovery_time_after(sel.phase_ends["phase2"])
    t_orig = orig.recovery_time_after(orig.phase_ends["phase2"])
    assert t_sel < t_orig, "selective must recover before original CH"
    assert (results["selective"].migrated_bytes
            < results["full"].migrated_bytes
            < results["original"].migrated_bytes)
