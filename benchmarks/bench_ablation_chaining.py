"""Ablation A — replica-walk chaining: ``walk`` (continue along the
ring, Sheepdog-style) vs ``rehash`` (restart at hash(previous server),
the literal Algorithm 1 reading).

Both satisfy the one-copy-on-primary invariant; this bench compares
their secondary-load distribution quality and how much data each moves
across a shrink/grow cycle.
"""

from repro.core.elastic import ElasticConsistentHash
from repro.core.reintegration import ReintegrationEngine
from repro.metrics.distribution import (
    equal_work_reference,
    shape_correlation,
)
from repro.metrics.report import render_table

from _bench_utils import emit_report, once

OBJECTS = 20_000


def profile(chain):
    ech = ElasticConsistentHash(n=10, replicas=2, chain=chain)
    counts = ech.blocks_per_rank(range(OBJECTS))
    ref = equal_work_reference(10, ech.p)
    corr = shape_correlation({r: float(c) for r, c in counts.items()}, ref)

    # Shrink/grow cycle migration volume.
    ech2 = ElasticConsistentHash(n=10, replicas=2, chain=chain)
    ech2.set_active(6)
    for oid in range(2_000):
        ech2.record_write(oid)
    ech2.set_active(10)
    migrated = ReintegrationEngine(
        ech2, object_size=lambda o: 1).step().bytes_migrated
    return counts, corr, migrated


def bench_ablation_chaining(benchmark):
    results = once(benchmark,
                   lambda: {c: profile(c) for c in ("walk", "rehash")})

    rows = []
    for chain, (counts, corr, migrated) in results.items():
        rows.append([
            chain,
            round(corr, 4),
            counts[1] + counts[2],
            round(max(counts.values()) / (sum(counts.values()) / 10), 2),
            migrated,
        ])
    emit_report("ablation_chaining", render_table(
        ["chain mode", "equal-work shape corr.",
         f"primary blocks (of {OBJECTS})", "max/mean load",
         "replicas moved on 6->10 regrow (of 2000 dirty objects)"],
        rows,
        title="Ablation A — walk vs rehash chaining"))

    for chain, (counts, corr, _m) in results.items():
        assert counts[1] + counts[2] == OBJECTS, chain  # invariant holds
        assert corr > 0.90, chain
    # The finding: continuing the walk tracks the equal-work shape
    # better than restarting at hash(previous server).
    assert results["walk"][1] >= results["rehash"][1]
