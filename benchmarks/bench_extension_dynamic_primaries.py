"""Extension — dynamic primary count (SpringFS-style, §I/§VI).

The paper's design fixes p = ceil(n/e^2); the studies it cites (Sierra,
SpringFS) resize p itself: many primaries when the write load is high,
few when the cluster wants to sleep.  This bench plays a day/night
cycle against three strategies — static low-p, static high-p, and
dynamic — and reports each side of the trade-off plus what the
re-layout migration costs.
"""

from repro.cluster.cluster import ElasticCluster
from repro.core.dynamic_primaries import plan_primary_resize
from repro.metrics.report import render_table
from repro.simulation.bandwidth import FlowSpec, max_min_fair
from repro.simulation.iomodel import (
    client_coefficients,
    replica_load_fractions,
)

from _bench_utils import emit_report, once

MB4 = 4 * 1024 * 1024
OBJECTS = 800
DISK_BW = 64e6
P_NIGHT, P_DAY = 2, 5


def write_capacity(cluster):
    fractions = replica_load_fractions(
        lambda o: cluster.ech.locate(o).servers, range(50_000, 52_000))
    coeffs = client_coefficients(fractions, cluster.replicas, 1.0)
    return max_min_fair(
        [FlowSpec(coefficients=coeffs)],
        {r: DISK_BW for r in range(1, 11)})[0]


def build(p):
    cl = ElasticCluster(n=10, replicas=2, p=p)
    for oid in range(OBJECTS):
        cl.write(oid, MB4)
    return cl


def run_scenario():
    out = {}
    # Static strategies.
    for label, p in (("static p=2", P_NIGHT), ("static p=5", P_DAY)):
        cl = build(p)
        out[label] = {
            "day_write_MBps": write_capacity(cl) / 1e6,
            "night_min_active": cl.min_active,
            "relayout_GB": 0.0,
        }
    # Dynamic: night shape, re-layout for the day, back for the night.
    cl = build(P_NIGHT)
    plan = plan_primary_resize(cl.ech, P_DAY, sample_oids=range(2_000))
    to_day = cl.set_primary_count(P_DAY)
    day_cap = write_capacity(cl) / 1e6
    to_night = cl.set_primary_count(P_NIGHT)
    out["dynamic 2<->5"] = {
        "day_write_MBps": day_cap,
        "night_min_active": cl.min_active,
        "relayout_GB": (to_day + to_night) / 1e9,
        "moved_fraction": plan.moved_fraction,
    }
    return out


def bench_extension_dynamic_primaries(benchmark):
    results = once(benchmark, run_scenario)

    rows = []
    for label, r in results.items():
        rows.append([
            label,
            round(r["day_write_MBps"], 1),
            r["night_min_active"],
            round(r["relayout_GB"], 2),
        ])
    emit_report("extension_dynamic_primaries", "\n".join([
        render_table(
            ["strategy", "daytime write capacity MB/s",
             "night-time minimum servers", "re-layout migration GB/day"],
            rows,
            title="Extension — dynamic primary count on the 10-server "
                  "testbed shape (SpringFS's trade-off, quantified)"),
        "",
        f"one 2->5 re-layout moves "
        f"{results['dynamic 2<->5']['moved_fraction'] * 100:.0f}% of "
        "objects — the price of switching sides of the trade-off.",
    ]))

    dyn = results["dynamic 2<->5"]
    lo = results["static p=2"]
    hi = results["static p=5"]
    # Dynamic gets the high-p write capacity AND the low-p floor...
    assert dyn["day_write_MBps"] == hi["day_write_MBps"]
    assert dyn["night_min_active"] == lo["night_min_active"]
    # ...for a real migration price.
    assert dyn["relayout_GB"] > 0
