"""Extension — the dirty table's own overhead (§VII future work).

"As a future work, we consider the overhead of managing dirty data
table in the key-value store, which introduces memory footprint and
latency ... We have not carefully evaluated the overhead yet but we
believe the performance of state-of-the-art key-value store is able to
make the overhead minor."  This bench evaluates exactly that on our
Redis-equivalent: per-entry memory, insert latency, and the fetch-order
merge cost as the table grows to 10^5 entries.
"""

import time
import tracemalloc

from repro.core.dirty_table import DirtyTable
from repro.metrics.report import render_table

from _bench_utils import emit_report, once

SIZES = (1_000, 10_000, 100_000)


def profile(size):
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    table = DirtyTable()
    t0 = time.perf_counter()
    for oid in range(size):
        table.insert(oid, 1 + oid // 1_000)   # ~version per 1k writes
    insert_us = (time.perf_counter() - t0) / size * 1e6
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    bytes_per_entry = (after - before) / size

    t0 = time.perf_counter()
    entries = table.entries()
    merge_ms = (time.perf_counter() - t0) * 1e3
    assert len(entries) == size

    t0 = time.perf_counter()
    head = table.head()
    head_us = (time.perf_counter() - t0) * 1e6
    assert head is not None
    return insert_us, bytes_per_entry, merge_ms, head_us


def bench_extension_dirty_overhead(benchmark):
    results = once(benchmark, lambda: {s: profile(s) for s in SIZES})

    rows = [[s, f"{r[0]:.1f}", f"{r[1]:.0f}", f"{r[2]:.1f}",
             f"{r[3]:.0f}"]
            for s, r in results.items()]
    emit_report("extension_dirty_overhead", "\n".join([
        render_table(
            ["entries", "insert µs/entry", "memory B/entry",
             "full fetch-order merge ms", "head() µs"],
            rows,
            title="Dirty-table overhead (§VII's open question, "
                  "measured on the Redis-equivalent store)"),
        "",
        "Context: a 4 MB-object cluster writing at 320 MB/s while "
        "shrunk generates ~80 dirty entries/s — about 4 ms of logging "
        "per wall-clock second and ~25 MB of memory per 100k-entry "
        "backlog.  The paper's 'we believe the overhead [is] minor' "
        "holds.",
    ]))

    for s, (insert_us, bpe, merge_ms, _h) in results.items():
        assert insert_us < 100, s          # sub-0.1 ms inserts
        assert bpe < 2_000, s              # well under 2 KB/entry
    # The merge is near-linear: 100x entries < 1000x time.
    assert results[100_000][2] < results[1_000][2] * 1_000