"""Ablation C — the selective re-integration rate limit.

§III-E's second lever: "limit the rate of data migration".  Sweeping
the cap trades re-integration duration against the depth of the
phase-3 throughput dip; uncapped selective behaves like a (smaller)
version of the original CH migration storm.
"""

from _bench_utils import emit_report, once
from repro.experiments import run_three_phase
from repro.metrics.report import render_table

MB = 1e6
LIMITS = (10e6, 50e6, 200e6, float("inf"))
SCALE = 0.5


def profile(limit):
    r = run_three_phase("selective", scale=SCALE,
                        selective_rate_limit=limit)
    p2 = r.phase_ends["phase2"]
    # Foreground impact measured over phase 3 itself (the run's tail
    # extends past it while a slow migration drains).
    dip = r.mean_throughput(p2, r.phase_ends["phase3"])
    peak = max(r.throughput)
    # How long migration traffic persisted after phase 2.
    mig_end = p2
    for t, v in zip(r.times, r.migration_rate):
        if t > p2 and v > 0:
            mig_end = t
    return dip / peak, mig_end - p2, r.migrated_bytes


def bench_ablation_rate_limit(benchmark):
    results = once(benchmark, lambda: {l: profile(l) for l in LIMITS})

    rows = []
    for limit, (dip_frac, mig_secs, migrated) in results.items():
        label = "unlimited" if limit == float("inf") else f"{limit / MB:.0f}"
        rows.append([label, f"{dip_frac * 100:.0f}%",
                     round(mig_secs, 1),
                     round(migrated / 1e9, 2)])
    emit_report("ablation_rate_limit", render_table(
        ["rate limit (MB/s)", "mean phase-3 throughput (% of peak)",
         "migration duration after phase 2 (s)", "migrated GB"],
        rows,
        title="Ablation C — selective re-integration rate limit "
              "(tighter cap = shallower dip, longer migration)"))

    dips = [results[l][0] for l in LIMITS]
    durations = [results[l][1] for l in LIMITS]
    # Tighter limits migrate for longer...
    assert durations[0] >= durations[-1]
    # ...but hurt foreground throughput less.
    assert dips[0] >= dips[-1] - 0.02
