"""Figure 8 — CC-a trace: ideal / original CH / primary+full /
primary+selective active-server series.

Paper shape: "primary+selective" hugs the ideal except for the
primary-count floor; original CH lags when sizing down quickly.
"""

import numpy as np

from _bench_utils import emit_report, once
from repro.experiments import run_trace_analysis
from repro.metrics.report import render_series, render_table


def bench_fig8_cca_trace(benchmark):
    exp = once(benchmark, run_trace_analysis, "CC-a")

    series = exp.figure_series()
    minutes = [int(m) for m in exp.window_minutes()]
    emit_report("fig8_cca_trace", "\n".join([
        render_series(minutes[::10],
                      {k: list(np.asarray(v)[::10])
                       for k, v in series.items()},
                      time_label="t(min)",
                      title="Figure 8 — CC-a: active servers over a "
                            "250-minute window (every 10 min)"),
        "",
        render_table(
            ["policy", "machine hours", "relative to ideal"],
            [["ideal", round(exp.analysis.ideal_machine_hours, 1), 1.0]]
            + [[name, round(res.machine_hours, 1),
                round(res.relative_machine_hours, 3)]
               for name, res in exp.analysis.results.items()],
            title="full-trace machine hours (Table II's CC-a column; "
                  "paper: 1.32 / 1.24 / 1.21)"),
        "",
        f"primary floor p = {exp.analysis.config.p} "
        "(the elastic curves cannot size below it)",
    ]))

    rel = exp.table2_row()
    assert (rel["primary-selective"] < rel["primary-full"]
            < rel["original-ch"])
