"""Micro-benchmarks of the hot paths (statistical, multi-round).

Not a paper artefact — these guard the implementation's own
performance: object placement is the operation every IO issues, ring
construction happens per re-weighting, and the bulk successor lookup
is the vectorised path the analysis code leans on.
"""

import numpy as np
import pytest

from repro.core.elastic import ElasticConsistentHash
from repro.core.placement import place_original, place_primary
from repro.hashring.hashing import bulk_hash
from repro.hashring.ring import HashRing


@pytest.fixture(scope="module")
def ech():
    return ElasticConsistentHash(n=10, replicas=2, B=10_000)


def bench_primary_placement(benchmark, ech):
    """Algorithm 1, one object (the per-IO cost)."""
    counter = iter(range(10**9))

    def place():
        return ech.locate(next(counter))

    result = benchmark(place)
    assert len(result.servers) == 2


def bench_original_placement(benchmark, ech):
    counter = iter(range(10**9))

    def place():
        return place_original(ech.ring, next(counter), 2)

    result = benchmark(place)
    assert len(result.servers) == 2


def bench_ring_construction(benchmark):
    """Build + sort a 24k-vnode equal-work ring (per re-weighting)."""
    def build():
        ring = HashRing()
        ech = ElasticConsistentHash(n=10, replicas=2, B=10_000)
        return ech.ring.num_vnodes

    vnodes = benchmark(build)
    assert vnodes > 20_000


def bench_bulk_successor(benchmark, ech):
    """Vectorised first-successor lookup for 100k keys."""
    positions = bulk_hash(range(100_000))

    def lookup():
        return ech.ring.bulk_successor(positions)

    owners = benchmark(lookup)
    assert owners.shape == (100_000,)


def bench_dirty_table_insert(benchmark):
    """Dirty-entry logging throughput (the §III-E-2 write-path tax)."""
    from repro.core.dirty_table import DirtyTable
    table = DirtyTable()
    counter = iter(range(10**9))

    def insert():
        table.insert(next(counter), 1)

    benchmark(insert)
