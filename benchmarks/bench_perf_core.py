"""Micro-benchmarks of the hot paths (statistical, multi-round).

Not a paper artefact — these guard the implementation's own
performance: object placement is the operation every IO issues, ring
construction happens per re-weighting, and the slot-table kernel's
scalar/bulk locate paths are what every whole-cluster sweep leans on.
The committed ``benchmarks/reports/perf_core_baseline.json`` records
the medians these benches produced when the kernel landed; CI's
bench-smoke job uploads the fresh timings next to it.
"""

import itertools

import numpy as np
import pytest

from repro.core.elastic import ElasticConsistentHash
from repro.core.placement import place_original, place_primary
from repro.hashring.hashing import bulk_hash
from repro.hashring.ring import HashRing


@pytest.fixture(scope="module")
def ech():
    return ElasticConsistentHash(n=10, replicas=2, B=10_000)


def bench_primary_placement(benchmark, ech):
    """Algorithm 1, one fresh object against a settled slot table (the
    steady-state per-IO cost: hash + successor search + table hit).
    First-touch fills pay the reference ring walk once per slot — that
    walk is benched directly by bench_original_placement."""
    ech.locate_bulk(np.arange(200_000))    # settle the slot table
    counter = iter(range(10**6, 10**9))    # fresh oids, warm slots

    def place():
        return ech.locate(next(counter))

    result = benchmark(place)
    assert len(result.servers) == 2


def bench_original_placement(benchmark, ech):
    counter = iter(range(10**9))

    def place():
        return place_original(ech.ring, next(counter), 2)

    result = benchmark(place)
    assert len(result.servers) == 2


def bench_ring_construction(benchmark):
    """Build + sort a 24k-vnode equal-work ring (per re-weighting)."""
    def build():
        ring = HashRing()
        ech = ElasticConsistentHash(n=10, replicas=2, B=10_000)
        return ech.ring.num_vnodes

    vnodes = benchmark(build)
    assert vnodes > 20_000


def bench_bulk_successor(benchmark, ech):
    """Vectorised first-successor lookup for 100k keys."""
    positions = bulk_hash(range(100_000))

    def lookup():
        return ech.ring.bulk_successor(positions)

    owners = benchmark(lookup)
    assert owners.shape == (100_000,)


def bench_locate_settled(benchmark, ech):
    """Repeated ``locate`` against a settled version: the oid→slot and
    slot→placement caches are hot, so this is the kernel's scalar
    fast path (compare with bench_primary_placement, which pays the
    hash + searchsorted on every fresh oid)."""
    oids = itertools.cycle(range(10_000))
    for oid in range(10_000):      # warm both cache layers
        ech.locate(oid)

    def place():
        return ech.locate(next(oids))

    result = benchmark(place)
    assert len(result.servers) == 2


def bench_locate_bulk(benchmark, ech):
    """100k-object bulk placement through the slot table (the
    whole-cluster-sweep primitive)."""
    oids = np.arange(100_000, dtype=np.int64)
    ech.locate_bulk(oids[:1])      # warm the table

    def place():
        return ech.locate_bulk(oids)

    bulk = benchmark(place)
    assert len(bulk) == 100_000 and bulk.all_ok


def bench_locate_loop_10k(benchmark, ech):
    """The same sweep as bench_locate_bulk, issued as a per-object
    Python loop (10k objects; scale ×10 to compare against the 100k
    bulk number)."""
    oids = list(range(10_000))
    for oid in oids:
        ech.locate(oid)

    def place():
        return [ech.locate(oid) for oid in oids]

    results = benchmark(place)
    assert len(results) == 10_000


def bench_trace_replay_throughput(benchmark):
    """Trace-replay proxy: bulk-place a 100k-object catalog against
    every version of a resize history — the dominant inner loop of the
    CC-a/CC-b replays (fig8/fig9).  Throughput = placements/sec is
    ``5 * 100_000 / median``."""
    ech = ElasticConsistentHash(n=10, replicas=2, B=10_000)
    for k in (8, 6, 9, 10):
        ech.set_active(k)
    oids = np.arange(100_000, dtype=np.int64)
    versions = range(1, ech.current_version + 1)
    for v in versions:             # warm every version's table
        ech.locate_bulk(oids[:1], v)

    def replay():
        placed = 0
        for v in versions:
            placed += len(ech.locate_bulk(oids, v))
        return placed

    placed = benchmark(replay)
    assert placed == 5 * 100_000


def bench_dirty_table_insert(benchmark):
    """Dirty-entry logging throughput (the §III-E-2 write-path tax)."""
    from repro.core.dirty_table import DirtyTable
    table = DirtyTable()
    counter = iter(range(10**9))

    def insert():
        table.insert(next(counter), 1)

    benchmark(insert)
