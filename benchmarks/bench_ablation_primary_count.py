"""Ablation D — the primary count p.

§III-C picks p = ceil(n/e^2).  Fewer primaries lower the minimum power
state but concentrate one full data copy on fewer spindles, capping
write throughput ("the small number of primary servers limits the
write performance"); more primaries raise the power floor.  This bench
sweeps p on the paper's 10-server shape and measures both sides of the
trade-off.
"""

from repro.core.elastic import ElasticConsistentHash
from repro.metrics.report import render_table
from repro.simulation.iomodel import (
    client_coefficients,
    replica_load_fractions,
)
from repro.simulation.bandwidth import FlowSpec, max_min_fair

from _bench_utils import emit_report, once

DISK_BW = 64e6
N = 10


def write_capacity(ech):
    """Aggregate client write throughput at full power under the fluid
    model (one elastic write flow over the measured load fractions)."""
    fractions = replica_load_fractions(
        lambda oid: ech.locate(oid).servers, range(4_000))
    coeffs = client_coefficients(fractions, ech.replicas, 1.0)
    rate = max_min_fair(
        [FlowSpec(coefficients=coeffs)],
        {r: DISK_BW for r in range(1, N + 1)})[0]
    return rate


def profile(p):
    ech = ElasticConsistentHash(n=N, replicas=2, p=p)
    return {
        "min_active": ech.min_active,
        "min_power_frac": ech.min_active / N,
        "write_MBps": write_capacity(ech) / 1e6,
    }


def bench_ablation_primary_count(benchmark):
    results = once(benchmark,
                   lambda: {p: profile(p) for p in (1, 2, 3, 5, 8)})

    rows = [[p, ("<- paper (ceil(n/e^2))" if p == 2 else ""),
             r["min_active"], f"{r['min_power_frac'] * 100:.0f}%",
             round(r["write_MBps"], 1)]
            for p, r in results.items()]
    emit_report("ablation_primary_count", render_table(
        ["p", "", "min active servers", "min power (frac of full)",
         "full-power write MB/s"],
        rows,
        title="Ablation D — primary count: power floor vs write "
              "capacity (n=10, r=2, 64 MB/s disks)"))

    # The trade-off's endpoints: very few primaries throttle writes
    # hard, many primaries raise the power floor.  (The middle is not
    # strictly monotone — the secondary weight curve shifts with p.)
    caps = {p: results[p]["write_MBps"] for p in (1, 2, 3, 5, 8)}
    assert caps[8] > caps[1] * 1.5
    floors = [results[p]["min_active"] for p in (1, 2, 3, 5, 8)]
    assert floors == sorted(floors)
