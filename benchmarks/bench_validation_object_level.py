"""Validation — does the fluid §V-B model agree with the real cluster?

Table II comes from a fluid model (bytes and bandwidth, no objects).
This bench replays a 90-minute CC-a window against the *object-level*
cluster — every write placed, every dirty entry logged, every
re-integration byte measured — under the same operational rules, and
compares relative machine hours level-by-level.  Agreement here is
what licenses trusting the fluid model on the full month-long traces.
"""

from _bench_utils import emit_report, once
from repro.experiments.traces import FIGURE_N_MAX
from repro.metrics.report import render_table
from repro.policy.analysis import config_for_trace
from repro.policy.replay import replay_policy
from repro.policy.resizer import simulate_policy
from repro.workloads.cloudera import generate_cc_a

POLICIES = ("original-ch", "primary-full", "primary-selective")
WINDOW_START_MIN = 600
WINDOW_MIN = 90
OBJECT_SIZE = 4 * 1024 * 1024


def run_both_levels():
    trace = generate_cc_a()
    cfg = config_for_trace(trace, FIGURE_N_MAX["CC-a"])
    window = trace.window(WINDOW_START_MIN * 60, WINDOW_MIN * 60)
    preload = int(cfg.dataset_bytes / OBJECT_SIZE)
    out = {}
    for name in POLICIES:
        fluid = simulate_policy(name, window, cfg)
        replay = replay_policy(name, window, cfg,
                               object_size=OBJECT_SIZE,
                               preload_objects=preload)
        out[name] = (fluid, replay)
    return out


def bench_validation_object_level(benchmark):
    results = once(benchmark, run_both_levels)

    rows = []
    for name, (fluid, replay) in results.items():
        rows.append([
            name,
            round(fluid.relative_machine_hours, 3),
            round(replay.relative_machine_hours, 3),
            round(replay.migrated_bytes / 1e9, 1),
            round(replay.rereplicated_bytes / 1e9, 1),
        ])
    emit_report("validation_object_level", "\n".join([
        render_table(
            ["policy", "fluid rel. MH", "object-level rel. MH",
             "measured migration GB", "measured re-replication GB"],
            rows,
            title=f"Fluid model vs object-level replay "
                  f"({WINDOW_MIN}-minute CC-a window, "
                  f"{FIGURE_N_MAX['CC-a']} servers)"),
        "",
        "agreement within ~0.2 relative machine hours and identical "
        "policy ordering validates using the fluid model on the "
        "full-length traces.",
    ]))

    fluid_order = sorted(POLICIES,
                         key=lambda p: results[p][0]
                         .relative_machine_hours)
    replay_order = sorted(POLICIES,
                          key=lambda p: results[p][1]
                          .relative_machine_hours)
    assert fluid_order == replay_order, "levels disagree on ordering"
    for name, (fluid, replay) in results.items():
        assert abs(fluid.relative_machine_hours
                   - replay.relative_machine_hours) < 0.35, name
