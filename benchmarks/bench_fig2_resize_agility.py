"""Figure 2 — resizing a consistent-hashing cluster: requested (ideal)
pattern vs what original CH achieves, vs the elastic design.

Paper shape: original CH lags badly while sizing down (one departure
at a time, gated on re-replication) and catches up while sizing up;
the elastic design follows the requested pattern exactly.
"""

from _bench_utils import emit_report, once
from repro.experiments import run_resize_agility
from repro.metrics.report import render_series


def bench_fig2_resize_agility(benchmark):
    result = once(benchmark, run_resize_agility)

    grid = list(range(0, int(result.duration) + 1, 15))
    series = {
        "ideal": list(result.ideal.sample(grid)),
        "original CH": list(result.original_ch.sample(grid)),
        "elastic CH": list(result.elastic.sample(grid)),
    }
    lines = [
        render_series(grid, series, time_label="t(s)",
                      title="Figure 2 — active servers vs time "
                            "(remove 2 every 30 s, then add 2 every "
                            "30 s from t=180)"),
        "",
        f"shrink lag, original CH : {result.lag_seconds():8.1f} "
        "server-seconds above the requested pattern "
        "(paper: lags for the whole shrink half)",
        f"shrink lag, elastic CH  : {result.elastic_lag_seconds():8.1f} "
        "server-seconds (paper: resizes instantly)",
        "re-replication paid per departure (GB): "
        + ", ".join(f"{b / 1e9:.2f}" for b in result.recovery_bytes),
    ]
    emit_report("fig2_resize_agility", "\n".join(lines), data={
        "grid_s": grid,
        "active_servers": series,
        "shrink_lag_server_seconds": {
            "original": result.lag_seconds(),
            "elastic": result.elastic_lag_seconds(),
        },
        "recovery_bytes_per_departure": list(result.recovery_bytes),
    })

    assert result.lag_seconds() > 60.0
    assert result.elastic_lag_seconds() == 0.0
