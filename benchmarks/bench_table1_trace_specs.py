"""Table I — the real-world trace specifications.

The paper publishes four facts per trace; the synthetic generators
must reproduce the envelope exactly (lengths and bytes processed are
calibrated, machine counts bound the analysis cluster size) plus the
qualitative texture §V-B relies on: CC-a resizes more often than CC-b
at its own scale.
"""

import numpy as np

from _bench_utils import emit_report, once
from repro.experiments.traces import FIGURE_N_MAX
from repro.metrics.report import render_table
from repro.workloads.cloudera import CC_A, CC_B, generate_cc_a, generate_cc_b

PAPER = {
    "CC-a": {"machines": "<100", "length": "1 month", "bytes": "69TB"},
    "CC-b": {"machines": "300", "length": "9 days", "bytes": "473TB"},
}


def bench_table1_trace_specs(benchmark):
    traces = once(benchmark,
                  lambda: {"CC-a": generate_cc_a(), "CC-b": generate_cc_b()})

    rows = []
    rel_freq = {}
    for spec, trace in ((CC_A, traces["CC-a"]), (CC_B, traces["CC-b"])):
        st = trace.stats()
        n_max = FIGURE_N_MAX[spec.name]
        bw = float(np.percentile(trace.load, 99)) / n_max
        rel_freq[spec.name] = trace.resizing_frequency(bw) / n_max
        rows.append([
            spec.name,
            PAPER[spec.name]["machines"], spec.machines,
            PAPER[spec.name]["length"], f"{spec.length_days:g} days",
            PAPER[spec.name]["bytes"],
            f"{st['total_bytes'] / 1e12:.1f}TB",
            f"{st['burstiness']:.1f}x",
        ])

    emit_report("table1_trace_specs", "\n".join([
        render_table(
            ["trace", "machines (paper)", "machines (gen)",
             "length (paper)", "length (gen)",
             "bytes (paper)", "bytes (gen)", "peak/mean"],
            rows,
            title="Table I — trace specifications, paper vs synthetic"),
        "",
        "relative resizing frequency (ideal-step per server per "
        "minute):",
        f"  CC-a: {rel_freq['CC-a']:.4f}   CC-b: {rel_freq['CC-b']:.4f}"
        "   (paper: 'CC-a trace has significantly higher resizing "
        "frequency')",
    ]))

    assert abs(traces["CC-a"].total_bytes - 69e12) < 1e3
    assert abs(traces["CC-b"].total_bytes - 473e12) < 1e3
    assert rel_freq["CC-a"] > rel_freq["CC-b"]
