"""Flow-control ablation — what clients feel during a resize.

Three front-door policies replay the same seed, workload, and resize
schedule (4 of 10 servers off for the middle third of the run), so
the only variable is how admission reacts when migration steals disk
bandwidth from foreground serving.  The table is the serving story in
one screen: the unthrottled door lets queues grow without bound and
tail latency follows; a fixed concurrency limit keeps the bound by
shedding load; the adaptive throttle keeps the same bound by slowing
closed-loop completions instead, so it sheds the least while the
serve-queue-bounded checker stays green.
"""

from _bench_utils import emit_report, once
from repro.metrics.report import render_table
from repro.obs.runtime import OBS
from repro.serving import run_serve

CONTROLLERS = ("unthrottled", "fixed", "adaptive")

#: One overloaded resize window shared by all three policies: 3 of 6
#: servers off while a 2.5M-user open-loop population keeps arriving.
CONFIG = dict(seed=7, n=6, replicas=2, off_count=3, clients=120,
              users=2_500_000, duration=60.0, resize_at=15.0,
              resize_back_at=45.0)


def run_all():
    out = {}
    for ctrl in CONTROLLERS:
        OBS.reset()
        out[ctrl] = run_serve(controller=ctrl, **CONFIG)
    OBS.reset()
    return out


def bench_flow_control(benchmark):
    results = once(benchmark, run_all)

    rows, data = [], {}
    for name, r in results.items():
        overall = r.latency["overall"]
        rejected = sum(r.rejected.values())
        rows.append([
            name,
            f"{r.max_queue_depth}/{r.queue_bound}"
            + ("" if r.bounded else " !"),
            f"{overall['p50']:.2f}s",
            f"{overall['p99']:.2f}s",
            f"{overall['p999']:.2f}s",
            overall["count"],
            rejected,
            "OK" if r.ok else "DEGRADED",
        ])
        data[name] = {
            "p50": overall["p50"],
            "p99": overall["p99"],
            "p999": overall["p999"],
            "completed": overall["count"],
            "rejected": rejected,
            "max_queue_depth": r.max_queue_depth,
            "queue_bound": r.queue_bound,
            "bounded": r.bounded,
            "violations": len(r.violations),
            "ok": r.ok,
        }
    emit_report("flow_control", render_table(
        ["controller", "max depth/bound", "p50", "p99", "p999",
         "completed", "rejected", "verdict"],
        rows,
        title="Flow control during a resize — 3/6 servers off, "
              "migration competing with foreground (seed 7)"),
        data=data)

    un, fx, ad = (results[c] for c in CONTROLLERS)
    # The headline contrast: only the unthrottled door blows its
    # declared bound (and the invariant checker catches it).
    assert not un.bounded and un.violations
    assert fx.bounded and ad.bounded and not ad.violations
    # Backpressure sheds less than a hard concurrency cap at the same
    # bound — delay substitutes for rejection.
    assert sum(ad.rejected.values()) < sum(fx.rejected.values())
