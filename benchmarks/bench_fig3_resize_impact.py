"""Figure 3 — performance impact of resizing under original CH.

The motivating experiment (§II-C): the 3-phase workload with and
without resizing, on the unmodified consistent-hashing store.  The
resizing run turns 4 servers off after phase 1 and back on after
phase 2; the migration that follows fights the phase-3 foreground and
depresses throughput — the paper's "significantly affected" window.
"""

from _bench_utils import emit_report, once
from repro.experiments import run_three_phase
from repro.metrics.report import render_series, render_table

MB = 1e6


def bench_fig3_resize_impact(benchmark):
    def run_both():
        return {
            "no resizing": run_three_phase("none", scale=1.0),
            "with resizing": run_three_phase("original", scale=1.0),
        }

    results = once(benchmark, run_both)

    n = min(len(r.times) for r in results.values())
    grid = results["no resizing"].times[:n]
    series = {name: [v / MB for v in r.throughput[:n]]
              for name, r in results.items()}
    rows = []
    for name, r in results.items():
        p2 = r.phase_ends["phase2"]
        p3 = r.phase_ends["phase3"]
        rows.append([
            name,
            round(max(r.throughput) / MB, 1),
            round(r.mean_throughput(p2, p3) / MB, 1),
            round(r.recovery_time_after(p2), 1),
            round(r.migrated_bytes / 1e9, 2),
        ])

    emit_report("fig3_resize_impact", "\n".join([
        render_table(
            ["case", "peak MB/s", "mean phase-3 MB/s",
             "s to 90% of peak after phase 2", "migrated GB"],
            rows,
            title="Figure 3 — original CH, with vs without resizing "
                  "(paper: resizing case dips hard after phase 2)"),
        "",
        render_series([round(t) for t in grid[::20]],
                      {k: v[::20] for k, v in series.items()},
                      time_label="t(s)",
                      title="throughput timeline (MB/s, every 20 s)"),
    ]))

    resized = results["with resizing"]
    base = results["no resizing"]
    assert (resized.mean_throughput(resized.phase_ends["phase2"],
                                    resized.phase_ends["phase3"])
            < 0.7 * base.mean_throughput(base.phase_ends["phase2"],
                                         base.phase_ends["phase3"]))
