"""Figure 5 — the equal-work data layout and the data to re-integrate
across versions.

Paper scenario: version 1 at 10 active (equal-work curve), version 2
at 8 active with 50,000 objects written (curve distorted: the two off
servers are frozen), version 3 back to 10 active (curve restored; the
shaded area is the migrated data).
"""

from _bench_utils import emit_report, once
from repro.experiments import run_layout_versions
from repro.metrics.distribution import equal_work_reference
from repro.metrics.report import render_distribution, render_table


def bench_fig5_equal_work_layout(benchmark):
    result = once(benchmark, run_layout_versions,
                  objects_v1=40_000, objects_v2=50_000)

    sections = []
    for label, dist in result.distributions.items():
        sections.append(render_distribution(
            dist, width=46, title=f"-- {label} (blocks per rank) --"))
        sections.append("")

    ref = equal_work_reference(result.n, result.p)
    v1 = result.distributions["version1 (full power)"]
    total = sum(v1.values())
    rows = [[r, f"{ref[r] * total:.0f}", v1[r]] for r in sorted(ref)]
    sections.append(render_table(
        ["rank", "ideal equal-work blocks", "measured blocks"],
        rows, title="version 1 vs the ideal curve (paper's red line)"))
    sections.append("")
    sections.append(
        f"shape correlation with ideal : {result.v1_shape_correlation:.4f}")
    sections.append(
        f"objects re-integrated in v3  : {result.reintegration_objects} "
        f"of 50,000 written in v2 (the shaded area)")
    sections.append(
        f"bytes re-integrated          : "
        f"{result.reintegration_bytes / 1e9:.2f} GB")

    emit_report("fig5_equal_work_layout", "\n".join(sections))

    assert result.v1_shape_correlation > 0.99
    assert 0 < result.reintegration_objects < 50_000
