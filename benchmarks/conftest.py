"""Benchmark-harness options.

``--json DIR`` mirrors every bench's machine-readable JSON document
(see :func:`_bench_utils.emit_report`) into *DIR* instead of the
default ``benchmarks/reports/`` tree::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only --json out/
"""

from __future__ import annotations

from pathlib import Path


def pytest_addoption(parser):
    parser.addoption(
        "--json", dest="bench_json_dir", default=None, metavar="DIR",
        help="directory for the benches' machine-readable JSON reports "
             "(default: benchmarks/reports/, only for benches that "
             "produce structured data)")


def pytest_configure(config):
    json_dir = config.getoption("bench_json_dir", default=None)
    if json_dir:
        import _bench_utils
        _bench_utils.JSON_DIR = Path(json_dir)
