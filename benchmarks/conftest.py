"""Benchmark-harness options.

``--json DIR`` mirrors every bench's machine-readable JSON document
(see :func:`_bench_utils.emit_report`) into *DIR* instead of the
default ``benchmarks/reports/`` tree::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-only --json out/
"""

from __future__ import annotations

from pathlib import Path


def pytest_addoption(parser):
    parser.addoption(
        "--json", dest="bench_json_dir", default=None, metavar="DIR",
        help="directory for the benches' machine-readable JSON reports "
             "(default: benchmarks/reports/, only for benches that "
             "produce structured data)")


def pytest_configure(config):
    json_dir = config.getoption("bench_json_dir", default=None)
    if json_dir:
        import _bench_utils
        _bench_utils.JSON_DIR = Path(json_dir)


def pytest_sessionfinish(session):
    """With ``--json DIR``, dump the pytest-benchmark timings as
    ``perf_core_timings.json`` — the micro-benches (bench_perf_core)
    have no ``emit_report`` document of their own, and CI uploads this
    file as the perf-smoke artifact.  Wall-clock numbers never land in
    the checked-in ``benchmarks/reports/`` tree (they would drift on
    every run), so this writes only under the explicit ``--json``
    directory."""
    import _bench_utils
    if _bench_utils.JSON_DIR is None:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    timings = {}
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        # pytest-benchmark nests the numbers one level down on newer
        # versions (Metadata.stats.stats); tolerate both shapes.
        inner = getattr(stats, "stats", stats)
        median = getattr(inner, "median", None)
        if median is None:
            continue
        timings[bench.fullname] = {
            "median_s": median,
            "mean_s": getattr(inner, "mean", None),
            "rounds": getattr(inner, "rounds", None),
        }
    if not timings:
        return
    import json
    _bench_utils.JSON_DIR.mkdir(parents=True, exist_ok=True)
    document = {"name": "perf_core_timings", "data": timings}
    (_bench_utils.JSON_DIR / "perf_core_timings.json").write_text(
        json.dumps(document, indent=2, sort_keys=True, default=repr)
        + "\n")
    # One attributable line per run in the bench-history store: the
    # perf trajectory CI gates on (see docs/PERFORMANCE.md).
    _bench_utils.append_history("perf_core_timings", timings)
