"""Experiment drivers: one callable per paper artefact.

These glue the library layers together exactly the way the paper's
evaluation does, so the benchmarks, the examples and the tests all run
the *same* experiment code:

* :func:`run_resize_agility` — Figure 2 (ideal vs original-CH resizing);
* :func:`run_three_phase` — Figures 3 and 7 (throughput under resizing);
* :func:`run_layout_versions` — Figure 5 (equal-work layout and the
  data to re-integrate across versions);
* :func:`run_trace_analysis` — Figures 8/9 and Tables I/II.
"""

from repro.experiments.resize_agility import (
    ResizeAgilityResult,
    run_resize_agility,
)
from repro.experiments.three_phase import (
    ThreePhaseResult,
    run_three_phase,
)
from repro.experiments.layout import (
    LayoutVersionsResult,
    run_layout_versions,
)
from repro.experiments.traces import (
    TraceExperiment,
    run_trace_analysis,
)

__all__ = [
    "ResizeAgilityResult",
    "run_resize_agility",
    "ThreePhaseResult",
    "run_three_phase",
    "LayoutVersionsResult",
    "run_layout_versions",
    "TraceExperiment",
    "run_trace_analysis",
]
