"""Figures 8/9 and Tables I/II: the trace-driven policy analysis.

One call builds the synthetic CC-a / CC-b trace, calibrates the policy
configuration to it, runs the four policies, and extracts both the
plot window the figures show and the Table II ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.obs.runtime import OBS
from repro.policy.analysis import (
    TraceAnalysis,
    analyze_trace,
    config_for_trace,
)
from repro.workloads.cloudera import (
    CC_A,
    CC_B,
    generate_cc_a,
    generate_cc_b,
)
from repro.workloads.trace import LoadTrace, TraceSpec

__all__ = ["TraceExperiment", "run_trace_analysis", "FIGURE_N_MAX"]

#: Cluster sizes read off the figures' y-axes (Fig 8 tops out at 50
#: servers, Fig 9 at ~180) — the deployments behind the traces, smaller
#: than Table I's raw machine counts.
FIGURE_N_MAX = {"CC-a": 50, "CC-b": 180}


@dataclass
class TraceExperiment:
    """Everything the trace benches report for one trace."""

    spec: TraceSpec
    trace: LoadTrace
    analysis: TraceAnalysis
    #: The ~250-minute window the figures plot (sample indices).
    window: slice

    def figure_series(self) -> Dict[str, np.ndarray]:
        """The four curves of Figure 8/9, restricted to the window."""
        return {name: series[self.window]
                for name, series in self.analysis.series().items()}

    def window_minutes(self) -> np.ndarray:
        idx = np.arange(self.window.start, self.window.stop)
        return idx * self.trace.dt / 60.0 - self.window.start \
            * self.trace.dt / 60.0

    def table2_row(self) -> Dict[str, float]:
        return self.analysis.relative_machine_hours()

    def table1_row(self) -> Dict[str, object]:
        st = self.trace.stats()
        return {
            "trace": self.spec.name,
            "machines": self.spec.machines,
            "length_days": round(self.spec.length_days, 2),
            "bytes_processed_TB": round(st["total_bytes"] / 1e12, 1),
        }


def run_trace_analysis(
    which: str = "CC-a",
    seed: Optional[int] = None,
    window_start_minutes: float = 600.0,
    window_minutes: float = 250.0,
    **config_overrides,
) -> TraceExperiment:
    """Build + analyse one trace.

    Parameters
    ----------
    which:
        "CC-a" or "CC-b".
    seed:
        Trace-generator seed override (defaults are fixed, so the
        benches are reproducible).
    window_start_minutes / window_minutes:
        The sub-range plotted as the figure (the traces are far longer
        than the 250-minute windows shown in the paper).
    """
    if which == "CC-a":
        spec, generate = CC_A, generate_cc_a
    elif which == "CC-b":
        spec, generate = CC_B, generate_cc_b
    else:
        raise ValueError(f"unknown trace {which!r}; use 'CC-a' or 'CC-b'")
    kwargs = {"seed": seed} if seed is not None else {}
    prof = OBS.profiler
    if prof is not None:
        with prof.frame("workload.generate"):
            trace = generate(**kwargs)
    else:
        trace = generate(**kwargs)

    config = config_for_trace(trace, FIGURE_N_MAX[which],
                              **config_overrides)
    analysis = analyze_trace(trace, config=config)

    i0 = int(window_start_minutes * 60.0 / trace.dt)
    count = max(1, int(window_minutes * 60.0 / trace.dt))
    i0 = min(i0, max(0, len(trace) - count))
    window = slice(i0, min(len(trace), i0 + count))

    return TraceExperiment(spec=spec, trace=trace, analysis=analysis,
                           window=window)
