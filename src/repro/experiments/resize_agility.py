"""Figure 2: resizing agility of original CH vs the elastic design.

The paper's §II-C experiment on the 10-node Sheepdog testbed: starting
at 10 active servers, *request* the removal of 2 servers every 30
seconds for two minutes, then from minute 3 add 2 back every 30 seconds.
The "ideal" line is the requested pattern; original consistent hashing
lags it when sizing down because each departure must finish
re-replicating before the next can proceed, and catches up when sizing
up.  The elastic design (primary servers + layout) resizes instantly in
both directions, floored at the primary count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.cluster.cluster import ElasticCluster, OriginalCHCluster
from repro.cluster.recovery import plan_departure_recovery
from repro.metrics.timeline import StepSeries
from repro.simulation.engine import Simulator

__all__ = ["ResizeAgilityResult", "run_resize_agility"]


@dataclass
class ResizeAgilityResult:
    """The three active-server series of Figure 2 (+ the elastic one)."""

    ideal: StepSeries
    original_ch: StepSeries
    elastic: StepSeries
    duration: float
    #: Per-removal re-replication volumes the baseline paid (bytes).
    recovery_bytes: List[int] = field(default_factory=list)

    def lag_seconds(self) -> float:
        """∫(original - ideal) dt over the shrink half — the area by
        which the baseline lags the requested pattern (server-seconds).
        Positive = lagging."""
        half = self.duration / 2.0
        return (self.original_ch.integral(0, half)
                - self.ideal.integral(0, half))

    def elastic_lag_seconds(self) -> float:
        half = self.duration / 2.0
        return self.elastic.integral(0, half) - self.ideal.integral(0, half)


def run_resize_agility(
    n: int = 10,
    replicas: int = 2,
    objects: int = 2_000,
    object_size: int = 4 * 1024 * 1024,
    step_interval: float = 30.0,
    batch: int = 2,
    disk_bw: float = 64e6,
    recovery_fraction: float = 0.5,
    duration: float = 300.0,
    vnodes_per_server: int = 200,
) -> ResizeAgilityResult:
    """Run the Figure 2 experiment.

    Parameters mirror §II-C: remove *batch* servers every
    *step_interval* seconds until only the minimum remain, then add
    them back at the same cadence from the midpoint.  *objects* ×
    *object_size* is the resident dataset whose re-replication gates
    the baseline's shrink.
    """
    # ---------------- ideal (requested) pattern ----------------------
    ideal = StepSeries()
    ideal.append(0.0, n)
    k = n
    t = step_interval
    floor = replicas  # the request bottoms out where replication allows
    while k > floor and t < duration / 2:
        k = max(floor, k - batch)
        ideal.append(t, k)
        t += step_interval
    t = duration / 2 + step_interval
    while k < n:
        k = min(n, k + batch)
        ideal.append(t, k)
        t += step_interval

    # ---------------- original consistent hashing --------------------
    baseline = OriginalCHCluster(n, replicas,
                                 vnodes_per_server=vnodes_per_server,
                                 disk_bandwidth=disk_bw)
    for oid in range(objects):
        baseline.write(oid, object_size)

    original = StepSeries()
    original.append(0.0, n)
    recovery_bytes: List[int] = []

    sim = Simulator()
    state = {"pending_remove": 0, "busy": False, "members": n,
             "removal_event": None}

    def request_remove() -> None:
        state["pending_remove"] += batch
        maybe_start_removal()

    def maybe_start_removal() -> None:
        if state["busy"] or state["pending_remove"] <= 0:
            return
        if state["members"] - 1 < replicas:
            state["pending_remove"] = 0
            return
        victim = max(baseline.members)
        plan = plan_departure_recovery(baseline, victim)
        delay = plan.serialized_seconds(disk_bw, recovery_fraction)
        state["busy"] = True

        def finish() -> None:
            moved = baseline.remove_server(victim)
            recovery_bytes.append(moved)
            state["members"] -= 1
            state["pending_remove"] -= 1
            state["busy"] = False
            state["removal_event"] = None
            original.append(sim.now, state["members"])
            maybe_start_removal()

        state["removal_event"] = sim.schedule(max(delay, 1e-6), finish)

    def request_add() -> None:
        # Adding needs no prerequisite work (§II-C: migration is not a
        # pre-requisite operation for adding servers); any outstanding
        # shrink requests — including a removal mid-recovery — are
        # superseded.
        state["pending_remove"] = 0
        if state["removal_event"] is not None:
            state["removal_event"].cancel()
            state["removal_event"] = None
            state["busy"] = False
        added = 0
        rank = 1
        while added < batch and state["members"] < n:
            while rank in baseline.ring:
                rank += 1
            baseline.add_server(rank)
            state["members"] += 1
            added += 1
        original.append(sim.now, state["members"])

    t = step_interval
    while t < duration / 2:
        sim.schedule_at(t, request_remove)
        t += step_interval
    t = duration / 2 + step_interval
    while t <= duration:
        sim.schedule_at(t, request_add)
        t += step_interval
    sim.run_until(duration)

    # ---------------- elastic consistent hashing ---------------------
    elastic_cluster = ElasticCluster(n, replicas, disk_bandwidth=disk_bw)
    for oid in range(objects):
        elastic_cluster.write(oid, object_size)

    elastic = StepSeries()
    elastic.append(0.0, n)
    k = n
    t = step_interval
    while k > elastic_cluster.min_active and t < duration / 2:
        k = max(elastic_cluster.min_active, k - batch)
        elastic_cluster.resize(k)   # instant: no clean-up work
        elastic.append(t, elastic_cluster.num_active)
        t += step_interval
    t = duration / 2 + step_interval
    while k < n:
        k = min(n, k + batch)
        elastic_cluster.resize(k)
        elastic.append(t, elastic_cluster.num_active)
        t += step_interval

    return ResizeAgilityResult(
        ideal=ideal,
        original_ch=original,
        elastic=elastic,
        duration=duration,
        recovery_bytes=recovery_bytes,
    )
