"""Figure 5: the equal-work data layout and re-integration volume
across versions.

The figure's scenario: a 10-server cluster goes through three versions
— v1 with 10 active, v2 with 8 active (50,000 objects written while
shrunk, distorting the layout curve because the last two servers are
off), v3 back to 10 active.  The plot shows blocks per server rank in
each version and, shaded, the data that must re-integrate to recover
the equal-work curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cluster.cluster import ElasticCluster
from repro.metrics.distribution import (
    distribution_stats,
    equal_work_reference,
    shape_correlation,
)

__all__ = ["LayoutVersionsResult", "run_layout_versions"]


@dataclass
class LayoutVersionsResult:
    """Per-version block distributions + the migration volume."""

    n: int
    p: int
    replicas: int
    #: blocks per rank after each version's writes, keyed by label.
    distributions: Dict[str, Dict[int, int]]
    #: objects that must move in v3 (the shaded area of Figure 5).
    reintegration_objects: int
    reintegration_bytes: int
    #: Pearson correlation of the v1 distribution with the ideal
    #: equal-work shape.
    v1_shape_correlation: float

    def stats(self, label: str) -> Dict[str, float]:
        return distribution_stats(self.distributions[label])


def run_layout_versions(
    n: int = 10,
    replicas: int = 2,
    objects_v1: int = 40_000,
    objects_v2: int = 50_000,
    off_count: int = 2,
    object_size: int = 4 * 1024 * 1024,
    B: int = 10_000,
) -> LayoutVersionsResult:
    """Run the Figure 5 scenario and measure the distributions.

    Defaults follow the figure: 50,000 objects written in version 2
    with 2 servers off.
    """
    cluster = ElasticCluster(n, replicas, B=B)
    oid = 0

    # Version 1: full power.
    for _ in range(objects_v1):
        cluster.write(oid, object_size)
        oid += 1
    dist_v1 = cluster.replicas_per_rank()

    # Version 2: shrink, write the figure's 50k objects.
    cluster.resize(n - off_count)
    for _ in range(objects_v2):
        cluster.write(oid, object_size)
        oid += 1
    dist_v2 = cluster.replicas_per_rank()

    # Version 3: back to full power; the selective backlog *is* the
    # shaded re-integration area.
    cluster.resize(n)
    backlog_bytes = cluster.selective_backlog_bytes()
    report = cluster.run_selective_reintegration()
    dist_v3 = cluster.replicas_per_rank()

    ref = equal_work_reference(n, cluster.ech.p)
    corr = shape_correlation(
        {r: float(c) for r, c in dist_v1.items()}, ref)

    return LayoutVersionsResult(
        n=n,
        p=cluster.ech.p,
        replicas=replicas,
        distributions={
            "version1 (full power)": dist_v1,
            "version2 (shrunk)": dist_v2,
            "version3 (re-integrated)": dist_v3,
        },
        reintegration_objects=report.entries_migrated,
        reintegration_bytes=report.bytes_migrated,
        v1_shape_correlation=corr,
    )
