"""Figures 3 and 7: throughput under resizing with the 3-phase workload.

The testbed experiment (§V-A): a 10-server cluster, 2-way replication,
4 MB objects, driven by the 3-phase Filebench workload.  In the
resizing cases, 4 servers are turned down at the end of phase 1 and
turned back on at the end of phase 2; the figures plot achieved client
throughput over time.

Four modes reproduce the paper's curves:

========== ===========================================================
mode        behaviour
========== ===========================================================
none        no resizing (the "no resizing" baseline of both figures)
original    original CH: departure re-replication after phase 1,
            full migration onto re-added (empty) servers after phase 2
            — uncontrolled, fighting the phase-3 foreground (Fig 3/7)
full        elastic CH, instant resize, *full* re-integration after
            phase 2 (over-migrates everything on re-added servers)
selective   elastic CH, instant resize, selective re-integration of
            dirty data only, rate-limited (the paper's system, Fig 7)
========== ===========================================================

The IO substrate is the fluid fair-share model: client and background
flows compete for per-server disk bandwidth; the throughput dip after
phase 2 is therefore *measured contention*, with the migration volumes
taken from the real object-level cluster state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Tuple

from repro.cluster.cluster import ElasticCluster, OriginalCHCluster
from repro.cluster.migration import addition_migration_plan
from repro.cluster.recovery import plan_departure_recovery
from repro.simulation.flows import FluidFlow
from repro.simulation.iomodel import (
    IOModel,
    client_coefficients,
    replica_load_fractions_from_matrix,
)
from repro.workloads.three_phase import Phase, three_phase_workload

__all__ = ["ThreePhaseResult", "run_three_phase"]

Mode = Literal["none", "original", "full", "selective"]

MB = 10 ** 6


@dataclass
class ThreePhaseResult:
    """Timeline and accounting for one 3-phase run."""

    mode: str
    times: List[float]
    throughput: List[float]            # client bytes/s per tick
    migration_rate: List[float]        # background bytes/s per tick
    phase_ends: Dict[str, float]       # name -> completion time
    migrated_bytes: float
    rereplicated_bytes: float
    duration: float

    def mean_throughput(self, t0: float, t1: float) -> float:
        vals = [v for t, v in zip(self.times, self.throughput)
                if t0 <= t < t1]
        return sum(vals) / len(vals) if vals else 0.0

    def recovery_time_after(self, t_event: float,
                            threshold_frac: float = 0.9) -> float:
        """Seconds after *t_event* until client throughput first
        sustains *threshold_frac* of the run's peak — the "delayed IO
        throughput" measure discussed under Figure 7."""
        peak = max(self.throughput) if self.throughput else 0.0
        target = peak * threshold_frac
        for t, v in zip(self.times, self.throughput):
            if t >= t_event and v >= target:
                return t - t_event
        return self.duration - t_event


def run_three_phase(
    mode: Mode = "selective",
    n: int = 10,
    replicas: int = 2,
    scale: float = 1.0,
    off_count: int = 4,
    disk_bw: float = 64e6,
    client_cap: float = 320e6,
    object_size: int = 4 * 1024 * 1024,
    selective_rate_limit: float = 50e6,
    phase2_rate: float = 20e6,
    dt: float = 1.0,
    max_duration: float = 3_600.0,
    probe_objects: int = 2_000,
    isolate_reintegration: bool = True,
) -> ThreePhaseResult:
    """Run one 3-phase experiment and return its timeline.

    *scale* shrinks the workload byte totals (tests use 0.02-0.05;
    the benches use the paper's full sizes).

    *isolate_reintegration* reproduces the §V-A setup exactly: "Note
    that primary server and data layout are not considered here
    because they do not have an effect on the performance" — the
    elastic modes then run uniform weights and plain successor
    placement, so all four curves share the same peak throughput and
    differ only in re-integration behaviour.  Set it False to run the
    full equal-work + primary design instead (its lower write peak is
    the §III-C trade-off, exercised by the ablation bench).
    """
    if mode not in ("none", "original", "full", "selective"):
        raise ValueError(f"unknown mode: {mode!r}")
    phases = three_phase_workload(scale=scale, phase2_rate=phase2_rate)

    elastic_mode = mode in ("none", "full", "selective")
    if elastic_mode:
        if isolate_reintegration:
            cluster: object = ElasticCluster(
                n, replicas, disk_bandwidth=disk_bw,
                layout_mode="uniform", placement_mode="original")
        else:
            cluster = ElasticCluster(n, replicas, disk_bandwidth=disk_bw)
    else:
        cluster = OriginalCHCluster(n, replicas, vnodes_per_server=1_000,
                                    disk_bandwidth=disk_bw)

    oid_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # membership-dependent state
    # ------------------------------------------------------------------
    def active_ranks() -> List[int]:
        if elastic_mode:
            table = cluster.ech.membership
            return [r for r in cluster.servers if table.is_active(r)]
        return list(cluster.members)

    def capacities() -> Dict[int, float]:
        return {r: disk_bw for r in active_ranks()}

    frac_cache: Dict[Tuple[int, ...], Dict[int, float]] = {}

    def fractions() -> Dict[int, float]:
        key = tuple(sorted(active_ranks()))
        if key not in frac_cache:
            probe = range(10_000_000, 10_000_000 + probe_objects)
            if elastic_mode:
                matrix = cluster.ech.locate_bulk(probe).servers
            else:
                matrix = cluster.placement_bulk(probe).servers
            frac_cache[key] = replica_load_fractions_from_matrix(matrix)
        return frac_cache[key]

    if elastic_mode:
        # Capacities depend only on the membership table, and every
        # membership transition bumps the placement version — a cheap
        # token that lets unchanged ticks reuse the last allocation.
        io = IOModel(capacities, dt=dt,
                     capacity_token=lambda: cluster.ech.current_version)
    else:
        # Original-CH membership has no version counter; the dict-
        # compare fallback is plenty at these cluster sizes.
        io = IOModel(capacities, dt=dt)

    # ------------------------------------------------------------------
    # client phases
    # ------------------------------------------------------------------
    state = {
        "phase_idx": 0,
        "client": None,            # live client flow
        "write_carry": 0.0,        # fractional object accumulator
        "phase_ends": {},
        "pending_actions": [],     # resize work queued at phase ends
        "removal_queue": [],       # original-CH sequential departures
        "removal_flow": None,
        "rereplicated": 0.0,
    }

    def start_phase(idx: int) -> None:
        phase = phases[idx]
        coeffs = client_coefficients(fractions(), replicas,
                                     phase.write_ratio)
        cap = min(client_cap, phase.rate_cap or client_cap)
        flow = FluidFlow(
            name="client",
            coefficients=coeffs,
            total_bytes=phase.total_bytes,
            rate_cap=cap,
        )
        state["client"] = io.flows.add(flow)

    def refresh_client_coefficients() -> None:
        """Re-point the live client flow at the current membership."""
        flow = state["client"]
        if flow is not None and not flow.done:
            phase = phases[state["phase_idx"]]
            flow.coefficients = client_coefficients(
                fractions(), replicas, phase.write_ratio)

    # ------------------------------------------------------------------
    # resize actions at phase boundaries
    # ------------------------------------------------------------------
    def migration_coefficients(per_dest: Dict[int, float]) -> Dict[int, float]:
        """A migrated byte is written once at its destination and read
        once somewhere; spread the read side evenly over active
        servers."""
        total = sum(per_dest.values())
        active = active_ranks()
        coeffs: Dict[int, float] = {r: 1.0 / len(active) for r in active}
        if total > 0:
            for rank, b in per_dest.items():
                coeffs[rank] = coeffs.get(rank, 0.0) + b / total
        return coeffs

    def resize_down(now: float) -> None:
        if elastic_mode:
            cluster.resize(n - off_count)       # instant
            refresh_client_coefficients()
        else:
            state["removal_queue"] = sorted(cluster.members)[-off_count:][::-1]
            start_next_removal(now)

    def start_next_removal(now: float) -> None:
        if state["removal_flow"] is not None or not state["removal_queue"]:
            return
        victim = state["removal_queue"][0]
        plan = plan_departure_recovery(cluster, victim)

        def finish(_flow: FluidFlow) -> None:
            moved = cluster.remove_server(victim)
            state["rereplicated"] += moved
            state["removal_queue"].pop(0)
            state["removal_flow"] = None
            refresh_client_coefficients()
            start_next_removal(io.samples[-1][0] if io.samples else now)

        flow = FluidFlow(
            name="recovery",
            coefficients=migration_coefficients(plan.bytes_per_destination()),
            total_bytes=float(max(plan.total_bytes, 1)),
            on_complete=finish,
        )
        state["removal_flow"] = io.flows.add(flow)

    def resize_up(now: float) -> None:
        if elastic_mode:
            cluster.resize(n)
            refresh_client_coefficients()
            # The resize may open a resize.cycle span; grab it before
            # the (logically instant) re-integration pass closes it so
            # the byte-moving flow below is parented to its cycle.
            cycle = cluster.reintegration_cycle
            if mode == "selective":
                backlog = cluster.selective_backlog_bytes()
                report = cluster.run_selective_reintegration()
                volume = max(report.bytes_migrated, backlog)
                if volume > 0:
                    io.flows.add(FluidFlow(
                        name="migration",
                        coefficients=migration_coefficients({}),
                        total_bytes=float(volume),
                        rate_cap=selective_rate_limit,
                    ), parent=cycle)
            elif mode == "full":
                moved = cluster.run_full_reintegration()
                if moved > 0:
                    io.flows.add(FluidFlow(
                        name="migration",
                        coefficients=migration_coefficients({}),
                        total_bytes=float(moved),
                    ), parent=cycle)
        else:
            # Baseline: any departures still pending are abandoned, the
            # servers rejoin empty and consistent hashing pulls their
            # share of data back — uncontrolled.
            state["removal_queue"] = []
            if state["removal_flow"] is not None:
                state["removal_flow"].total_bytes = state[
                    "removal_flow"].progressed  # retire at next tick
                state["removal_flow"] = None
            off = [r for r in cluster.servers if r not in cluster.ring]
            moved = 0
            per_dest: Dict[int, float] = {}
            if off:
                plan = addition_migration_plan(cluster, off)
                per_dest = plan.bytes_per_destination()
                for rank in off:
                    moved += cluster.add_server(rank)
            refresh_client_coefficients()
            if moved > 0:
                io.flows.add(FluidFlow(
                    name="migration",
                    coefficients=migration_coefficients(per_dest),
                    total_bytes=float(moved),
                ))

    # ------------------------------------------------------------------
    # per-tick bookkeeping
    # ------------------------------------------------------------------
    def materialise_writes(now: float) -> None:
        """Turn the client flow's written bytes into placed objects so
        migration volumes and dirty tracking reflect real state."""
        flow = state["client"]
        if flow is None:
            return
        phase = phases[state["phase_idx"]]
        written = flow.last_rate * dt * phase.write_ratio
        state["write_carry"] += written
        while state["write_carry"] >= object_size:
            cluster.write(next(oid_counter), object_size)
            state["write_carry"] -= object_size

    def on_tick(now: float) -> None:
        if state["client"] is None:
            return

    # Main loop ---------------------------------------------------------
    times: List[float] = []
    thr: List[float] = []
    mig: List[float] = []

    start_phase(0)
    now = 0.0
    while now < max_duration:
        now += dt
        achieved = io.step(now)
        times.append(now)
        thr.append(achieved.get("client", 0.0))
        mig.append(achieved.get("migration", 0.0)
                   + achieved.get("recovery", 0.0))
        materialise_writes(now)

        flow = state["client"]
        if flow is not None and flow.done:
            idx = state["phase_idx"]
            state["phase_ends"][phases[idx].name] = now
            state["client"] = None
            state["write_carry"] = 0.0
            if mode != "none":
                if idx == 0:
                    resize_down(now)
                elif idx == 1:
                    resize_up(now)
            if idx + 1 < len(phases):
                state["phase_idx"] = idx + 1
                start_phase(idx + 1)
            else:
                # Drain background flows (a rate-limited migration can
                # outlive phase 3) so migration durations are measured
                # to completion, then stop.
                while len(io.flows) > 0 and now < max_duration:
                    now += dt
                    achieved = io.step(now)
                    times.append(now)
                    thr.append(achieved.get("client", 0.0))
                    mig.append(achieved.get("migration", 0.0)
                               + achieved.get("recovery", 0.0))
                break

    if elastic_mode:
        migrated = sum(cluster.migrated_bytes.values())
    else:
        migrated = cluster.migrated_bytes
    return ThreePhaseResult(
        mode=mode,
        times=times,
        throughput=thr,
        migration_rate=mig,
        phase_ends=dict(state["phase_ends"]),
        migrated_bytes=float(migrated),
        rereplicated_bytes=float(state["rereplicated"]),
        duration=now,
    )
