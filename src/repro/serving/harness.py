"""Replay an elastic resize under front-door load.

:func:`run_serve` stands up the full stack — elastic cluster, fluid
IO, admission coordinator, one closed-loop and one open-loop
population — then turns ``off_count`` servers off at ``resize_at``
and back on at ``resize_back_at``.  Writes issued while the cluster
is shrunk dirty the metadata table, so the resize-back triggers a
rate-limited selective reintegration whose migration flow competes
with foreground serving for the surviving disks.  What the clients
feel is the report: p50/p99/p999 latency (via the nearest-rank
percentiles of :mod:`repro.obs.analytics`), rejects, max queue depth
against the controller's declared bound, and an SLO verdict.

Everything is a pure function of ``(seed, parameters)``: placement,
jitter, interarrival gaps and retry backoff all come from FNV-1a hash
streams, so a same-seed run replays byte-identically — the property
the CI ``serving-smoke`` job pins with a trace checksum.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.cluster import ElasticCluster
from repro.hashring.hashing import hash64
from repro.obs.analytics import percentile
from repro.obs.invariants import CheckerSink, InvariantSuite, default_checkers
from repro.obs.runtime import OBS
from repro.simulation.engine import Simulator
from repro.simulation.flows import FluidFlow
from repro.simulation.iomodel import IOModel

from repro.serving.clients import ClosedLoopPopulation, OpenLoopPopulation
from repro.serving.coordinator import AdmissionCoordinator, Request
from repro.serving.flowcontrol import FlowController, make_controller

__all__ = ["ServeResult", "render_serve_report", "run_serve"]

MB = 10 ** 6


def latency_stats(values: List[float]) -> Dict[str, Optional[float]]:
    """Nearest-rank summary of a latency sample; honest ``None`` for
    every statistic when there are no completions."""
    if not values:
        return {"count": 0, "p50": None, "p99": None, "p999": None,
                "mean": None, "max": None}
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "p50": percentile(ordered, 0.50),
        "p99": percentile(ordered, 0.99),
        "p999": percentile(ordered, 0.999),
        "mean": sum(ordered) / len(ordered),
        "max": ordered[-1],
    }


@dataclass
class ServeResult:
    """Client-perceived outcome of one resize-under-load replay."""

    controller: str
    seed: int
    n: int
    replicas: int
    off_count: int
    duration: float
    resize_at: float
    resize_back_at: float
    #: Per-population latency summaries plus a pooled ``overall``.
    latency: Dict[str, Dict[str, Optional[float]]]
    enqueued: Dict[str, int]
    completed: Dict[str, int]
    rejected: Dict[str, int]
    closed_retries: int
    failovers: int
    outstanding: int              # admitted but unfinished at cutoff
    max_queue_depth: int
    queue_bound: int
    migration_bytes: float
    served_bytes: float
    slo_p99: float
    #: None when there were no completions to judge.
    slo_met: Optional[bool]
    violations: List[str] = field(default_factory=list)
    checkers: int = 0
    events_seen: int = 0

    @property
    def bounded(self) -> bool:
        """Did every observed queue depth respect the declared bound?"""
        return self.max_queue_depth <= self.queue_bound

    @property
    def ok(self) -> bool:
        return (self.bounded and not self.violations
                and self.slo_met is not False)


def run_serve(
    seed: int = 7,
    controller: str = "adaptive",
    n: int = 10,
    replicas: int = 2,
    off_count: int = 4,
    clients: int = 200,
    think_time: float = 1.0,
    users: int = 4_000_000,
    per_user_rate: float = 5e-5,
    request_bytes: int = 1 * MB,
    write_ratio: float = 0.3,
    duration: float = 180.0,
    dt: float = 0.5,
    resize_at: float = 60.0,
    resize_back_at: float = 120.0,
    disk_bw: float = 64e6,
    prepopulate: int = 256,
    selective_rate_limit: float = 50e6,
    slo_p99: float = 3.0,
    check: bool = True,
    controller_kwargs: Optional[dict] = None,
) -> ServeResult:
    """Serve a mixed open/closed population across a resize.

    The open-loop population models ``users`` users each issuing
    ``per_user_rate`` requests/s — millions of users collapse into a
    single arrival rate, which is how the population scales without
    per-user state.  ``write_ratio`` of requests are writes, charged
    ``replicas * request_bytes`` of disk work on their primary and
    materialised into the catalog on completion (so the shrunken
    cluster accumulates a real dirty backlog for the resize-back to
    reintegrate).
    """
    if not 0 <= off_count < n:
        raise ValueError("off_count must be in [0, n)")
    if n - off_count < replicas:
        raise ValueError("shrunken cluster cannot hold the replicas")
    if not 0.0 < resize_at < resize_back_at < duration:
        raise ValueError("need 0 < resize_at < resize_back_at < duration")
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError("write_ratio must be in [0, 1]")

    ctrl: FlowController = make_controller(
        controller, **(controller_kwargs or {}))
    sim = Simulator()
    cluster = ElasticCluster(n, replicas, disk_bandwidth=disk_bw)

    def capacities() -> Dict[int, float]:
        table = cluster.ech.membership
        return {r: disk_bw for r in cluster.servers if table.is_active(r)}

    io = IOModel(capacities, dt,
                 capacity_token=lambda: cluster.ech.current_version)
    coord = AdmissionCoordinator(sim, io, ctrl, dt)

    oid_counter = itertools.count(1)
    state = {"written": 0}
    for _ in range(prepopulate):
        cluster.write(next(oid_counter), request_bytes)
        state["written"] += 1

    # -- request fabrication (placement + disk cost + materialisation) --
    def _unit_of(key: str) -> float:
        return (hash64(key) + 0.5) / 2.0 ** 64

    def pick_replica(oid: int, key: str) -> int:
        servers = cluster.ech.locate(oid).servers
        return servers[hash64(key + ":replica") % len(servers)]

    def materialise(req: Request, _t: float) -> None:
        cluster.write(req.oid, request_bytes)
        state["written"] += 1

    def factory(pop: str, rid: int, key: str) -> Request:
        is_write = _unit_of(key + ":rw") < write_ratio
        if is_write:
            oid = next(oid_counter)
            server = cluster.ech.locate(oid).servers[0]
            nbytes = float(replicas * request_bytes)
            on_complete = materialise
        else:
            oid = 1 + hash64(key + ":oid") % max(1, state["written"])
            server = pick_replica(oid, key)
            nbytes = float(request_bytes)
            on_complete = None
        return Request(rid=rid, pop=pop, oid=oid, is_write=is_write,
                       server=server, nbytes=nbytes, t_enqueue=sim.now,
                       on_complete=on_complete)

    closed = ClosedLoopPopulation(
        sim, coord, factory, clients=clients, think_time=think_time,
        seed=seed, name="closed")
    open_pop = OpenLoopPopulation(
        sim, coord, factory, users=users, per_user_rate=per_user_rate,
        seed=seed, until=duration, name="open")

    # -- resize actions -------------------------------------------------
    def relocate(req: Request) -> int:
        if req.is_write:
            return cluster.ech.locate(req.oid).servers[0]
        return pick_replica(req.oid, f"{seed}:failover:{req.rid}")

    def resize_down() -> None:
        cluster.resize(n - off_count)
        table = cluster.ech.membership
        gone = [r for r in cluster.servers if not table.is_active(r)]
        coord.failover(gone, relocate)

    def resize_up() -> None:
        cluster.resize(n)
        cycle = cluster.reintegration_cycle
        backlog = cluster.selective_backlog_bytes()
        report = cluster.run_selective_reintegration()
        volume = max(report.bytes_migrated, backlog)
        if volume > 0:
            table = cluster.ech.membership
            active = [r for r in cluster.servers if table.is_active(r)]
            io.flows.add(FluidFlow(
                name="migration",
                coefficients={r: 1.0 / len(active) for r in active},
                total_bytes=float(volume),
                rate_cap=selective_rate_limit,
            ), parent=cycle)

    sim.schedule_at(resize_at, resize_down)
    sim.schedule_at(resize_back_at, resize_up)

    # -- run ------------------------------------------------------------
    checker_sink: Optional[CheckerSink] = None
    if check:
        checker_sink = CheckerSink(InvariantSuite(default_checkers()))
        OBS.bus.attach(checker_sink)
    run_span = OBS.spans.begin("serve.run", seed=seed, n=n,
                               controller=ctrl.name)
    try:
        closed.start()
        open_pop.start()
        ticks = round(duration / dt)
        for i in range(1, ticks + 1):
            coord.begin_tick()
            now = i * dt
            sim.run_until(now)
            coord.background_active = bool(io.flows.by_name("migration"))
            achieved = io.step(now)
            coord.end_tick(now, achieved)
        coord.shutdown()
        run_span.end(status="completed")
    except BaseException:
        run_span.end(status="failed")
        raise
    finally:
        if checker_sink is not None:
            OBS.bus.detach(checker_sink)

    violations: List[str] = []
    checkers = events_seen = 0
    if checker_sink is not None:
        violations = [v.describe() for v in checker_sink.finish()]
        checkers = len(checker_sink.suite.checkers)
        events_seen = checker_sink.suite.events_seen

    latency = {pop: latency_stats(vals)
               for pop, vals in sorted(coord.latencies.items())}
    pooled: List[float] = []
    for vals in coord.latencies.values():
        pooled.extend(vals)
    latency["overall"] = latency_stats(pooled)
    p99 = latency["overall"]["p99"]
    slo_met = None if p99 is None else bool(p99 <= slo_p99)

    return ServeResult(
        controller=ctrl.name,
        seed=seed, n=n, replicas=replicas, off_count=off_count,
        duration=duration, resize_at=resize_at,
        resize_back_at=resize_back_at,
        latency=latency,
        enqueued=dict(sorted(coord.enqueued.items())),
        completed=dict(sorted(coord.completed.items())),
        rejected=dict(sorted(coord.rejected.items())),
        closed_retries=closed.retries,
        failovers=coord.failovers,
        outstanding=coord.outstanding,
        max_queue_depth=coord.max_depth,
        queue_bound=ctrl.queue_bound(),
        migration_bytes=io.total_moved("migration"),
        served_bytes=coord.served_bytes,
        slo_p99=slo_p99, slo_met=slo_met,
        violations=violations, checkers=checkers,
        events_seen=events_seen,
    )


def _fmt_s(v: Optional[float]) -> str:
    return "n/a" if v is None else f"{v:.3f}s"


def render_serve_report(result: ServeResult) -> str:
    """Human-readable serve report (the ``repro serve`` output)."""
    lines = [
        "# serve report",
        "",
        f"- controller: {result.controller} "
        f"(queue bound {result.queue_bound})",
        f"- cluster: n={result.n} r={result.replicas}, "
        f"{result.off_count} off at t={result.resize_at:.0f}s, "
        f"back at t={result.resize_back_at:.0f}s, "
        f"duration {result.duration:.0f}s (seed {result.seed})",
        f"- served: {result.served_bytes / MB:.0f} MB foreground, "
        f"{result.migration_bytes / MB:.0f} MB migration",
        "",
        "## client-perceived latency",
        "",
        "| population | completed | p50 | p99 | p999 | max |",
        "|---|---|---|---|---|---|",
    ]
    for pop, stats in result.latency.items():
        lines.append(
            f"| {pop} | {stats['count']} | {_fmt_s(stats['p50'])} "
            f"| {_fmt_s(stats['p99'])} | {_fmt_s(stats['p999'])} "
            f"| {_fmt_s(stats['max'])} |")
    rejected = sum(result.rejected.values())
    by_pop = ", ".join(
        f"{p}={c}" for p, c in result.rejected.items()) or "none"
    lines += [
        "",
        "## flow control",
        "",
        f"- max queue depth: {result.max_queue_depth} "
        f"(bound {result.queue_bound}) — "
        + ("bounded" if result.bounded else "**EXCEEDED**"),
        f"- rejected: {rejected} ({by_pop})",
        f"- closed-loop retries: {result.closed_retries}",
        f"- failovers on resize: {result.failovers}",
        f"- outstanding at cutoff: {result.outstanding}",
        "",
        "## invariants",
        "",
    ]
    if result.checkers:
        if result.violations:
            lines.append(f"{len(result.violations)} violation(s) across "
                         f"{result.checkers} checkers:")
            lines += [f"- {v}" for v in result.violations]
        else:
            lines.append(f"all {result.checkers} checkers hold over "
                         f"{result.events_seen} events.")
    else:
        lines.append("checkers not attached (check=False).")
    if result.slo_met is None:
        slo = "n/a (no completions)"
    elif result.slo_met:
        slo = f"met (p99 <= {result.slo_p99:.3f}s)"
    else:
        slo = f"MISSED (p99 > {result.slo_p99:.3f}s)"
    verdict = "OK" if result.ok else "DEGRADED"
    lines += [
        "",
        "## outcome",
        "",
        f"- SLO: {slo}",
        f"- verdict: **{verdict}**",
    ]
    return "\n".join(lines)
