"""Per-server admission control and queue draining on the fluid IO model.

Each storage server fronts a FIFO queue of client requests.  The
coordinator keeps one persistent open-ended :class:`FluidFlow` per
queue (``serve:<rank>``, coefficient 1.0 on that server's disk) whose
``rate_cap`` is set every tick to exactly the rate that would drain
the start-of-tick backlog — so the fair-share solver arbitrates
between foreground serving and background migration on equal terms,
and a resize's byte-moving flows directly slow the queues they share
disks with.

Tick protocol (driven by :func:`repro.serving.harness.run_serve`):

1. :meth:`AdmissionCoordinator.begin_tick` — set each serve flow's
   demand from the current backlog.  Mutating ``rate_cap`` per tick
   deliberately invalidates the allocation cache's demand check; the
   cache only re-engages across genuinely idle stretches.
2. The simulator runs the tick's events (arrivals, resizes).
3. ``io.step(now)`` solves the allocation.
4. :meth:`AdmissionCoordinator.end_tick` — drain each queue FIFO by
   the achieved bytes and fire completions, possibly held back by the
   flow controller's backpressure delay.

Requests arriving *during* a tick never drain in that same tick: the
budget computed in step 1 covers at most the backlog that existed
before they arrived, and FIFO order spends it on older requests first.

Event family (all gated on ``bus.active``):

``serve.enqueue``   rid, server, nbytes, pop, depth
``serve.reject``    rid, server, depth, pop
``serve.complete``  rid, server, pop, latency, delay
``serve.queue``     server, depth, bound        (per active queue, per tick)
``serve.failover``  server, moved               (queue evacuated on resize)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.obs.runtime import OBS
from repro.simulation.engine import Simulator
from repro.simulation.flows import FluidFlow
from repro.simulation.iomodel import IOModel

from repro.serving.flowcontrol import FlowController

__all__ = ["AdmissionCoordinator", "Request"]

#: Flow-name prefix for per-server serve streams.
SERVE_FLOW_PREFIX = "serve:"

#: A request is complete when its remainder drops below this (float
#: drains leave 1e-12-scale residues).
_DRAIN_EPS = 1e-6


@dataclass
class Request:
    """One client request, as the coordinator sees it.

    ``nbytes`` is the *disk* cost of the request — the harness charges
    a write its replication amplification up front, so a 1 MiB write
    with r=2 queues as 2 MiB of disk work on its primary.  That is a
    deliberate simplification (replica writes really land on several
    disks); it keeps each request on one queue while conserving total
    disk bytes.
    """

    rid: int
    pop: str                      # population name ("closed", "open")
    oid: int
    is_write: bool
    server: int
    nbytes: float
    t_enqueue: float
    on_complete: Optional[Callable[["Request", float], None]] = None
    on_reject: Optional[Callable[["Request"], None]] = None
    #: Bytes still to serve; initialised from ``nbytes``.
    remaining: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError("nbytes must be > 0")
        self.remaining = float(self.nbytes)


class AdmissionCoordinator:
    """Bounded per-server request queues + flow-controller policy."""

    def __init__(self, sim: Simulator, io: IOModel,
                 controller: FlowController, dt: float) -> None:
        if dt <= 0:
            raise ValueError("dt must be > 0")
        self.sim = sim
        self.io = io
        self.controller = controller
        self.dt = dt
        self.queues: Dict[int, Deque[Request]] = {}
        self._flows: Dict[int, FluidFlow] = {}
        #: Set by the harness each tick: is migration/recovery active?
        self.background_active = False
        # -- accounting (per population name) --------------------------
        self.enqueued: Dict[str, int] = {}
        self.completed: Dict[str, int] = {}
        self.rejected: Dict[str, int] = {}
        self.latencies: Dict[str, List[float]] = {}
        self.failovers = 0
        self.max_depth = 0
        self.served_bytes = 0.0

    # ------------------------------------------------------------------
    def enqueue(self, req: Request) -> bool:
        """Admit *req* to its server's queue, or reject it.

        On rejection the request's ``on_reject`` callback (if any)
        fires synchronously — closed-loop clients use it to schedule a
        deterministic retry."""
        q = self.queues.setdefault(req.server, deque())
        depth = len(q)
        bus = OBS.bus
        if not self.controller.admit(req.server, depth):
            self.rejected[req.pop] = self.rejected.get(req.pop, 0) + 1
            OBS.metrics.inc("serve.rejected")
            if bus.active:
                bus.emit("serve.reject", rid=req.rid, server=req.server,
                         depth=depth, pop=req.pop)
            if req.on_reject is not None:
                req.on_reject(req)
            return False
        q.append(req)
        self._ensure_flow(req.server)
        depth += 1
        if depth > self.max_depth:
            self.max_depth = depth
        self.enqueued[req.pop] = self.enqueued.get(req.pop, 0) + 1
        OBS.metrics.inc("serve.enqueued")
        if bus.active:
            bus.emit("serve.enqueue", rid=req.rid, server=req.server,
                     nbytes=req.nbytes, pop=req.pop, depth=depth)
        return True

    def _ensure_flow(self, rank: int) -> FluidFlow:
        flow = self._flows.get(rank)
        if flow is None:
            # Open-ended (total_bytes=None) so it never self-finishes;
            # empty `ranks` so membership churn cannot interrupt it —
            # the failover path retires it explicitly instead.
            flow = FluidFlow(
                name=f"{SERVE_FLOW_PREFIX}{rank}",
                coefficients={rank: 1.0},
                total_bytes=None,
                rate_cap=0.0,
            )
            self._flows[rank] = self.io.flows.add(flow)
        return flow

    # ------------------------------------------------------------------
    def begin_tick(self) -> None:
        """Point each serve flow's demand at its start-of-tick backlog."""
        dt = self.dt
        for rank, q in self.queues.items():
            backlog = sum(r.remaining for r in q)
            self._ensure_flow(rank).rate_cap = backlog / dt

    def end_tick(self, now: float, achieved: Dict[str, float]) -> None:
        """Drain queues FIFO by the achieved allocation; complete (and
        possibly delay) finished requests; emit depth samples."""
        bus = OBS.bus
        bound = self.controller.queue_bound()
        for rank in sorted(self.queues):
            q = self.queues[rank]
            budget = achieved.get(f"{SERVE_FLOW_PREFIX}{rank}", 0.0) * self.dt
            while q and budget > _DRAIN_EPS:
                head = q[0]
                take = min(head.remaining, budget)
                head.remaining -= take
                budget -= take
                if head.remaining <= _DRAIN_EPS:
                    q.popleft()
                    self._complete(head, rank, now)
            if bus.active:
                bus.emit("serve.queue", server=rank, depth=len(q),
                         bound=bound)

    def _complete(self, req: Request, rank: int, now: float) -> None:
        delay = self.controller.completion_delay(
            rank, len(self.queues[rank]), self.background_active)
        done_t = now + delay
        latency = done_t - req.t_enqueue
        self.latencies.setdefault(req.pop, []).append(latency)
        self.completed[req.pop] = self.completed.get(req.pop, 0) + 1
        self.served_bytes += req.nbytes
        OBS.metrics.inc("serve.completed")
        bus = OBS.bus
        if bus.active:
            bus.emit("serve.complete", rid=req.rid, server=rank,
                     pop=req.pop, latency=latency, delay=delay)
        if req.on_complete is not None:
            # Always via the simulator, even at zero delay: completions
            # then interleave with arrivals in the documented
            # (time, seq) order, not in queue-drain order.
            self.sim.schedule_at(done_t, req.on_complete, req, done_t)

    # ------------------------------------------------------------------
    def failover(self, inactive: List[int],
                 relocate: Callable[[Request], int]) -> int:
        """Evacuate queues whose server just left the ring.

        Each stranded request is re-pointed by *relocate* and pushed
        back through :meth:`enqueue` — admission applies, so a
        controller's bound holds even under failover pressure, and a
        rejected failover fires the request's ``on_reject`` like any
        other rejection.  Latency keeps the original enqueue time: the
        client has been waiting the whole time.  Returns how many
        requests moved."""
        moved = 0
        bus = OBS.bus
        for rank in sorted(inactive):
            q = self.queues.pop(rank, None)
            flow = self._flows.pop(rank, None)
            if flow is not None:
                self.io.flows.remove(flow)
            if not q:
                continue
            if bus.active:
                bus.emit("serve.failover", server=rank, moved=len(q))
            for req in q:
                req.server = relocate(req)
                # Re-admission counts it again; undo the double-count.
                self.enqueued[req.pop] = self.enqueued.get(req.pop, 1) - 1
                self.enqueue(req)
                moved += 1
            self.failovers += len(q)
        return moved

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Retire the persistent serve streams (each emits
        ``flow.cancel``) so flow accounting closes out cleanly at the
        end of a run.  Requests still queued stay admitted-but-
        unfinished — surfaced as :attr:`outstanding`, never silently
        completed."""
        for rank in sorted(self._flows):
            self.io.flows.remove(self._flows[rank])
        self._flows.clear()

    @property
    def outstanding(self) -> int:
        """Requests admitted but not yet completed."""
        return sum(len(q) for q in self.queues.values())
