"""Client populations driving the admission coordinator.

Two canonical load shapes from the queueing literature:

- **Closed-loop** — N clients, each with at most one outstanding
  request, re-issuing after a think time.  Offered load *adapts* to
  service speed, which is exactly the behaviour completion-delay
  backpressure exploits.
- **Open-loop** — arrivals at rate ``users * per_user_rate``
  requests/s regardless of how the cluster is doing.  This is how a
  population of millions of users (each issuing rarely) looks to the
  front door; it does not adapt, so bounding queues under it requires
  admission control, not just backpressure.

All "randomness" (think-time jitter, interarrival gaps, retry
backoff) derives from FNV-1a hashes of ``(seed, population, ordinal)``
— no PRNG state, so a same-seed run replays byte-identically no
matter how completions and arrivals interleave.

Populations do not fabricate requests themselves; the harness passes
a ``factory(pop, rid, key) -> Request`` that owns placement (which
oid, read or write, which server, what disk cost).  Populations own
only pacing: when to issue, when to retry, when to think.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Optional

from repro.hashring.hashing import hash64
from repro.simulation.engine import Simulator

from repro.serving.coordinator import AdmissionCoordinator, Request

__all__ = ["ClosedLoopPopulation", "OpenLoopPopulation"]

#: ``factory(pop, rid, key)`` builds the request; *key* is the
#: deterministic hash namespace for this issue.
RequestFactory = Callable[[str, int, str], Request]


def _unit(key: str) -> float:
    """Deterministic uniform in (0, 1) — the +0.5 offset keeps it off
    both endpoints so it is safe inside ``log``."""
    return (hash64(key) + 0.5) / 2.0 ** 64


class ClosedLoopPopulation:
    """N think-time clients, one outstanding request each.

    A rejected request is retried (as a fresh request — new ordinal,
    new key) after a deterministically jittered backoff; a completed
    request triggers the next issue one jittered think time after the
    completion the *client saw*, i.e. including any backpressure
    delay.
    """

    def __init__(self, sim: Simulator, coordinator: AdmissionCoordinator,
                 factory: RequestFactory, *, clients: int,
                 think_time: float, seed: int,
                 retry_delay: float = 0.5, name: str = "closed") -> None:
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if think_time <= 0:
            raise ValueError("think_time must be > 0")
        if retry_delay <= 0:
            raise ValueError("retry_delay must be > 0")
        self.sim = sim
        self.coordinator = coordinator
        self.factory = factory
        self.clients = clients
        self.think_time = think_time
        self.seed = seed
        self.retry_delay = retry_delay
        self.name = name
        self.retries = 0
        self._issues = [0] * clients
        self._rid = itertools.count()

    def start(self) -> None:
        """Stagger first issues over one think time so thousands of
        clients do not arrive as a single same-instant spike."""
        for c in range(self.clients):
            first = self.think_time * _unit(
                f"{self.seed}:{self.name}:first:{c}")
            self.sim.schedule_at(self.sim.now + first, self._issue, c)

    # ------------------------------------------------------------------
    def _issue(self, c: int) -> None:
        n = self._issues[c]
        self._issues[c] += 1
        key = f"{self.seed}:{self.name}:{c}:{n}"
        req = self.factory(self.name, next(self._rid), key)
        wrapped = req.on_complete

        def done(r: Request, t: float, _c: int = c,
                 _orig: Optional[Callable] = wrapped) -> None:
            if _orig is not None:
                _orig(r, t)
            self._think(_c)

        def rejected(r: Request, _c: int = c, _key: str = key) -> None:
            self.retries += 1
            backoff = self.retry_delay * (0.5 + _unit(_key + ":retry"))
            self.sim.schedule_at(self.sim.now + backoff, self._issue, _c)

        req.on_complete = done
        req.on_reject = rejected
        self.coordinator.enqueue(req)

    def _think(self, c: int) -> None:
        n = self._issues[c]
        think = self.think_time * (
            0.5 + _unit(f"{self.seed}:{self.name}:think:{c}:{n}"))
        self.sim.schedule_at(self.sim.now + think, self._issue, c)


class OpenLoopPopulation:
    """Arrival-rate load: ``users * per_user_rate`` requests/s.

    Interarrival gaps are exponential (memoryless, the standard
    open-loop idealisation) with the uniform drawn from the hash
    stream.  Rejected arrivals are simply shed — an open-loop user
    does not retry in a tight loop, they show up again later as a new
    arrival.  The chain stops scheduling once ``until`` is reached.
    """

    def __init__(self, sim: Simulator, coordinator: AdmissionCoordinator,
                 factory: RequestFactory, *, users: int,
                 per_user_rate: float, seed: int,
                 until: Optional[float] = None,
                 name: str = "open") -> None:
        if users < 1:
            raise ValueError("users must be >= 1")
        if per_user_rate <= 0:
            raise ValueError("per_user_rate must be > 0")
        self.sim = sim
        self.coordinator = coordinator
        self.factory = factory
        self.users = users
        self.per_user_rate = per_user_rate
        self.rate = users * per_user_rate
        self.seed = seed
        self.until = until
        self.name = name
        self.arrivals = 0

    def start(self) -> None:
        self.sim.schedule_at(self.sim.now + self._gap(0), self._arrive, 0)

    def _gap(self, n: int) -> float:
        u = _unit(f"{self.seed}:{self.name}:gap:{n}")
        return -math.log(u) / self.rate

    def _arrive(self, n: int) -> None:
        if self.until is not None and self.sim.now >= self.until:
            return
        self.arrivals += 1
        key = f"{self.seed}:{self.name}:{n}"
        self.coordinator.enqueue(self.factory(self.name, n, key))
        self.sim.schedule_at(self.sim.now + self._gap(n + 1),
                             self._arrive, n + 1)
