"""Front-door serving layer: client populations, admission control,
and flow control during elastic resizes.

The rest of the repo answers "how fast does the data move?"; this
package answers the question the paper's users actually feel: *what
latency does a client see while the cluster is resizing?*  It layers
three pieces on the existing substrate:

- :mod:`repro.serving.clients` — closed-loop (think-time) and
  open-loop (arrival-rate) populations; an open-loop population
  models millions of users via ``users * per_user_rate`` scaling.
- :mod:`repro.serving.coordinator` — per-server bounded FIFO queues
  whose drain rate comes from the fluid IO model, so foreground
  requests and reintegration migration compete for the same disks.
- :mod:`repro.serving.flowcontrol` — pluggable admission/backpressure
  policies (unthrottled, fixed concurrency, adaptive queue-length).

:func:`repro.serving.harness.run_serve` ties them together: replay a
resize under load and report client-perceived p50/p99/p999.
"""

from repro.serving.clients import ClosedLoopPopulation, OpenLoopPopulation
from repro.serving.coordinator import AdmissionCoordinator, Request
from repro.serving.flowcontrol import (
    AdaptiveQueueController,
    FixedConcurrencyController,
    FlowController,
    UnthrottledController,
    make_controller,
)
from repro.serving.harness import ServeResult, render_serve_report, run_serve

__all__ = [
    "AdaptiveQueueController",
    "AdmissionCoordinator",
    "ClosedLoopPopulation",
    "FixedConcurrencyController",
    "FlowController",
    "OpenLoopPopulation",
    "Request",
    "ServeResult",
    "UnthrottledController",
    "make_controller",
    "render_serve_report",
    "run_serve",
]
