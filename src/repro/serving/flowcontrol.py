"""Pluggable flow control for the front-door serving layer.

A :class:`FlowController` makes two decisions per server queue:

- **admission** — may a new request join at the current depth?
- **backpressure** — how long is the completion *held back* from the
  client, as a function of depth and whether background work
  (migration / reintegration / recovery) is active?

Holding back completions is the Scylla-style trick: closed-loop
clients issue their next request only after the previous one
completes, so delaying completions in proportion to queue depth slows
exactly the clients feeding an overloaded server — no global
coordination, no dropped work.  Open-loop arrivals do not adapt, so
every controller that promises a bound also needs an admission
backstop; the unthrottled controller deliberately has neither, which
is what the ``serve-queue-bounded`` invariant checker flushes out.

Controllers are pure policy: no simulator, no IO model, no state that
survives a call.  That keeps a same-seed run a pure function of the
controller's parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Protocol, runtime_checkable

__all__ = [
    "AdaptiveQueueController",
    "FixedConcurrencyController",
    "FlowController",
    "UnthrottledController",
    "make_controller",
]


@runtime_checkable
class FlowController(Protocol):
    """The policy surface the admission coordinator consumes."""

    #: Short policy name, surfaced in reports and event payloads.
    name: str

    def queue_bound(self) -> int:
        """The per-server depth this policy promises to keep.  The
        ``serve-queue-bounded`` checker compares every observed depth
        against this — a controller that declares a bound it does not
        enforce goes red under overload."""
        ...

    def admit(self, server: Hashable, depth: int) -> bool:
        """May a request join *server*'s queue at *depth*?"""
        ...

    def completion_delay(self, server: Hashable, depth: int,
                         background_active: bool) -> float:
        """Seconds to hold a completion back from the client, given
        the post-drain *depth* and whether background byte-moving work
        is active."""
        ...


@dataclass(frozen=True)
class UnthrottledController:
    """No admission control, no backpressure — the baseline.

    It still *declares* a bound (``declared_bound``) so the invariant
    checker has something to measure it against; under a load the
    cluster cannot absorb, queues blow straight through it and the
    checker goes red.  That asymmetry — same declared contract,
    no enforcement — is the whole point of keeping this policy around.
    """

    declared_bound: int = 64

    name: str = "unthrottled"

    def queue_bound(self) -> int:
        return self.declared_bound

    def admit(self, server: Hashable, depth: int) -> bool:
        return True

    def completion_delay(self, server: Hashable, depth: int,
                         background_active: bool) -> float:
        return 0.0


@dataclass(frozen=True)
class FixedConcurrencyController:
    """Classic fixed concurrency limit: admit while ``depth < limit``,
    reject otherwise, never delay completions.

    Enforces its bound exactly, but bluntly — during a resize it sheds
    closed-loop and open-loop traffic alike instead of slowing the
    clients that would happily back off.
    """

    limit: int = 64

    name: str = "fixed"

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ValueError("limit must be >= 1")

    def queue_bound(self) -> int:
        return self.limit

    def admit(self, server: Hashable, depth: int) -> bool:
        return depth < self.limit

    def completion_delay(self, server: Hashable, depth: int,
                         background_active: bool) -> float:
        return 0.0


@dataclass(frozen=True)
class AdaptiveQueueController:
    """Queue-length-driven backpressure with an admission backstop.

    Below ``target`` depth the controller is invisible.  Above it,
    completions are held back by ``gain * (depth - target) / target``
    seconds — scaled up by ``background_factor`` while migration or
    recovery is eating disk bandwidth, and capped at ``max_delay`` so
    backpressure never costs more latency than the overload it
    prevents — so closed-loop clients naturally stretch their issue
    interval instead of piling on.  The hard ``bound`` only catches
    what backpressure cannot reach (open-loop arrivals), so under
    mixed load it sheds less closed-loop work than a fixed
    concurrency limit at the same bound.
    """

    bound: int = 64
    target: int = 8
    gain: float = 0.1
    background_factor: float = 2.0
    max_delay: float = 1.0

    name: str = "adaptive"

    def __post_init__(self) -> None:
        if self.bound < 1:
            raise ValueError("bound must be >= 1")
        if not 1 <= self.target <= self.bound:
            raise ValueError("target must be in [1, bound]")
        if self.gain < 0:
            raise ValueError("gain must be >= 0")
        if self.background_factor < 1:
            raise ValueError("background_factor must be >= 1")
        if self.max_delay <= 0:
            raise ValueError("max_delay must be > 0")

    def queue_bound(self) -> int:
        return self.bound

    def admit(self, server: Hashable, depth: int) -> bool:
        return depth < self.bound

    def completion_delay(self, server: Hashable, depth: int,
                         background_active: bool) -> float:
        if depth <= self.target:
            return 0.0
        delay = self.gain * (depth - self.target) / self.target
        if background_active:
            delay *= self.background_factor
        return min(delay, self.max_delay)


_CONTROLLERS: Dict[str, type] = {
    "unthrottled": UnthrottledController,
    "fixed": FixedConcurrencyController,
    "adaptive": AdaptiveQueueController,
}


def make_controller(kind: str, **kwargs: object) -> FlowController:
    """Build a controller by policy name (the CLI/bench entry point).

    >>> make_controller("fixed", limit=8).queue_bound()
    8
    >>> make_controller("bogus")
    Traceback (most recent call last):
        ...
    ValueError: unknown flow controller 'bogus' (choose from: adaptive, fixed, unthrottled)
    """
    cls = _CONTROLLERS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown flow controller {kind!r} "
            f"(choose from: {', '.join(sorted(_CONTROLLERS))})")
    return cls(**kwargs)
