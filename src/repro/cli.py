"""Command-line interface: run any paper experiment from the shell.

::

    python -m repro info --n 10 --replicas 2
    python -m repro layout --n 10 --B 10000
    python -m repro agility
    python -m repro three-phase --mode selective --scale 0.5
    python -m repro chaos --seed 7 --scale 0.25
    python -m repro fig5
    python -m repro trace --which CC-a
    python -m repro sweep --kind chaos --seeds 0,1,2,3 --workers 4 --out sweep-out
    python -m repro stats run.jsonl --kind migration. --top 5
    python -m repro check run.jsonl
    python -m repro report run.jsonl --since 60 --until 120
    python -m repro timeline run.jsonl --bin 10 \\
        --json analytics.json --html dashboard.html
    python -m repro chaos --seed 7 --profile-out prof.json
    python -m repro profile prof.json --top 10 --collapsed prof.folded
    python -m repro compare run-a/ run-b/ --threshold 10

Each subcommand renders the same report the corresponding benchmark
emits; heavy runs expose their scale/size knobs so a laptop shell can
finish in seconds.

Every experiment subcommand also takes the observability flags:

``--trace-out PATH``
    Stream the run's structured trace events (engine ticks, flow
    start/finish, migrations, power transitions, ...) to *PATH* as
    JSON Lines.  Inspect afterwards with ``python -m repro stats``.

``--stats``
    Enable the hot-path ``perf.*`` timers for the run and append the
    metrics-registry table to the report.

``--check``
    Attach the online invariant checkers
    (:mod:`repro.obs.invariants`) to the run's live event stream and
    exit 1 if any invariant is violated — CI's regression tripwire.

``--profile-out PATH``
    Attach the instrumentation profiler
    (:mod:`repro.obs.profile`) and write the hierarchical wall-clock +
    sim-time profile to *PATH* as JSON.  Inspect with ``python -m
    repro profile PATH``; the trace stays byte-identical (wall-clock
    data never enters the event stream).  On ``repro sweep`` the flag
    instead profiles every task and writes the sweep-level hotspot
    rollup to *PATH*.

Command functions build and *return* their report text; only
:func:`main` writes to stdout, so the library layer stays print-free
and the reports remain embeddable (tests, notebooks, benchmarks).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

import numpy as np

from repro.core.elastic import ElasticConsistentHash
from repro.core.layout import CapacityPlan, EqualWorkLayout
from repro.faults import FaultPlan, render_chaos_report, run_chaos
from repro.serving import render_serve_report, run_serve
from repro.kvstore.harness import render_kv_churn_report, run_kv_churn
from repro.experiments import (
    run_layout_versions,
    run_resize_agility,
    run_three_phase,
    run_trace_analysis,
)
from repro.metrics.report import (
    render_distribution,
    render_series,
    render_table,
)
from repro.obs import JSONLSink, OBS
from repro.obs.analytics import (
    ANALYTICS_KIND,
    AnalyticsError,
    analytics_from_trace,
    dump_analytics,
    load_analytics,
    render_timeline,
)
from repro.obs.compare import CompareError, compare_runs, render_compare
from repro.obs.dashboard import write_dashboard
from repro.obs.invariants import CheckerSink
from repro.obs.profile import (
    ProfileError,
    Profiler,
    collapsed_stacks,
    load_profile,
    profile_document,
    render_profile,
)
from repro.obs.report import (
    EmptyTraceError,
    render_check,
    render_run_report,
)
from repro.obs.stats import render_trace_stats
from repro.obs.trace import TraceParseError
from repro.runner import SweepRunner, TaskSpec, render_sweep_report

__all__ = ["main", "build_parser"]


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write the run's trace events to PATH as JSONL")
    p.add_argument("--stats", action="store_true",
                   help="collect perf timers and append the metrics table")
    p.add_argument("--check", action="store_true",
                   help="run the invariant checkers live against this "
                        "run's events; exit 1 on any violation")
    p.add_argument("--profile-out", metavar="PATH", default=None,
                   help="attach the instrumentation profiler and write "
                        "the wall-clock + sim-time profile to PATH as "
                        "JSON (inspect with 'repro profile PATH')")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Elastic Consistent Hashing (IPDPS 2017) — "
                    "reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="cluster configuration summary")
    p.add_argument("--n", type=int, default=10)
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--B", type=int, default=10_000)
    _add_obs_flags(p)

    p = sub.add_parser("layout", help="equal-work weights + capacity plan")
    p.add_argument("--n", type=int, default=10)
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--B", type=int, default=10_000)
    p.add_argument("--objects", type=int, default=20_000,
                   help="objects to place for the measured distribution")
    _add_obs_flags(p)

    p = sub.add_parser("agility", help="Figure 2: resize agility")
    p.add_argument("--objects", type=int, default=2_000)
    _add_obs_flags(p)

    p = sub.add_parser("three-phase",
                       help="Figures 3/7: the 3-phase workload")
    p.add_argument("--mode", default="selective",
                   choices=["none", "original", "full", "selective"])
    p.add_argument("--scale", type=float, default=0.5)
    _add_obs_flags(p)

    p = sub.add_parser("chaos",
                       help="replay the 3-phase workload under a "
                            "deterministic fault plan with live "
                            "invariant checking; exit 1 unless the "
                            "run ends healthy")
    p.add_argument("--seed", type=int, default=7,
                   help="fault-plan seed (same seed = byte-identical "
                        "run)")
    p.add_argument("--n", type=int, default=10)
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--off-count", type=int, default=4,
                   help="servers powered down after phase 1")
    p.add_argument("--plan", metavar="PLAN.json", default=None,
                   help="load the fault plan from JSON instead of "
                        "generating it from --seed")
    p.add_argument("--audit-every", type=float, default=10.0,
                   help="seconds between replication audits")
    _add_obs_flags(p)

    p = sub.add_parser("serve",
                       help="replay an elastic resize under open- and "
                            "closed-loop client load with admission "
                            "control; reports client-perceived "
                            "p50/p99/p999 and an SLO verdict; exit 1 "
                            "unless queues stay bounded and the SLO "
                            "holds")
    p.add_argument("--seed", type=int, default=7,
                   help="placement/arrival seed (same seed = "
                        "byte-identical run)")
    p.add_argument("--controller", default="adaptive",
                   choices=["unthrottled", "fixed", "adaptive"],
                   help="flow-control policy at the front door")
    p.add_argument("--n", type=int, default=10)
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument("--off-count", type=int, default=4,
                   help="servers powered down at --resize-at")
    p.add_argument("--clients", type=int, default=200,
                   help="closed-loop clients (one outstanding request "
                        "each)")
    p.add_argument("--users", type=int, default=4_000_000,
                   help="open-loop user population; offered rate is "
                        "users * per-user-rate requests/s")
    p.add_argument("--per-user-rate", type=float, default=5e-5,
                   help="per-user request rate in requests/s")
    p.add_argument("--write-ratio", type=float, default=0.3)
    p.add_argument("--duration", type=float, default=180.0)
    p.add_argument("--resize-at", type=float, default=60.0)
    p.add_argument("--resize-back-at", type=float, default=120.0)
    p.add_argument("--slo-p99", type=float, default=3.0,
                   help="p99 latency SLO in seconds (pooled over both "
                        "populations)")
    _add_obs_flags(p)

    p = sub.add_parser("kvchurn",
                       help="drive the replicated KV store through "
                            "membership churn under injected faults "
                            "with live consistency checking; exit 1 "
                            "unless the run ends healthy")
    p.add_argument("--seed", type=int, default=7,
                   help="fault-plan + workload seed (same seed = "
                        "byte-identical run)")
    p.add_argument("--nodes", type=int, default=5)
    p.add_argument("--replicas", type=int, default=3)
    p.add_argument("--clients", type=int, default=4,
                   help="seeded client sessions issuing ops each tick")
    p.add_argument("--keys", type=int, default=24,
                   help="keyspace size (split strings/counters/lists)")
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument("--churn-every", type=float, default=30.0,
                   help="seconds between propose/commit view changes")
    p.add_argument("--plan", metavar="PLAN.json", default=None,
                   help="load the fault plan from JSON instead of "
                        "generating it from --seed")
    p.add_argument("--audit-every", type=float, default=10.0,
                   help="seconds between consistency audits")
    _add_obs_flags(p)

    p = sub.add_parser("fig5", help="Figure 5: layout across versions")
    p.add_argument("--objects-v1", type=int, default=20_000)
    p.add_argument("--objects-v2", type=int, default=25_000)
    _add_obs_flags(p)

    p = sub.add_parser("trace", help="Figures 8/9 + Table II")
    p.add_argument("--which", default="CC-a", choices=["CC-a", "CC-b"])
    p.add_argument("--seed", type=int, default=None)
    _add_obs_flags(p)

    p = sub.add_parser("sweep",
                       help="fan independent seeded runs across a "
                            "process pool; the aggregate report is "
                            "byte-identical for any --workers count; "
                            "exit 1 on any unhealthy run")
    p.add_argument("--kind", default="chaos",
                   choices=["chaos", "trace", "three-phase"],
                   help="experiment kind run once per seed")
    p.add_argument("--seeds", default="0,1,2,3", metavar="S1,S2,...",
                   help="comma-separated seed list; one task per seed")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="process-pool size (default: cpu count)")
    p.add_argument("--out", metavar="DIR", default="sweep-out",
                   help="output directory: per-task run dirs plus "
                        "sweep.json / merged.jsonl / run_info.json")
    p.add_argument("--plan", metavar="PLAN.json", default=None,
                   help="fault plan applied to every chaos task "
                        "(instead of generating one per seed)")
    p.add_argument("--timeout", type=float, default=None, metavar="T",
                   help="per-task wall-clock budget in seconds; an "
                        "overrunning task is retried like a crash")
    p.add_argument("--n", type=int, default=10,
                   help="chaos: cluster size")
    p.add_argument("--replicas", type=int, default=2,
                   help="chaos: replication factor")
    p.add_argument("--scale", type=float, default=0.25,
                   help="chaos / three-phase: workload scale")
    p.add_argument("--off-count", type=int, default=4,
                   help="chaos: servers powered down after phase 1")
    p.add_argument("--which", default="CC-a", choices=["CC-a", "CC-b"],
                   help="trace: which synthetic trace to regenerate")
    p.add_argument("--mode", default="selective",
                   choices=["none", "original", "full", "selective"],
                   help="three-phase: re-integration mode")
    p.add_argument("--since", type=float, default=None, metavar="T",
                   help="aggregate: count per-task events in the "
                        "half-open window [T, --until)")
    p.add_argument("--until", type=float, default=None, metavar="T",
                   help="aggregate: count per-task events at "
                        "simulation time < T seconds (exclusive)")
    p.add_argument("--profile-out", metavar="PATH", default=None,
                   help="profile every task (per-task profile.json) "
                        "and write the sweep-level hotspot rollup, "
                        "aggregated by task id, to PATH")

    p = sub.add_parser("stats",
                       help="summarise a JSONL trace written by --trace-out")
    p.add_argument("trace_file", metavar="TRACE.jsonl",
                   help="trace file produced by --trace-out")
    p.add_argument("--kind", default=None,
                   help="only this event kind (trailing '.' = prefix match,"
                        " e.g. 'migration.')")
    p.add_argument("--since", type=float, default=None, metavar="T",
                   help="only events in the half-open window "
                        "[T, --until): simulation time >= T seconds")
    p.add_argument("--until", type=float, default=None, metavar="T",
                   help="only events at simulation time < T seconds "
                        "(exclusive upper bound)")
    p.add_argument("--top", type=int, default=None, metavar="N",
                   help="keep only the N kinds with the largest byte "
                        "totals, sorted by bytes descending")

    p = sub.add_parser("check",
                       help="run the invariant checkers over a JSONL "
                            "trace; exit 1 on any violation")
    p.add_argument("trace_file", metavar="TRACE.jsonl",
                   help="trace file produced by --trace-out")

    p = sub.add_parser("report",
                       help="render a markdown run report (timeline, "
                            "span durations, byte breakdown, invariants) "
                            "from a JSONL trace")
    p.add_argument("trace_file", metavar="TRACE.jsonl",
                   help="trace file produced by --trace-out")
    p.add_argument("--since", type=float, default=None, metavar="T",
                   help="presentation window [T, --until), half-open; "
                        "invariants always check the full stream")
    p.add_argument("--until", type=float, default=None, metavar="T",
                   help="presentation window upper bound (exclusive)")

    p = sub.add_parser("timeline",
                       help="build windowed time-series, flow-latency "
                            "percentiles and critical paths from a "
                            "JSONL trace (or re-render a saved "
                            "analytics.json); optionally emit the "
                            "analytics JSON document and a "
                            "self-contained HTML dashboard")
    p.add_argument("input", metavar="TRACE.jsonl|analytics.json",
                   help="a JSONL trace written by --trace-out, or a "
                        "previously saved repro.analytics JSON "
                        "document (re-rendered without rebuilding)")
    p.add_argument("--bin", type=float, default=10.0, metavar="S",
                   dest="bin_seconds",
                   help="time-series bin width in simulated seconds "
                        "(default 10); bins are half-open, anchored "
                        "at --since (or 0)")
    p.add_argument("--since", type=float, default=None, metavar="T",
                   help="analysis window [T, --until), half-open — "
                        "the same predicate as repro stats")
    p.add_argument("--until", type=float, default=None, metavar="T",
                   help="analysis window upper bound (exclusive)")
    p.add_argument("--json", metavar="PATH", default=None,
                   dest="json_out",
                   help="write the versioned repro.analytics JSON "
                        "document to PATH (canonical bytes: "
                        "same-seed runs produce identical files)")
    p.add_argument("--html", metavar="PATH", default=None,
                   dest="html_out",
                   help="write the dependency-free HTML dashboard "
                        "(inline SVG, no scripts) to PATH")
    p.add_argument("--check-only", action="store_true",
                   help="validate the input and print a one-line "
                        "summary instead of the full report; exit 0 "
                        "iff the document is structurally sound")

    p = sub.add_parser("profile",
                       help="render the hotspot report for a profile "
                            "written by --profile-out (top-N self-time "
                            "table, engine event dispatch rates)")
    p.add_argument("profile_file", metavar="PROFILE.json",
                   help="profile document written by --profile-out")
    p.add_argument("--top", type=int, default=15, metavar="N",
                   help="hotspot rows to show (default 15)")
    p.add_argument("--collapsed", metavar="PATH", default=None,
                   help="also write flamegraph collapsed stacks "
                        "('frame;frame N' lines, flamegraph.pl / "
                        "speedscope compatible) to PATH, or '-' to "
                        "print them instead of the report")

    p = sub.add_parser("compare",
                       help="diff two run directories or artifacts "
                            "(metrics, span distributions, profile "
                            "hotspots, bench JSON); exit 1 on any "
                            "wall-clock regression beyond threshold")
    p.add_argument("run_a", metavar="RUN_A",
                   help="baseline: run directory or artifact file")
    p.add_argument("run_b", metavar="RUN_B",
                   help="candidate: run directory or artifact file")
    p.add_argument("--threshold", type=float, default=25.0,
                   metavar="PCT",
                   help="relative wall-clock regression threshold in "
                        "percent (default 25)")
    p.add_argument("--min-seconds", type=float, default=1e-4,
                   metavar="S",
                   help="ignore profile hotspots where both sides "
                        "are below S seconds (default 1e-4); bench "
                        "medians always gate")
    p.add_argument("--strict", action="store_true",
                   help="treat sim-derived drift (metrics, span "
                        "durations) as a regression too — the "
                        "same-seed gate")

    return parser


def _cmd_info(args) -> str:
    ech = ElasticConsistentHash(n=args.n, replicas=args.replicas, B=args.B)
    return "\n".join([
        ech.describe(),
        f"primary ranks : 1..{ech.p}",
        f"minimum power : {ech.min_active}/{ech.n} servers "
        f"({100 * ech.min_active / ech.n:.0f}%)",
        f"ring vnodes   : {ech.ring.num_vnodes}",
    ])


def _cmd_layout(args) -> str:
    layout = EqualWorkLayout.create(args.n, args.replicas, args.B)
    ech = ElasticConsistentHash(n=args.n, replicas=args.replicas, B=args.B)
    counts = ech.blocks_per_rank(range(args.objects))
    plan = CapacityPlan.for_layout(layout)
    return "\n".join([
        render_table(
            ["rank", "role", "vnodes (weight)", f"blocks of {args.objects}"],
            [[r, "primary" if layout.is_primary(r) else "secondary",
              layout.weight_of(r), counts[r]] for r in layout.ranks],
            title="equal-work layout (§III-C)"),
        "",
        render_distribution(counts, width=40,
                            title="measured block distribution"),
        "",
        "capacity tiers (§III-D): "
        + ", ".join(f"rank {r}: {plan.capacity_of(r) / 1e12:.2f} TB"
                    for r in layout.ranks),
    ])


def _cmd_agility(args) -> str:
    result = run_resize_agility(objects=args.objects)
    grid = list(range(0, int(result.duration) + 1, 15))
    return "\n".join([
        render_series(
            grid,
            {"ideal": list(result.ideal.sample(grid)),
             "original CH": list(result.original_ch.sample(grid)),
             "elastic CH": list(result.elastic.sample(grid))},
            time_label="t(s)",
            title="Figure 2 — active servers vs time"),
        "",
        f"shrink lag: original {result.lag_seconds():.0f} "
        f"server-s, elastic {result.elastic_lag_seconds():.0f} server-s",
    ])


def _cmd_three_phase(args) -> str:
    r = run_three_phase(args.mode, scale=args.scale)
    p2 = r.phase_ends["phase2"]
    return "\n".join([
        f"mode={args.mode} scale={args.scale}",
        f"phase ends: { {k: round(v) for k, v in r.phase_ends.items()} }",
        f"peak throughput      : {max(r.throughput) / 1e6:.1f} MB/s",
        f"mean phase-3         : "
        f"{r.mean_throughput(p2, r.phase_ends['phase3']) / 1e6:.1f} MB/s",
        f"recovery after p2    : {r.recovery_time_after(p2):.1f} s",
        f"migrated             : {r.migrated_bytes / 1e9:.2f} GB",
        f"re-replicated        : {r.rereplicated_bytes / 1e9:.2f} GB",
    ])


def _cmd_chaos(args):
    # Returns (report, exit_code): 0 healthy, 1 degraded or violated.
    plan = None
    if args.plan:
        try:
            plan = FaultPlan.load(args.plan)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro chaos: bad --plan file: {exc}")
    try:
        result = run_chaos(seed=args.seed, n=args.n,
                           replicas=args.replicas, scale=args.scale,
                           off_count=args.off_count, plan=plan,
                           audit_every=args.audit_every)
    except ValueError as exc:
        raise SystemExit(f"repro chaos: {exc}")
    return render_chaos_report(result), (0 if result.ok else 1)


def _cmd_serve(args):
    # Returns (report, exit_code): 0 healthy, 1 unbounded queues,
    # violated invariants, or a missed SLO.
    try:
        result = run_serve(seed=args.seed, controller=args.controller,
                           n=args.n, replicas=args.replicas,
                           off_count=args.off_count,
                           clients=args.clients, users=args.users,
                           per_user_rate=args.per_user_rate,
                           write_ratio=args.write_ratio,
                           duration=args.duration,
                           resize_at=args.resize_at,
                           resize_back_at=args.resize_back_at,
                           slo_p99=args.slo_p99)
    except ValueError as exc:
        raise SystemExit(f"repro serve: {exc}")
    return render_serve_report(result), (0 if result.ok else 1)


def _cmd_kvchurn(args):
    # Returns (report, exit_code): 0 healthy, 1 degraded or violated.
    plan = None
    if args.plan:
        try:
            plan = FaultPlan.load(args.plan)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro kvchurn: bad --plan file: {exc}")
    try:
        result = run_kv_churn(seed=args.seed, nodes=args.nodes,
                              replicas=args.replicas,
                              clients=args.clients, keys=args.keys,
                              duration=args.duration,
                              churn_every=args.churn_every, plan=plan,
                              audit_every=args.audit_every)
    except ValueError as exc:
        raise SystemExit(f"repro kvchurn: {exc}")
    return render_kv_churn_report(result), (0 if result.ok else 1)


def _cmd_fig5(args) -> str:
    res = run_layout_versions(objects_v1=args.objects_v1,
                              objects_v2=args.objects_v2)
    parts: List[str] = []
    for label, dist in res.distributions.items():
        parts.append(render_distribution(dist, width=40,
                                         title=f"-- {label} --"))
        parts.append("")
    parts.append(f"re-integrated {res.reintegration_objects} objects "
                 f"({res.reintegration_bytes / 1e9:.2f} GB); "
                 f"v1 shape correlation {res.v1_shape_correlation:.4f}")
    return "\n".join(parts)


def _cmd_trace(args) -> str:
    exp = run_trace_analysis(args.which, seed=args.seed)
    series = exp.figure_series()
    minutes = [int(m) for m in exp.window_minutes()]
    rows = [["ideal", round(exp.analysis.ideal_machine_hours, 1), 1.0]]
    for name, res in exp.analysis.results.items():
        rows.append([name, round(res.machine_hours, 1),
                     round(res.relative_machine_hours, 3)])
    return "\n".join([
        render_series(
            minutes[::10],
            {k: list(np.asarray(v)[::10]) for k, v in series.items()},
            time_label="t(min)",
            title=f"{args.which}: active servers (250-minute window)"),
        "",
        render_table(["policy", "machine hours", "relative to ideal"],
                     rows, title="Table II row"),
    ])


def _parse_seeds(text: str) -> List[int]:
    try:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"repro sweep: bad --seeds {text!r} "
                         f"(expected comma-separated integers)")
    if not seeds:
        raise SystemExit("repro sweep: --seeds is empty")
    if len(set(seeds)) != len(seeds):
        raise SystemExit(f"repro sweep: duplicate seed in --seeds {text!r}")
    return seeds


def _cmd_sweep(args):
    # Returns (report, exit_code): 0 iff every task ran and is healthy.
    seeds = _parse_seeds(args.seeds)
    plan_json = None
    if args.plan:
        try:
            plan_json = FaultPlan.load(args.plan).to_json()
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro sweep: bad --plan file: {exc}")
    if args.kind == "chaos":
        config = {"n": args.n, "replicas": args.replicas,
                  "scale": args.scale, "off_count": args.off_count}
    elif args.kind == "trace":
        config = {"which": args.which}
    else:
        config = {"mode": args.mode, "scale": args.scale}
    try:
        specs = [TaskSpec(task_id=f"{args.kind}-s{seed:03d}",
                          kind=args.kind, seed=seed, config=config,
                          plan=plan_json)
                 for seed in seeds]
        runner = SweepRunner(
            workers=args.workers or os.cpu_count() or 1,
            task_timeout=args.timeout,
            since=args.since, until=args.until,
            profile=args.profile_out is not None)
        result = runner.run(specs, args.out)
    except ValueError as exc:
        raise SystemExit(f"repro sweep: {exc}")
    report = render_sweep_report(result)
    if args.profile_out is not None \
            and result.profile_rollup_path is not None:
        rollup = result.profile_rollup_path
        if os.path.abspath(args.profile_out) != os.path.abspath(
                str(rollup)):
            with open(rollup, encoding="utf-8") as src, \
                    open(args.profile_out, "w", encoding="utf-8") as dst:
                dst.write(src.read())
        report += f"\n- profile rollup: {args.profile_out}"
    return report, (0 if result.ok else 1)


def _cmd_stats(args) -> str:
    try:
        return render_trace_stats(args.trace_file, kind=args.kind,
                                  since=args.since, until=args.until,
                                  top=args.top)
    except TraceParseError:
        raise                      # main() reports these with exit 2
    except ValueError as exc:
        raise SystemExit(f"repro stats: {exc}")


def _cmd_check(args):
    # Returns (text, exit_code): 0 clean, 1 on violations.
    return render_check(args.trace_file)


def _cmd_report(args) -> str:
    try:
        return render_run_report(args.trace_file, since=args.since,
                                 until=args.until)
    except (TraceParseError, EmptyTraceError):
        raise                      # main() reports these with exit 2
    except ValueError as exc:
        raise SystemExit(f"repro report: {exc}")


def _cmd_timeline(args) -> str:
    """``repro timeline``: build (from a trace) or reload (from a
    saved document) the analytics, then render/emit as asked."""
    if args.input.endswith(".json"):
        doc = load_analytics(args.input)
        built = False
    else:
        try:
            doc = analytics_from_trace(args.input,
                                       bin_seconds=args.bin_seconds,
                                       since=args.since,
                                       until=args.until)
        except (TraceParseError, EmptyTraceError, AnalyticsError):
            raise                  # main() reports these with exit 2
        except ValueError as exc:
            raise SystemExit(f"repro timeline: {exc}")
        built = True

    extras: List[str] = []
    if args.json_out is not None:
        dump_analytics(doc, args.json_out)
        extras.append(f"analytics written to {args.json_out}")
    if args.html_out is not None:
        if doc.get("kind") != ANALYTICS_KIND:
            raise SystemExit(
                "repro timeline: --html needs a single-run analytics "
                "document (rollups have no dashboard yet)")
        write_dashboard(doc, args.html_out)
        extras.append(f"dashboard written to {args.html_out}")

    if args.check_only:
        verb = "built" if built else "validated"
        report = (f"{args.input}: {verb} {doc['kind']} v"
                  f"{doc['version']} — {doc['bins']} bin(s), OK")
    else:
        report = render_timeline(doc)
    if extras:
        report += "\n" + "\n".join(f"- {line}" for line in extras)
    return report


def _cmd_profile(args):
    doc = load_profile(args.profile_file)
    try:
        report = render_profile(doc, top=args.top)
    except ValueError as exc:
        raise SystemExit(f"repro profile: {exc}")
    if args.collapsed is not None:
        lines = collapsed_stacks(doc["root"])
        if args.collapsed == "-":
            return "\n".join(lines)
        with open(args.collapsed, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        report += (f"\n\ncollapsed stacks ({len(lines)} frames) "
                   f"written to {args.collapsed}")
    return report


def _cmd_compare(args):
    # Returns (markdown, exit_code): 0 OK, 1 regression(s).
    if args.threshold < 0:
        raise SystemExit("repro compare: --threshold must be >= 0")
    result = compare_runs(args.run_a, args.run_b,
                          threshold=args.threshold / 100.0,
                          min_seconds=args.min_seconds,
                          strict=args.strict)
    return render_compare(result), result.exit_code


_COMMANDS = {
    "info": _cmd_info,
    "layout": _cmd_layout,
    "agility": _cmd_agility,
    "three-phase": _cmd_three_phase,
    "chaos": _cmd_chaos,
    "serve": _cmd_serve,
    "kvchurn": _cmd_kvchurn,
    "fig5": _cmd_fig5,
    "trace": _cmd_trace,
    "sweep": _cmd_sweep,
    "stats": _cmd_stats,
    "check": _cmd_check,
    "report": _cmd_report,
    "timeline": _cmd_timeline,
    "profile": _cmd_profile,
    "compare": _cmd_compare,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    command = _COMMANDS[args.command]

    trace_out = getattr(args, "trace_out", None)
    stats = getattr(args, "stats", False)
    check = getattr(args, "check", False)
    # The sweep command handles --profile-out itself (the profiling
    # happens inside the worker processes; the flag names the rollup).
    profile_out = (getattr(args, "profile_out", None)
                   if args.command != "sweep" else None)

    sink = None
    if trace_out is not None:
        try:
            sink = JSONLSink(trace_out)
        except OSError as exc:
            print(f"repro: cannot open trace file: {exc}", file=sys.stderr)
            return 2
        OBS.bus.attach(sink)
    checker_sink = None
    if check:
        checker_sink = CheckerSink()
        OBS.bus.attach(checker_sink)
    if stats:
        OBS.hot = True
    profiler = None
    if profile_out is not None:
        profiler = Profiler()
        OBS.profiler = profiler
        profiler.push(f"cmd:{args.command}")
    code = 0
    try:
        result = command(args)
        if isinstance(result, tuple):
            report, code = result
        else:
            report = result
        if profiler is not None:
            OBS.profiler = None
            profiler.stop()
            doc = profile_document(profiler,
                                   command=args.command)
            with open(profile_out, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(doc, indent=2, sort_keys=True)
                         + "\n")
            report += f"\n\nprofile written to {profile_out}"
        if stats:
            report += "\n\n" + OBS.metrics.render(
                title=f"metrics — repro {args.command}")
        print(report)
        if checker_sink is not None:
            violations = checker_sink.finish()
            if violations:
                print(f"repro --check: {len(violations)} invariant "
                      f"violation(s):", file=sys.stderr)
                for v in violations[:50]:
                    print(v.describe(), file=sys.stderr)
                code = max(code, 1)
            else:
                print(f"repro --check: all invariants hold "
                      f"({checker_sink.suite.events_seen} events)",
                      file=sys.stderr)
    except (TraceParseError, EmptyTraceError, ProfileError,
            CompareError, AnalyticsError) as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 2
    finally:
        OBS.profiler = None
        if stats:
            OBS.hot = False
        if checker_sink is not None:
            OBS.bus.detach(checker_sink)
        if sink is not None:
            OBS.bus.detach(sink)
            sink.close()
    return code


if __name__ == "__main__":
    sys.exit(main())
