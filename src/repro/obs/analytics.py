"""Trace analytics: windowed time-series, latency percentiles and
critical paths — the engine behind ``repro timeline``.

A JSONL trace answers *point* questions (``repro stats``) and pass/fail
questions (``repro check``); this module answers the paper's *time*
questions — what did the client see **during** the resize, where did
the bytes go, and which span chain made the lifecycle slow:

* :func:`build_analytics` bins a trace by simulation time into
  deterministic series (client throughput, migration/reintegration/
  recovery bytes, per-server bytes-in, live-flow count, degraded-read
  counts, peak bandwidth utilisation), computes per-flow-class sojourn
  latency percentiles (exact nearest-rank p50/p99/p999, with
  interrupted flows attributed separately so the tail is honest), and
  extracts the critical path of every lifecycle span tree.
* :func:`merge_analytics` folds per-task documents (merged **by task
  id**, never arrival order — the ``sweep.json`` rule) into a rollup
  with per-bin min/median/max bands across seeds.
* :func:`render_timeline` renders either document as text;
  :mod:`repro.obs.dashboard` renders the single-run document as a
  self-contained HTML page.

Everything here is derived from simulation time only, so same-seed
runs produce byte-identical documents (`sha256`-tested).  Windows are
half-open ``[since, until)`` via :func:`repro.obs.stats.in_window` —
the same predicate as every other windowing surface.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.report import EmptyTraceError, SpanRecord, collect_spans
from repro.obs.stats import check_window, event_in_window, is_number
from repro.obs.trace import TraceEvent, iter_jsonl

__all__ = [
    "ANALYTICS_KIND",
    "ROLLUP_KIND",
    "ANALYTICS_VERSION",
    "AnalyticsError",
    "percentile",
    "build_analytics",
    "analytics_from_trace",
    "merge_analytics",
    "validate_analytics",
    "load_analytics",
    "dump_analytics",
    "render_timeline",
]

#: ``"kind"`` of a single-run analytics document.
ANALYTICS_KIND = "repro.analytics"
#: ``"kind"`` of a cross-sweep rollup document.
ROLLUP_KIND = "repro.analytics.rollup"
#: Document schema version (bump on incompatible change).
ANALYTICS_VERSION = 1

#: Span names that open a lifecycle worth a critical path of its own.
LIFECYCLE_SPAN_NAMES = (
    "chaos.run",
    "resize.cycle",
    "reintegration.full",
    "recovery.fail",
    "recovery.departure",
    "migration.addition",
)

#: Hard cap on bin count: a typo'd ``--bin 0.001`` over a week-long
#: trace should fail loudly, not allocate gigabytes of zeros.
MAX_BINS = 100_000

#: The per-bin scalar series every document carries, in render order.
#: Values are per-bin sums except ``live_flows`` (flows alive at the
#: bin's end) and ``max_utilization`` (per-bin peak, ``None`` when no
#: bandwidth solve fell in the bin).
SERIES_KEYS = (
    "client_throughput_bytes",
    "migration_bytes",
    "reintegration_bytes",
    "recovery_bytes",
    "live_flows",
    "degraded_reads",
    "unavailable_reads",
    "max_utilization",
)

#: Latency quantiles reported per flow class.
_QUANTILES = (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))


class AnalyticsError(ValueError):
    """An analytics document that cannot be built, parsed or merged
    (bad window, malformed JSON document, mismatched rollup inputs).
    CLI surfaces exit 2 on it, like any other corrupt input."""


# ----------------------------------------------------------------------
# percentiles
# ----------------------------------------------------------------------
def percentile(sorted_vals: Sequence[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending-sorted sequence.

    ``rank = ceil(q * N)`` (floored at 1) — no interpolation, so the
    result is always an observed value and bit-identical across
    platforms.  Raises :class:`ValueError` on an empty sequence or a
    quantile outside ``(0, 1]``.
    """
    if not sorted_vals:
        raise ValueError("percentile of empty sequence")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q!r}")
    rank = max(1, math.ceil(q * len(sorted_vals)))
    return sorted_vals[rank - 1]


def _round(v: float) -> float:
    """Canonical float rounding for document fields (deterministic,
    keeps JSON free of 17-digit float-noise tails)."""
    return round(float(v), 9)


def _num(v: object) -> Optional[float]:
    return float(v) if is_number(v) else None


# ----------------------------------------------------------------------
# time-series builder
# ----------------------------------------------------------------------
class _Bins:
    """Fixed-width bin accumulator anchored at *origin*.

    Bin *i* covers the half-open interval
    ``[origin + i*width, origin + (i+1)*width)`` — the same convention
    as the trace window, so bins partition time with no double counts.
    """

    def __init__(self, origin: float, width: float) -> None:
        self.origin = origin
        self.width = width
        self.count = 0

    def index(self, t: float) -> int:
        i = int(math.floor((t - self.origin) / self.width))
        i = max(0, i)
        if i >= self.count:
            self.count = i + 1
            if self.count > MAX_BINS:
                raise AnalyticsError(
                    f"time-series would need {self.count} bins "
                    f"(> {MAX_BINS}); raise --bin above {self.width:g} s")
        return i

    def pad(self, values: List, fill: object = 0) -> List:
        values.extend([fill] * (self.count - len(values)))
        return values


def _add(series: List[float], i: int, v: float) -> None:
    if i >= len(series):
        series.extend([0.0] * (i + 1 - len(series)))
    series[i] += v


def _set_max(series: List[Optional[float]], i: int, v: float) -> None:
    if i >= len(series):
        series.extend([None] * (i + 1 - len(series)))
    cur = series[i]
    series[i] = v if cur is None else max(cur, v)


def _build_series(events: Sequence[TraceEvent], bins: _Bins
                  ) -> Dict[str, object]:
    """One pass over the windowed events, in stream order (the trace is
    emitted in nondecreasing simulation time)."""
    byte_series: Dict[str, List[float]] = {
        "client_throughput_bytes": [],
        "migration_bytes": [],
        "reintegration_bytes": [],
        "recovery_bytes": [],
    }
    count_series: Dict[str, List[float]] = {
        "degraded_reads": [],
        "unavailable_reads": [],
    }
    max_util: List[Optional[float]] = []
    server_in: Dict[str, List[float]] = {}
    # live flows: (+1 at start, -1 at finish/cancel/interrupt) replayed
    # in stream order; per bin we record the count at the bin's end.
    live = 0
    live_at_bin: Dict[int, int] = {}

    for ev in events:
        kind = ev.get("kind")
        t = _num(ev.get("t"))
        if t is None:
            continue
        i = bins.index(t)
        if kind == "flow.start":
            live += 1
            live_at_bin[i] = live
        elif kind in ("flow.finish", "flow.cancel", "flow.interrupt"):
            live = max(0, live - 1)
            live_at_bin[i] = live
            if kind == "flow.finish" and ev.get("name") == "client":
                _add(byte_series["client_throughput_bytes"], i,
                     _num(ev.get("nbytes")) or 0.0)
        elif kind == "migration.move":
            nbytes = _num(ev.get("nbytes")) or 0.0
            _add(byte_series["migration_bytes"], i, nbytes)
            targets = ev.get("to") or ()
            if isinstance(targets, (list, tuple)) and targets:
                per = nbytes / len(targets)
                for rank in targets:
                    _add(server_in.setdefault(str(rank), []), i, per)
        elif kind == "reintegration.step":
            _add(byte_series["reintegration_bytes"], i,
                 _num(ev.get("nbytes")) or 0.0)
        elif kind == "recovery.rereplicate":
            nbytes = _num(ev.get("nbytes")) or 0.0
            _add(byte_series["recovery_bytes"], i, nbytes)
            _add(server_in.setdefault(str(ev.get("rank")), []), i, nbytes)
        elif kind == "migration.addition":
            _add(server_in.setdefault(str(ev.get("rank")), []), i,
                 _num(ev.get("nbytes")) or 0.0)
        elif kind == "read.degraded":
            _add(count_series["degraded_reads"], i, 1.0)
        elif kind == "read.unavailable":
            _add(count_series["unavailable_reads"], i, 1.0)
        elif kind == "bandwidth.solve":
            util = _num(ev.get("max_util"))
            if util is not None:
                _set_max(max_util, i, util)

    # live-flow series: carry the last-seen count forward through
    # bins with no flow transitions.
    live_series: List[float] = []
    current = 0
    for i in range(bins.count):
        if i in live_at_bin:
            current = live_at_bin[i]
        live_series.append(float(current))

    out: Dict[str, object] = {}
    for name, series in byte_series.items():
        out[name] = [_round(v) for v in bins.pad(series)]
    for name, series in count_series.items():
        out[name] = [int(v) for v in bins.pad(series)]
    out["live_flows"] = [int(v) for v in live_series]
    out["max_utilization"] = [None if v is None else _round(v)
                              for v in bins.pad(max_util, fill=None)]
    out["server_bytes_in"] = {
        rank: [_round(v) for v in bins.pad(series)]
        for rank, series in sorted(server_in.items())}
    return out


# ----------------------------------------------------------------------
# per-flow latency accounting
# ----------------------------------------------------------------------
def _flow_latency(events: Sequence[TraceEvent]) -> Dict[str, Dict]:
    """Sojourn accounting per flow class.

    A flow's life is ``flow.start`` → ``flow.finish`` (completed),
    ``flow.interrupt`` (preempted; bytes in flight are wasted) or
    ``flow.cancel`` (abandoned).  Start/end are joined on ``span_id``.
    Completed sojourns feed the headline percentiles; interrupted
    flows get their own tail block so a fault-heavy run cannot hide
    preemption pain inside an optimistic p99.
    """
    starts: Dict[object, Tuple[str, float]] = {}
    per_class: Dict[str, Dict[str, List]] = {}

    def bucket(name: str) -> Dict[str, List]:
        b = per_class.get(name)
        if b is None:
            b = {"completed": [], "interrupted": [], "cancelled": [],
                 "bytes_completed": [0.0], "bytes_wasted": [0.0]}
            per_class[name] = b
        return b

    for ev in events:
        kind = ev.get("kind")
        if kind == "flow.start":
            t = _num(ev.get("t"))
            if t is not None:
                starts[ev.get("span_id")] = (str(ev.get("name", "?")), t)
        elif kind in ("flow.finish", "flow.interrupt", "flow.cancel"):
            rec = starts.pop(ev.get("span_id"), None)
            if rec is None:
                continue   # end without a windowed start (truncated head)
            name, t0 = rec
            t1 = _num(ev.get("t"))
            if t1 is None:
                continue
            sojourn = max(0.0, t1 - t0)
            b = bucket(name)
            nbytes = _num(ev.get("nbytes")) or 0.0
            if kind == "flow.finish":
                b["completed"].append(sojourn)
                b["bytes_completed"][0] += nbytes
            elif kind == "flow.interrupt":
                b["interrupted"].append(sojourn)
                b["bytes_wasted"][0] += nbytes
            else:
                b["cancelled"].append(sojourn)

    out: Dict[str, Dict] = {}
    for name in sorted(per_class):
        b = per_class[name]
        done = sorted(b["completed"])
        cut = sorted(b["interrupted"])
        entry: Dict[str, object] = {
            "completed": len(done),
            "interrupted": len(cut),
            "cancelled": len(b["cancelled"]),
            "open": 0,   # patched below
            "bytes_completed": _round(b["bytes_completed"][0]),
            "bytes_wasted": _round(b["bytes_wasted"][0]),
        }
        if done:
            for label, q in _QUANTILES:
                entry[label] = _round(percentile(done, q))
            entry["mean"] = _round(sum(done) / len(done))
            entry["max"] = _round(done[-1])
        else:
            for label, _q in _QUANTILES:
                entry[label] = None
            entry["mean"] = None
            entry["max"] = None
        # Interrupted-flow tail attribution: the sojourns the headline
        # percentiles deliberately exclude, reported alongside them.
        if cut:
            entry["interrupted_tail"] = {
                "count": len(cut),
                "p50": _round(percentile(cut, 0.50)),
                "p99": _round(percentile(cut, 0.99)),
                "max": _round(cut[-1]),
            }
        else:
            entry["interrupted_tail"] = None
        out[name] = entry

    # Flows still open at the window edge: started, never ended.
    for span_id, (name, _t0) in starts.items():
        entry = out.get(name)
        if entry is None:
            out[name] = entry = {
                "completed": 0, "interrupted": 0, "cancelled": 0,
                "open": 0, "bytes_completed": 0.0, "bytes_wasted": 0.0,
                "p50": None, "p99": None, "p999": None,
                "mean": None, "max": None, "interrupted_tail": None}
        entry["open"] = int(entry.get("open", 0)) + 1
    return dict(sorted(out.items()))


def _serving_entry(latencies: List[float], enqueued: int,
                   rejected: int) -> Dict:
    """One population's client-perceived latency summary.  Percentile
    fields are an honest ``None`` when nothing completed — a trace of
    enqueues with no completions must not fabricate a latency."""
    done = sorted(latencies)
    entry: Dict[str, object] = {
        "enqueued": enqueued,
        "completed": len(done),
        "rejected": rejected,
    }
    if done:
        for label, q in _QUANTILES:
            entry[label] = _round(percentile(done, q))
        entry["mean"] = _round(sum(done) / len(done))
        entry["max"] = _round(done[-1])
    else:
        for label, _q in _QUANTILES:
            entry[label] = None
        entry["mean"] = None
        entry["max"] = None
    return entry


def _serving_latency(events: Sequence[TraceEvent]) -> Optional[Dict]:
    """Client-perceived latency per population from the ``serve.*``
    event family, or ``None`` when the trace has no serving layer.

    Unlike :func:`_flow_latency` there is no start/end join: a
    ``serve.complete`` carries its own ``latency`` field (which
    includes any flow-control backpressure delay — the number the
    client actually felt, not the number the queue drained in).
    """
    per_pop: Dict[str, Dict[str, object]] = {}
    seen = False

    def bucket(pop: str) -> Dict[str, object]:
        b = per_pop.get(pop)
        if b is None:
            b = {"lat": [], "enqueued": 0, "rejected": 0}
            per_pop[pop] = b
        return b

    for ev in events:
        kind = ev.get("kind")
        if not isinstance(kind, str) or not kind.startswith("serve."):
            continue
        seen = True
        pop = str(ev.get("pop", "?"))
        if kind == "serve.enqueue":
            bucket(pop)["enqueued"] += 1
        elif kind == "serve.reject":
            bucket(pop)["rejected"] += 1
        elif kind == "serve.complete":
            lat = _num(ev.get("latency"))
            if lat is not None:
                bucket(pop)["lat"].append(lat)
    if not seen:
        return None

    out: Dict[str, Dict] = {}
    pooled: List[float] = []
    enq = rej = 0
    for pop in sorted(per_pop):
        b = per_pop[pop]
        out[pop] = _serving_entry(b["lat"], b["enqueued"], b["rejected"])
        pooled.extend(b["lat"])
        enq += b["enqueued"]
        rej += b["rejected"]
    out["overall"] = _serving_entry(pooled, enq, rej)
    return out


# ----------------------------------------------------------------------
# critical paths
# ----------------------------------------------------------------------
def _critical_paths(spans: Sequence[SpanRecord]) -> List[Dict]:
    """For each closed lifecycle span, the longest-duration child chain.

    At every level the child with the largest duration is chosen (ties
    break on the smaller ``span_id`` — ids are assigned sequentially,
    so this is deterministic and favours the earlier span).  Each step
    reports its *contribution*: the span's duration minus its chosen
    child's — the time that level adds on top of the chain below it.
    """
    children: Dict[object, List[SpanRecord]] = {}
    for s in spans:
        if s.parent_id is not None:
            children.setdefault(s.parent_id, []).append(s)

    paths: List[Dict] = []
    roots = [s for s in spans
             if s.name in LIFECYCLE_SPAN_NAMES and not s.open
             and s.duration is not None]
    roots.sort(key=lambda s: (s.t_begin if s.t_begin is not None else 0.0,
                              _span_order(s.span_id)))
    for root in roots:
        path: List[Dict] = []
        node: Optional[SpanRecord] = root
        while node is not None:
            kids = [k for k in children.get(node.span_id, ())
                    if not k.open and k.duration is not None]
            kids.sort(key=lambda k: (-k.duration, _span_order(k.span_id)))
            chosen = kids[0] if kids else None
            dur = node.duration or 0.0
            contribution = dur - (chosen.duration if chosen else 0.0)
            path.append({
                "name": node.name,
                "span_id": node.span_id,
                "t_begin": (None if node.t_begin is None
                            else _round(node.t_begin)),
                "duration": _round(dur),
                "contribution": _round(max(0.0, contribution)),
            })
            node = chosen
        paths.append({
            "root": root.name,
            "span_id": root.span_id,
            "t_begin": (None if root.t_begin is None
                        else _round(root.t_begin)),
            "duration": _round(root.duration or 0.0),
            "depth": len(path),
            "path": path,
        })
    return paths


def _span_order(span_id: object) -> Tuple[int, float, str]:
    """Total order over span ids of any JSON type (numbers first)."""
    if is_number(span_id):
        return (0, float(span_id), "")   # type: ignore[arg-type]
    return (1, 0.0, str(span_id))


# ----------------------------------------------------------------------
# document builder
# ----------------------------------------------------------------------
def build_analytics(events: Sequence[TraceEvent],
                    bin_seconds: float = 10.0,
                    since: Optional[float] = None,
                    until: Optional[float] = None,
                    source: Optional[str] = None) -> Dict:
    """Build the ``repro.analytics`` document from in-memory events.

    The window is half-open ``[since, until)``; bins are anchored at
    *since* (or 0 when unbounded) so identical windows always produce
    identical bin edges.  Critical paths and flow latencies are
    computed over the *windowed* events — a flow ending outside the
    window is counted as still open, which is exactly what an observer
    restricted to that window would see.
    """
    check_window(since, until)
    if not is_number(bin_seconds) or bin_seconds <= 0:
        raise AnalyticsError(
            f"--bin must be a positive number of simulated seconds, "
            f"got {bin_seconds!r}")
    total = len(events)
    windowed = [e for e in events if event_in_window(e, since, until)]

    times = [t for t in (_num(e.get("t")) for e in windowed)
             if t is not None]
    t_min = min(times) if times else None
    t_max = max(times) if times else None

    origin = since if since is not None else 0.0
    bins = _Bins(origin, float(bin_seconds))
    series = _build_series(windowed, bins)
    latency = _flow_latency(windowed)
    paths = _critical_paths(collect_spans(windowed))
    serving = _serving_latency(windowed)

    doc = {
        "kind": ANALYTICS_KIND,
        "version": ANALYTICS_VERSION,
        "source": source,
        "window": {
            "since": since,
            "until": until,
            "bin_seconds": float(bin_seconds),
            "origin": float(origin),
        },
        "events": {
            "total": total,
            "in_window": len(windowed),
            "t_min": None if t_min is None else _round(t_min),
            "t_max": None if t_max is None else _round(t_max),
        },
        "bins": bins.count,
        "series": series,
        "latency": latency,
        "critical_paths": paths,
    }
    if serving is not None:
        # Additive key: validate_analytics checks required keys only,
        # so documents from serve-less traces stay byte-identical.
        doc["serving"] = serving
    return doc


def analytics_from_trace(path: str, bin_seconds: float = 10.0,
                         since: Optional[float] = None,
                         until: Optional[float] = None) -> Dict:
    """Build the analytics document straight from a JSONL trace file.

    Raises :class:`~repro.obs.trace.TraceParseError` (with the line
    number) on corrupt lines and :class:`EmptyTraceError` on a
    zero-event trace — both mapped to CLI exit 2.
    """
    events = [event for _line_no, event in iter_jsonl(path)]
    if not events:
        raise EmptyTraceError(path)
    return build_analytics(events, bin_seconds=bin_seconds,
                           since=since, until=until, source=path)


# ----------------------------------------------------------------------
# cross-sweep rollup
# ----------------------------------------------------------------------
def merge_analytics(docs: Dict[str, Dict]) -> Dict:
    """Merge per-task analytics documents into a
    ``repro.analytics.rollup``.

    *docs* maps task id → single-run document.  Tasks are merged in
    sorted-task-id order (never completion order), so the rollup is
    byte-identical for any worker count.  All inputs must share the
    same window/bin configuration — a mismatch raises
    :class:`AnalyticsError` rather than silently averaging
    incompatible bins.

    For every scalar series the rollup carries per-bin ``lo`` (min),
    ``p50`` (nearest-rank median) and ``hi`` (max) bands across tasks;
    latency percentiles get min/median/max bands per flow class.
    """
    if not docs:
        raise AnalyticsError("merge_analytics: no documents to merge")
    task_ids = sorted(docs)
    ordered = [docs[tid] for tid in task_ids]
    for tid, doc in zip(task_ids, ordered):
        validate_analytics(doc, expect_kind=ANALYTICS_KIND)
    window0 = ordered[0]["window"]
    for tid, doc in zip(task_ids, ordered):
        if doc["window"] != window0:
            raise AnalyticsError(
                f"merge_analytics: task {tid!r} was built with window "
                f"{doc['window']} != {window0} — rebuild with matching "
                f"--bin/--since/--until")

    n_bins = max(int(d.get("bins", 0)) for d in ordered)

    def band_over_bins(values_per_task: List[List], fill: object
                       ) -> Dict[str, List]:
        lo: List = []
        mid: List = []
        hi: List = []
        for i in range(n_bins):
            col = []
            for vals in values_per_task:
                v = vals[i] if i < len(vals) else fill
                if v is not None:
                    col.append(v)
            if col:
                col.sort()
                lo.append(col[0])
                mid.append(percentile(col, 0.50))
                hi.append(col[-1])
            else:
                lo.append(None)
                mid.append(None)
                hi.append(None)
        return {"lo": lo, "p50": mid, "hi": hi}

    series_bands: Dict[str, Dict] = {}
    for key in SERIES_KEYS:
        fill = None if key == "max_utilization" else 0
        series_bands[key] = band_over_bins(
            [list(d["series"].get(key, [])) for d in ordered], fill)

    # latency bands per flow class, over the tasks that saw the class
    classes = sorted({name for d in ordered for name in d["latency"]})
    latency_bands: Dict[str, Dict] = {}
    for name in classes:
        entries = [d["latency"][name] for d in ordered
                   if name in d["latency"]]
        band: Dict[str, object] = {
            "tasks": len(entries),
            "completed": sum(int(e.get("completed", 0)) for e in entries),
            "interrupted": sum(int(e.get("interrupted", 0))
                               for e in entries),
            "cancelled": sum(int(e.get("cancelled", 0)) for e in entries),
            "open": sum(int(e.get("open", 0)) for e in entries),
        }
        for label, _q in _QUANTILES:
            vals = sorted(e[label] for e in entries
                          if e.get(label) is not None)
            band[label] = (None if not vals else
                           {"lo": vals[0],
                            "p50": percentile(vals, 0.50),
                            "hi": vals[-1]})
        latency_bands[name] = band

    return {
        "kind": ROLLUP_KIND,
        "version": ANALYTICS_VERSION,
        "tasks": task_ids,
        "window": window0,
        "bins": n_bins,
        "series_bands": series_bands,
        "latency_bands": latency_bands,
    }


# ----------------------------------------------------------------------
# load / validate / dump
# ----------------------------------------------------------------------
def validate_analytics(doc: object,
                       expect_kind: Optional[str] = None,
                       source: str = "<doc>") -> Dict:
    """Check that *doc* is a structurally sound analytics document
    (either kind unless *expect_kind* pins one).  Returns the document;
    raises :class:`AnalyticsError` describing the first problem."""
    if not isinstance(doc, dict):
        raise AnalyticsError(
            f"{source}: expected a JSON object, got "
            f"{type(doc).__name__}")
    kind = doc.get("kind")
    allowed = ((expect_kind,) if expect_kind
               else (ANALYTICS_KIND, ROLLUP_KIND))
    if kind not in allowed:
        raise AnalyticsError(
            f"{source}: kind {kind!r} is not "
            f"{' or '.join(repr(a) for a in allowed)}")
    if doc.get("version") != ANALYTICS_VERSION:
        raise AnalyticsError(
            f"{source}: unsupported version {doc.get('version')!r} "
            f"(this build reads version {ANALYTICS_VERSION})")
    required = (("window", "bins", "series", "latency", "critical_paths")
                if kind == ANALYTICS_KIND
                else ("window", "bins", "tasks", "series_bands",
                      "latency_bands"))
    for key in required:
        if key not in doc:
            raise AnalyticsError(f"{source}: missing required key "
                                 f"{key!r} for {kind!r}")
    window = doc["window"]
    if (not isinstance(window, dict)
            or not is_number(window.get("bin_seconds"))
            or window["bin_seconds"] <= 0):
        raise AnalyticsError(
            f"{source}: window.bin_seconds must be a positive number")
    if kind == ANALYTICS_KIND and not isinstance(doc["series"], dict):
        raise AnalyticsError(f"{source}: series must be an object")
    return doc


def load_analytics(path: str) -> Dict:
    """Load and validate a saved analytics (or rollup) document."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise AnalyticsError(f"{path}: cannot read: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalyticsError(
            f"{path}: invalid JSON at line {exc.lineno}: "
            f"{exc.msg}") from exc
    return validate_analytics(doc, source=path)


def dump_analytics(doc: Dict, path: str) -> None:
    """Write a document as canonical JSON: sorted keys, compact
    separators, trailing newline — byte-identical for equal inputs."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, sort_keys=True,
                            separators=(",", ":")) + "\n")


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------
def _fmt(v: object, unit: str = "") -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:g}{unit}"
    return f"{v}{unit}"


def _fmt_gb(v: object) -> str:
    return "-" if not is_number(v) else f"{float(v) / 1e9:.3f}"  # type: ignore[arg-type]


def _series_summary_rows(series: Dict[str, object], bins: int,
                         origin: float, width: float) -> List[List[str]]:
    rows: List[List[str]] = []
    for key in SERIES_KEYS:
        vals = series.get(key)
        if not isinstance(vals, list) or not vals:
            rows.append([key, "-", "-", "-"])
            continue
        numeric = [(i, v) for i, v in enumerate(vals) if is_number(v)]
        if not numeric:
            rows.append([key, "-", "-", "-"])
            continue
        peak_i, peak = max(numeric, key=lambda p: (p[1], -p[0]))
        total = sum(v for _i, v in numeric)
        if key.endswith("_bytes"):
            total_s, peak_s = _fmt_gb(total) + " GB", _fmt_gb(peak) + " GB"
        elif key in ("live_flows", "max_utilization"):
            total_s, peak_s = "-", _fmt(peak)
        else:
            total_s, peak_s = _fmt(total), _fmt(peak)
        rows.append([key, total_s, peak_s,
                     f"{origin + peak_i * width:g}"])
    return rows


def render_timeline(doc: Dict) -> str:
    """Text report for an analytics or rollup document — the
    ``repro timeline`` stdout when no ``--html`` is requested."""
    from repro.metrics.report import render_table

    validate_analytics(doc)
    out: List[str] = []
    window = doc["window"]
    w_desc = (f"[{_fmt(window.get('since'), '')}, "
              f"{_fmt(window.get('until'), '')}) "
              f"bin {window['bin_seconds']:g} s")
    if doc["kind"] == ROLLUP_KIND:
        out.append(f"# Sweep timeline rollup — {len(doc['tasks'])} "
                   f"task(s), window {w_desc}")
        out.append("")
        rows = []
        for name, band in sorted(doc["latency_bands"].items()):
            cells = [name, band["tasks"], band["completed"],
                     band["interrupted"]]
            for label, _q in _QUANTILES:
                b = band.get(label)
                cells.append("-" if b is None else
                             f"{b['lo']:g}/{b['p50']:g}/{b['hi']:g}")
            rows.append(cells)
        out.append(render_table(
            ["class", "tasks", "done", "intr",
             "p50 lo/med/hi (s)", "p99 lo/med/hi (s)",
             "p999 lo/med/hi (s)"], rows,
            title="Latency bands across tasks"))
        out.append("")
        rows = []
        for key in SERIES_KEYS:
            band = doc["series_bands"].get(key)
            if not band:
                continue
            his = [v for v in band["hi"] if is_number(v)]
            peak = max(his) if his else None
            if key.endswith("_bytes"):
                peak_s = "-" if peak is None else _fmt_gb(peak) + " GB"
            else:
                peak_s = _fmt(peak)
            rows.append([key, doc["bins"], peak_s])
        out.append(render_table(["series", "bins", "peak hi-band"],
                                rows, title="Series bands"))
        return "\n".join(out)

    # ---------------- single-run document -----------------------------
    ev = doc.get("events") or {}
    src = doc.get("source") or "<events>"
    out.append(f"# Timeline — {src}")
    out.append("")
    out.append(f"{ev.get('in_window', '?')} of {ev.get('total', '?')} "
               f"events in window {w_desc}; "
               f"t = [{_fmt(ev.get('t_min'))}, {_fmt(ev.get('t_max'))}] "
               f"s over {doc['bins']} bin(s).")
    out.append("")

    rows = []
    for name, entry in sorted(doc["latency"].items()):
        tail = entry.get("interrupted_tail")
        rows.append([
            name, entry["completed"], entry["interrupted"],
            entry.get("open", 0),
            _fmt(entry["p50"]), _fmt(entry["p99"]), _fmt(entry["p999"]),
            _fmt(entry["max"]),
            "-" if tail is None else f"{tail['p99']:g}",
        ])
    out.append(render_table(
        ["class", "done", "intr", "open", "p50 (s)", "p99 (s)",
         "p999 (s)", "max (s)", "intr p99 (s)"], rows,
        title="Flow latency (sojourn, completed flows)"))
    out.append("")

    serving = doc.get("serving")
    if serving:
        rows = []
        for pop, entry in serving.items():
            rows.append([
                pop, entry["enqueued"], entry["completed"],
                entry["rejected"],
                _fmt(entry["p50"]), _fmt(entry["p99"]),
                _fmt(entry["p999"]), _fmt(entry["max"]),
            ])
        out.append(render_table(
            ["population", "enq", "done", "rej", "p50 (s)", "p99 (s)",
             "p999 (s)", "max (s)"], rows,
            title="Client-perceived serving latency"))
        out.append("")

    origin = float(window.get("origin", 0.0))
    width = float(window["bin_seconds"])
    out.append(render_table(
        ["series", "total", "peak bin", "peak at t (s)"],
        _series_summary_rows(doc["series"], doc["bins"], origin, width),
        title="Time-series summary"))
    out.append("")

    paths = doc["critical_paths"]
    out.append(f"Critical paths ({len(paths)} lifecycle(s)):")
    if not paths:
        out.append("  (no closed lifecycle spans in window)")
    for p in paths:
        out.append(f"- {p['root']} #{p['span_id']} @ "
                   f"t={_fmt(p['t_begin'])} s — {p['duration']:g} s, "
                   f"depth {p['depth']}")
        for depth, step in enumerate(p["path"]):
            pct = (100.0 * step["contribution"] / p["duration"]
                   if p["duration"] else 0.0)
            out.append(f"  {'  ' * depth}{step['name']} "
                       f"#{step['span_id']}: {step['duration']:g} s "
                       f"(+{step['contribution']:g} s self, "
                       f"{pct:.0f}% of lifecycle)")
    return "\n".join(out)
