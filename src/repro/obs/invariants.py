"""Online invariant checkers over the trace-event stream.

The simulator's correctness rests on a handful of properties the paper
states or assumes — versions only grow, migration never targets a
powered-off server, the dirty table drives selective re-integration,
the fair-share solver never oversubscribes a disk.  A
:class:`Checker` consumes the event stream one event at a time and
records :class:`Violation`\\ s; :class:`InvariantSuite` fans one stream
out to many checkers.

Checkers run in two modes, sharing the same code path:

* **offline** — over a JSONL trace file
  (:func:`repro.obs.report.check_trace`, the ``repro check`` command);
* **live** — attached to the bus as a :class:`CheckerSink` while an
  experiment runs (the CLI's ``--check`` flag), so CI fails the moment
  a regression emits an impossible event.

Every checker is stateless across suites (construct fresh per run) and
tolerant of partial traces: an invariant is only evaluated once the
events required to ground it have been seen, so a trace that never
mentions server power states trivially passes the power checkers.

The stock suite (:func:`default_checkers`):

====================== ================================================
checker                invariant
====================== ================================================
``version-monotonic``  ``version.advance`` epochs strictly increase
``powered-move``       no ``migration.move`` targets a powered-off rank
``dirty-discipline``   ``dirty.insert`` only below full power, and
                       selective re-integration only moves objects the
                       dirty table has seen
``bandwidth-cap``      no server's allocated disk rate exceeds its
                       capacity in any tick
``flow-accounting``    every started flow finishes, is cancelled, or
                       is interrupted by a fault
``machine-hours``      ``power.sample`` active counts agree with the
                       ``server.state`` transitions between them
``no-lost-object``     no object ever loses its last replica
``replication-restored-after-repair``
                       the final ``chaos.audit`` of the run reports
                       full replication (faults were repaired and
                       recovery converged)
``dirty-entry-cleared-only-on-ack``
                       once transfers are in play, a dirty entry is
                       only removed after a ``transfer.ack`` covering
                       its oid (an interrupted transfer must leave
                       entries intact)
``view-epoch-monotonic``
                       ``kv.view.commit`` epochs strictly increase and
                       each commit installs the latest proposal
``kv-no-acked-write-lost``
                       no ``kv.audit`` reports a lost acked write, and
                       no quorum read returns data older than the
                       newest acked write of its key
``kv-read-your-writes``
                       a client's read of a key always reflects that
                       client's own last acked write of it
``kv-monotonic-reads``
                       a client's successive reads of a key never go
                       backwards in version-vector order
``kv-replication-factor-restored``
                       the final ``kv.audit`` reports zero
                       under-replicated keys (anti-entropy converged)
====================== ================================================

The chaos trio is grounded by fault-injection events (``chaos.audit``
/ ``object.lost`` / ``transfer.*``) and the kv quintet by the
replicated store's ``kv.*`` events
(:mod:`repro.kvstore.replicated`), so traces without those layers
pass them vacuously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.obs.trace import Sink, TraceEvent

__all__ = [
    "SWEEP_BOUNDARY_KIND",
    "Violation",
    "Checker",
    "InvariantSuite",
    "CheckerSink",
    "default_checkers",
    "check_events",
    "VersionMonotonicChecker",
    "PoweredMoveChecker",
    "DirtyDisciplineChecker",
    "BandwidthCapChecker",
    "ServeQueueBoundedChecker",
    "FlowAccountingChecker",
    "MachineHourChecker",
    "NoLostObjectChecker",
    "ReplicationRestoredChecker",
    "DirtyAckChecker",
    "ViewEpochMonotonicChecker",
    "KVNoAckedWriteLostChecker",
    "KVReadYourWritesChecker",
    "KVMonotonicReadsChecker",
    "KVReplicationRestoredChecker",
]

#: Event kind separating independent runs inside one merged trace
#: (the sweep runner's ``merged.jsonl``).  The suite finishes the
#: active checkers and restarts fresh ones at each boundary, so
#: per-run invariants (version monotonicity, flow accounting, the
#: final-audit check) never leak across tasks.
SWEEP_BOUNDARY_KIND = "sweep.task"


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the offending event."""

    checker: str
    message: str
    #: Position of the event in its stream: the JSONL line number when
    #: checking a file, the 1-based emit ordinal when checking live.
    index: int
    t: Optional[float]
    event: TraceEvent

    def describe(self) -> str:
        t = "-" if self.t is None else f"{self.t:g}"
        return (f"line {self.index}  t={t}  [{self.checker}] "
                f"{self.message}")


class Checker:
    """One online invariant.

    Subclasses set :attr:`name`, override :meth:`observe` (called per
    event) and optionally :meth:`finish` (called once, after the last
    event, for whole-trace invariants like flow accounting)."""

    name = "checker"

    def __init__(self) -> None:
        self.violations: List[Violation] = []

    def observe(self, event: TraceEvent, index: int) -> None:
        raise NotImplementedError

    def finish(self) -> None:
        pass

    # ------------------------------------------------------------------
    def fail(self, event: TraceEvent, index: int, message: str) -> None:
        t = event.get("t")
        self.violations.append(Violation(
            checker=self.name, message=message, index=index,
            t=t if isinstance(t, (int, float)) else None, event=event))

    @property
    def ok(self) -> bool:
        return not self.violations


# ----------------------------------------------------------------------
# concrete checkers
# ----------------------------------------------------------------------
class VersionMonotonicChecker(Checker):
    """Membership versions advance strictly monotonically
    (§III-E-1: every resize creates the *next* epoch)."""

    name = "version-monotonic"

    def __init__(self) -> None:
        super().__init__()
        self._last: Optional[int] = None

    def observe(self, event: TraceEvent, index: int) -> None:
        if event.get("kind") != "version.advance":
            return
        version = event.get("version")
        if not isinstance(version, int):
            self.fail(event, index,
                      f"version.advance without integer version: "
                      f"{version!r}")
            return
        if self._last is not None and version <= self._last:
            self.fail(event, index,
                      f"version went {self._last} -> {version} "
                      f"(must strictly increase)")
        self._last = version


class PoweredMoveChecker(Checker):
    """No migration ever targets a powered-off server — powered-off
    replicas are parked, not written (§III-B: secondaries power off
    *because* nothing needs to reach them)."""

    name = "powered-move"

    def __init__(self) -> None:
        super().__init__()
        self._off: Set[int] = set()

    def observe(self, event: TraceEvent, index: int) -> None:
        kind = event.get("kind")
        if kind == "server.state":
            rank = event.get("rank")
            if event.get("state") == "off":
                self._off.add(rank)          # type: ignore[arg-type]
            else:
                self._off.discard(rank)      # type: ignore[arg-type]
        elif kind == "server.fail":
            self._off.add(event.get("rank"))  # type: ignore[arg-type]
        elif kind == "migration.move":
            targets = event.get("to") or ()
            for rank in targets:             # type: ignore[union-attr]
                if rank in self._off:
                    self.fail(event, index,
                              f"migration.move targets powered-off "
                              f"rank {rank}")


class DirtyDisciplineChecker(Checker):
    """The dirty table's contract (§III-E-2): entries are only created
    below full power, and selective re-integration only ever moves
    objects the dirty table has recorded."""

    name = "dirty-discipline"

    def __init__(self) -> None:
        super().__init__()
        self._full_power: Optional[bool] = None   # unknown until seen
        self._dirty_oids: Set[int] = set()

    def observe(self, event: TraceEvent, index: int) -> None:
        kind = event.get("kind")
        if kind == "version.advance":
            fp = event.get("full_power")
            if isinstance(fp, bool):
                self._full_power = fp
        elif kind == "dirty.insert":
            if self._full_power is True:
                self.fail(event, index,
                          "dirty.insert while the cluster is at full "
                          "power (writes at full power are clean)")
            self._dirty_oids.add(event.get("oid"))  # type: ignore[arg-type]
        elif kind == "migration.move":
            oid = event.get("oid")
            if oid not in self._dirty_oids:
                self.fail(event, index,
                          f"selective re-integration moved object "
                          f"{oid} absent from the dirty table")


class BandwidthCapChecker(Checker):
    """The fair-share allocation never oversubscribes a disk: the
    per-tick ``bandwidth.solve`` event reports the most-loaded
    server's utilisation, which must stay ≤ 1 (small float tolerance
    for the progressive-filling arithmetic)."""

    name = "bandwidth-cap"
    TOLERANCE = 1e-6

    def observe(self, event: TraceEvent, index: int) -> None:
        if event.get("kind") != "bandwidth.solve":
            return
        util = event.get("max_util")
        if not isinstance(util, (int, float)):
            return              # pre-span-era trace: field absent
        if util > 1.0 + self.TOLERANCE:
            self.fail(event, index,
                      f"server {event.get('max_util_rank')} allocated "
                      f"{util:.6f}x its disk capacity in one tick")


class ServeQueueBoundedChecker(Checker):
    """Per-server request queues respect the flow controller's
    declared bound: every ``serve.queue`` depth sample must be ≤ the
    ``bound`` it was sampled against.  An unthrottled controller
    declares a bound it never enforces, which is exactly what this
    checker flushes out under overload — and why ``repro serve`` with
    it goes red while the adaptive throttle stays green.  Vacuous on
    traces with no serving layer."""

    name = "serve-queue-bounded"

    def observe(self, event: TraceEvent, index: int) -> None:
        if event.get("kind") != "serve.queue":
            return
        depth = event.get("depth")
        bound = event.get("bound")
        if not isinstance(depth, int) or not isinstance(bound, int):
            return
        if depth > bound:
            self.fail(event, index,
                      f"server {event.get('server')} queue depth {depth} "
                      f"exceeds declared bound {bound}")


class FlowAccountingChecker(Checker):
    """Every ``flow.start`` is matched by a ``flow.finish``, a
    ``flow.cancel``, or a fault preemption's ``flow.interrupt`` — no
    flow silently evaporates (lost bytes would be invisible in the
    throughput figures)."""

    name = "flow-accounting"

    def __init__(self) -> None:
        super().__init__()
        #: span_id -> (index, event) of the still-open flow.
        self._open: Dict[object, Tuple[int, TraceEvent]] = {}

    def observe(self, event: TraceEvent, index: int) -> None:
        kind = event.get("kind")
        if kind == "flow.start":
            key = event.get("span_id", ("anon", len(self._open), index))
            self._open[key] = (index, event)
        elif kind in ("flow.finish", "flow.cancel", "flow.interrupt"):
            key = event.get("span_id")
            if key is not None:
                if key in self._open:
                    del self._open[key]
                else:
                    self.fail(event, index,
                              f"{kind} for a flow that never started "
                              f"(span_id={key!r})")
                return
            # Pre-span trace: retire the oldest open flow with a
            # matching name.
            name = event.get("name")
            for k, (_i, ev) in self._open.items():
                if ev.get("name") == name:
                    del self._open[k]
                    return
            self.fail(event, index,
                      f"{kind} for flow {name!r} that never started")

    def finish(self) -> None:
        for index, event in self._open.values():
            self.fail(event, index,
                      f"flow {event.get('name')!r} "
                      f"(span_id={event.get('span_id')!r}) started but "
                      f"never finished, was cancelled, or was "
                      f"interrupted")


class MachineHourChecker(Checker):
    """Machine-hour samples agree with power transitions: between two
    consecutive ``power.sample`` events, the change in the sampled
    active count must equal the net ``server.state`` on/off delta.
    Traces without ``server.state`` events (pure policy timelines)
    are vacuously consistent."""

    name = "machine-hours"

    def __init__(self) -> None:
        super().__init__()
        self._last_sample: Optional[int] = None
        self._delta = 0
        self._state_seen_since_sample = False

    def observe(self, event: TraceEvent, index: int) -> None:
        kind = event.get("kind")
        if kind == "server.state":
            self._delta += 1 if event.get("state") == "on" else -1
            self._state_seen_since_sample = True
        elif kind == "server.fail":
            self._delta -= 1
            self._state_seen_since_sample = True
        elif kind == "power.sample":
            active = event.get("active")
            if not isinstance(active, int):
                return
            if (self._last_sample is not None
                    and self._state_seen_since_sample):
                expected = self._last_sample + self._delta
                if active != expected:
                    self.fail(event, index,
                              f"power.sample active={active} but "
                              f"server.state transitions imply "
                              f"{expected} "
                              f"({self._last_sample}{self._delta:+d})")
            self._last_sample = active
            self._delta = 0
            self._state_seen_since_sample = False


class NoLostObjectChecker(Checker):
    """No object ever loses its last replica: recovery (or the write
    path) must always find a surviving copy to re-replicate from.
    Trips on an explicit ``object.lost`` event or on any
    ``chaos.audit`` reporting ``lost > 0``; traces without fault
    injection never carry either and pass vacuously."""

    name = "no-lost-object"

    def observe(self, event: TraceEvent, index: int) -> None:
        kind = event.get("kind")
        if kind == "object.lost":
            self.fail(event, index,
                      f"object {event.get('oid')} lost its last replica "
                      f"(crash of rank {event.get('rank')})")
        elif kind == "chaos.audit":
            lost = event.get("lost")
            if isinstance(lost, int) and lost > 0:
                self.fail(event, index,
                          f"audit found {lost} object(s) with zero "
                          f"replicas")


class ReplicationRestoredChecker(Checker):
    """After the fault plan's repair windows close, replication must
    converge: the *final* ``chaos.audit`` of the trace has to report
    zero lost and zero under-replicated objects.  Mid-run audits may
    legitimately show repair debt (a crash whose recovery transfer is
    still flowing); only failing to ever recover is a violation.
    Traces without audits pass vacuously."""

    name = "replication-restored-after-repair"

    def __init__(self) -> None:
        super().__init__()
        self._last: Optional[Tuple[int, TraceEvent]] = None

    def observe(self, event: TraceEvent, index: int) -> None:
        if event.get("kind") == "chaos.audit":
            self._last = (index, event)

    def finish(self) -> None:
        if self._last is None:
            return
        index, event = self._last
        under = event.get("under_replicated")
        lost = event.get("lost")
        problems = []
        if isinstance(lost, int) and lost > 0:
            problems.append(f"{lost} lost")
        if isinstance(under, int) and under > 0:
            problems.append(f"{under} under-replicated")
        if problems:
            self.fail(event, index,
                      f"final audit still shows {', '.join(problems)} "
                      f"object(s): replication was not restored after "
                      f"repair")


class DirtyAckChecker(Checker):
    """Crash-consistency of the dirty table: once acknowledged
    transfers are in play (a ``transfer.start`` has been seen), a
    ``dirty.remove`` is legal only for an oid some ``transfer.ack``
    has covered — an interrupted transfer must leave its entries
    intact for the retry.  Traces predating the transfer layer (no
    ``transfer.start``) pass vacuously."""

    name = "dirty-entry-cleared-only-on-ack"

    def __init__(self) -> None:
        super().__init__()
        self._grounded = False
        self._acked: Set[int] = set()

    def observe(self, event: TraceEvent, index: int) -> None:
        kind = event.get("kind")
        if kind == "transfer.start":
            self._grounded = True
        elif kind == "transfer.ack":
            for oid in event.get("oids") or ():
                self._acked.add(oid)
        elif kind == "dirty.remove" and self._grounded:
            oid = event.get("oid")
            if oid not in self._acked:
                self.fail(event, index,
                          f"dirty entry for object {oid} removed "
                          f"without an acknowledged transfer covering "
                          f"it")


# ----------------------------------------------------------------------
# replicated-KV checkers (kv.* events from repro.kvstore.replicated)
# ----------------------------------------------------------------------
def _vv_of(event: TraceEvent) -> Optional[Dict[str, int]]:
    """The event's version vector, or None when absent/malformed."""
    vv = event.get("vv")
    if isinstance(vv, dict) and all(
            isinstance(k, str) and isinstance(v, int)
            for k, v in vv.items()):
        return vv
    return None


def _vv_dominates(a: Dict[str, int], b: Dict[str, int]) -> bool:
    """a >= b componentwise: *a* reflects every write *b* does."""
    return all(a.get(node, 0) >= count for node, count in b.items())


def _vv_merge(a: Dict[str, int], b: Dict[str, int]) -> Dict[str, int]:
    out = dict(a)
    for node, count in b.items():
        if count > out.get(node, 0):
            out[node] = count
    return out


class ViewEpochMonotonicChecker(Checker):
    """Membership views advance through explicit two-step changes:
    ``kv.view.commit`` epochs strictly increase, and every commit
    installs the epoch of the latest ``kv.view.propose`` (no commit
    out of thin air, no stale proposal resurrected).  Traces without
    view events pass vacuously."""

    name = "view-epoch-monotonic"

    def __init__(self) -> None:
        super().__init__()
        self._last_commit: Optional[int] = None
        self._proposed: Optional[int] = None

    def observe(self, event: TraceEvent, index: int) -> None:
        kind = event.get("kind")
        if kind == "kv.view.propose":
            epoch = event.get("epoch")
            if isinstance(epoch, int):
                self._proposed = epoch
        elif kind == "kv.view.commit":
            epoch = event.get("epoch")
            if not isinstance(epoch, int):
                self.fail(event, index,
                          f"kv.view.commit without integer epoch: "
                          f"{event.get('epoch')!r}")
                return
            if self._proposed is None:
                self.fail(event, index,
                          f"view epoch {epoch} committed without any "
                          f"proposal")
            elif epoch != self._proposed:
                self.fail(event, index,
                          f"committed epoch {epoch} but the latest "
                          f"proposal was epoch {self._proposed}")
            if self._last_commit is not None and epoch <= self._last_commit:
                self.fail(event, index,
                          f"view epoch went {self._last_commit} -> "
                          f"{epoch} (must strictly increase)")
            self._last_commit = epoch
            self._proposed = None


class KVNoAckedWriteLostChecker(Checker):
    """An acknowledged write is durable: no ``kv.audit`` may report
    ``lost_acked > 0``, and no non-degraded ``kv.read`` may return a
    vector strictly dominated by the newest acked write of its key
    (a quorum read older than an acked write means the write quorum
    and read quorum failed to intersect).  Degraded reads are flagged
    honest-but-weaker and exempt.  Traces without ``kv.*`` events
    pass vacuously."""

    name = "kv-no-acked-write-lost"

    def __init__(self) -> None:
        super().__init__()
        self._acked: Dict[str, Dict[str, int]] = {}

    def observe(self, event: TraceEvent, index: int) -> None:
        kind = event.get("kind")
        if kind == "kv.write.ack":
            key, vv = event.get("key"), _vv_of(event)
            if isinstance(key, str) and vv is not None:
                cur = self._acked.get(key)
                self._acked[key] = _vv_merge(cur, vv) if cur else vv
        elif kind == "kv.read":
            if event.get("degraded"):
                return
            key, vv = event.get("key"), _vv_of(event)
            if not isinstance(key, str) or vv is None:
                return
            newest = self._acked.get(key)
            if newest is not None and not _vv_dominates(vv, newest):
                self.fail(event, index,
                          f"quorum read of {key!r} returned {vv} older "
                          f"than the newest acked write {newest}")
        elif kind == "kv.audit":
            lost = event.get("lost_acked")
            if isinstance(lost, int) and lost > 0:
                self.fail(event, index,
                          f"audit {event.get('label')!r} found {lost} "
                          f"acked write(s) on no surviving replica")


class KVReadYourWritesChecker(Checker):
    """Session guarantee #1: a client's read of a key must reflect
    that client's own last acked write of it — the read's vector
    dominates the write's.  Applies per ``(client, key)``; anonymous
    (client-less) operations carry no session and are exempt, as are
    flagged degraded reads.  Traces without ``kv.*`` events pass
    vacuously."""

    name = "kv-read-your-writes"

    def __init__(self) -> None:
        super().__init__()
        self._written: Dict[Tuple[str, str], Dict[str, int]] = {}

    def observe(self, event: TraceEvent, index: int) -> None:
        kind = event.get("kind")
        client, key = event.get("client"), event.get("key")
        if not isinstance(client, str) or not isinstance(key, str):
            return
        vv = _vv_of(event)
        if vv is None:
            return
        if kind == "kv.write.ack":
            slot = (client, key)
            cur = self._written.get(slot)
            self._written[slot] = _vv_merge(cur, vv) if cur else vv
        elif kind == "kv.read" and not event.get("degraded"):
            floor = self._written.get((client, key))
            if floor is not None and not _vv_dominates(vv, floor):
                self.fail(event, index,
                          f"client {client!r} read {key!r} at {vv}, "
                          f"older than its own acked write {floor}")


class KVMonotonicReadsChecker(Checker):
    """Session guarantee #2: a client's successive reads of a key
    never move backwards — each read's vector dominates the previous
    read's.  Degraded reads still advance the floor (the client *saw*
    that state) but are not themselves judged.  Traces without
    ``kv.*`` events pass vacuously."""

    name = "kv-monotonic-reads"

    def __init__(self) -> None:
        super().__init__()
        self._seen: Dict[Tuple[str, str], Dict[str, int]] = {}

    def observe(self, event: TraceEvent, index: int) -> None:
        if event.get("kind") != "kv.read":
            return
        client, key = event.get("client"), event.get("key")
        if not isinstance(client, str) or not isinstance(key, str):
            return
        vv = _vv_of(event)
        if vv is None:
            return
        slot = (client, key)
        prev = self._seen.get(slot)
        if (prev is not None and not event.get("degraded")
                and not _vv_dominates(vv, prev)):
            self.fail(event, index,
                      f"client {client!r} re-read {key!r} at {vv} "
                      f"after having seen {prev} (reads went "
                      f"backwards)")
        self._seen[slot] = _vv_merge(prev, vv) if prev else vv


class KVReplicationRestoredChecker(Checker):
    """After repair windows close, anti-entropy must converge: the
    *final* ``kv.audit`` of the trace has to report zero
    under-replicated keys.  Mid-run audits may legitimately show
    repair debt (a crash whose re-replication has not run yet); only
    failing to ever converge is a violation.  Traces without
    ``kv.audit`` events pass vacuously."""

    name = "kv-replication-factor-restored"

    def __init__(self) -> None:
        super().__init__()
        self._last: Optional[Tuple[int, TraceEvent]] = None

    def observe(self, event: TraceEvent, index: int) -> None:
        if event.get("kind") == "kv.audit":
            self._last = (index, event)

    def finish(self) -> None:
        if self._last is None:
            return
        index, event = self._last
        under = event.get("under_replicated")
        if isinstance(under, int) and under > 0:
            self.fail(event, index,
                      f"final kv.audit ({event.get('label')!r}) still "
                      f"shows {under} under-replicated key(s): the "
                      f"replication factor was not restored")


# ----------------------------------------------------------------------
# the suite
# ----------------------------------------------------------------------
def default_checkers() -> List[Checker]:
    """A fresh instance of every stock checker."""
    return [
        VersionMonotonicChecker(),
        PoweredMoveChecker(),
        DirtyDisciplineChecker(),
        BandwidthCapChecker(),
        ServeQueueBoundedChecker(),
        FlowAccountingChecker(),
        MachineHourChecker(),
        NoLostObjectChecker(),
        ReplicationRestoredChecker(),
        DirtyAckChecker(),
        ViewEpochMonotonicChecker(),
        KVNoAckedWriteLostChecker(),
        KVReadYourWritesChecker(),
        KVMonotonicReadsChecker(),
        KVReplicationRestoredChecker(),
    ]


class InvariantSuite:
    """Fan one event stream out to a set of checkers.

    A :data:`SWEEP_BOUNDARY_KIND` event marks the start of a new
    independent run inside the same stream (a merged sweep trace):
    the suite runs the active checkers' end-of-stream checks, banks
    their violations, and restarts with fresh checker instances — so
    checkers must be constructible with no arguments.

    Examples
    --------
    >>> suite = InvariantSuite()
    >>> suite.observe({"kind": "version.advance", "t": 0.0,
    ...                "version": 2, "active": 6, "full_power": False}, 1)
    >>> suite.observe({"kind": "version.advance", "t": 1.0,
    ...                "version": 2, "active": 8, "full_power": False}, 2)
    >>> [v.checker for v in suite.finish()]
    ['version-monotonic']
    """

    def __init__(self, checkers: Optional[List[Checker]] = None) -> None:
        self.checkers = (checkers if checkers is not None
                         else default_checkers())
        self._archived: List[Violation] = []
        self._finished = False
        self.events_seen = 0

    def observe(self, event: TraceEvent, index: int) -> None:
        self.events_seen += 1
        if event.get("kind") == SWEEP_BOUNDARY_KIND:
            self._restart()
            return
        for checker in self.checkers:
            checker.observe(event, index)

    def _restart(self) -> None:
        """Close out the current run's checkers and start fresh ones."""
        for checker in self.checkers:
            checker.finish()
            self._archived.extend(checker.violations)
        self.checkers = [type(checker)() for checker in self.checkers]

    def finish(self) -> List[Violation]:
        """Run end-of-stream checks (once) and return all violations,
        ordered by stream position."""
        if not self._finished:
            self._finished = True
            for checker in self.checkers:
                checker.finish()
        return self.violations

    @property
    def violations(self) -> List[Violation]:
        out: List[Violation] = list(self._archived)
        for checker in self.checkers:
            out.extend(checker.violations)
        out.sort(key=lambda v: v.index)
        return out

    @property
    def ok(self) -> bool:
        return not self._archived and all(c.ok for c in self.checkers)


def check_events(events: Iterable[TraceEvent],
                 checkers: Optional[List[Checker]] = None
                 ) -> List[Violation]:
    """Run a suite over an in-memory event sequence (1-based indices)
    and return the violations."""
    suite = InvariantSuite(checkers)
    for index, event in enumerate(events, start=1):
        suite.observe(event, index)
    return suite.finish()


class CheckerSink(Sink):
    """Bus sink that feeds a live run's events straight into an
    :class:`InvariantSuite` — the ``--check`` flag's engine.  Indices
    are emit ordinals (1-based)."""

    def __init__(self, suite: Optional[InvariantSuite] = None) -> None:
        self.suite = suite if suite is not None else InvariantSuite()
        self._count = 0

    def write(self, event: TraceEvent) -> None:
        self._count += 1
        self.suite.observe(event, self._count)

    def finish(self) -> List[Violation]:
        return self.suite.finish()
