"""Spans: lifecycle tracing over the flat event bus.

The trace bus records *points* — a flow started, an object moved.  The
paper's headline claims are about *intervals*: how long a resize cycle
takes to drain its re-integration debt (Fig. 2), how long migration
traffic competes with the foreground (Figs. 3/7).  A :class:`Span`
connects the two: a ``span.begin``/``span.end`` event pair sharing a
``span_id``, with optional parent linkage, emitted through the same
:class:`~repro.obs.trace.TraceBus` so spans ride in the same JSONL
trace (and inherit its byte-for-byte determinism — ids come from a
per-runtime counter, times from the simulation clock, never from wall
clock).

Span names are dotted like event kinds; the instrumented lifecycles:

============================ =========================================
span name                    interval
============================ =========================================
``flow``                     flow admitted → drained / cancelled
``resize``                   one power-state change (instant; carries
                             the membership delta)
``resize.cycle``             size-up version advance → re-integration
                             drained (cluster state caught up)
``reintegration.pass``       one Algorithm-2 scan over the dirty table
``reintegration.full``       one "primary+full" blanket re-copy
``recovery.fail``            server crash → losses re-replicated
``recovery.departure``       baseline departure → re-replicated
``migration.addition``       baseline re-add → data pulled onto it
============================ =========================================

Usage::

    span = OBS.spans.begin("resize.cycle", version=4)
    ...                      # any number of events / child spans
    span.end(status="drained")

or, for well-nested intervals, ``with OBS.spans.span("name"): ...``.

Handles are always allocated (the counter is cheap and none of the
instrumented lifecycles is per-object hot); the *events* are emitted
only while the bus has a sink, mirroring every other producer.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.trace import TraceBus

__all__ = ["Span", "SpanTracker"]


class Span:
    """One open (or closed) interval.  Created by
    :meth:`SpanTracker.begin`; close it exactly once with :meth:`end`.
    """

    __slots__ = ("name", "span_id", "parent_id", "t_begin", "closed",
                 "_tracker")

    def __init__(self, tracker: "SpanTracker", name: str, span_id: int,
                 parent_id: Optional[int], t_begin: float) -> None:
        self._tracker = tracker
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_begin = t_begin
        self.closed = False

    def end(self, t: Optional[float] = None, **fields: object) -> float:
        """Close the span, emitting ``span.end`` with the sim-time
        ``duration``.  Idempotent (a second call is a no-op) so
        drain-on-exit cleanup can't double-close.  Returns the
        duration."""
        if self.closed:
            return 0.0
        self.closed = True
        bus = self._tracker.bus
        t_end = bus.clock if t is None else t
        duration = max(0.0, t_end - self.t_begin)
        if bus.active:
            bus.emit("span.end", t=t_end, name=self.name,
                     span_id=self.span_id, duration=duration, **fields)
        return duration

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, {state})")


class SpanTracker:
    """Allocates span ids and emits the begin/end events.

    Ids are sequential per runtime (reset with
    :meth:`repro.obs.runtime.Runtime.reset`), so two identically
    seeded runs allocate identical ids and the traces stay
    byte-identical.
    """

    __slots__ = ("bus", "_next_id")

    def __init__(self, bus: TraceBus) -> None:
        self.bus = bus
        self._next_id = 1

    def begin(self, name: str, parent: Optional[Span] = None,
              t: Optional[float] = None, **fields: object) -> Span:
        """Open a span named *name*, optionally parented to an existing
        span (open or closed — a child may outlive its parent's close,
        e.g. a migration flow spawned by an already-drained resize
        cycle)."""
        span_id = self._next_id
        self._next_id += 1
        bus = self.bus
        t_begin = bus.clock if t is None else t
        parent_id = parent.span_id if parent is not None else None
        span = Span(self, name, span_id, parent_id, t_begin)
        if bus.active:
            if parent_id is None:
                bus.emit("span.begin", t=t_begin, name=name,
                         span_id=span_id, **fields)
            else:
                bus.emit("span.begin", t=t_begin, name=name,
                         span_id=span_id, parent_id=parent_id, **fields)
        return span

    def span(self, name: str, parent: Optional[Span] = None,
             **fields: object) -> Span:
        """``with OBS.spans.span("x"): ...`` — begin now, end on exit."""
        return self.begin(name, parent=parent, **fields)

    def reset(self) -> None:
        self._next_id = 1
