"""repro.obs — structured tracing, metrics, and profiling hooks.

The observability layer under every experiment and benchmark:

* :class:`~repro.obs.trace.TraceBus` (``OBS.bus``) — structured event
  stream with pluggable sinks (ring buffer, JSONL file, null);
* :class:`~repro.obs.metrics.MetricsRegistry` (``OBS.metrics``) —
  named counters / gauges / fixed-bucket histograms with a
  deterministic ``snapshot()`` / ``render()`` API;
* :data:`~repro.obs.runtime.OBS` — the process-wide runtime binding
  the two, plus the ``hot`` switch for wall-clock ``perf.*`` timers on
  the hot paths (ring lookup, placement, fair-share solve).

See docs/OBSERVABILITY.md for event kinds, the sink protocol, and
metric naming conventions.

Examples
--------
>>> from repro.obs import OBS
>>> with OBS.bus.capture() as sink:
...     OBS.bus.emit("demo.event", t=1.5, answer=42)
>>> sink.events("demo.event")[0]["answer"]
42
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import OBS, Runtime, get_runtime
from repro.obs.trace import (
    JSONLSink,
    NullSink,
    RingBufferSink,
    Sink,
    TraceBus,
    TraceEvent,
    read_jsonl,
)

__all__ = [
    "OBS",
    "Runtime",
    "get_runtime",
    "TraceBus",
    "TraceEvent",
    "Sink",
    "NullSink",
    "RingBufferSink",
    "JSONLSink",
    "read_jsonl",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "summarize_trace",
    "render_trace_stats",
]


def __getattr__(name: str):
    # repro.obs.stats pulls in the ASCII renderers of repro.metrics,
    # which sit above this package in the import graph (instrumented
    # modules import repro.obs.runtime at import time) — resolve the
    # stats helpers lazily to keep the layering acyclic.
    if name in ("summarize_trace", "render_trace_stats"):
        from repro.obs import stats
        return getattr(stats, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
