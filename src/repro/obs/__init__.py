"""repro.obs — structured tracing, spans, invariants, and metrics.

The observability layer under every experiment and benchmark:

* :class:`~repro.obs.trace.TraceBus` (``OBS.bus``) — structured event
  stream with pluggable sinks (ring buffer, JSONL file, null);
* :class:`~repro.obs.spans.SpanTracker` (``OBS.spans``) —
  ``span.begin``/``span.end`` pairs around the major lifecycles
  (flows, resize cycles, re-integration passes, recovery);
* :mod:`~repro.obs.invariants` — online checkers over the event
  stream (``repro check``, the ``--check`` flag);
* :mod:`~repro.obs.report` — the ``repro report`` markdown run
  analysis built from one JSONL trace;
* :class:`~repro.obs.metrics.MetricsRegistry` (``OBS.metrics``) —
  named counters / gauges / fixed-bucket histograms with a
  deterministic ``snapshot()`` / ``render()`` API;
* :mod:`~repro.obs.profile` — the deterministic instrumentation
  profiler behind ``--profile-out`` / ``repro profile`` (hierarchical
  wall-clock + sim-time attribution, flamegraph collapsed stacks);
* :mod:`~repro.obs.compare` — the ``repro compare`` run-vs-run diff
  (metrics, span distributions, profile hotspots, bench JSON) with
  regression thresholds;
* :mod:`~repro.obs.analytics` — the ``repro timeline`` windowed
  time-series / latency-percentile / critical-path builder
  (``repro.analytics`` documents and cross-sweep rollups);
* :mod:`~repro.obs.dashboard` — the dependency-free, byte-deterministic
  HTML dashboard rendered from one analytics document;
* :data:`~repro.obs.runtime.OBS` — the process-wide runtime binding
  them, plus the ``hot`` switch for wall-clock ``perf.*`` timers on
  the hot paths (ring lookup, placement, fair-share solve).

See docs/OBSERVABILITY.md for event kinds, the span schema, the
checker protocol, and metric naming conventions.

Examples
--------
>>> from repro.obs import OBS
>>> with OBS.bus.capture() as sink:
...     OBS.bus.emit("demo.event", t=1.5, answer=42)
>>> sink.events("demo.event")[0]["answer"]
42
"""

from repro.obs.invariants import (
    Checker,
    CheckerSink,
    InvariantSuite,
    Violation,
    check_events,
    default_checkers,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import (
    ProfileError,
    ProfileNode,
    Profiler,
    collapsed_stacks,
    load_profile,
    profile_document,
)
from repro.obs.runtime import OBS, Runtime, get_runtime
from repro.obs.spans import Span, SpanTracker
from repro.obs.trace import (
    JSONLSink,
    NullSink,
    RingBufferSink,
    Sink,
    TraceBus,
    TraceEvent,
    TraceParseError,
    iter_jsonl,
    read_jsonl,
)

__all__ = [
    "OBS",
    "Runtime",
    "get_runtime",
    "TraceBus",
    "TraceEvent",
    "TraceParseError",
    "Sink",
    "NullSink",
    "RingBufferSink",
    "JSONLSink",
    "read_jsonl",
    "iter_jsonl",
    "Span",
    "SpanTracker",
    "Checker",
    "CheckerSink",
    "InvariantSuite",
    "Violation",
    "check_events",
    "default_checkers",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Profiler",
    "ProfileNode",
    "ProfileError",
    "profile_document",
    "collapsed_stacks",
    "load_profile",
    "render_profile",
    "summarize_trace",
    "render_trace_stats",
    "check_trace",
    "render_check",
    "render_run_report",
    "EmptyTraceError",
    "compare_runs",
    "render_compare",
    "AnalyticsError",
    "build_analytics",
    "analytics_from_trace",
    "merge_analytics",
    "validate_analytics",
    "load_analytics",
    "dump_analytics",
    "render_timeline",
    "percentile",
    "render_dashboard",
    "write_dashboard",
]


def __getattr__(name: str):
    # repro.obs.stats / repro.obs.report pull in the ASCII renderers of
    # repro.metrics, which sit above this package in the import graph
    # (instrumented modules import repro.obs.runtime at import time) —
    # resolve those helpers lazily to keep the layering acyclic.
    if name in ("summarize_trace", "render_trace_stats"):
        from repro.obs import stats
        return getattr(stats, name)
    if name in ("check_trace", "render_check", "render_run_report",
                "EmptyTraceError"):
        from repro.obs import report
        return getattr(report, name)
    if name == "render_profile":
        from repro.obs.profile import render_profile
        return render_profile
    if name in ("compare_runs", "render_compare"):
        from repro.obs import compare
        return getattr(compare, name)
    if name in ("AnalyticsError", "build_analytics", "analytics_from_trace",
                "merge_analytics", "validate_analytics", "load_analytics",
                "dump_analytics", "render_timeline", "percentile"):
        from repro.obs import analytics
        return getattr(analytics, name)
    if name in ("render_dashboard", "write_dashboard"):
        from repro.obs import dashboard
        return getattr(dashboard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
