"""Trace-file statistics: the renderer behind ``repro stats``.

A JSONL trace is a flat stream of ``{"kind", "t", ...}`` events; this
module aggregates it into the two tables an engineer reaches for first:

* per-kind counts with time extents (what happened, when);
* byte totals for the traffic-carrying kinds and duration totals for
  span ends (how much moved, how long it took) — the quantities
  Figures 3/7 and Table II are built from.

``repro stats`` exposes the filters directly: ``--kind`` restricts by
event kind, ``--since``/``--until`` window on simulation time, and
``--top N`` keeps only the N kinds moving the most bytes.

Time windows are **half-open**: ``[since, until)`` keeps events with
``since <= t < until``.  Every windowing surface — ``repro stats``,
``repro report``, ``repro timeline``, the sweep runner's
``events_in_window`` — goes through the same :func:`in_window`
predicate, so adjacent windows (``[0, 60)``, ``[60, 120)``) partition
a trace without double-counting boundary events.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.metrics.report import render_table
from repro.obs.trace import TraceEvent, read_jsonl

__all__ = [
    "TraceSummary",
    "summarize_trace",
    "render_trace_stats",
    "check_window",
    "in_window",
    "event_in_window",
    "is_number",
]


def is_number(value: object) -> bool:
    """Is *value* a usable numeric field (timestamp, byte count,
    duration)?  Excludes ``bool`` explicitly: ``True`` is an ``int``
    in Python, so a malformed trace with ``"t": true`` would otherwise
    slip through the window filter as ``t == 1``."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_window(since: Optional[float], until: Optional[float]) -> None:
    """Validate a half-open ``[since, until)`` simulation-time window.

    Raises :class:`ValueError` when the window is inverted — silently
    matching nothing has masked more than one typo'd command line.
    """
    if since is not None and until is not None and since > until:
        raise ValueError(
            f"empty time window: --since {since:g} is after "
            f"--until {until:g} (since must be <= until)")


def in_window(t: object, since: Optional[float],
              until: Optional[float]) -> bool:
    """The one window predicate: is timestamp *t* inside the half-open
    window ``[since, until)``?

    ``since <= t < until`` — the *until* bound is **exclusive**, so
    adjacent windows partition a trace with no event counted twice.
    Either bound may be ``None`` (unbounded on that side).  A
    non-numeric *t* (including ``bool``) is outside every bounded
    window; with both bounds ``None`` everything passes.

    Every windowing surface (``repro stats`` / ``report`` /
    ``timeline``, the sweep runner) routes through this function —
    do not re-implement the comparison.
    """
    if since is None and until is None:
        return True
    if not is_number(t):
        return False
    if since is not None and t < since:      # type: ignore[operator]
        return False
    if until is not None and t >= until:     # type: ignore[operator]
        return False
    return True


def event_in_window(event: TraceEvent, since: Optional[float],
                    until: Optional[float]) -> bool:
    """:func:`in_window` applied to an event's ``t`` field."""
    return in_window(event.get("t"), since, until)


#: Event fields that carry a byte volume, in display priority order.
_BYTE_FIELDS = ("nbytes", "bytes", "total_bytes", "bytes_migrated")

#: Event fields that carry a simulated-seconds interval (``span.end``'s
#: payload) — aggregated separately from bytes, never conflated.
_DURATION_FIELDS = ("duration",)


class TraceSummary:
    """Aggregated view of one trace."""

    def __init__(self) -> None:
        self.total_events = 0
        self.t_min: Optional[float] = None
        self.t_max: Optional[float] = None
        #: kind -> [count, t_first, t_last, byte_total, duration_total]
        self.kinds: Dict[str, List] = {}

    def add(self, event: TraceEvent) -> None:
        self.total_events += 1
        kind = str(event.get("kind", "?"))
        t = event.get("t")
        row = self.kinds.get(kind)
        if row is None:
            row = [0, None, None, 0.0, 0.0]
            self.kinds[kind] = row
        row[0] += 1
        if is_number(t):
            if self.t_min is None or t < self.t_min:
                self.t_min = float(t)
            if self.t_max is None or t > self.t_max:
                self.t_max = float(t)
            if row[1] is None or t < row[1]:
                row[1] = float(t)
            if row[2] is None or t > row[2]:
                row[2] = float(t)
        for field in _BYTE_FIELDS:
            v = event.get(field)
            if is_number(v):
                row[3] += float(v)
                break
        for field in _DURATION_FIELDS:
            v = event.get(field)
            if is_number(v):
                row[4] += float(v)
                break


def summarize_trace(events: Sequence[TraceEvent]) -> TraceSummary:
    summary = TraceSummary()
    for ev in events:
        summary.add(ev)
    return summary


def render_trace_stats(path: str, kind: Optional[str] = None,
                       since: Optional[float] = None,
                       until: Optional[float] = None,
                       top: Optional[int] = None) -> str:
    """The ``repro stats`` report for one JSONL trace file.

    *kind* restricts the per-kind table to kinds equal to it or, with a
    trailing dot, sharing its prefix (``migration.``).  *since* /
    *until* keep only events whose simulation time falls in the
    half-open window ``[since, until)`` — see :func:`in_window`
    (events without a numeric ``t`` are dropped by either bound; an
    inverted window raises :class:`ValueError`).  *top* sorts the
    kinds by byte total descending and keeps the first N (default:
    every kind, name-sorted).
    """
    check_window(since, until)
    events = read_jsonl(path)
    if kind is not None:
        if kind.endswith("."):
            events = [e for e in events
                      if str(e.get("kind", "")).startswith(kind)]
        else:
            events = [e for e in events if e.get("kind") == kind]
    if since is not None or until is not None:
        events = [e for e in events if event_in_window(e, since, until)]
    summary = summarize_trace(events)
    if summary.total_events == 0:
        return f"{path}: no matching trace events"

    kinds = sorted(summary.kinds)
    if top is not None:
        if top < 1:
            raise ValueError("--top must be >= 1")
        # Fully deterministic ranking: byte total desc, then event
        # count desc, then name — kinds tying on every stat always
        # appear in the same order regardless of arrival order.
        kinds = sorted(kinds, key=lambda k: (-summary.kinds[k][3],
                                             -summary.kinds[k][0], k))
        kinds = kinds[:top]
    rows = []
    for k in kinds:
        count, t0, t1, nbytes, dur = summary.kinds[k]
        rows.append([
            k, count,
            "-" if t0 is None else round(t0, 3),
            "-" if t1 is None else round(t1, 3),
            "-" if nbytes == 0 else f"{nbytes / 1e9:.3f}",
            "-" if dur == 0 else f"{dur:.3f}",
        ])
    span = ("" if summary.t_min is None else
            f", t = [{summary.t_min:g}, {summary.t_max:g}] s")
    return render_table(
        ["kind", "events", "first t(s)", "last t(s)", "GB", "dur(s)"],
        rows,
        title=f"{path}: {summary.total_events} events{span}")
