"""The instrumentation profiler: who steals time from whom.

The ``perf.*`` timers (PR 1) answer "how long does one lookup take";
this module answers the question Figures 3/7 are actually about —
*where a whole run's time goes*: engine event dispatch by callback,
kernel lookups, ``max_min_fair`` solves, migration and re-integration
phases, policy replays.  A :class:`Profiler` maintains a call-stack of
named frames and accounts two clocks to each node of the resulting
tree:

* **wall-clock seconds** (``perf_counter``) — cumulative (frame plus
  its children) and *self* (frame minus children), the flamegraph
  quantities;
* **simulation seconds** — how far the simulated clock advanced while
  the frame was innermost, attributed via :meth:`Profiler.advance_sim`
  by the engine/IO tick drivers.

Determinism contract
--------------------
Wall-clock numbers never enter the trace bus: the profiler is a
sibling of the metrics registry, not a trace producer, and its output
lands in its own JSON document (the same quarantine rule as the sweep
runner's ``run_info.json``).  A same-seed run with ``--profile-out``
therefore produces a byte-identical trace to one without.

The hot-path guard is one attribute load and a ``None`` check
(``prof = OBS.profiler``; ``if prof is not None``), mirroring the
``OBS.hot`` pattern, so disabled profiling stays near-free.

Exports
-------
* :func:`profile_document` — the JSON profile (tree + flat hotspot
  aggregation + totals);
* :func:`collapsed_stacks` — semicolon-joined frame paths with integer
  self-microsecond counts, the format ``flamegraph.pl`` /
  speedscope / inferno consume;
* :func:`load_profile` / :func:`flatten` — read a profile back;
* :func:`render_profile` — the ``repro profile`` hotspot report.
"""

from __future__ import annotations

import json
from functools import wraps
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "ProfileNode",
    "Profiler",
    "ProfileError",
    "ROOT_NAME",
    "profiled",
    "profile_document",
    "collapsed_stacks",
    "load_profile",
    "flatten",
    "render_profile",
]

#: Name of the implicit root frame (everything the profiler measured).
ROOT_NAME = "run"

#: Profile document schema version.
PROFILE_VERSION = 1


class ProfileError(ValueError):
    """A profile JSON document that cannot be parsed or lacks the
    expected shape."""


class ProfileNode:
    """One node of the frame tree: a component name at a stack path."""

    __slots__ = ("name", "calls", "wall", "wall_self", "sim", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.wall = 0.0        # cumulative (frame + children)
        self.wall_self = 0.0   # exclusive (frame minus children)
        self.sim = 0.0         # sim-seconds advanced while innermost
        self.children: Dict[str, "ProfileNode"] = {}

    def child(self, name: str) -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = ProfileNode(name)
            self.children[name] = node
        return node

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "calls": self.calls,
            "wall_s": self.wall,
            "self_s": self.wall_self,
            "sim_s": self.sim,
        }
        if self.children:
            out["children"] = [self.children[k].to_dict()
                               for k in sorted(self.children)]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProfileNode({self.name!r}, calls={self.calls}, "
                f"wall={self.wall:.6f}, self={self.wall_self:.6f})")


class Profiler:
    """Hierarchical frame accounting with explicit push/pop.

    The clock is injectable so tests can drive the profiler with a
    deterministic counter and assert exact numbers.

    Examples
    --------
    >>> ticks = iter(range(100))
    >>> prof = Profiler(clock=lambda: float(next(ticks)))
    >>> prof.push("engine")
    >>> prof.push("kernel.locate")
    >>> prof.pop()
    >>> prof.pop()
    >>> prof.stop()
    >>> flat = prof.flat()
    >>> flat["kernel.locate"]["calls"]
    1
    """

    __slots__ = ("clock", "root", "_stack", "_sim_last", "_stopped")

    def __init__(self,
                 clock: Callable[[], float] = perf_counter) -> None:
        self.clock = clock
        self.root = ProfileNode(ROOT_NAME)
        #: Stack entries: [node, t_enter, child_wall_accumulated].
        self._stack: List[List[object]] = [[self.root, clock(), 0.0]]
        self._sim_last: Optional[float] = None
        self._stopped = False

    # ------------------------------------------------------------------
    # frame stack
    # ------------------------------------------------------------------
    def push(self, name: str) -> None:
        """Enter a frame named *name* under the current frame."""
        parent: ProfileNode = self._stack[-1][0]  # type: ignore[assignment]
        self._stack.append([parent.child(name), self.clock(), 0.0])

    def pop(self) -> None:
        """Leave the innermost frame, charging its elapsed wall time."""
        if len(self._stack) <= 1:
            raise RuntimeError("profiler pop without matching push")
        node, t0, child_wall = self._stack.pop()
        dt = self.clock() - t0                    # type: ignore[operator]
        node.calls += 1                           # type: ignore[union-attr]
        node.wall += dt                           # type: ignore[union-attr]
        node.wall_self += max(                    # type: ignore[union-attr]
            0.0, dt - child_wall)                 # type: ignore[operator]
        self._stack[-1][2] += dt                  # type: ignore[operator]

    def frame(self, name: str) -> "_Frame":
        """``with prof.frame("x"): ...`` — push now, pop on exit."""
        return _Frame(self, name)

    @property
    def depth(self) -> int:
        """Open frames beyond the root (0 when idle)."""
        return len(self._stack) - 1

    # ------------------------------------------------------------------
    # simulation clock
    # ------------------------------------------------------------------
    def advance_sim(self, t: float) -> None:
        """Attribute the simulated-time advance to *t* to the innermost
        open frame.  The first call only sets the baseline; a clock
        that moves backwards (a fresh Simulator in the same run)
        re-baselines rather than charging negative time."""
        last = self._sim_last
        if last is not None and t > last:
            node: ProfileNode = self._stack[-1][0]  # type: ignore[assignment]
            node.sim += t - last
        self._sim_last = t

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Close every open frame (crash-tolerant) and finalise the
        root's totals.  Idempotent."""
        if self._stopped:
            return
        while len(self._stack) > 1:
            self.pop()
        root, t0, child_wall = self._stack[0]
        dt = self.clock() - t0                    # type: ignore[operator]
        root.calls = 1                            # type: ignore[union-attr]
        root.wall = dt                            # type: ignore[union-attr]
        root.wall_self = max(                     # type: ignore[union-attr]
            0.0, dt - child_wall)                 # type: ignore[operator]
        self._stopped = True

    def flat(self) -> Dict[str, Dict[str, float]]:
        """Aggregate the tree by component name (the hotspot view):
        ``{name: {calls, wall_s, self_s, sim_s}}``.  ``wall_s`` sums
        the cumulative time of every tree node carrying the name, so a
        component reached through several paths reports its total."""
        out: Dict[str, Dict[str, float]] = {}

        def visit(node: ProfileNode) -> None:
            if node.name != ROOT_NAME:
                agg = out.setdefault(node.name, {
                    "calls": 0, "wall_s": 0.0, "self_s": 0.0, "sim_s": 0.0})
                agg["calls"] += node.calls
                agg["wall_s"] += node.wall
                agg["self_s"] += node.wall_self
                agg["sim_s"] += node.sim
            for name in sorted(node.children):
                visit(node.children[name])

        visit(self.root)
        return out

    @property
    def total_wall(self) -> float:
        return self.root.wall

    @property
    def total_sim(self) -> float:
        def total(node: ProfileNode) -> float:
            return node.sim + sum(total(c) for c in node.children.values())
        return total(self.root)


class _Frame:
    """Context manager pushing/popping one profiler frame."""

    __slots__ = ("_prof", "_name")

    def __init__(self, prof: Profiler, name: str) -> None:
        self._prof = prof
        self._name = name

    def __enter__(self) -> "_Frame":
        self._prof.push(self._name)
        return self

    def __exit__(self, *exc) -> None:
        self._prof.pop()


def profiled(name: str) -> Callable:
    """Decorator framing every call of a function as *name* under the
    active profiler.  For cool paths (resize, re-integration passes,
    policy replays): it costs one wrapper call even when profiling is
    off, so per-object hot paths inline the guard instead."""
    def deco(fn: Callable) -> Callable:
        @wraps(fn)
        def wrapper(*args, **kwargs):
            from repro.obs.runtime import OBS
            prof = OBS.profiler
            if prof is None:
                return fn(*args, **kwargs)
            prof.push(name)
            try:
                return fn(*args, **kwargs)
            finally:
                prof.pop()
        return wrapper
    return deco


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def profile_document(prof: Profiler,
                     command: Optional[str] = None,
                     meta: Optional[Dict[str, object]] = None
                     ) -> Dict[str, object]:
    """The JSON profile for one run.  Call after :meth:`Profiler.stop`
    (stops implicitly otherwise)."""
    prof.stop()
    doc: Dict[str, object] = {
        "kind": "repro.profile",
        "version": PROFILE_VERSION,
        "command": command,
        "total_wall_s": prof.total_wall,
        "total_sim_s": prof.total_sim,
        "unattributed_s": prof.root.wall_self,
        "root": prof.root.to_dict(),
        "flat": prof.flat(),
    }
    if meta:
        doc["meta"] = dict(meta)
    return doc


def collapsed_stacks(root: Dict[str, object]) -> List[str]:
    """Flamegraph-collapsed lines from a profile's ``root`` dict:
    ``frame;frame;frame <self-microseconds>`` per tree node with
    non-zero self time, root included as the base frame.  Integer
    counts (flamegraph.pl's unit); nodes rounding to zero are
    dropped."""
    lines: List[str] = []

    def visit(node: Dict[str, object], path: Tuple[str, ...]) -> None:
        here = path + (str(node.get("name", "?")),)
        micros = int(round(float(node.get("self_s", 0.0)) * 1e6))
        if micros > 0:
            lines.append(";".join(here) + f" {micros}")
        for child in node.get("children") or []:
            visit(child, here)

    visit(root, ())
    return lines


def load_profile(path: str) -> Dict[str, object]:
    """Read a ``--profile-out`` document back, validating its shape.
    Raises :class:`ProfileError` on anything that is not a v1 profile.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise ProfileError(f"{path}: {exc}") from exc
    except ValueError as exc:
        raise ProfileError(f"{path}: invalid JSON ({exc})") from exc
    if not isinstance(doc, dict) or doc.get("kind") != "repro.profile":
        raise ProfileError(
            f"{path}: not a repro profile document "
            f"(expected kind 'repro.profile')")
    if not isinstance(doc.get("root"), dict) \
            or not isinstance(doc.get("flat"), dict):
        raise ProfileError(f"{path}: profile document missing "
                           f"'root'/'flat' sections")
    return doc


def flatten(doc: Dict[str, object]) -> Dict[str, Dict[str, float]]:
    """The hotspot aggregation of a loaded profile document."""
    flat = doc.get("flat")
    if not isinstance(flat, dict):
        raise ProfileError("profile document has no 'flat' section")
    return flat  # type: ignore[return-value]


# ----------------------------------------------------------------------
# the `repro profile` report
# ----------------------------------------------------------------------
#: Frame-name prefix of engine event dispatch (per-callback frames).
ENGINE_PREFIX = "engine:"


def render_profile(doc: Dict[str, object], top: int = 15) -> str:
    """Hotspot report for one profile document: coverage line, top-N
    self-time table, and the per-event-kind dispatch rates."""
    from repro.metrics.report import render_table

    if top < 1:
        raise ValueError("--top must be >= 1")
    total = float(doc.get("total_wall_s") or 0.0)
    total_sim = float(doc.get("total_sim_s") or 0.0)
    unattributed = float(doc.get("unattributed_s") or 0.0)
    attributed = max(0.0, total - unattributed)
    coverage = (attributed / total * 100.0) if total > 0 else 0.0
    flat = flatten(doc)

    lines: List[str] = [
        f"profile — repro {doc.get('command') or '?'}",
        f"measured wall-clock : {total:.6f} s "
        f"({coverage:.1f}% attributed to named components)",
        f"simulated time      : {total_sim:g} s",
    ]

    # Hotspots by self time; ties (identical timings from a fake or
    # coarse clock) break by name so the table is stable.
    names = sorted(flat,
                   key=lambda k: (-flat[k]["self_s"], k))[:top]
    rows = []
    for name in names:
        f = flat[name]
        pct = (f["self_s"] / total * 100.0) if total > 0 else 0.0
        rows.append([
            name,
            int(f["calls"]),
            f"{f['self_s']:.6f}",
            f"{f['wall_s']:.6f}",
            f"{pct:.1f}",
            "-" if f["sim_s"] == 0 else f"{f['sim_s']:g}",
        ])
    lines += ["", render_table(
        ["component", "calls", "self (s)", "cum (s)", "self %", "sim (s)"],
        rows, title=f"top {len(rows)} hotspots by self time")]

    engine = sorted(k for k in flat if k.startswith(ENGINE_PREFIX))
    if engine:
        erows = []
        for name in engine:
            f = flat[name]
            rate = f["calls"] / f["wall_s"] if f["wall_s"] > 0 else 0.0
            erows.append([
                name[len(ENGINE_PREFIX):],
                int(f["calls"]),
                f"{f['wall_s']:.6f}",
                "-" if f["sim_s"] == 0 else f"{f['sim_s']:g}",
                f"{rate:,.0f}",
            ])
        lines += ["", render_table(
            ["event callback", "events", "wall (s)", "sim (s)",
             "events/s (wall)"],
            erows, title="engine event dispatch")]
    return "\n".join(lines)
