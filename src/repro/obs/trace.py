"""The trace bus: structured events with pluggable sinks.

Every interesting state transition in the simulator — an engine tick, a
flow starting or draining, an object migrating, a server changing power
state — is a *trace event*: a flat dict with a ``kind`` (dotted,
namespaced by subsystem), a simulation timestamp ``t``, and arbitrary
JSON-serialisable fields.  Producers call
:meth:`TraceBus.emit(kind, t, **fields) <TraceBus.emit>`; consumers
attach sinks.

Three sinks cover the use cases:

* :class:`RingBufferSink` — bounded in-memory capture (tests, REPL
  archaeology);
* :class:`JSONLSink` — one JSON object per line, the ``--trace-out``
  format that :func:`read_jsonl` parses back field-for-field;
* :class:`NullSink` — swallows events; attaching it keeps the bus
  "active" (emit cost is paid) without retaining anything, which is
  what the overhead guard measures.

With **no** sink attached, :meth:`TraceBus.emit` returns after a single
truthiness check — the always-on instrumentation in the hot paths costs
one branch.  Producers that would build expensive field dicts should
guard on :attr:`TraceBus.active` first.

Timestamps are *simulation* time, never wall-clock, so two identically
seeded runs emit identical traces.  Drivers that own a clock publish it
via :attr:`TraceBus.clock`; emitters without their own notion of time
pass ``t=None`` and inherit the bus clock.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Dict, Iterable, List, Optional, Union

__all__ = [
    "TraceEvent",
    "TraceParseError",
    "Sink",
    "NullSink",
    "RingBufferSink",
    "JSONLSink",
    "TraceBus",
    "read_jsonl",
    "iter_jsonl",
]

#: A trace event is a flat dict: ``{"kind": str, "t": float|None, ...}``.
TraceEvent = Dict[str, object]


class Sink:
    """Sink protocol: anything with ``write(event)`` (and optionally
    ``close()``) can be attached to a :class:`TraceBus`."""

    def write(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        pass


class NullSink(Sink):
    """Accepts and discards every event (keeps the bus active)."""

    def write(self, event: TraceEvent) -> None:
        pass


class RingBufferSink(Sink):
    """Keep the last *capacity* events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._buf: deque = deque(maxlen=capacity)

    def write(self, event: TraceEvent) -> None:
        self._buf.append(event)

    def __len__(self) -> int:
        return len(self._buf)

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """Captured events, oldest first; *kind* filters by exact kind
        or, with a trailing ``.``, by prefix (``"flow."``)."""
        evs = list(self._buf)
        if kind is None:
            return evs
        if kind.endswith("."):
            return [e for e in evs if str(e.get("kind", "")).startswith(kind)]
        return [e for e in evs if e.get("kind") == kind]

    def clear(self) -> None:
        self._buf.clear()


class JSONLSink(Sink):
    """Append events to a JSONL file (one compact, key-sorted JSON
    object per line — byte-identical across identically seeded runs)."""

    def __init__(self, path_or_file: Union[str, "IO[str]"]) -> None:
        if hasattr(path_or_file, "write"):
            self._fh: IO[str] = path_or_file  # type: ignore[assignment]
            self._owns = False
            self.path: Optional[str] = getattr(path_or_file, "name", None)
        else:
            self.path = str(path_or_file)
            self._fh = open(self.path, "w", encoding="utf-8")
            self._owns = True
        self.events_written = 0

    def write(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event, sort_keys=True, default=repr,
                                  separators=(",", ":")) + "\n")
        self.events_written += 1

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TraceParseError(ValueError):
    """A JSONL trace line that is not a JSON object (corrupt or
    truncated).  Carries the 1-based line number so CLI surfaces can
    point at the offending line without a traceback."""

    def __init__(self, source: str, line_no: int, reason: str) -> None:
        self.source = source
        self.line_no = line_no
        self.reason = reason
        super().__init__(f"{source}: line {line_no}: {reason}")


def iter_jsonl(path_or_file: Union[str, "IO[str]"]):
    """Yield ``(line_no, event)`` pairs from a JSONL trace (1-based
    line numbers, blank lines skipped).  Raises
    :class:`TraceParseError` on a corrupt or truncated line."""
    if hasattr(path_or_file, "read"):
        lines: Iterable[str] = path_or_file  # type: ignore[assignment]
        source = getattr(path_or_file, "name", "<stream>")
        yield from _parse_lines(lines, source)
    else:
        with open(str(path_or_file), encoding="utf-8") as fh:
            yield from _parse_lines(fh, str(path_or_file))


def _parse_lines(lines: Iterable[str], source: str):
    for line_no, ln in enumerate(lines, start=1):
        if not ln.strip():
            continue
        try:
            event = json.loads(ln)
        except json.JSONDecodeError as exc:
            raise TraceParseError(source, line_no,
                                  f"invalid JSON ({exc.msg})") from exc
        if not isinstance(event, dict):
            raise TraceParseError(
                source, line_no,
                f"expected a JSON object, got {type(event).__name__}")
        yield line_no, event


def read_jsonl(path_or_file: Union[str, "IO[str]"]) -> List[TraceEvent]:
    """Parse a JSONL trace back into its event dicts (blank lines are
    skipped) — the inverse of :class:`JSONLSink`.  Raises
    :class:`TraceParseError` on corrupt lines."""
    return [event for _line_no, event in iter_jsonl(path_or_file)]


class TraceBus:
    """Process-local event fan-out.

    Examples
    --------
    >>> bus = TraceBus()
    >>> sink = RingBufferSink()
    >>> _ = bus.attach(sink)
    >>> bus.emit("flow.start", t=1.0, name="client")
    >>> sink.events("flow.start")[0]["name"]
    'client'
    """

    __slots__ = ("sinks", "clock")

    def __init__(self) -> None:
        self.sinks: List[Sink] = []
        #: Current simulation time, published by whichever driver owns
        #: the clock; used when emitters pass ``t=None``.
        self.clock: float = 0.0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one sink is attached.  Producers guard
        expensive field construction on this."""
        return bool(self.sinks)

    def attach(self, sink: Sink) -> Sink:
        self.sinks.append(sink)
        return sink

    def detach(self, sink: Sink) -> None:
        self.sinks.remove(sink)

    def capture(self, capacity: int = 4096) -> "_Capture":
        """``with bus.capture() as sink:`` — scoped ring-buffer capture."""
        return _Capture(self, RingBufferSink(capacity))

    # ------------------------------------------------------------------
    def emit(self, kind: str, t: Optional[float] = None,
             **fields: object) -> None:
        """Publish one event to every sink (no-op without sinks)."""
        if not self.sinks:
            return
        event: TraceEvent = {"kind": kind,
                             "t": self.clock if t is None else t}
        if fields:
            event.update(fields)
        for sink in self.sinks:
            sink.write(event)


class _Capture:
    """Context manager attaching a ring buffer for its scope."""

    def __init__(self, bus: TraceBus, sink: RingBufferSink) -> None:
        self._bus = bus
        self.sink = sink

    def __enter__(self) -> RingBufferSink:
        self._bus.attach(self.sink)
        return self.sink

    def __exit__(self, *exc) -> None:
        self._bus.detach(self.sink)
