"""The metrics registry: named counters, gauges and histograms.

Instruments are created lazily by name (+ optional labels) and live for
the process; :meth:`MetricsRegistry.snapshot` returns a plain,
JSON-able dict in **sorted-name order** — deterministic across runs no
matter in which order the hot paths touched their instruments — and
:meth:`MetricsRegistry.render` produces the same ASCII table style the
benchmark reports use (via :mod:`repro.metrics.report`).

Naming conventions (see docs/OBSERVABILITY.md):

* dotted, subsystem-first: ``engine.events``, ``migration.bytes``;
* wall-clock timing histograms sit under ``perf.*`` and are recorded
  only while hot-path profiling is enabled
  (:attr:`repro.obs.runtime.Runtime.hot`), so the default snapshot
  stays deterministic — simulation state only, no wall time.

The hot-path helpers :meth:`MetricsRegistry.inc` /
:meth:`MetricsRegistry.observe` are get-or-create shorthands; prefer
binding the instrument once (``c = registry.counter("x"); c.inc()``)
in per-tick loops.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]

#: Default histogram buckets for wall-clock seconds (perf timers).
TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


def _key(name: str, labels: Mapping[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        self.value += n


class Gauge:
    """Point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, v: Number) -> None:
        self.value = v

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def dec(self, n: Number = 1) -> None:
        self.value -= n


class Histogram:
    """Fixed-bucket histogram (cumulative-style: ``counts[i]`` counts
    observations ``<= bounds[i]``; the implicit last bucket is +inf)."""

    __slots__ = ("name", "bounds", "counts", "overflow", "total", "count")

    def __init__(self, name: str,
                 buckets: Sequence[float] = TIME_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0.0
        self.count = 0

    def observe(self, v: Number) -> None:
        self.total += v
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (``0 <= q <= 1``) by linear
        interpolation within the bucket holding the target rank — the
        Prometheus ``histogram_quantile`` estimate.  The first bucket
        interpolates from a lower bound of 0; ranks falling in the
        overflow bucket clamp to the largest finite bound (the estimate
        cannot exceed what the buckets resolve)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.counts):
            if n and cum + n >= target:
                frac = (target - cum) / n
                return lower + (bound - lower) * min(1.0, max(0.0, frac))
            cum += n
            lower = bound
        return self.bounds[-1]

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": {f"le_{b:g}": c
                        for b, c in zip(self.bounds, self.counts)},
            "overflow": self.overflow,
        }


class _Timer:
    """``with registry.timer("perf.x"):`` — observes elapsed seconds."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram) -> None:
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Process-local instrument store.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("cluster.writes").inc()
    >>> reg.gauge("cluster.active_servers").set(6)
    >>> snap = reg.snapshot()
    >>> snap["cluster.active_servers"], snap["cluster.writes"]
    (6, 1)
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get(self, name: str, cls, labels: Mapping[str, object],
             **kwargs) -> object:
        key = _key(name, labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(key, **kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(name, Counter, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(name, Gauge, labels)  # type: ignore[return-value]

    def histogram(self, name: str,
                  buckets: Sequence[float] = TIME_BUCKETS,
                  **labels: object) -> Histogram:
        return self._get(name, Histogram, labels,  # type: ignore[return-value]
                         buckets=buckets)

    def timer(self, name: str, **labels: object) -> _Timer:
        return _Timer(self.histogram(name, **labels))

    # Hot-path shorthands ----------------------------------------------
    def inc(self, name: str, n: Number = 1) -> None:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self.counter(name)
        inst.inc(n)  # type: ignore[union-attr]

    def observe(self, name: str, v: Number) -> None:
        inst = self._instruments.get(name)
        if inst is None:
            inst = self.histogram(name)
        inst.observe(v)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, key: str) -> bool:
        return key in self._instruments

    def reset(self) -> None:
        """Drop every instrument (a fresh registry for the next run)."""
        self._instruments.clear()

    def snapshot(self, include_perf: bool = True) -> Dict[str, object]:
        """``{metric key: value}`` in sorted-key order.  Counters and
        gauges map to their value; histograms to a stats dict.  With
        ``include_perf=False`` the wall-clock ``perf.*`` instruments
        are omitted — the deterministic, simulation-state-only view."""
        out: Dict[str, object] = {}
        for key in sorted(self._instruments):
            if not include_perf and key.startswith("perf."):
                continue
            inst = self._instruments[key]
            if isinstance(inst, Histogram):
                out[key] = inst.to_dict()
            else:
                out[key] = inst.value  # type: ignore[union-attr]
        return out

    def render(self, title: Optional[str] = "metrics") -> str:
        """ASCII table of the snapshot (histograms as count/mean/sum)."""
        from repro.metrics.report import render_table
        rows: List[List[object]] = []
        for key in sorted(self._instruments):
            inst = self._instruments[key]
            if isinstance(inst, Histogram):
                rows.append([key, "histogram",
                             f"n={inst.count} mean={inst.mean:.3g} "
                             f"p50={inst.quantile(0.5):.3g} "
                             f"p95={inst.quantile(0.95):.3g} "
                             f"p99={inst.quantile(0.99):.3g} "
                             f"sum={inst.total:.6g}"])
            elif isinstance(inst, Gauge):
                rows.append([key, "gauge", inst.value])
            else:
                rows.append([key, "counter", inst.value])
        if not rows:
            return f"{title}: (no metrics recorded)" if title else \
                "(no metrics recorded)"
        return render_table(["metric", "type", "value"], rows, title=title)
