"""The process-wide observability runtime.

Instrumented modules import the :data:`OBS` singleton once and use its
members:

* ``OBS.bus`` — the :class:`~repro.obs.trace.TraceBus`.  Emitting with
  no sink attached is a single branch; call sites that build expensive
  field dicts guard on ``OBS.bus.active``.
* ``OBS.spans`` — the :class:`~repro.obs.spans.SpanTracker` that pairs
  ``span.begin``/``span.end`` events around the major lifecycles
  (flows, resize cycles, re-integration passes, recovery).
* ``OBS.metrics`` — the :class:`~repro.obs.metrics.MetricsRegistry` of
  always-on simulation counters/gauges.
* ``OBS.hot`` — master switch for *hot-path* profiling (per-lookup
  counters and wall-clock ``perf.*`` timers on ring lookup, placement,
  fair-share solve, dirty-table insert).  Off by default so the
  per-operation cost of instrumentation is one ``if OBS.hot`` check;
  the CLI's ``--stats`` flag and perf investigations turn it on.
* ``OBS.profiler`` — the optional
  :class:`~repro.obs.profile.Profiler` attributing hierarchical
  wall-clock + sim-time to named components (``--profile-out``).
  ``None`` by default; call sites guard with
  ``prof = OBS.profiler`` / ``if prof is not None`` so disabled
  profiling costs one attribute load and a ``None`` check.

Keeping the runtime global (rather than threading it through every
constructor) mirrors how logging works: producers are unconditional,
consumers opt in.  Tests and drivers that need isolation call
:meth:`Runtime.reset` or swap sinks within a ``bus.capture()`` scope.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracker
from repro.obs.trace import TraceBus

__all__ = ["Runtime", "OBS", "get_runtime"]


class Runtime:
    """Bundle of trace bus + span tracker + metrics registry + hot-path
    switch."""

    __slots__ = ("bus", "spans", "metrics", "hot", "profiler")

    def __init__(self) -> None:
        self.bus = TraceBus()
        self.spans = SpanTracker(self.bus)
        self.metrics = MetricsRegistry()
        self.hot = False
        self.profiler = None

    def reset(self) -> None:
        """Return to the pristine state: no sinks, empty registry, hot
        profiling off, no profiler, clock at zero, span ids rewound."""
        for sink in list(self.bus.sinks):
            self.bus.detach(sink)
            sink.close()
        self.bus.clock = 0.0
        self.spans.reset()
        self.metrics.reset()
        self.hot = False
        self.profiler = None


#: The singleton every instrumented module binds at import time.
OBS = Runtime()


def get_runtime() -> Runtime:
    return OBS
