"""Run-vs-run comparison: the ``repro compare`` command.

Diffs two run directories (or two standalone JSON artifacts) and
renders a markdown verdict.  A *run directory* is whatever a sweep
task or a ``--trace-out``/``--profile-out`` invocation left behind —
any subset of:

* ``metrics.json`` — metrics-registry snapshot (sim-derived);
* ``trace.jsonl`` — the JSONL trace (span-duration distributions);
* ``profile.json`` — a ``repro.profile`` document (wall-clock
  hotspots);
* ``analytics.json`` / ``analytics_rollup.json`` — ``repro.analytics``
  documents (latency percentiles and series summaries, sim-derived);
* ``bench*.json`` / ``perf_*.json`` — bench reports
  (``_bench_utils.emit_report`` / ``perf_core_timings``-shaped).

Classification follows the determinism contract: **sim-derived**
quantities (metrics, span durations) are byte-reproducible, so any
difference is reported as *drift* — interesting, but a regression only
under ``--strict`` (same-seed runs should not drift at all).
**Wall-clock** quantities (profile self-seconds, bench timings) are
noisy by nature, so they regress only beyond a relative *threshold*;
profile frames additionally must clear an absolute *min-seconds*
floor (single-frame nanosecond jitter never fails a gate — bench
medians are already statistically settled, so the floor does not
apply to them).

Exit codes: 0 = OK, 1 = regression(s) beyond threshold.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CompareError",
    "Delta",
    "ComparisonResult",
    "compare_runs",
    "render_compare",
    "DEFAULT_THRESHOLD",
    "DEFAULT_MIN_SECONDS",
]

#: Default relative regression threshold for wall-clock quantities
#: (0.25 = fail when B is more than 25% slower than A).
DEFAULT_THRESHOLD = 0.25

#: Absolute floor for profile frames: hotspots where both sides sit
#: below this many seconds are ignored by the gate (pure jitter).
DEFAULT_MIN_SECONDS = 1e-4

#: Artifact filenames probed inside a run directory.
METRICS_FILE = "metrics.json"
TRACE_FILE = "trace.jsonl"
PROFILE_FILE = "profile.json"
ANALYTICS_FILE = "analytics.json"
ANALYTICS_ROLLUP_FILE = "analytics_rollup.json"


class CompareError(ValueError):
    """Unusable comparison input (missing paths, no artifacts, or
    artifacts of unrecognised shape)."""


class Delta:
    """One compared quantity."""

    __slots__ = ("section", "name", "a", "b", "unit", "kind")

    def __init__(self, section: str, name: str,
                 a: Optional[float], b: Optional[float],
                 unit: str, kind: str) -> None:
        self.section = section
        self.name = name
        self.a = a
        self.b = b
        self.unit = unit
        #: "regression" | "improvement" | "drift" | "added" | "removed"
        self.kind = kind

    @property
    def rel(self) -> Optional[float]:
        """Relative change (B-A)/A, when defined."""
        if self.a is None or self.b is None or self.a == 0:
            return None
        return (self.b - self.a) / abs(self.a)

    def to_dict(self) -> Dict[str, object]:
        return {"section": self.section, "name": self.name,
                "a": self.a, "b": self.b, "unit": self.unit,
                "kind": self.kind, "rel": self.rel}


class ComparisonResult:
    """Everything ``repro compare`` found, pre-verdict."""

    def __init__(self, label_a: str, label_b: str,
                 threshold: float, min_seconds: float,
                 strict: bool) -> None:
        self.label_a = label_a
        self.label_b = label_b
        self.threshold = threshold
        self.min_seconds = min_seconds
        self.strict = strict
        self.deltas: List[Delta] = []
        self.sections: List[str] = []
        self.skipped: List[str] = []

    # ------------------------------------------------------------------
    def add(self, delta: Delta) -> None:
        self.deltas.append(delta)

    @property
    def regressions(self) -> List[Delta]:
        out = [d for d in self.deltas if d.kind == "regression"]
        if self.strict:
            out += [d for d in self.deltas if d.kind == "drift"]
        return out

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for d in self.deltas:
            out[d.kind] = out.get(d.kind, 0) + 1
        return out


# ----------------------------------------------------------------------
# numeric flattening
# ----------------------------------------------------------------------
def _is_number(v: object) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _flatten_numeric(obj: object, prefix: str = "",
                     out: Optional[Dict[str, float]] = None
                     ) -> Dict[str, float]:
    """Dotted-path → value for every numeric leaf of a JSON object."""
    if out is None:
        out = {}
    if _is_number(obj):
        out[prefix or "value"] = float(obj)   # type: ignore[arg-type]
    elif isinstance(obj, dict):
        for k in sorted(obj):
            key = f"{prefix}.{k}" if prefix else str(k)
            _flatten_numeric(obj[k], key, out)
    elif isinstance(obj, (list, tuple)):
        for i, v in enumerate(obj):
            _flatten_numeric(v, f"{prefix}[{i}]", out)
    return out


def _diff_maps(result: ComparisonResult, section: str, unit: str,
               a: Mapping[str, float], b: Mapping[str, float],
               wall: bool, floor: float = 0.0) -> None:
    """Compare two flat name→value maps; *wall* selects the
    threshold-gated classification, otherwise differences are drift.
    *floor* drops wall pairs where both sides are below it (jitter);
    bench medians are already statistically settled, so only the
    profile section passes one."""
    for name in sorted(set(a) | set(b)):
        va, vb = a.get(name), b.get(name)
        if va is None:
            result.add(Delta(section, name, None, vb, unit, "added"))
            continue
        if vb is None:
            result.add(Delta(section, name, va, None, unit, "removed"))
            continue
        if va == vb:
            continue
        if not wall:
            result.add(Delta(section, name, va, vb, unit, "drift"))
            continue
        if max(va, vb) < floor:
            continue       # below the jitter floor: not even drift
        rel = (vb - va) / abs(va) if va != 0 else float("inf")
        if rel > result.threshold:
            kind = "regression"
        elif rel < -result.threshold:
            kind = "improvement"
        else:
            kind = "drift"
        result.add(Delta(section, name, va, vb, unit, kind))


# ----------------------------------------------------------------------
# artifact loaders
# ----------------------------------------------------------------------
def _load_json(path: str) -> object:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except ValueError as exc:
        raise CompareError(f"{path}: invalid JSON ({exc})") from exc
    except OSError as exc:
        raise CompareError(f"{path}: {exc}") from exc


def _span_distributions(trace_path: str) -> Dict[str, float]:
    """Per-span-name closed count + sim-duration stats from one trace."""
    from repro.obs.report import collect_spans
    from repro.obs.trace import read_jsonl

    spans = collect_spans(read_jsonl(trace_path))
    out: Dict[str, float] = {}
    durs: Dict[str, List[float]] = {}
    for s in spans:
        if s.open or s.duration is None:
            continue
        durs.setdefault(s.name, []).append(s.duration)
    for name, ds in durs.items():
        ds.sort()
        out[f"{name}.count"] = float(len(ds))
        out[f"{name}.total_s"] = sum(ds)
        out[f"{name}.max_s"] = ds[-1]
        out[f"{name}.p50_s"] = ds[len(ds) // 2]
    return out


def _profile_hotspots(path: str) -> Dict[str, float]:
    """Component → self-seconds from one profile document."""
    from repro.obs.profile import flatten, load_profile

    flat = flatten(load_profile(path))
    return {name: float(agg.get("self_s", 0.0))
            for name, agg in flat.items()}


def _analytics_summary(path: str) -> Dict[str, float]:
    """Sim-derived headline numbers from an analytics document (single
    run or sweep rollup): latency percentiles/counts per flow class and
    total/peak per series — never the raw per-bin arrays, which would
    drown the verdict table in thousands of rows."""
    from repro.obs.analytics import (ANALYTICS_KIND, AnalyticsError,
                                     SERIES_KEYS, load_analytics)

    try:
        doc = load_analytics(path)
    except AnalyticsError as exc:
        raise CompareError(str(exc)) from exc
    out: Dict[str, float] = {"bins": float(doc.get("bins", 0))}
    if doc["kind"] == ANALYTICS_KIND:
        for name, entry in doc["latency"].items():
            for key in ("completed", "interrupted", "cancelled", "open",
                        "p50", "p99", "p999", "mean", "max",
                        "bytes_completed", "bytes_wasted"):
                v = entry.get(key)
                if _is_number(v):
                    out[f"latency.{name}.{key}"] = float(v)
        for key in SERIES_KEYS:
            vals = [v for v in (doc["series"].get(key) or [])
                    if _is_number(v)]
            if vals:
                out[f"series.{key}.total"] = float(sum(vals))
                out[f"series.{key}.peak"] = float(max(vals))
    else:                                  # rollup
        out["tasks"] = float(len(doc.get("tasks") or []))
        for name, band in doc["latency_bands"].items():
            for key in ("completed", "interrupted", "cancelled", "open"):
                v = band.get(key)
                if _is_number(v):
                    out[f"latency.{name}.{key}"] = float(v)
            for q in ("p50", "p99", "p999"):
                sub = band.get(q)
                if isinstance(sub, dict):
                    for edge in ("lo", "p50", "hi"):
                        v = sub.get(edge)
                        if _is_number(v):
                            out[f"latency.{name}.{q}.{edge}"] = float(v)
        for key, band in doc["series_bands"].items():
            his = [v for v in (band.get("hi") or []) if _is_number(v)]
            if his:
                out[f"series.{key}.peak_hi"] = float(max(his))
    return out


def _bench_timings(doc: object) -> Optional[Dict[str, float]]:
    """Timing map from any of the bench JSON shapes in the repo:

    * ``perf_core_baseline.json``: ``{"benches": {name: {median_s}}}``
    * ``perf_core_timings.json``: ``{"data": {path::name: {median_s}}}``
    * ``emit_report`` JSON: ``{"name", "report", "data": {...}}`` —
      numeric leaves whose path ends in ``_s`` count as timings.

    Bench names are normalised to their last ``::`` segment so a
    timings file gates against a baseline written by hand.
    """
    if not isinstance(doc, dict):
        return None
    table = None
    if isinstance(doc.get("benches"), dict):
        table = doc["benches"]
    elif isinstance(doc.get("data"), dict):
        table = doc["data"]
    if table is None:
        return None
    out: Dict[str, float] = {}
    for raw_name in sorted(table):
        entry = table[raw_name]
        name = str(raw_name).split("::")[-1]
        if _is_number(entry):
            out[name] = float(entry)
            continue
        if not isinstance(entry, dict):
            continue
        # One timing per bench — median preferred (what the committed
        # baselines record), mean as fallback — so A and B line up
        # even when one side records more statistics than the other.
        for key in ("median_s", "mean_s"):
            if _is_number(entry.get(key)):
                out[name] = float(entry[key])
                break
    return out or None


# ----------------------------------------------------------------------
# the comparison
# ----------------------------------------------------------------------
def _run_artifacts(path: str) -> Dict[str, str]:
    """Map artifact kind → file path for one comparison side."""
    if os.path.isdir(path):
        found: Dict[str, str] = {}
        for kind, fname in (("metrics", METRICS_FILE),
                            ("trace", TRACE_FILE),
                            ("profile", PROFILE_FILE),
                            ("analytics", ANALYTICS_FILE),
                            ("analytics", ANALYTICS_ROLLUP_FILE)):
            full = os.path.join(path, fname)
            if os.path.isfile(full):
                found.setdefault(kind, full)
        for entry in sorted(os.listdir(path)):
            if not entry.endswith(".json") \
                    or entry in (METRICS_FILE, PROFILE_FILE,
                                 ANALYTICS_FILE, ANALYTICS_ROLLUP_FILE):
                continue
            if _bench_timings(_load_json_quiet(os.path.join(path, entry))) \
                    is not None:
                found.setdefault("bench", os.path.join(path, entry))
        if not found:
            raise CompareError(
                f"{path}: no comparable artifacts (looked for "
                f"{METRICS_FILE}, {TRACE_FILE}, {PROFILE_FILE}, "
                f"bench *.json)")
        return found
    if not os.path.isfile(path):
        raise CompareError(f"{path}: no such file or directory")
    if path.endswith(".jsonl"):
        return {"trace": path}
    doc = _load_json(path)
    if isinstance(doc, dict) and doc.get("kind") == "repro.profile":
        return {"profile": path}
    if isinstance(doc, dict) and doc.get("kind") in (
            "repro.analytics", "repro.analytics.rollup"):
        return {"analytics": path}
    if _bench_timings(doc) is not None:
        return {"bench": path}
    if isinstance(doc, dict):
        return {"metrics": path}
    raise CompareError(f"{path}: unrecognised artifact shape")


def _load_json_quiet(path: str) -> object:
    try:
        return _load_json(path)
    except CompareError:
        return None


def compare_runs(path_a: str, path_b: str,
                 threshold: float = DEFAULT_THRESHOLD,
                 min_seconds: float = DEFAULT_MIN_SECONDS,
                 strict: bool = False) -> ComparisonResult:
    """Compare two runs; see the module docstring for semantics."""
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    arts_a = _run_artifacts(path_a)
    arts_b = _run_artifacts(path_b)
    result = ComparisonResult(path_a, path_b, threshold, min_seconds,
                              strict)

    common = [k for k in ("metrics", "trace", "analytics", "profile",
                          "bench")
              if k in arts_a and k in arts_b]
    for kind in sorted(set(arts_a) ^ set(arts_b)):
        side = "A" if kind in arts_a else "B"
        result.skipped.append(
            f"{kind}: only present in {side} — skipped")
    if not common:
        raise CompareError(
            f"no artifact kind present on both sides "
            f"(A has {sorted(arts_a)}, B has {sorted(arts_b)})")

    if "metrics" in common:
        result.sections.append("metrics")
        a = _flatten_numeric(_load_json(arts_a["metrics"]))
        b = _flatten_numeric(_load_json(arts_b["metrics"]))
        _diff_maps(result, "metrics", "", a, b, wall=False)
    if "trace" in common:
        result.sections.append("spans")
        _diff_maps(result, "spans", "s",
                   _span_distributions(arts_a["trace"]),
                   _span_distributions(arts_b["trace"]), wall=False)
    if "analytics" in common:
        result.sections.append("analytics")
        _diff_maps(result, "analytics", "",
                   _analytics_summary(arts_a["analytics"]),
                   _analytics_summary(arts_b["analytics"]), wall=False)
    if "profile" in common:
        result.sections.append("profile")
        _diff_maps(result, "profile", "s",
                   _profile_hotspots(arts_a["profile"]),
                   _profile_hotspots(arts_b["profile"]), wall=True,
                   floor=min_seconds)
    if "bench" in common:
        result.sections.append("bench")
        a_t = _bench_timings(_load_json(arts_a["bench"])) or {}
        b_t = _bench_timings(_load_json(arts_b["bench"])) or {}
        _diff_maps(result, "bench", "s", a_t, b_t, wall=True)
    return result


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt(v: Optional[float], unit: str) -> str:
    if v is None:
        return "-"
    if unit == "s":
        return f"{v:.6f}"
    return f"{v:g}"


def _fmt_rel(rel: Optional[float]) -> str:
    if rel is None:
        return "-"
    return f"{rel * 100.0:+.1f}%"


def _md_table(headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return lines


#: Section-table row cap; the per-kind counts stay exact.
MAX_ROWS_PER_SECTION = 40

_SECTION_TITLES = {
    "metrics": "Metrics (sim-derived)",
    "spans": "Span durations (sim-derived)",
    "analytics": "Analytics: latency percentiles & series (sim-derived)",
    "profile": "Profile hotspots (wall-clock)",
    "bench": "Bench timings (wall-clock)",
}


def render_compare(result: ComparisonResult) -> str:
    """The markdown verdict document."""
    counts = result.counts()
    verdict = "OK" if result.ok else "REGRESSED"
    out: List[str] = [
        "# Run comparison",
        "",
        f"* A: `{result.label_a}`",
        f"* B: `{result.label_b}`",
        f"* wall-clock threshold: ±{result.threshold * 100.0:g}% "
        f"(floor {result.min_seconds:g} s)"
        + ("; strict: sim drift fails too" if result.strict else ""),
        "",
        f"**Verdict: {verdict}** — "
        + (", ".join(f"{counts[k]} {k}(s)" for k in sorted(counts))
           if counts else "no differences"),
        "",
    ]
    for note in result.skipped:
        out.append(f"> note: {note}")
    if result.skipped:
        out.append("")

    order = {"regression": 0, "removed": 1, "added": 2,
             "drift": 3, "improvement": 4}
    for section in result.sections:
        deltas = [d for d in result.deltas if d.section == section]
        out += [f"## {_SECTION_TITLES.get(section, section)}", ""]
        if not deltas:
            out += ["identical.", ""]
            continue
        deltas.sort(key=lambda d: (order.get(d.kind, 9),
                                   -(abs(d.rel) if d.rel is not None
                                     else float("inf")), d.name))
        rows = [[d.name, _fmt(d.a, d.unit), _fmt(d.b, d.unit),
                 _fmt_rel(d.rel), d.kind]
                for d in deltas[:MAX_ROWS_PER_SECTION]]
        out += _md_table(["name", "A", "B", "Δ rel", "class"], rows)
        if len(deltas) > MAX_ROWS_PER_SECTION:
            out.append(f"\n({len(deltas) - MAX_ROWS_PER_SECTION} further "
                       f"rows elided)")
        out.append("")
    return "\n".join(out).rstrip() + "\n"
