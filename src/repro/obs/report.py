"""Run analysis: the ``repro check`` and ``repro report`` commands.

Both consume a JSONL trace written by ``--trace-out`` and turn the raw
event stream into judgement:

* :func:`check_trace` replays the trace through the stock
  :mod:`~repro.obs.invariants` suite; ``repro check`` exits non-zero
  and lists the offending lines if any invariant was violated.
* :func:`render_run_report` produces a markdown run report — lifecycle
  timeline, span-duration statistics, migration/recovery byte
  breakdown per server, and the invariant summary — the artefact a
  reviewer reads *instead of* 100k raw events.

Violation indices are JSONL line numbers, so ``repro check``'s output
is directly greppable against the trace file.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.invariants import Checker, InvariantSuite, Violation
from repro.obs.stats import check_window, event_in_window
from repro.obs.trace import TraceEvent, iter_jsonl

__all__ = [
    "EmptyTraceError",
    "check_trace",
    "render_check",
    "SpanRecord",
    "collect_spans",
    "render_run_report",
]

#: Cap on violations listed in full (the count is always exact).
MAX_LISTED_VIOLATIONS = 50


class EmptyTraceError(ValueError):
    """A trace file with zero events: ``repro check`` / ``repro
    report`` refuse to judge it (exit code 2) rather than emit an
    all-pass verdict or a degenerate report over nothing."""

    def __init__(self, path: str) -> None:
        super().__init__(
            f"{path}: empty trace (0 events) — nothing to analyse; "
            f"was the run executed with --trace-out?")
        self.path = path

#: Point events worth a timeline row, with a one-line detail renderer.
_MILESTONE_KINDS = (
    "power.resize",
    "version.advance",
    "server.fail",
    "migration.full",
    "migration.addition",
    "recovery.rereplicate",
)


# ----------------------------------------------------------------------
# check
# ----------------------------------------------------------------------
def check_trace(path: str,
                checkers: Optional[List[Checker]] = None
                ) -> InvariantSuite:
    """Replay the trace at *path* through an invariant suite (stock
    checkers unless given).  Violation indices are JSONL line numbers.
    Raises :class:`~repro.obs.trace.TraceParseError` on corrupt lines.
    """
    suite = InvariantSuite(checkers)
    for line_no, event in iter_jsonl(path):
        suite.observe(event, line_no)
    suite.finish()
    if suite.events_seen == 0:
        raise EmptyTraceError(path)
    return suite


def render_check(path: str,
                 checkers: Optional[List[Checker]] = None
                 ) -> Tuple[str, int]:
    """The ``repro check`` report: ``(text, exit_code)`` — 0 when every
    invariant holds, 1 when any was violated."""
    suite = check_trace(path, checkers)
    violations = suite.violations
    names = ", ".join(c.name for c in suite.checkers)
    if not violations:
        return (f"{path}: {suite.events_seen} events — all invariants "
                f"hold ({names})"), 0
    lines = [f"{path}: {len(violations)} invariant violation(s) in "
             f"{suite.events_seen} events", ""]
    for v in violations[:MAX_LISTED_VIOLATIONS]:
        lines.append(v.describe())
    if len(violations) > MAX_LISTED_VIOLATIONS:
        lines.append(f"... and {len(violations) - MAX_LISTED_VIOLATIONS} "
                     f"more")
    failed = sorted({v.checker for v in violations})
    lines += ["", f"FAIL: {', '.join(failed)}"]
    return "\n".join(lines), 1


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class SpanRecord:
    """One reconstructed span: its begin event joined with its end."""

    __slots__ = ("name", "span_id", "parent_id", "t_begin", "t_end",
                 "duration")

    def __init__(self, name: str, span_id: object,
                 parent_id: object, t_begin: Optional[float]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_begin = t_begin
        self.t_end: Optional[float] = None
        self.duration: Optional[float] = None

    @property
    def open(self) -> bool:
        return self.t_end is None


def collect_spans(events: Sequence[TraceEvent]) -> List[SpanRecord]:
    """Pair ``span.begin``/``span.end`` events by ``span_id``, in begin
    order.  Ends without a begin are ignored (truncated trace head);
    begins without an end stay marked open."""
    by_id: Dict[object, SpanRecord] = {}
    order: List[SpanRecord] = []
    for ev in events:
        kind = ev.get("kind")
        if kind == "span.begin":
            rec = SpanRecord(str(ev.get("name", "?")), ev.get("span_id"),
                             ev.get("parent_id"), _num(ev.get("t")))
            by_id[rec.span_id] = rec
            order.append(rec)
        elif kind == "span.end":
            rec = by_id.get(ev.get("span_id"))
            if rec is not None and rec.open:
                rec.t_end = _num(ev.get("t"))
                d = ev.get("duration")
                rec.duration = (float(d) if isinstance(d, (int, float))
                                else None)
    return order


def _num(v: object) -> Optional[float]:
    return float(v) if isinstance(v, (int, float)) else None


def _fmt_t(v: Optional[float]) -> str:
    return "-" if v is None else f"{v:.1f}"


def _fmt_gb(nbytes: float) -> str:
    return f"{nbytes / 1e9:.3f}"


def _md_table(headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return lines


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def render_run_report(path: str, max_timeline_rows: int = 40,
                      since: Optional[float] = None,
                      until: Optional[float] = None) -> str:
    """The ``repro report`` markdown document for one trace file.

    *since*/*until* restrict the presentation sections (timeline,
    span durations, byte breakdown) to the half-open window
    ``[since, until)`` — the same predicate as ``repro stats`` and
    ``repro timeline``.  The invariant checkers always replay the
    **full** stream: a window is a view, and a flow that started
    before it is not an accounting violation.
    """
    check_window(since, until)
    all_events: List[TraceEvent] = []
    suite = InvariantSuite()
    for line_no, event in iter_jsonl(path):
        all_events.append(event)
        suite.observe(event, line_no)
    suite.finish()
    if not all_events:
        raise EmptyTraceError(path)
    windowed = since is not None or until is not None
    events = ([e for e in all_events if event_in_window(e, since, until)]
              if windowed else all_events)

    times = [t for t in (_num(e.get("t")) for e in events) if t is not None]
    t0, t1 = (min(times), max(times)) if times else (None, None)
    kinds: Dict[str, int] = {}
    for e in events:
        k = str(e.get("kind", "?"))
        kinds[k] = kinds.get(k, 0) + 1

    out: List[str] = [f"# Run report — {path}", ""]
    extent = ("" if t0 is None
              else f" over t = [{t0:g}, {t1:g}] s of simulated time")
    window = ("" if not windowed else
              f" (window [{'-' if since is None else f'{since:g}'}, "
              f"{'-' if until is None else f'{until:g}'}) of "
              f"{len(all_events)} total; invariants checked over the "
              f"full stream)")
    out.append(f"{len(events)} trace events across {len(kinds)} event "
               f"kinds{extent}{window}.")
    out.append("")

    # ---------------- lifecycle timeline -----------------------------
    out += ["## Lifecycle timeline", ""]
    milestones = [(e, i) for i, e in enumerate(events)
                  if e.get("kind") in _MILESTONE_KINDS]
    spans = collect_spans(events)
    top_spans = [s for s in spans if s.parent_id is None
                 and s.name != "flow"]
    rows: List[Tuple[float, str, str]] = []
    for e, _i in milestones:
        rows.append((_num(e.get("t")) or 0.0, str(e.get("kind")),
                     _milestone_detail(e)))
    for s in top_spans:
        detail = ("open (never ended)" if s.open
                  else f"duration {s.duration:g} s")
        rows.append((s.t_begin or 0.0, f"span {s.name}",
                     f"id {s.span_id}: {detail}"))
    rows.sort(key=lambda r: r[0])
    if rows:
        shown = rows[:max_timeline_rows]
        out += _md_table(["t (s)", "what", "detail"],
                         [[f"{t:.1f}", what, detail]
                          for t, what, detail in shown])
        if len(rows) > max_timeline_rows:
            out.append(f"\n({len(rows) - max_timeline_rows} further "
                       f"timeline rows elided)")
    else:
        out.append("(no lifecycle milestones in this trace)")
    out.append("")

    # ---------------- span durations ----------------------------------
    out += ["## Span durations", ""]
    if spans:
        stats: Dict[str, List[float]] = {}
        open_count: Dict[str, int] = {}
        for s in spans:
            if s.open:
                open_count[s.name] = open_count.get(s.name, 0) + 1
            elif s.duration is not None:
                stats.setdefault(s.name, []).append(s.duration)
        names = sorted(set(stats) | set(open_count))
        srows = []
        for name in names:
            ds = sorted(stats.get(name, []))
            if ds:
                mean = sum(ds) / len(ds)
                p50 = ds[len(ds) // 2]
                srows.append([name, len(ds), open_count.get(name, 0),
                              f"{min(ds):g}", f"{p50:g}", f"{mean:g}",
                              f"{max(ds):g}", f"{sum(ds):g}"])
            else:
                srows.append([name, 0, open_count.get(name, 0),
                              "-", "-", "-", "-", "-"])
        out += _md_table(["span", "closed", "open", "min (s)", "p50 (s)",
                          "mean (s)", "max (s)", "total (s)"], srows)
    else:
        out.append("(no spans in this trace — re-run with a current "
                   "build to get lifecycle spans)")
    out.append("")

    # ---------------- byte breakdown ----------------------------------
    out += ["## Migration & recovery bytes per server", ""]
    migration_in: Dict[object, float] = {}
    recovery_in: Dict[object, float] = {}
    addition_in: Dict[object, float] = {}
    for e in events:
        kind = e.get("kind")
        if kind == "migration.move":
            targets = e.get("to") or ()
            nbytes = _num(e.get("nbytes")) or 0.0
            if targets:
                per = nbytes / len(targets)   # type: ignore[arg-type]
                for rank in targets:          # type: ignore[union-attr]
                    migration_in[rank] = migration_in.get(rank, 0.0) + per
        elif kind == "recovery.rereplicate":
            rank = e.get("rank")
            recovery_in[rank] = (recovery_in.get(rank, 0.0)
                                 + (_num(e.get("nbytes")) or 0.0))
        elif kind == "migration.addition":
            rank = e.get("rank")
            addition_in[rank] = (addition_in.get(rank, 0.0)
                                 + (_num(e.get("nbytes")) or 0.0))
    ranks = sorted(set(migration_in) | set(recovery_in) | set(addition_in),
                   key=lambda r: ((0, r, "") if isinstance(r, (int, float))
                                  else (1, 0, str(r))))
    if ranks:
        brows = [[rank,
                  _fmt_gb(migration_in.get(rank, 0.0)),
                  _fmt_gb(recovery_in.get(rank, 0.0)),
                  _fmt_gb(addition_in.get(rank, 0.0))]
                 for rank in ranks]
        brows.append(["**total**",
                      _fmt_gb(sum(migration_in.values())),
                      _fmt_gb(sum(recovery_in.values())),
                      _fmt_gb(sum(addition_in.values()))])
        out += _md_table(["rank", "selective migration in (GB)",
                          "recovery in (GB)", "addition migration (GB)"],
                         brows)
    else:
        out.append("(no migration or recovery traffic in this trace)")
    out.append("")

    # ---------------- invariants --------------------------------------
    out += ["## Invariants", ""]
    violations = suite.violations
    irows = []
    per_checker: Dict[str, int] = {}
    for v in violations:
        per_checker[v.checker] = per_checker.get(v.checker, 0) + 1
    for checker in suite.checkers:
        n = per_checker.get(checker.name, 0)
        irows.append([checker.name,
                      "PASS" if n == 0 else "**FAIL**", n])
    out += _md_table(["checker", "status", "violations"], irows)
    if violations:
        out.append("")
        for v in violations[:MAX_LISTED_VIOLATIONS]:
            out.append(f"- {v.describe()}")
        if len(violations) > MAX_LISTED_VIOLATIONS:
            out.append(f"- ... and "
                       f"{len(violations) - MAX_LISTED_VIOLATIONS} more")
    return "\n".join(out)


def _milestone_detail(e: TraceEvent) -> str:
    kind = e.get("kind")
    if kind == "power.resize":
        on = e.get("powered_on") or []
        off = e.get("powered_off") or []
        parts = [f"v{e.get('version')}: {e.get('active')} active"]
        if on:
            parts.append(f"+{on}")
        if off:
            parts.append(f"-{off}")
        return " ".join(parts)
    if kind == "version.advance":
        fp = " (full power)" if e.get("full_power") else ""
        return f"v{e.get('version')}: {e.get('active')} active{fp}"
    if kind == "server.fail":
        return (f"rank {e.get('rank')} crashed, lost "
                f"{e.get('lost_objects')} objects "
                f"({_fmt_gb(_num(e.get('lost_bytes')) or 0.0)} GB)")
    if kind == "migration.full":
        return (f"full re-integration moved "
                f"{_fmt_gb(_num(e.get('nbytes')) or 0.0)} GB "
                f"at v{e.get('version')}")
    if kind == "migration.addition":
        return (f"rank {e.get('rank')} re-added, pulled "
                f"{_fmt_gb(_num(e.get('nbytes')) or 0.0)} GB")
    if kind == "recovery.rereplicate":
        return (f"rank {e.get('rank')}: re-replicated "
                f"{_fmt_gb(_num(e.get('nbytes')) or 0.0)} GB")
    return ""
