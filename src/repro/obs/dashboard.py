"""Self-contained HTML dashboard for one analytics document.

``repro timeline TRACE --html dashboard.html`` renders the
``repro.analytics`` JSON document as a single HTML file with **zero
external dependencies** — styles inline, charts are hand-built inline
SVG, no scripts, no fonts, no network.  The page is a pure function of
the document: same-seed runs produce byte-identical HTML
(sha256-tested), so a dashboard can sit next to ``trace.jsonl`` as a
reviewable, diffable artefact.

Layout follows the repo's reporting conventions and standard dataviz
hygiene: a KPI row of stat tiles (client p50/p99/p999), one small
chart per series (single hue each, assigned by series identity — never
re-ordered), thin 2 px lines with a ~10 % area wash, hairline solid
gridlines, latency and per-server tables, and the critical-path tree
with duration meters.  Every chart carries a collapsed table twin and
per-bin ``<title>`` hover values, so no value is readable only through
color.  Dark mode is a selected palette via ``prefers-color-scheme``,
not an automatic inversion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.analytics import (ANALYTICS_KIND, SERIES_KEYS,
                                 validate_analytics)

__all__ = ["render_dashboard", "write_dashboard"]

# Categorical palette (validated slot order; dark steps are the same
# hues re-stepped for the dark surface, not an automatic flip).
_SLOTS_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                "#e87ba4", "#008300", "#4a3aa7", "#e34948")
_SLOTS_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
               "#d55181", "#008300", "#9085e9", "#e66767")

#: Fixed series → palette-slot assignment (identity, never rank: a
#: series keeps its hue whether or not its neighbours have data).
_SERIES_SLOT = {
    "client_throughput_bytes": 0,
    "migration_bytes": 1,
    "reintegration_bytes": 2,
    "recovery_bytes": 3,
    "live_flows": 4,
    "max_utilization": 5,
    "degraded_reads": 6,
    "unavailable_reads": 7,
}

_SERIES_TITLE = {
    "client_throughput_bytes": "Client throughput",
    "migration_bytes": "Selective migration",
    "reintegration_bytes": "Reintegration",
    "recovery_bytes": "Recovery re-replication",
    "live_flows": "Live flows",
    "max_utilization": "Peak bandwidth utilisation",
    "degraded_reads": "Degraded reads",
    "unavailable_reads": "Unavailable reads",
}

_CHART_W = 560
_CHART_H = 150
_PAD_L = 52
_PAD_R = 14
_PAD_T = 10
_PAD_B = 24


def _esc(s: object) -> str:
    return (str(s).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace('"', "&quot;"))


def _fnum(v: float) -> str:
    """Deterministic short number: trimmed fixed-point, no locale."""
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.6g}"


def _fbytes(v: float) -> str:
    for unit, div in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6),
                      ("kB", 1e3)):
        if abs(v) >= div:
            return f"{v / div:.2f} {unit}"
    return f"{_fnum(v)} B"


def _fval(key: str, v: Optional[float]) -> str:
    if v is None:
        return "-"
    if key.endswith("_bytes"):
        return _fbytes(v)
    return _fnum(v)


def _nice_ceiling(v: float) -> float:
    """Smallest 1/2/5 × 10^k at or above *v* — clean axis maxima."""
    if v <= 0:
        return 1.0
    exp = 0
    x = v
    while x >= 10.0:
        x /= 10.0
        exp += 1
    while x < 1.0:
        x *= 10.0
        exp -= 1
    for m in (1.0, 2.0, 5.0, 10.0):
        if x <= m:
            return m * (10.0 ** exp)
    return 10.0 ** (exp + 1)


def _xy(i: int, n: int, v: float, vmax: float) -> Tuple[float, float]:
    span_x = _CHART_W - _PAD_L - _PAD_R
    span_y = _CHART_H - _PAD_T - _PAD_B
    x = _PAD_L + (span_x * (i / (n - 1)) if n > 1 else span_x / 2.0)
    y = _PAD_T + span_y * (1.0 - (v / vmax if vmax else 0.0))
    return round(x, 2), round(y, 2)


def _series_chart(key: str, values: Sequence[Optional[float]],
                  origin: float, bin_w: float) -> str:
    """One small-multiple SVG: area wash + 2 px line + end marker,
    hairline grid, per-bin hover ``<title>``.  ``None`` gaps (bins
    with no sample) break the line rather than faking a zero."""
    n = len(values)
    numeric = [v for v in values if v is not None]
    vmax = _nice_ceiling(max(numeric) if numeric else 0.0)
    span_y = _CHART_H - _PAD_T - _PAD_B

    parts: List[str] = []
    parts.append(
        f'<svg viewBox="0 0 {_CHART_W} {_CHART_H}" role="img" '
        f'aria-label="{_esc(_SERIES_TITLE.get(key, key))} time series" '
        f'preserveAspectRatio="xMidYMid meet">')

    # hairline grid: baseline + two interior lines, clean tick values
    for frac in (0.0, 0.5, 1.0):
        y = round(_PAD_T + span_y * (1.0 - frac), 2)
        cls = "axis" if frac == 0.0 else "grid"
        parts.append(f'<line class="{cls}" x1="{_PAD_L}" y1="{y}" '
                     f'x2="{_CHART_W - _PAD_R}" y2="{y}"/>')
        tick = vmax * frac
        label = (_fbytes(tick) if key.endswith("_bytes")
                 else _fnum(round(tick, 6)))
        parts.append(f'<text class="tick" x="{_PAD_L - 6}" '
                     f'y="{y + 3.5}" text-anchor="end">'
                     f'{_esc(label)}</text>')

    # x labels: first and last bin start times
    t0, t1 = origin, origin + (n - 1 if n > 1 else 0) * bin_w
    x0, _ = _xy(0, n, 0.0, 1.0)
    x1, _ = _xy(n - 1 if n > 1 else 0, n, 0.0, 1.0)
    yx = _CHART_H - 8
    parts.append(f'<text class="tick" x="{x0}" y="{yx}" '
                 f'text-anchor="start">{_fnum(round(t0, 3))} s</text>')
    if n > 1:
        parts.append(f'<text class="tick" x="{x1}" y="{yx}" '
                     f'text-anchor="end">{_fnum(round(t1, 3))} s</text>')

    # contiguous runs of numeric values → one area + one line each
    runs: List[List[Tuple[int, float]]] = []
    cur: List[Tuple[int, float]] = []
    for i, v in enumerate(values):
        if v is None:
            if cur:
                runs.append(cur)
                cur = []
        else:
            cur.append((i, float(v)))
    if cur:
        runs.append(cur)

    y_base = _PAD_T + span_y
    for run in runs:
        pts = [_xy(i, n, v, vmax) for i, v in run]
        if len(pts) > 1:
            poly = " ".join(f"{x},{y}" for x, y in pts)
            area = (f"{pts[0][0]},{y_base} " + poly
                    + f" {pts[-1][0]},{y_base}")
            parts.append(f'<polygon class="wash" points="{area}"/>')
            parts.append(f'<polyline class="line" points="{poly}"/>')
        # end-of-run marker: ≥8px dot with a surface ring
        ex, ey = pts[-1]
        parts.append(f'<circle class="dot" cx="{ex}" cy="{ey}" r="4"/>')

    # hover layer: one transparent band per bin with a <title> value —
    # native tooltips, no script; values also live in the table twin.
    if n:
        band = (_CHART_W - _PAD_L - _PAD_R) / n
        for i, v in enumerate(values):
            bx = round(_PAD_L + band * i, 2)
            t_lo = origin + i * bin_w
            label = (f"t [{_fnum(round(t_lo, 3))}, "
                     f"{_fnum(round(t_lo + bin_w, 3))}) s: "
                     f"{_fval(key, v)}")
            parts.append(
                f'<rect class="hit" x="{bx}" y="{_PAD_T}" '
                f'width="{round(band, 2)}" height="{span_y}">'
                f'<title>{_esc(label)}</title></rect>')

    parts.append("</svg>")
    return "".join(parts)


def _chart_card(key: str, values: Sequence[Optional[float]],
                origin: float, bin_w: float) -> str:
    numeric = [v for v in values if v is not None]
    if key in ("live_flows", "max_utilization"):
        headline = ("peak " + _fval(key, max(numeric)) if numeric
                    else "no samples")
    else:
        headline = ("total " + _fval(key, sum(numeric)) if numeric
                    else "no samples")
    slot = _SERIES_SLOT.get(key, 0)
    rows = "".join(
        f"<tr><td>{_fnum(round(origin + i * bin_w, 3))}</td>"
        f"<td>{_fval(key, v)}</td></tr>"
        for i, v in enumerate(values))
    return (
        f'<section class="card series-{slot}">'
        f'<h3>{_esc(_SERIES_TITLE.get(key, key))}'
        f'<span class="sub">{_esc(headline)}</span></h3>'
        f'{_series_chart(key, values, origin, bin_w)}'
        f'<details><summary>table view</summary>'
        f'<table><thead><tr><th>bin start (s)</th><th>value</th>'
        f'</tr></thead><tbody>{rows}</tbody></table></details>'
        f'</section>')


def _stat_tile(label: str, value: str, note: str = "") -> str:
    sub = f'<div class="note">{_esc(note)}</div>' if note else ""
    return (f'<div class="tile"><div class="label">{_esc(label)}</div>'
            f'<div class="value">{_esc(value)}</div>{sub}</div>')


def _latency_section(latency: Dict[str, Dict]) -> str:
    head = ("<tr><th>class</th><th>done</th><th>interrupted</th>"
            "<th>open</th><th>p50 (s)</th><th>p99 (s)</th>"
            "<th>p999 (s)</th><th>max (s)</th><th>intr p99 (s)</th>"
            "<th>bytes done</th><th>bytes wasted</th></tr>")
    rows = []
    for name, e in sorted(latency.items()):
        tail = e.get("interrupted_tail")
        rows.append(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td>"
            "<td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>"
            "<td>{}</td><td>{}</td></tr>".format(
                _esc(name), e.get("completed", 0),
                e.get("interrupted", 0), e.get("open", 0),
                _fval("", e.get("p50")), _fval("", e.get("p99")),
                _fval("", e.get("p999")), _fval("", e.get("max")),
                "-" if tail is None else _fnum(tail["p99"]),
                _fbytes(float(e.get("bytes_completed") or 0.0)),
                _fbytes(float(e.get("bytes_wasted") or 0.0))))
    return (f'<section class="card wide"><h3>Flow latency '
            f'<span class="sub">sojourn of completed flows; '
            f'interrupted tail reported separately</span></h3>'
            f'<table><thead>{head}</thead>'
            f'<tbody>{"".join(rows)}</tbody></table></section>')


def _servers_section(server_in: Dict[str, Sequence[float]],
                     origin: float, bin_w: float) -> str:
    if not server_in:
        return ""
    rows = []
    for rank, series in sorted(server_in.items(),
                               key=lambda kv: _rank_order(kv[0])):
        vals = [v for v in series if v is not None]
        total = sum(vals)
        if vals and total:
            peak_i = max(range(len(series)),
                         key=lambda i: (series[i] or 0.0, -i))
            peak = (f"{_fbytes(series[peak_i] or 0.0)} @ "
                    f"{_fnum(round(origin + peak_i * bin_w, 3))} s")
        else:
            peak = "-"
        rows.append(f"<tr><td>{_esc(rank)}</td>"
                    f"<td>{_fbytes(total)}</td><td>{peak}</td></tr>")
    return (f'<section class="card wide"><h3>Bytes landed per server '
            f'<span class="sub">migration + recovery + re-addition '
            f'traffic in</span></h3>'
            f'<table><thead><tr><th>rank</th><th>total in</th>'
            f'<th>peak bin</th></tr></thead>'
            f'<tbody>{"".join(rows)}</tbody></table></section>')


def _rank_order(rank: str) -> Tuple[int, float, str]:
    try:
        return (0, float(rank), "")
    except ValueError:
        return (1, 0.0, rank)


def _critical_paths_section(paths: List[Dict]) -> str:
    if not paths:
        body = '<p class="note">No closed lifecycle spans in window.</p>'
    else:
        items = []
        for p in paths:
            dur = float(p.get("duration") or 0.0)
            steps = []
            for depth, step in enumerate(p["path"]):
                share = (step["contribution"] / dur if dur else 0.0)
                pct = round(100.0 * max(0.0, min(1.0, share)), 1)
                steps.append(
                    f'<li style="margin-left:{depth}em">'
                    f'<span class="meter" aria-hidden="true">'
                    f'<span style="width:{pct}%"></span></span>'
                    f'{_esc(step["name"])} '
                    f'<span class="num">#{_esc(step["span_id"])}</span> '
                    f'— {_fnum(step["duration"])} s '
                    f'(+{_fnum(step["contribution"])} s self, '
                    f'{_fnum(pct)}%)</li>')
            items.append(
                f'<li class="path"><strong>{_esc(p["root"])}</strong> '
                f'<span class="num">#{_esc(p["span_id"])}</span> @ '
                f't={_fval("", p.get("t_begin"))} s — '
                f'{_fnum(p["duration"])} s, depth {p["depth"]}'
                f'<ul>{"".join(steps)}</ul></li>')
        body = f'<ul class="paths">{"".join(items)}</ul>'
    return (f'<section class="card wide"><h3>Critical paths '
            f'<span class="sub">longest child chain per lifecycle; '
            f'bar = each span&#39;s own contribution</span></h3>'
            f'{body}</section>')


def _css() -> str:
    light_slots = "".join(f"--series-{i}:{c};"
                          for i, c in enumerate(_SLOTS_LIGHT))
    dark_slots = "".join(f"--series-{i}:{c};"
                         for i, c in enumerate(_SLOTS_DARK))
    return f"""
:root {{
  color-scheme: light;
  --page:#f9f9f7; --surface:#fcfcfb; --ink:#0b0b0b; --ink-2:#52514e;
  --muted:#898781; --grid:#e1e0d9; --axis:#c3c2b7;
  --border:rgba(11,11,11,0.10); {light_slots}
}}
@media (prefers-color-scheme: dark) {{
  :root {{
    color-scheme: dark;
    --page:#0d0d0d; --surface:#1a1a19; --ink:#ffffff; --ink-2:#c3c2b7;
    --muted:#898781; --grid:#2c2c2a; --axis:#383835;
    --border:rgba(255,255,255,0.10); {dark_slots}
  }}
}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}}
header h1 {{ font-size: 20px; margin: 0 0 4px; }}
header .note, .note {{ color: var(--ink-2); }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }}
.tile {{
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 130px;
}}
.tile .label {{ color: var(--ink-2); font-size: 12px; }}
.tile .value {{ font-size: 26px; font-weight: 600; }}
.tile .note {{ font-size: 12px; }}
.grid {{
  display: grid; gap: 12px;
  grid-template-columns: repeat(auto-fill, minmax(300px, 1fr));
}}
.card {{
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 14px; overflow-x: auto;
}}
.card.wide {{ grid-column: 1 / -1; }}
.card h3 {{ font-size: 14px; margin: 0 0 8px; }}
.card h3 .sub {{
  display: block; font-weight: 400; font-size: 12px;
  color: var(--ink-2);
}}
svg {{ width: 100%; height: auto; display: block; }}
svg .grid {{ stroke: var(--grid); stroke-width: 1; }}
svg .axis {{ stroke: var(--axis); stroke-width: 1; }}
svg .tick {{ fill: var(--muted); font-size: 10px; }}
svg .line {{
  fill: none; stroke: var(--slot); stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round;
}}
svg .wash {{ fill: var(--slot); fill-opacity: 0.1; }}
svg .dot {{
  fill: var(--slot); stroke: var(--surface); stroke-width: 2;
}}
svg .hit {{ fill: transparent; }}
svg .hit:hover {{ fill: var(--ink); fill-opacity: 0.06; }}
""" + "".join(
        f".series-{i} {{ --slot: var(--series-{i}); }}\n"
        for i in range(len(_SLOTS_LIGHT))) + """
table { border-collapse: collapse; width: 100%; margin-top: 6px; }
th, td {
  text-align: left; padding: 4px 10px 4px 0;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--ink-2); font-weight: 500; font-size: 12px; }
details summary {
  cursor: pointer; color: var(--ink-2); font-size: 12px;
  margin-top: 6px;
}
.paths { list-style: none; padding-left: 0; }
.paths ul { list-style: none; padding-left: 16px; margin: 4px 0 12px; }
.paths .num { color: var(--muted); }
.meter {
  display: inline-block; width: 90px; height: 8px; margin-right: 8px;
  background: var(--grid); border-radius: 4px; overflow: hidden;
  vertical-align: middle;
}
.meter span {
  display: block; height: 100%; background: var(--series-0);
  border-radius: 4px;
}
footer { margin-top: 16px; color: var(--muted); font-size: 12px; }
"""


def render_dashboard(doc: Dict) -> str:
    """Render a single-run ``repro.analytics`` document to HTML.

    Pure function of *doc* — no timestamps, hostnames or environment
    leak into the page, so equal documents yield equal bytes.
    """
    validate_analytics(doc, expect_kind=ANALYTICS_KIND)
    window = doc["window"]
    ev = doc.get("events") or {}
    origin = float(window.get("origin", 0.0))
    bin_w = float(window["bin_seconds"])
    series = doc["series"]
    latency = doc["latency"]
    src = doc.get("source") or "<events>"

    def _w(v: object) -> str:
        return "unbounded" if v is None else f"{v:g} s"

    client = latency.get("client") or {}
    tiles = [
        _stat_tile("Events in window",
                   str(ev.get("in_window", "?")),
                   f"of {ev.get('total', '?')} total"),
        _stat_tile("Client p50", _fval("", client.get("p50")),
                   "sojourn, s"),
        _stat_tile("Client p99", _fval("", client.get("p99")),
                   "sojourn, s"),
        _stat_tile("Client p999", _fval("", client.get("p999")),
                   "sojourn, s"),
        _stat_tile("Lifecycles",
                   str(len(doc["critical_paths"])),
                   "closed span trees"),
    ]

    cards = [_chart_card(key, series.get(key) or [], origin, bin_w)
             for key in SERIES_KEYS]

    html = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        '<meta name="viewport" '
        'content="width=device-width, initial-scale=1">',
        f"<title>repro timeline — {_esc(src)}</title>",
        f"<style>{_css()}</style></head><body>",
        "<header>",
        f"<h1>Timeline — {_esc(src)}</h1>",
        f'<p class="note">Window [{_esc(_w(window.get("since")))}, '
        f'{_esc(_w(window.get("until")))}) · bin {bin_w:g} s · '
        f'{doc["bins"]} bin(s) · simulated t = '
        f'[{_fval("", ev.get("t_min"))}, {_fval("", ev.get("t_max"))}] '
        f's</p>',
        "</header>",
        f'<div class="tiles">{"".join(tiles)}</div>',
        f'<div class="grid">{"".join(cards)}',
        _latency_section(latency),
        _servers_section(series.get("server_bytes_in") or {},
                         origin, bin_w),
        _critical_paths_section(doc["critical_paths"]),
        "</div>",
        '<footer>repro.analytics v'
        f'{doc["version"]} — generated from simulation time only; '
        "same-seed runs render identical bytes.</footer>",
        "</body></html>",
    ]
    return "\n".join(html) + "\n"


def write_dashboard(doc: Dict, path: str) -> None:
    """Render *doc* and write it to *path* (UTF-8, LF)."""
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(render_dashboard(doc))
