"""Offline consistency checking — ``sheep -c check`` for the simulator.

Sheepdog ships a consistency checker that walks every object and
verifies its replicas against the current epoch's placement; this is
the equivalent for the simulated cluster, used by operators (the
examples), by the test suite's stateful machine, and as a debugging
aid when extending the system.

:func:`check_cluster` performs four audits and returns a structured
:class:`FsckReport`:

1. **replication** — every catalogued object has r replicas stored
   (anywhere), and at least one on a powered-on server;
2. **placement agreement** — each object's stored locations match the
   placement under its header's location version (the invariant the
   re-integration machinery maintains);
3. **dirty-table coherence** — every dirty entry references a
   catalogued object and a version that exists; a full-power cluster
   that claims quiescence has an empty table;
4. **orphan replicas** — no server holds a replica of an object the
   catalog does not know.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cluster.cluster import ElasticCluster

__all__ = ["FsckIssue", "FsckReport", "check_cluster"]


@dataclass(frozen=True)
class FsckIssue:
    """One inconsistency."""

    kind: str       # "replication" | "availability" | "placement" |
                    # "dirty" | "orphan"
    oid: int
    detail: str


@dataclass
class FsckReport:
    """Audit outcome."""

    objects_checked: int = 0
    replicas_checked: int = 0
    issues: List[FsckIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for issue in self.issues:
            out[issue.kind] = out.get(issue.kind, 0) + 1
        return out

    def summary(self) -> str:
        if self.clean:
            return (f"fsck: clean — {self.objects_checked} objects, "
                    f"{self.replicas_checked} replicas")
        kinds = ", ".join(f"{k}: {n}" for k, n in
                          sorted(self.by_kind().items()))
        return (f"fsck: {len(self.issues)} issue(s) over "
                f"{self.objects_checked} objects ({kinds})")


def check_cluster(cluster: ElasticCluster,
                  expect_quiescent: bool = False) -> FsckReport:
    """Audit *cluster*.

    With *expect_quiescent* the checker additionally requires the
    state a full-power cluster reaches after selective re-integration
    runs dry: empty dirty table and stored locations equal to
    current-version placements.
    """
    report = FsckReport()
    ech = cluster.ech
    known = set()

    # Pre-resolve every object's placement under its location version
    # in bulk (one locate_bulk per distinct version) — audit 2 below
    # reads from this map instead of a scalar locate per object.  A
    # row the scalar path could not place (degraded membership) maps
    # to None, which skips the audit exactly as the old except-branch
    # did.
    expected: Dict[int, Optional[Set[int]]] = {}
    by_version: Dict[int, List[int]] = {}
    for obj in cluster.catalog:
        loc_ver = ech.location_version.get(obj.oid)
        if loc_ver is not None:
            by_version.setdefault(loc_ver, []).append(obj.oid)
    for ver, oids in by_version.items():
        bulk = ech.locate_bulk(oids, ver)
        for i, oid in enumerate(oids):
            expected[oid] = (set(bulk.servers[i].tolist())
                             if bulk.ok[i] else None)

    for obj in cluster.catalog:
        known.add(obj.oid)
        report.objects_checked += 1
        stored = cluster.stored_locations(obj.oid)
        report.replicas_checked += len(stored)

        # 1. replication + availability
        if len(stored) < cluster.replicas:
            report.issues.append(FsckIssue(
                "replication", obj.oid,
                f"{len(stored)} of {cluster.replicas} replicas stored"))
        if not any(cluster.servers[r].is_on for r in stored):
            report.issues.append(FsckIssue(
                "availability", obj.oid,
                f"no replica on a powered-on server (stored={stored})"))

        # 2. placement agreement under the location version
        loc_ver = ech.location_version.get(obj.oid)
        if loc_ver is not None:
            expect = expected[obj.oid]
            if expect is not None and set(stored) != expect:
                report.issues.append(FsckIssue(
                    "placement", obj.oid,
                    f"stored={sorted(stored)} != "
                    f"placement@v{loc_ver}={sorted(expect)}"))

    # 3. dirty-table coherence
    for entry in ech.dirty.entries():
        if entry.oid not in known:
            report.issues.append(FsckIssue(
                "dirty", entry.oid,
                f"dirty entry for unknown object (v{entry.version})"))
        if not 1 <= entry.version <= ech.current_version:
            report.issues.append(FsckIssue(
                "dirty", entry.oid,
                f"dirty entry references nonexistent version "
                f"{entry.version}"))
    if expect_quiescent:
        if not ech.is_full_power:
            report.issues.append(FsckIssue(
                "dirty", -1, "quiescence expected but not at full power"))
        elif not ech.dirty.is_empty():
            report.issues.append(FsckIssue(
                "dirty", -1,
                f"quiescence expected but {len(ech.dirty)} dirty "
                "entries remain"))

    # 4. orphan replicas
    for rank, srv in cluster.servers.items():
        for oid in srv.replicas():
            if oid not in known:
                report.issues.append(FsckIssue(
                    "orphan", oid,
                    f"rank {rank} holds a replica of an uncatalogued "
                    "object"))

    return report
