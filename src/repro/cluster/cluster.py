"""Cluster models: the elastic system and the original-CH baseline.

Both clusters store real (simulated) replica maps on their servers, so
every migration/recovery volume the benches report is *measured* from
the maps, not estimated from expectations.

:class:`ElasticCluster` composes the paper's full design —
:class:`~repro.core.elastic.ElasticConsistentHash` placement, write
offloading with dirty tracking, instant power-state resizing, and full
or selective re-integration.

:class:`OriginalCHCluster` is the §II-C baseline: uniform vnode
weights, no roles, and servers *leave the ring* when turned down.
Removing a server therefore requires re-replicating every replica it
held before the next removal can proceed (that is Figure 2's lag), and
re-adding a server migrates everything the new layout maps onto it
(that is Figure 3's throughput dip).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.elastic import ElasticConsistentHash
from repro.core.kernel import BulkPlacement, PlacementKernel
from repro.core.placement import ChainMode, PlacementResult, place_original
from repro.hashring.hashing import bulk_hash
from repro.core.reintegration import (
    MigrationTask,
    ReintegrationEngine,
    ReintegrationPlan,
    ReintegrationReport,
)
from repro.cluster.objects import DEFAULT_OBJECT_SIZE, ObjectCatalog
from repro.cluster.server import StorageServer
from repro.hashring.ring import HashRing
from repro.obs.profile import profiled
from repro.obs.runtime import OBS

__all__ = ["ElasticCluster", "OriginalCHCluster", "CrashRecoveryWork"]


@dataclass
class CrashRecoveryWork:
    """The re-replication debt a crash leaves behind.

    :meth:`ElasticCluster.crash_server` returns one of these instead
    of repairing in place: the crash's *observable* effects (version
    advance, dirty tracking, lost replica maps) are immediate, but the
    re-replication bytes only land when
    :meth:`ElasticCluster.commit_crash_recovery` runs — after a
    transfer layer has actually moved them, or immediately for the
    classic instantaneous :meth:`ElasticCluster.fail_server` path.
    """

    rank: int
    #: Crash-time membership version (the epoch the dirty entries
    #: carry).
    version: int
    #: ``oid -> size`` of every replica lost with the server, in the
    #: server's replica-map order (deterministic).
    lost: Dict[int, int] = field(default_factory=dict)
    #: The open ``recovery.fail`` span; closed by the commit.
    span: Optional[object] = None

    @property
    def num_objects(self) -> int:
        return len(self.lost)

    @property
    def lost_bytes(self) -> int:
        return sum(self.lost.values())


class _ClusterBase:
    """Shared plumbing: server map, catalog, distribution accounting."""

    def __init__(self, n: int, replicas: int,
                 capacities: Optional[Sequence[Optional[int]]] = None,
                 disk_bandwidth: float = 100e6) -> None:
        if n < replicas:
            raise ValueError("cluster smaller than replication factor")
        self.replicas = replicas
        self.servers: Dict[int, StorageServer] = {
            rank: StorageServer(
                rank,
                capacity_bytes=(capacities[rank - 1]
                                if capacities is not None else None),
                disk_bandwidth=disk_bandwidth,
            )
            for rank in range(1, n + 1)
        }
        self.catalog = ObjectCatalog()

    @property
    def n(self) -> int:
        return len(self.servers)

    def stored_locations(self, oid: int) -> Tuple[int, ...]:
        """Ranks physically holding a replica of *oid* (any power
        state)."""
        return tuple(rank for rank, srv in self.servers.items()
                     if srv.has_replica(oid))

    def bytes_per_rank(self) -> Dict[int, int]:
        """Physical bytes per rank — Figure 5's y-axis."""
        return {rank: srv.used_bytes for rank, srv in self.servers.items()}

    def replicas_per_rank(self) -> Dict[int, int]:
        return {rank: srv.num_replicas for rank, srv in self.servers.items()}

    def total_stored_bytes(self) -> int:
        return sum(srv.used_bytes for srv in self.servers.values())

    def _store(self, oid: int, size: int, ranks: Sequence[int]) -> None:
        for rank in ranks:
            self.servers[rank].store_replica(oid, size)

    def _drop_surplus(self, oid: int, keep: Sequence[int]) -> int:
        """Drop replicas from every server not in *keep*; returns bytes
        reclaimed."""
        keep_set = set(keep)
        freed = 0
        for rank, srv in self.servers.items():
            if rank not in keep_set and srv.has_replica(oid):
                freed += srv.drop_replica(oid)
        return freed

    def verify_replication(self, require_active: bool = False) -> List[int]:
        """OIDs stored on fewer than r servers (optionally counting
        only powered-on holders) — the availability check behind the
        §II-C argument.  Empty list == healthy."""
        bad: List[int] = []
        for obj in self.catalog:
            holders = [rank for rank in self.stored_locations(obj.oid)
                       if not require_active or self.servers[rank].is_on]
            if len(holders) < self.replicas:
                bad.append(obj.oid)
        return bad


class ElasticCluster(_ClusterBase):
    """The paper's elastic consistent-hashing storage cluster.

    Parameters
    ----------
    n, replicas, B, p, chain:
        Forwarded to :class:`~repro.core.elastic.ElasticConsistentHash`.
    capacities:
        Optional per-rank capacity bytes (index 0 -> rank 1), e.g. from
        :class:`~repro.core.layout.CapacityPlan`.
    disk_bandwidth:
        Per-server disk throughput for the simulator's IO model.

    Examples
    --------
    >>> cl = ElasticCluster(n=10, replicas=2)
    >>> cl.write(42)                        # doctest: +ELLIPSIS
    PlacementResult(...)
    >>> cl.resize(6)                        # instant: no clean-up work
    >>> cl.write(43)                        # offloaded + dirty-tracked
    PlacementResult(...)
    >>> cl.resize(10)
    >>> report = cl.run_selective_reintegration()
    >>> cl.ech.dirty.is_empty()
    True
    """

    def __init__(
        self,
        n: int,
        replicas: int = 2,
        B: int = 10_000,
        p: Optional[int] = None,
        chain: ChainMode = "walk",
        layout_mode: str = "equal-work",
        placement_mode: str = "primary",
        capacities: Optional[Sequence[Optional[int]]] = None,
        disk_bandwidth: float = 100e6,
        dirty_table=None,
    ) -> None:
        super().__init__(n, replicas, capacities, disk_bandwidth)
        self.ech = ElasticConsistentHash(n=n, replicas=replicas, B=B, p=p,
                                         chain=chain,
                                         layout_mode=layout_mode,
                                         placement_mode=placement_mode,
                                         dirty_table=dirty_table)
        self._engine = ReintegrationEngine(
            self.ech,
            object_size=self._object_size,
            on_migrate=self.apply_migration,
        )
        #: Cumulative migration traffic in bytes, by kind.
        self.migrated_bytes = {"selective": 0, "full": 0}
        #: Ranks powered on since the last re-integration pass.  The
        #: "full" path cannot tell which of their contents are stale —
        #: it does not consult the dirty table — so it re-copies
        #: everything mapping onto them (§II-C's over-migration).  The
        #: selective path verifies via the dirty table instead and
        #: clears this set for free.
        self.unverified_ranks: set = set()
        #: Open ``resize.cycle`` span: covers a size-up version advance
        #: until the re-integration debt it exposed is fully drained.
        #: None while no cycle is in flight.
        self.reintegration_cycle = None
        #: ``rank -> reference count`` of in-flight transfers (managed
        #: by :meth:`acquire_ranks`/:meth:`release_ranks`): membership
        #: repairs must not race a transfer that still reads from or
        #: writes to the rank.
        self.inflight_ranks: Dict[int, int] = {}
        #: OIDs that lost every replica under a non-strict crash
        #: recovery (overlapping failures faster than repair) — the
        #: chaos harness's "data actually gone" ledger.
        self.lost_objects: List[int] = []
        #: Partial-transfer bytes discarded by fault preemptions,
        #: recorded by the transfer layer via
        #: :meth:`record_wasted_bytes`.
        self.wasted_bytes: Dict[str, float] = {}

    def _object_size(self, oid: int) -> int:
        obj = self.catalog.get(oid)
        return obj.size if obj is not None else DEFAULT_OBJECT_SIZE

    def catalog_placements(self, version: Optional[int] = None
                           ) -> Tuple[list, List[Tuple[int, ...]]]:
        """Every catalog object's placement under one version, placed
        in bulk: ``(objects, target-server rows)`` aligned by index.
        The whole-catalog sweeps (full re-integration, planning, fsck)
        run on this instead of a scalar ``locate`` per object."""
        objs = list(self.catalog)
        if not objs:
            return objs, []
        bulk = self.ech.locate_bulk([o.oid for o in objs], version)
        if not bulk.all_ok:
            bad = int(np.flatnonzero(~bulk.ok)[0])
            self.ech.locate(objs[bad].oid, version)   # raises with the oid
        return objs, [tuple(row) for row in bulk.rows()]

    # ------------------------------------------------------------------
    # power / membership
    # ------------------------------------------------------------------
    @property
    def num_active(self) -> int:
        return self.ech.num_active

    @property
    def min_active(self) -> int:
        return self.ech.min_active

    @property
    def current_version(self) -> int:
        return self.ech.current_version

    @profiled("cluster.resize")
    def resize(self, k: int) -> None:
        """Resize to *k* active servers along the expansion chain —
        **instant**, the point of the primary-server design: shrinking
        needs no clean-up work because the primaries always hold a full
        copy, and growing needs no migration before serving."""
        table = self.ech.set_active(k)
        bus = OBS.bus
        powered_on: List[int] = []
        powered_off: List[int] = []
        for rank, srv in self.servers.items():
            if table.is_active(rank):
                if not srv.is_on:
                    self.unverified_ranks.add(rank)
                    powered_on.append(rank)
                srv.power_on()
            else:
                if srv.is_on:
                    powered_off.append(rank)
                srv.power_off()
                self.unverified_ranks.discard(rank)
        OBS.metrics.inc("cluster.resizes")
        OBS.metrics.gauge("cluster.active_servers").set(table.num_active)
        resize_span = OBS.spans.begin("resize", version=table.version,
                                      active=table.num_active)
        if bus.active:
            bus.emit("power.resize", version=table.version,
                     active=table.num_active, powered_on=powered_on,
                     powered_off=powered_off)
            for rank in powered_on:
                bus.emit("server.state", rank=rank, state="on")
            for rank in powered_off:
                bus.emit("server.state", rank=rank, state="off")
        # The resize itself is instant — that is the paper's headline
        # agility claim — so its span closes immediately; the *debt* it
        # exposes (dirty entries / unverified ranks awaiting
        # re-integration) lives in the long resize.cycle span.
        resize_span.end()
        if (powered_on and self.reintegration_cycle is None
                and (not self.ech.dirty.is_empty()
                     or self.unverified_ranks)):
            self.reintegration_cycle = OBS.spans.begin(
                "resize.cycle", version=table.version,
                active=table.num_active)
        self._engine.span_parent = self.reintegration_cycle

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------
    def crash_server(self, rank: int) -> CrashRecoveryWork:
        """An unexpected crash, *effects only*: the server's replicas
        are lost (the difference from :meth:`resize`'s power-down,
        which keeps data on disk), a new version excludes the rank,
        and every affected object is dirty-tracked.  The
        re-replication debt is returned as a
        :class:`CrashRecoveryWork` for the caller to commit — either
        immediately (:meth:`fail_server`) or after a simulated,
        interruptible recovery transfer has moved the bytes.
        """
        srv = self.servers[rank]
        lost = {oid: srv.replica_size(oid) for oid in srv.replicas()}
        OBS.metrics.inc("cluster.failures")
        recovery_span = OBS.spans.begin("recovery.fail", rank=rank)
        if OBS.bus.active:
            OBS.bus.emit("server.fail", rank=rank,
                         lost_objects=len(lost),
                         lost_bytes=sum(lost.values()))
        # Crash: the replica map is gone.
        for oid in list(lost):
            srv.drop_replica(oid)
        srv.power_off()
        self.ech.mark_failed(rank)
        self.unverified_ranks.discard(rank)
        curr = self.ech.current_version
        # Crash-consistency: the affected objects deviate from the
        # full-power layout *now*, whether or not the recovery bytes
        # have landed — the dirty entry is created with the crash, and
        # only an acknowledged transfer may clear it later.
        for oid in lost:
            obj = self.catalog.get(oid)
            if obj is not None and not self.ech.is_full_power:
                obj.dirty = True
                self.ech.dirty.insert(oid, curr)
        return CrashRecoveryWork(rank=rank, version=curr, lost=dict(lost),
                                 span=recovery_span)

    def commit_crash_recovery(self, work: CrashRecoveryWork,
                              strict: bool = True) -> int:
        """Land the re-replication debt of one crash: every lost
        replica is copied from a surviving copy to the placement under
        the version current *now* (which may be newer than the crash
        version — recovery re-plans at commit time).

        Returns the bytes re-replicated.  An object with no surviving
        replica is irrecoverable: with *strict* (the immediate
        :meth:`fail_server` path) that raises ``RuntimeError``; the
        chaos path passes ``strict=False`` so the loss is recorded in
        :attr:`lost_objects`, emitted as an ``object.lost`` event (the
        no-lost-object invariant's tripwire), and the remaining
        objects still recover.
        """
        moved = 0
        curr = self.ech.current_version
        active = self.ech.membership.active_ranks()
        lost_oids = list(work.lost)
        bulk = (self.ech.locate_bulk(lost_oids, curr)
                if lost_oids else None)
        for i, (oid, size) in enumerate(work.lost.items()):
            survivors = self.stored_locations(oid)
            if not survivors:
                if strict:
                    raise RuntimeError(
                        f"object {oid} lost every replica in the crash "
                        f"of rank {work.rank}")
                self.lost_objects.append(oid)
                OBS.metrics.inc("cluster.lost_objects")
                if OBS.bus.active:
                    OBS.bus.emit("object.lost", oid=oid,
                                 rank=work.rank, nbytes=size)
                continue
            if bulk.ok[i]:
                target = tuple(bulk.servers[i].tolist())
            else:
                # Fewer active servers than replicas: degraded mode —
                # keep as many copies alive as there are servers.
                target = tuple(active)
            for r in target:
                if not self.servers[r].has_replica(oid):
                    self.servers[r].store_replica(oid, size)
                    moved += size
            # The replicas now live at the current version's placement;
            # surplus copies elsewhere (e.g. parked by an earlier
            # partial re-integration) are stale relative to it and
            # must go, or the location-version chain breaks.
            self._drop_surplus(oid, target)
            self.ech.location_version[oid] = curr
        OBS.metrics.inc("recovery.bytes", moved)
        if OBS.bus.active:
            OBS.bus.emit("recovery.rereplicate", rank=work.rank,
                         nbytes=moved)
        if work.span is not None:
            work.span.end(nbytes=moved)
        return moved

    def crash_recovery_outlook(self, work: CrashRecoveryWork
                               ) -> Tuple[int, Tuple[int, ...]]:
        """What :meth:`commit_crash_recovery` would do *right now*:
        ``(bytes to copy, ranks involved)`` — the sources and targets
        the recovery transfer depends on, without mutating anything.
        Unrecoverable objects contribute no bytes (their loss is the
        commit's business)."""
        nbytes = 0
        ranks: set = set()
        curr = self.ech.current_version
        active = self.ech.membership.active_ranks()
        lost_oids = list(work.lost)
        bulk = (self.ech.locate_bulk(lost_oids, curr)
                if lost_oids else None)
        for i, (oid, size) in enumerate(work.lost.items()):
            survivors = self.stored_locations(oid)
            if not survivors:
                continue
            if bulk.ok[i]:
                target = tuple(bulk.servers[i].tolist())
            else:
                target = tuple(active)
            missing = [r for r in target
                       if not self.servers[r].has_replica(oid)]
            if missing:
                nbytes += size * len(missing)
                ranks.update(missing)
                ranks.update(survivors)
        return nbytes, tuple(sorted(ranks))

    def fail_server(self, rank: int) -> int:
        """A crash handled instantaneously: :meth:`crash_server`'s
        effects plus an immediate :meth:`commit_crash_recovery`.  When
        the rank is later repaired and re-activated, ordinary
        selective re-integration restores the layout.

        Returns the bytes re-replicated.  Raises ``RuntimeError`` if
        any object had *all* its replicas on the failed server
        (irrecoverable with this replication factor).
        """
        return self.commit_crash_recovery(self.crash_server(rank))

    def repair_server(self, rank: int) -> None:
        """The crashed server returns, empty.  It rejoins the expansion
        chain powered-off; a subsequent :meth:`resize` (plus selective
        re-integration) brings it back into the layout.

        Raises ``RuntimeError`` while any transfer still touching the
        rank is in flight (see :attr:`inflight_ranks`): re-admitting
        the rank mid-transfer would let a preempted migration commit
        against a membership that silently resurrected its failed
        endpoint.  Interrupt or drain the transfers first.
        """
        busy = self.inflight_ranks.get(rank, 0)
        if busy:
            raise RuntimeError(
                f"cannot repair rank {rank}: {busy} in-flight "
                f"transfer(s) still touch it; interrupt or drain them "
                f"first")
        self.ech.mark_repaired(rank)
        # It rejoined empty: until re-integration verifies it, the full
        # path must treat its contents as unknown.
        self.unverified_ranks.discard(rank)
        if OBS.bus.active:
            OBS.bus.emit("server.repair", rank=rank)

    # ------------------------------------------------------------------
    # transfer bookkeeping (fault-injection support)
    # ------------------------------------------------------------------
    def acquire_ranks(self, ranks: Iterable[int]) -> None:
        """Pin *ranks* as endpoints of an in-flight transfer."""
        for rank in ranks:
            self.inflight_ranks[rank] = self.inflight_ranks.get(rank, 0) + 1

    def release_ranks(self, ranks: Iterable[int]) -> None:
        """Release a transfer's pins (completion or preemption)."""
        for rank in ranks:
            left = self.inflight_ranks.get(rank, 0) - 1
            if left > 0:
                self.inflight_ranks[rank] = left
            else:
                self.inflight_ranks.pop(rank, None)

    def record_wasted_bytes(self, kind: str, nbytes: float) -> None:
        """Account partial-transfer bytes thrown away by a preemption."""
        self.wasted_bytes[kind] = self.wasted_bytes.get(kind, 0.0) + nbytes

    def replication_audit(self) -> Dict[str, int]:
        """Physical replication health of the whole catalog: counts of
        objects with zero replicas (*lost*) and with fewer than r
        (*under-replicated*, recovery or re-integration still owed).
        The chaos harness emits this as the periodic ``chaos.audit``
        event the no-lost-object / replication-restored invariants
        consume."""
        lost = under = 0
        for obj in self.catalog:
            holders = len(self.stored_locations(obj.oid))
            if holders == 0:
                lost += 1
            elif holders < self.replicas:
                under += 1
        return {"objects": len(self.catalog), "lost": lost,
                "under_replicated": under}

    def read_with_fallback(self, oid: int) -> Tuple[int, bool]:
        """Degraded read along the replica chain: serve from the first
        placement replica that is powered on *and* physically holds
        the object; fall back to any powered-on holder outside the
        placement (a parked or mid-recovery copy).  Returns
        ``(rank, degraded)`` — degraded means the primary choice
        could not serve.  Raises ``LookupError`` when no powered-on
        server holds a replica (the object is unavailable until
        repair)."""
        obj = self.catalog.get(oid)
        if obj is None:
            raise KeyError(f"unknown object: {oid}")
        try:
            placement = self.ech.locate_current_replicas(oid).servers
        except LookupError:
            placement = ()
        for i, rank in enumerate(placement):
            srv = self.servers[rank]
            if srv.is_on and srv.has_replica(oid):
                if i > 0:
                    OBS.metrics.inc("reads.degraded")
                return rank, i > 0
        for rank in self.stored_locations(oid):
            if self.servers[rank].is_on:
                OBS.metrics.inc("reads.degraded")
                return rank, True
        raise LookupError(f"no powered-on replica of object {oid}")

    # ------------------------------------------------------------------
    # IO path
    # ------------------------------------------------------------------
    def write(self, oid: int, size: int = DEFAULT_OBJECT_SIZE
              ) -> PlacementResult:
        """Write/overwrite an object in the current version.

        Replicas land on the Algorithm-1 placement; when the cluster is
        not at full power the write is dirty-tracked for later
        re-integration.  Stale replicas from an earlier placement of
        the same object are dropped.
        """
        placement = self.ech.record_write(oid)
        dirty = not self.ech.is_full_power
        self.catalog.create_or_touch(oid, size, self.ech.current_version,
                                     dirty)
        self._store(oid, size, placement.servers)
        self._drop_surplus(oid, placement.servers)
        OBS.metrics.inc("cluster.writes")
        OBS.metrics.inc("cluster.bytes_written", size)
        return placement

    def read(self, oid: int) -> Tuple[Tuple[int, ...], bool]:
        """Locate the newest replicas of *oid*.

        Returns ``(servers, available)`` where *servers* is the
        placement under the object's last-written version and
        *available* is True when at least one replica is on a powered-
        on server — with the primary design this is always True while
        the primaries are up.
        """
        obj = self.catalog.get(oid)
        if obj is None:
            raise KeyError(f"unknown object: {oid}")
        try:
            servers = self.ech.locate_current_replicas(oid).servers
        except LookupError:
            # Degraded membership (fewer active servers than r, e.g.
            # after a crash at minimum power): serve from wherever the
            # replicas physically are.
            servers = self.stored_locations(oid)
        available = any(self.servers[s].is_on for s in servers)
        return servers, available

    # ------------------------------------------------------------------
    # re-integration
    # ------------------------------------------------------------------
    def apply_migration(self, task: MigrationTask) -> None:
        """Physically execute one migration task against the replica
        maps (receives first, then drops — never dips below r)."""
        size = self._object_size(task.oid)
        for rank in task.moved_to:
            self.servers[rank].store_replica(task.oid, size)
        for rank in task.dropped_from:
            self.servers[rank].drop_replica(task.oid)
        OBS.metrics.inc("migration.objects")
        OBS.metrics.inc("migration.bytes", task.nbytes)
        if OBS.bus.active:
            OBS.bus.emit("migration.move", oid=task.oid, nbytes=task.nbytes,
                         to=list(task.moved_to),
                         dropped=list(task.dropped_from),
                         entry_version=task.entry_version,
                         target_version=task.target_version)

    @profiled("reintegration.selective")
    def run_selective_reintegration(
        self, budget_bytes: Optional[int] = None,
    ) -> ReintegrationReport:
        """One Algorithm-2 pass (optionally byte-budgeted, the rate-
        limit hook).  Clears catalog dirty bits for objects whose last
        dirty entry was consumed."""
        report = self._engine.step(budget_bytes=budget_bytes)
        self.migrated_bytes["selective"] += report.bytes_migrated
        for entry in report.removed:
            if not self.ech.dirty.contains_oid(entry.oid):
                obj = self.catalog.get(entry.oid)
                if obj is not None:
                    obj.dirty = False
        if report.caught_up:
            # The dirty table has been reconciled against the current
            # version: re-powered servers hold exactly what the layout
            # expects of them, no blanket re-copy needed.
            self.unverified_ranks.clear()
            if (self.reintegration_cycle is not None
                    and self.ech.is_full_power
                    and self.ech.dirty.is_empty()):
                self.reintegration_cycle.end(status="drained")
                self.reintegration_cycle = None
                self._engine.span_parent = None
        return report

    def selective_backlog_bytes(self) -> int:
        """Bytes the selective engine would move right now."""
        return self._engine.total_pending_bytes()

    @profiled("reintegration.plan")
    def plan_selective_reintegration(self) -> ReintegrationPlan:
        """Snapshot one Algorithm-2 pass without mutating anything —
        the transfer layer routes an interruptible flow from it (see
        :class:`~repro.core.reintegration.ReintegrationPlan`)."""
        return self._engine.plan_pass()

    @profiled("reintegration.commit")
    def commit_selective_reintegration(self, plan: ReintegrationPlan
                                       ) -> ReintegrationReport:
        """Commit a previously planned pass once its transfer has
        completed and been acknowledged.  Migrations are re-planned
        per entry at commit time (the membership may have moved on);
        the same catalog/cycle bookkeeping as
        :meth:`run_selective_reintegration` applies."""
        report = self._engine.commit_entries(plan.entries)
        self.migrated_bytes["selective"] += report.bytes_migrated
        for entry in report.removed:
            if not self.ech.dirty.contains_oid(entry.oid):
                obj = self.catalog.get(entry.oid)
                if obj is not None:
                    obj.dirty = False
        if self._engine.plan_pass().actionable == 0:
            # Nothing left a commit could act on: the dirty table is
            # reconciled against the current version.
            self.unverified_ranks.clear()
            if (self.reintegration_cycle is not None
                    and self.ech.is_full_power
                    and self.ech.dirty.is_empty()):
                self.reintegration_cycle.end(status="drained")
                self.reintegration_cycle = None
                self._engine.span_parent = None
        return report

    @profiled("reintegration.full")
    def run_full_reintegration(self) -> int:
        """The "primary+full" re-integration (§V-B): restore the layout
        for the just-re-powered servers without consulting the dirty
        table.

        Re-integration is triggered by server *additions* (§III-E:
        "data re-integration means the data migration when servers are
        re-integrated to a cluster"), so only objects whose current
        placement touches an unverified (newly powered-on) rank are
        processed — sizing down must stay clean-up-free.  For those
        objects, because this path cannot tell which replicas on the
        re-added servers are stale, it re-copies **every** replica the
        placement maps onto them — §II-C's over-migration ("consistent
        hashing assumes that the added servers are empty") — plus any
        replica a server genuinely lacks, then drops surplus copies.

        Returns bytes migrated (including the redundant re-copies:
        they cost real IO bandwidth even when the payload is already
        in place).
        """
        moved = 0
        curr = self.ech.current_version
        full_power = self.ech.is_full_power
        full_span = OBS.spans.begin("reintegration.full",
                                    parent=self.reintegration_cycle,
                                    version=curr)
        objs, targets = self.catalog_placements(curr)
        for obj, target in zip(objs, targets):
            if not any(r in self.unverified_ranks for r in target):
                continue
            stored = set(self.stored_locations(obj.oid))
            to_copy = [r for r in target
                       if r not in stored or r in self.unverified_ranks]
            if to_copy:
                self._store(obj.oid, obj.size, to_copy)
                moved += obj.size * len(to_copy)
            self._drop_surplus(obj.oid, target)
            obj.version = curr
            self.ech.location_version[obj.oid] = curr
            if not full_power:
                # An object relocated below full power deviates from
                # the full-power layout — §III-E-2's definition of
                # dirty.  Recording it keeps a later *selective* pass
                # able to finish the job (full and selective modes
                # compose).
                obj.dirty = True
                self.ech.dirty.insert(obj.oid, curr)
        if self.ech.is_full_power:
            for obj in self.catalog:
                obj.dirty = False
                self.ech.last_written[obj.oid] = max(
                    self.ech.last_written.get(obj.oid, 0), curr)
            self.ech.dirty.clear()
        self.unverified_ranks.clear()
        self.migrated_bytes["full"] += moved
        OBS.metrics.inc("migration.full_bytes", moved)
        if OBS.bus.active:
            OBS.bus.emit("migration.full", nbytes=moved, version=curr)
        full_span.end(nbytes=moved)
        if self.reintegration_cycle is not None and self.ech.is_full_power:
            self.reintegration_cycle.end(status="drained")
            self.reintegration_cycle = None
            self._engine.span_parent = None
        return moved

    def full_reintegration_bytes(self) -> int:
        """Volume :meth:`run_full_reintegration` would move, without
        moving it — used by the policy analyser."""
        curr = self.ech.current_version
        total = 0
        objs, targets = self.catalog_placements(curr)
        for obj, target in zip(objs, targets):
            if not any(r in self.unverified_ranks for r in target):
                continue
            stored = set(self.stored_locations(obj.oid))
            total += obj.size * sum(
                1 for r in target
                if r not in stored or r in self.unverified_ranks)
        return total

    # ------------------------------------------------------------------
    # dynamic primary count (SpringFS-style extension)
    # ------------------------------------------------------------------
    def set_primary_count(self, new_p: int) -> int:
        """Re-layout to *new_p* primaries and migrate the data the new
        equal-work curve demands.  Only legal in a quiescent state
        (full power, dirty table empty) — see
        :mod:`repro.core.dynamic_primaries`.

        Returns bytes migrated.
        """
        from repro.core.dynamic_primaries import apply_relayout
        apply_relayout(self.ech, new_p)
        moved = 0
        curr = self.ech.current_version
        objs, targets = self.catalog_placements(curr)
        for obj, target in zip(objs, targets):
            stored = set(self.stored_locations(obj.oid))
            to_add = [r for r in target if r not in stored]
            if to_add:
                self._store(obj.oid, obj.size, to_add)
                moved += obj.size * len(to_add)
            self._drop_surplus(obj.oid, target)
            obj.version = curr
            self.ech.location_version[obj.oid] = curr
        self.migrated_bytes["full"] += moved
        return moved

    def describe(self) -> str:
        return (f"ElasticCluster({self.ech.describe()}, "
                f"objects={len(self.catalog)}, "
                f"stored={self.total_stored_bytes()}B)")


class OriginalCHCluster(_ClusterBase):
    """The unmodified consistent-hashing baseline (Sheepdog semantics).

    Uniform vnode weights, no server roles.  Membership changes mutate
    the ring itself:

    * :meth:`remove_server` re-replicates the departing server's data
      *first* (returning the volume, which gates how fast the caller
      may shrink — Figure 2), then drops the server from the ring;
    * :meth:`add_server` re-inserts the server **empty** and returns
      the migration volume consistent hashing will pull onto it
      (Figure 3's dip).
    """

    def __init__(self, n: int, replicas: int = 2,
                 vnodes_per_server: int = 1_000,
                 capacities: Optional[Sequence[Optional[int]]] = None,
                 disk_bandwidth: float = 100e6) -> None:
        super().__init__(n, replicas, capacities, disk_bandwidth)
        self.ring = HashRing()
        self.vnodes_per_server = vnodes_per_server
        for rank in self.servers:
            self.ring.add_server(rank, weight=vnodes_per_server)
        self.rereplicated_bytes = 0
        self.migrated_bytes = 0
        # Membership changes mutate the ring, so the ring's generation
        # counter alone keeps this kernel's single table honest.
        self._kernel = PlacementKernel(self.ring, replicas,
                                       placement_mode="original")

    # ------------------------------------------------------------------
    @property
    def members(self) -> Tuple[int, ...]:
        return tuple(sorted(self.ring.servers))

    @property
    def num_active(self) -> int:
        return len(self.ring)

    def placement(self, oid: int) -> PlacementResult:
        tbl = self._kernel.table(None, None)
        try:
            return tbl.lookup(self._kernel.slot_of(oid))
        except LookupError as exc:
            raise LookupError(f"{exc} (oid {oid!r})") from None

    def placement_bulk(self, oids: Iterable[int]) -> BulkPlacement:
        """Vectorised :meth:`placement` over a key collection."""
        positions = bulk_hash(oids, self.ring.hash_method)
        slots = self.ring.bulk_successor_slots(positions)
        return self._kernel.table(None, None).gather(slots)

    def catalog_placements(self) -> Tuple[list, List[Tuple[int, ...]]]:
        """Bulk placement of the whole catalog: ``(objects, rows)``."""
        objs = list(self.catalog)
        if not objs:
            return objs, []
        bulk = self.placement_bulk([o.oid for o in objs])
        if not bulk.all_ok:
            bad = int(np.flatnonzero(~bulk.ok)[0])
            self.placement(objs[bad].oid)   # raises with the oid
        return objs, [tuple(row) for row in bulk.rows()]

    def write(self, oid: int, size: int = DEFAULT_OBJECT_SIZE
              ) -> PlacementResult:
        placement = self.placement(oid)
        self.catalog.create_or_touch(oid, size, version=1, dirty=False)
        self._store(oid, size, placement.servers)
        self._drop_surplus(oid, placement.servers)
        return placement

    def read(self, oid: int) -> Tuple[Tuple[int, ...], bool]:
        obj = self.catalog.get(oid)
        if obj is None:
            raise KeyError(f"unknown object: {oid}")
        servers = self.placement(oid).servers
        available = any(self.servers[s].has_replica(oid) for s in servers)
        return servers, available

    # ------------------------------------------------------------------
    def remove_server(self, rank: int) -> int:
        """Power a server down, baseline-style: every replica it holds
        is first re-replicated to its successor placement, then the
        server leaves the ring.  Returns the bytes re-replicated —
        the "clean-up work" the elastic design eliminates.
        """
        if rank not in self.ring:
            raise KeyError(f"server {rank} not a member")
        if len(self.ring) - 1 < self.replicas:
            raise RuntimeError("removal would break replication level")
        departure_span = OBS.spans.begin("recovery.departure", rank=rank)
        victims = list(self.servers[rank].replicas())
        self.ring.remove_server(rank)
        moved = 0
        bulk = self.placement_bulk(victims) if victims else None
        for i, oid in enumerate(victims):
            size = self.servers[rank].replica_size(oid)
            if not bulk.ok[i]:
                self.placement(oid)   # raises with the oid
            target = tuple(bulk.servers[i].tolist())
            for r in target:
                if not self.servers[r].has_replica(oid):
                    self.servers[r].store_replica(oid, size)
                    moved += size
            self.servers[rank].drop_replica(oid)
        self.servers[rank].power_off()
        self.rereplicated_bytes += moved
        OBS.metrics.inc("recovery.bytes", moved)
        OBS.metrics.gauge("cluster.active_servers").set(len(self.ring))
        if OBS.bus.active:
            OBS.bus.emit("server.state", rank=rank, state="off")
            OBS.bus.emit("recovery.rereplicate", rank=rank, nbytes=moved)
        departure_span.end(nbytes=moved)
        return moved

    def add_server(self, rank: int) -> int:
        """Re-add a server (empty — the baseline discarded its data on
        departure) and migrate everything the new ring maps onto it.
        Returns the bytes migrated."""
        if rank in self.ring:
            raise KeyError(f"server {rank} already a member")
        addition_span = OBS.spans.begin("migration.addition", rank=rank)
        self.servers[rank].power_on()
        self.ring.add_server(rank, weight=self.vnodes_per_server)
        moved = 0
        objs, targets = self.catalog_placements()
        for obj, target in zip(objs, targets):
            stored = set(self.stored_locations(obj.oid))
            for r in target:
                if r not in stored:
                    self.servers[r].store_replica(obj.oid, obj.size)
                    moved += obj.size
            self._drop_surplus(obj.oid, target)
        self.migrated_bytes += moved
        OBS.metrics.inc("migration.bytes", moved)
        OBS.metrics.gauge("cluster.active_servers").set(len(self.ring))
        if OBS.bus.active:
            OBS.bus.emit("server.state", rank=rank, state="on")
            OBS.bus.emit("migration.addition", rank=rank, nbytes=moved)
        addition_span.end(nbytes=moved)
        return moved

    def addition_migration_bytes(self, rank: int) -> int:
        """Volume :meth:`add_server` would migrate, without doing it."""
        if rank in self.ring:
            raise KeyError(f"server {rank} already a member")
        self.ring.add_server(rank, weight=self.vnodes_per_server)
        try:
            total = 0
            objs, targets = self.catalog_placements()
            for obj, target in zip(objs, targets):
                stored = set(self.stored_locations(obj.oid))
                total += obj.size * sum(1 for r in target if r not in stored)
            return total
        finally:
            self.ring.remove_server(rank)
