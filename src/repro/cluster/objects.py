"""Data objects and the object catalog.

Sheepdog is an object-based store (§IV): a virtual disk is chunked into
fixed-size objects (4 MB in the paper's evaluation), each identified by
a 64-bit OID.  Every object header carries the membership version it
was last written in and a dirty bit (§III-E-2) — that pair is what lets
re-integration find the newest replicas and skip stale dirty entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

__all__ = ["DEFAULT_OBJECT_SIZE", "DataObject", "ObjectCatalog"]

DEFAULT_OBJECT_SIZE = 4 * 1024 * 1024  # 4 MB, §V-A


@dataclass
class DataObject:
    """One stored object: identity plus the §III-E-2 header fields.

    Attributes
    ----------
    oid:
        Universal object identifier.
    size:
        Payload size in bytes.
    version:
        Membership version of the last write (header "Version" in
        Figure 6).
    dirty:
        Header dirty bit: True until the object has been re-integrated
        into a full-power layout.
    """

    oid: int
    size: int = DEFAULT_OBJECT_SIZE
    version: int = 1
    dirty: bool = False

    def touch(self, version: int, dirty: bool) -> None:
        """Update the header on a (re-)write."""
        if version < self.version:
            raise ValueError(
                f"object {self.oid} written in older version {version} "
                f"(header at {self.version})")
        self.version = version
        self.dirty = dirty


class ObjectCatalog:
    """All objects known to a cluster, with aggregate accounting.

    The catalog is pure metadata (what exists, how big, which version);
    where replicas *physically* live is the servers' replica maps —
    keeping the two separate mirrors the real system, where object
    headers travel with the data and no central location map exists.
    """

    def __init__(self) -> None:
        self._objects: Dict[int, DataObject] = {}
        self._total_bytes = 0

    def create_or_touch(self, oid: int, size: int, version: int,
                        dirty: bool) -> DataObject:
        """Record a write: create the object or bump its header."""
        obj = self._objects.get(oid)
        if obj is None:
            obj = DataObject(oid=oid, size=size, version=version, dirty=dirty)
            self._objects[oid] = obj
            self._total_bytes += size
        else:
            if size != obj.size:
                self._total_bytes += size - obj.size
                obj.size = size
            obj.touch(version, dirty)
        return obj

    def get(self, oid: int) -> Optional[DataObject]:
        return self._objects.get(oid)

    def __getitem__(self, oid: int) -> DataObject:
        return self._objects[oid]

    def __contains__(self, oid: int) -> bool:
        return oid in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[DataObject]:
        return iter(self._objects.values())

    def remove(self, oid: int) -> DataObject:
        obj = self._objects.pop(oid)
        self._total_bytes -= obj.size
        return obj

    @property
    def total_bytes(self) -> int:
        """Total unique bytes (one copy per object, replication
        excluded)."""
        return self._total_bytes

    def dirty_oids(self) -> list[int]:
        return [o.oid for o in self._objects.values() if o.dirty]

    def size_of(self, oid: int) -> int:
        """Object-size oracle in the shape
        :class:`repro.core.reintegration.ReintegrationEngine` expects."""
        return self._objects[oid].size
