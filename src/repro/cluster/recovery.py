"""Departure recovery planning for the original-CH baseline.

§II-C: "When one server leaves the hash ring, lost data copies have to
be re-replicated on the rest servers.  Additionally, before the
re-replication finishes, the consistent hashing based distributed
storage is not able to tolerate another server's departure."

:func:`plan_departure_recovery` computes that clean-up work *without*
mutating the cluster, so the resize-agility experiment (Figure 2) and
the trace analyser can model the delay a departure imposes:
``delay = plan.total_bytes / available_bandwidth``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.cluster.cluster import OriginalCHCluster
from repro.obs.runtime import OBS

__all__ = ["RecoveryTask", "RecoveryPlan", "plan_departure_recovery"]


@dataclass(frozen=True)
class RecoveryTask:
    """Re-replicate one object after a departure."""

    oid: int
    nbytes: int
    #: Surviving servers a copy can be read from.
    sources: Tuple[int, ...]
    #: Servers that must receive a new replica.
    destinations: Tuple[int, ...]


def _check_recovery_rate(per_server_bandwidth: float,
                         fraction_for_recovery: float) -> None:
    """Reject bandwidth/fraction inputs that would make a recovery-time
    estimate divide by zero or go negative/NaN — a degraded-bandwidth
    fault can legitimately drive a capacity to 0, and the planner must
    say so instead of raising ``ZeroDivisionError`` downstream."""
    if (not isinstance(per_server_bandwidth, (int, float))
            or not math.isfinite(per_server_bandwidth)
            or per_server_bandwidth <= 0):
        raise ValueError(
            f"per_server_bandwidth must be a positive, finite number of "
            f"bytes/s, got {per_server_bandwidth!r}")
    if (not isinstance(fraction_for_recovery, (int, float))
            or not math.isfinite(fraction_for_recovery)
            or not 0 < fraction_for_recovery <= 1):
        raise ValueError(
            f"fraction_for_recovery must be in (0, 1], got "
            f"{fraction_for_recovery!r}")


@dataclass
class RecoveryPlan:
    """All clean-up work a single departure requires."""

    departing: int
    tasks: List[RecoveryTask] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes * len(t.destinations) for t in self.tasks)

    @property
    def num_objects(self) -> int:
        return len(self.tasks)

    def bytes_per_destination(self) -> Dict[int, int]:
        """Ingest volume per receiving server — the hot spot that
        bounds recovery time."""
        out: Dict[int, int] = {}
        for t in self.tasks:
            for dst in t.destinations:
                out[dst] = out.get(dst, 0) + t.nbytes
        return out

    def estimated_seconds(self, per_server_bandwidth: float,
                          fraction_for_recovery: float = 1.0) -> float:
        """Lower-bound (fully parallel) recovery time: the busiest
        receiver's ingest divided by the bandwidth share granted to
        recovery traffic."""
        _check_recovery_rate(per_server_bandwidth, fraction_for_recovery)
        per_dst = self.bytes_per_destination()
        if not per_dst:
            return 0.0
        return max(per_dst.values()) / (per_server_bandwidth
                                        * fraction_for_recovery)

    def serialized_seconds(self, per_server_bandwidth: float,
                           fraction_for_recovery: float = 1.0) -> float:
        """Serialized recovery time: the whole plan pushed through one
        disk-equivalent pipeline.

        Sheepdog-era recovery walks its queue object by object with
        little parallelism, which is what made the paper's testbed
        take tens of seconds per departure (Figure 2); this estimate —
        total plan bytes over one server's granted bandwidth — is the
        faithful model of that behaviour and the one the agility
        experiment uses."""
        _check_recovery_rate(per_server_bandwidth, fraction_for_recovery)
        return self.total_bytes / (per_server_bandwidth
                                   * fraction_for_recovery)


def plan_departure_recovery(cluster: OriginalCHCluster,
                            rank: int) -> RecoveryPlan:
    """The re-replication a departure of *rank* would require, computed
    against a temporary ring without the server (the cluster is left
    untouched)."""
    if rank not in cluster.ring:
        raise KeyError(f"server {rank} not a member")
    plan = RecoveryPlan(departing=rank)
    victims = list(cluster.servers[rank].replicas())
    cluster.ring.remove_server(rank)
    try:
        for oid in victims:
            size = cluster.servers[rank].replica_size(oid)
            target = cluster.placement(oid).servers
            stored = set(cluster.stored_locations(oid)) - {rank}
            dests = tuple(r for r in target if r not in stored)
            if dests:
                plan.tasks.append(RecoveryTask(
                    oid=oid, nbytes=size,
                    sources=tuple(sorted(stored)),
                    destinations=dests,
                ))
    finally:
        cluster.ring.add_server(rank, weight=cluster.vnodes_per_server)
    if OBS.bus.active:
        OBS.bus.emit("recovery.plan", departing=rank,
                     objects=plan.num_objects, nbytes=plan.total_bytes)
    return plan
