"""A simulated storage server.

Models exactly what the evaluation depends on: a power state, a replica
map (which objects this server physically holds), a capacity limit
(§III-D), and disk/network bandwidth capacities consumed by the
fair-share IO model in :mod:`repro.simulation`.

The elastic design's key property lives here: powering a server *off*
does **not** clear its replica map.  "Data on the servers that are
turned down still exist.  When they are turned back on, it does not
need to migrate these data back" (§II-C) — which is why selective
re-integration only moves data written *while* the server was down.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, Optional

__all__ = ["PowerState", "StorageServer"]


class PowerState(enum.Enum):
    ON = "on"
    OFF = "off"


class CapacityExceeded(RuntimeError):
    """A replica write would overflow the server's capacity."""


class StorageServer:
    """One storage server.

    Parameters
    ----------
    rank:
        Position in the expansion chain (1-based; 1..p are primaries).
    capacity_bytes:
        Usable capacity; ``None`` disables capacity enforcement (the
        paper's testbed likewise never approached capacity, §V-A).
    disk_bandwidth:
        Sustained disk throughput in bytes/second (shared between
        foreground IO, recovery and migration by the simulator).
    network_bandwidth:
        NIC throughput in bytes/second.
    """

    def __init__(
        self,
        rank: int,
        capacity_bytes: Optional[int] = None,
        disk_bandwidth: float = 100e6,   # ~HDD-class, matches testbed scale
        network_bandwidth: float = 1.25e9,  # 10 GbE
    ) -> None:
        if rank < 1:
            raise ValueError("rank must be >= 1")
        self.rank = rank
        self.capacity_bytes = capacity_bytes
        self.disk_bandwidth = float(disk_bandwidth)
        self.network_bandwidth = float(network_bandwidth)
        self.state = PowerState.ON
        self._replicas: Dict[int, int] = {}  # oid -> size
        self._used = 0

    # ------------------------------------------------------------------
    # power
    # ------------------------------------------------------------------
    @property
    def is_on(self) -> bool:
        return self.state is PowerState.ON

    def power_off(self) -> None:
        """Lowest power state; replicas stay on disk."""
        self.state = PowerState.OFF

    def power_on(self) -> None:
        self.state = PowerState.ON

    # ------------------------------------------------------------------
    # replica map
    # ------------------------------------------------------------------
    def store_replica(self, oid: int, size: int) -> None:
        """Write (or overwrite) one replica.

        Only legal while powered on — the placement layer never selects
        an off server, so hitting this guard is a placement bug.
        """
        if not self.is_on:
            raise RuntimeError(f"write to powered-off server {self.rank}")
        old = self._replicas.get(oid, 0)
        new_used = self._used - old + size
        if self.capacity_bytes is not None and new_used > self.capacity_bytes:
            raise CapacityExceeded(
                f"server {self.rank}: {new_used} > {self.capacity_bytes}")
        self._replicas[oid] = size
        self._used = new_used

    def drop_replica(self, oid: int) -> int:
        """Delete one replica (surplus after migration); returns its
        size.  Allowed while off — dropping is bookkeeping for data the
        new layout no longer maps here, reclaimed lazily when the
        server next powers on."""
        size = self._replicas.pop(oid, 0)
        self._used -= size
        return size

    def has_replica(self, oid: int) -> bool:
        return oid in self._replicas

    def replica_size(self, oid: int) -> int:
        return self._replicas.get(oid, 0)

    def replicas(self) -> Iterator[int]:
        return iter(self._replicas)

    @property
    def num_replicas(self) -> int:
        return len(self._replicas)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> Optional[int]:
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self._used

    def utilisation(self) -> Optional[float]:
        if self.capacity_bytes is None:
            return None
        return self._used / self.capacity_bytes

    def __repr__(self) -> str:
        return (f"StorageServer(rank={self.rank}, {self.state.value}, "
                f"replicas={self.num_replicas}, used={self._used})")
