"""A Sheepdog-like object storage cluster, simulated.

This is the substrate the paper's techniques were implemented on
(§IV): an object store distributing fixed-size (default 4 MB) objects
over storage servers.  Two cluster flavours are provided:

* :class:`OriginalCHCluster` — the unmodified baseline: uniform vnode
  weights, servers *leave the ring* when turned down (forcing
  re-replication before the next departure, §II-C), and a node addition
  migrates every object whose placement changed;
* :class:`ElasticCluster` — the paper's system: equal-work weights,
  primary-server placement, powered-down servers stay on the ring,
  write offloading with dirty tracking, and full or selective
  re-integration on power-up.

Servers model capacity and hold actual replica maps so layout figures
(Fig 5) and migration volumes are measured, not estimated.
"""

from repro.cluster.objects import DataObject, ObjectCatalog
from repro.cluster.server import PowerState, StorageServer
from repro.cluster.power import MachineHourMeter, PowerModel
from repro.cluster.cluster import ElasticCluster, OriginalCHCluster
from repro.cluster.recovery import RecoveryPlan, plan_departure_recovery
from repro.cluster.vdi import VirtualDisk, VdiRange
from repro.cluster.fsck import FsckIssue, FsckReport, check_cluster
from repro.cluster.migration import (
    TokenBucket,
    MigrationPlan,
    full_reintegration_plan,
    addition_migration_plan,
)

__all__ = [
    "DataObject",
    "ObjectCatalog",
    "PowerState",
    "StorageServer",
    "MachineHourMeter",
    "PowerModel",
    "ElasticCluster",
    "OriginalCHCluster",
    "RecoveryPlan",
    "plan_departure_recovery",
    "VirtualDisk",
    "VdiRange",
    "FsckIssue",
    "FsckReport",
    "check_cluster",
    "TokenBucket",
    "MigrationPlan",
    "full_reintegration_plan",
    "addition_migration_plan",
]
