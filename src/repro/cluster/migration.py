"""Migration planning and rate limiting.

Two planners mirror the paper's two re-integration flavours:

* :func:`full_reintegration_plan` — "primary+full": restore the layout
  by copying every replica the current placement expects but the
  stored maps lack, dirty table ignored;
* :func:`addition_migration_plan` — the original-CH behaviour on a node
  addition: the added server is assumed empty, so *all* data mapping
  onto it moves (§II-C: "it migrates all the data that are supposed to
  place on the added servers").

Selective planning lives in
:class:`repro.core.reintegration.ReintegrationEngine`; this module
contributes the :class:`TokenBucket` that throttles it (§III-E: "limit
the migration rate").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.cluster.cluster import ElasticCluster, OriginalCHCluster
from repro.obs.runtime import OBS

__all__ = ["TokenBucket", "MigrationMove", "MigrationPlan",
           "full_reintegration_plan", "addition_migration_plan"]


class TokenBucket:
    """A byte-rate token bucket.

    ``grant(dt)`` accrues ``rate * dt`` tokens (capped at *burst*) and
    returns the whole balance for the caller to spend; ``spend(n)``
    returns unspent tokens.  Drivers call ``grant`` once per simulation
    tick and hand the result to
    :meth:`~repro.cluster.cluster.ElasticCluster.run_selective_reintegration`
    as the byte budget.
    """

    def __init__(self, rate_bytes_per_s: float,
                 burst_bytes: float | None = None) -> None:
        if rate_bytes_per_s <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate_bytes_per_s)
        self.burst = float(burst_bytes if burst_bytes is not None
                           else rate_bytes_per_s)
        self._tokens = self.burst

    @property
    def tokens(self) -> float:
        return self._tokens

    def grant(self, dt: float) -> int:
        """Accrue *dt* seconds of tokens and return the spendable
        balance (floored to whole bytes)."""
        if dt < 0:
            raise ValueError("dt must be >= 0")
        self._tokens = min(self.burst, self._tokens + self.rate * dt)
        balance = int(self._tokens)
        self._tokens -= balance
        OBS.metrics.inc("migration.tokens_granted", balance)
        return balance

    def refund(self, nbytes: int) -> None:
        """Return unspent budget (kept under the burst cap)."""
        if nbytes < 0:
            raise ValueError("refund must be >= 0")
        self._tokens = min(self.burst, self._tokens + nbytes)


@dataclass(frozen=True)
class MigrationMove:
    """Copy one object's replica(s) to specific servers."""

    oid: int
    nbytes: int
    destinations: Tuple[int, ...]


@dataclass
class MigrationPlan:
    """A batch of migration moves with per-server accounting."""

    moves: List[MigrationMove] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(m.nbytes * len(m.destinations) for m in self.moves)

    @property
    def num_objects(self) -> int:
        return len(self.moves)

    def bytes_per_destination(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for m in self.moves:
            for dst in m.destinations:
                out[dst] = out.get(dst, 0) + m.nbytes
        return out


def full_reintegration_plan(cluster: ElasticCluster) -> MigrationPlan:
    """What "primary+full" would move right now (no mutation): for
    every object mapped onto an unverified (just re-powered) server,
    the replicas the placement expects there — including re-copies of
    payloads already in place, the over-migration that makes "full"
    pay for skipping the dirty table — plus any replica a server
    genuinely lacks."""
    plan = MigrationPlan()
    curr = cluster.ech.current_version
    objs, targets = cluster.catalog_placements(curr)
    for obj, target in zip(objs, targets):
        if not any(r in cluster.unverified_ranks for r in target):
            continue
        stored = set(cluster.stored_locations(obj.oid))
        dests = tuple(r for r in target
                      if r not in stored or r in cluster.unverified_ranks)
        if dests:
            plan.moves.append(MigrationMove(obj.oid, obj.size, dests))
    if OBS.bus.active:
        OBS.bus.emit("migration.plan", planner="full_reintegration",
                     objects=plan.num_objects, nbytes=plan.total_bytes)
    return plan


def addition_migration_plan(cluster: OriginalCHCluster,
                            ranks: Sequence[int]) -> MigrationPlan:
    """What re-adding *ranks* (assumed empty) to the baseline cluster
    would migrate (no mutation)."""
    for rank in ranks:
        if rank in cluster.ring:
            raise KeyError(f"server {rank} already a member")
        cluster.ring.add_server(rank, weight=cluster.vnodes_per_server)
    try:
        plan = MigrationPlan()
        objs, targets = cluster.catalog_placements()
        for obj, target in zip(objs, targets):
            stored = set(cluster.stored_locations(obj.oid))
            dests = tuple(r for r in target if r not in stored)
            if dests:
                plan.moves.append(MigrationMove(obj.oid, obj.size, dests))
        if OBS.bus.active:
            OBS.bus.emit("migration.plan", planner="addition",
                         objects=plan.num_objects, nbytes=plan.total_bytes)
        return plan
    finally:
        for rank in ranks:
            cluster.ring.remove_server(rank)
