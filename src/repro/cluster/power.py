"""Power accounting: machine hours and energy.

The paper's bottom-line metric (Table II) is *machine hours* — the
integral of the active-server count over time — used as the proxy for
power consumption.  :class:`MachineHourMeter` integrates a step
function of active counts; :class:`PowerModel` converts server-time
into energy when a watts figure is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.obs.runtime import OBS

__all__ = ["MachineHourMeter", "PowerModel", "machine_hours_of_series"]


class MachineHourMeter:
    """Integrate active-server count over time (step-wise constant).

    Record a sample whenever the active count changes; the count is
    held constant until the next sample.  Times are in seconds;
    results are in machine *hours* to match Table II.
    """

    def __init__(self, start_time: float = 0.0,
                 initial_active: int = 0) -> None:
        self._last_t = float(start_time)
        self._last_n = int(initial_active)
        self._server_seconds = 0.0
        self._samples: List[Tuple[float, int]] = [(self._last_t, self._last_n)]

    def record(self, t: float, active: int) -> None:
        """The active count became *active* at time *t*."""
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t} < {self._last_t}")
        self._server_seconds += (t - self._last_t) * self._last_n
        self._last_t = t
        self._last_n = int(active)
        self._samples.append((t, self._last_n))
        if OBS.bus.active:
            OBS.bus.emit("power.sample", t=t, active=self._last_n)

    def finish(self, t: float) -> float:
        """Close the integral at time *t* and return machine hours."""
        self.record(t, self._last_n)
        return self.machine_hours

    @property
    def machine_seconds(self) -> float:
        return self._server_seconds

    @property
    def machine_hours(self) -> float:
        return self._server_seconds / 3600.0

    @property
    def samples(self) -> List[Tuple[float, int]]:
        return list(self._samples)


def machine_hours_of_series(times: Sequence[float],
                            counts: Sequence[int],
                            end_time: Optional[float] = None) -> float:
    """Machine hours of a pre-built step series (``counts[i]`` holds
    from ``times[i]`` to ``times[i+1]``; the last value holds to
    *end_time*, default the last timestamp)."""
    if len(times) != len(counts):
        raise ValueError("times and counts must have equal length")
    if not times:
        return 0.0
    meter = MachineHourMeter(times[0], counts[0])
    for t, n in zip(times[1:], counts[1:]):
        meter.record(t, n)
    return meter.finish(end_time if end_time is not None else times[-1])


@dataclass(frozen=True)
class PowerModel:
    """Convert machine time into energy.

    Attributes
    ----------
    watts_active:
        Draw of a powered-on server under load.
    watts_off:
        Residual draw of a powered-off server (0 for full shutdown,
        small for suspend-to-RAM).
    """

    watts_active: float = 200.0
    watts_off: float = 0.0

    def energy_kwh(self, active_machine_hours: float,
                   off_machine_hours: float = 0.0) -> float:
        return (active_machine_hours * self.watts_active
                + off_machine_hours * self.watts_off) / 1000.0

    def savings_vs_always_on(self, active_machine_hours: float,
                             n_servers: int, duration_hours: float) -> float:
        """Fraction of energy saved relative to keeping all *n_servers*
        on for the whole period."""
        total = n_servers * duration_hours
        if total <= 0:
            raise ValueError("duration and cluster size must be positive")
        off_hours = total - active_machine_hours
        used = self.energy_kwh(active_machine_hours, off_hours)
        baseline = self.energy_kwh(total, 0.0)
        return 1.0 - used / baseline
