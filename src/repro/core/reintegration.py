"""Selective data re-integration — Algorithm 2 (§III-E-3).

When servers power back on, offloaded replicas must migrate to the
servers they were offloaded from, restoring the equal-work layout.  The
original consistent hashing "over-migrates all the data based on
changed data layout"; the selective engine instead walks the dirty
table and migrates only objects whose historical placement differs from
their placement in the current version.

Faithfulness to Algorithm 2:

* entries are fetched in (version ascending, OID ascending) order;
* a version change since the last fetch restarts the scan from the
  head (``restart_dirty_entry``, line 2-4);
* an entry is acted on only when the current version has **more**
  active servers than the entry's version (line 6);
* migration moves data from ``locate(OID, Ver)`` to
  ``locate(OID, Curr_Ver)`` (lines 7-9);
* the entry is removed only when the current version is full power
  (lines 11-13); otherwise it stays for the next size-up.

One extension the paper describes in prose (§III-E-2: the header
version "avoids stale data") is implemented explicitly: when an object
has been re-written in a *newer* version than the fetched entry, the
entry is stale — its migration is skipped (the newer entry supersedes
it) and at full power it is removed alongside.

Rate limiting (§II-C, problem 2: "the rate of migration operation is
not controlled") is expressed as a per-call byte budget: the driver —
the cluster simulator's migration engine — calls :meth:`step` once per
tick with the bytes the token bucket grants that tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dirty_table import DirtyEntry, DirtyTable
from repro.core.elastic import ElasticConsistentHash
from repro.obs.runtime import OBS

__all__ = ["MigrationTask", "ReintegrationReport", "ReintegrationPlan",
           "ReintegrationEngine"]

ObjectSizeFn = Callable[[int], int]
MigrateCallback = Callable[["MigrationTask"], None]

DEFAULT_OBJECT_SIZE = 4 * 1024 * 1024  # Sheepdog's 4 MB objects (§V-A)


@dataclass(frozen=True)
class MigrationTask:
    """One object's re-integration move.

    ``moved_to`` are the servers that must *receive* a replica (present
    in the new placement, absent from the old); ``dropped_from`` are
    servers whose replica becomes surplus.  ``bytes`` counts the copy
    traffic: one object size per receiving server.
    """

    oid: int
    entry_version: int
    target_version: int
    from_servers: Tuple[int, ...]
    to_servers: Tuple[int, ...]
    moved_to: Tuple[int, ...]
    dropped_from: Tuple[int, ...]
    nbytes: int


@dataclass
class ReintegrationReport:
    """Accumulated outcome of one or more :meth:`step` calls."""

    tasks: List[MigrationTask] = field(default_factory=list)
    removed: List[DirtyEntry] = field(default_factory=list)
    entries_processed: int = 0
    entries_migrated: int = 0
    entries_removed: int = 0
    entries_stale: int = 0
    bytes_migrated: int = 0
    caught_up: bool = False

    def merge(self, other: "ReintegrationReport") -> None:
        self.tasks.extend(other.tasks)
        self.removed.extend(other.removed)
        self.entries_processed += other.entries_processed
        self.entries_migrated += other.entries_migrated
        self.entries_removed += other.entries_removed
        self.entries_stale += other.entries_stale
        self.bytes_migrated += other.bytes_migrated
        self.caught_up = other.caught_up


@dataclass
class ReintegrationPlan:
    """A non-mutating snapshot of one Algorithm-2 pass: the entries a
    commit would scan, the migration each actionable entry implies
    *under the planning version*, and the copy traffic.  Built by
    :meth:`ReintegrationEngine.plan_pass` and consumed by
    :meth:`ReintegrationEngine.commit_entries` — the split lets a
    transfer layer move the bytes (interruptibly) before any placement
    state mutates, so a crash mid-transfer simply discards the plan.
    """

    version: int
    entries: List[DirtyEntry] = field(default_factory=list)
    #: Per-entry planned task, aligned with ``entries``; None where the
    #: entry is stale, already in place, or not actionable yet.
    tasks: List[Optional[MigrationTask]] = field(default_factory=list)
    #: Entries a commit would migrate and/or remove.
    actionable: int = 0
    #: Planned copy traffic in bytes.
    nbytes: int = 0

    @property
    def oids(self) -> Tuple[int, ...]:
        """OIDs covered by this plan, in entry (fetch) order."""
        return tuple(e.oid for e in self.entries)

    def involved_ranks(self) -> Tuple[int, ...]:
        """Every rank a planned migration reads from or writes to,
        sorted — the fault-domain of the transfer that will carry this
        plan."""
        ranks: set = set()
        for task in self.tasks:
            if task is not None:
                ranks.update(task.from_servers)
                ranks.update(task.moved_to)
        return tuple(sorted(ranks))


class ReintegrationEngine:
    """Algorithm 2's background re-integration process.

    Parameters
    ----------
    ech:
        The elastic-hashing facade (placement + versions + dirty table).
    object_size:
        ``oid -> bytes`` oracle; defaults to constant 4 MB objects.
    on_migrate:
        Callback invoked for every :class:`MigrationTask` — the cluster
        layer hooks the actual byte movement here.
    """

    RUNNING = "RUNNING"
    PAUSED = "PAUSED"

    def __init__(
        self,
        ech: ElasticConsistentHash,
        object_size: Optional[ObjectSizeFn] = None,
        on_migrate: Optional[MigrateCallback] = None,
    ) -> None:
        self.ech = ech
        self.object_size: ObjectSizeFn = (
            object_size if object_size is not None
            else (lambda _oid: DEFAULT_OBJECT_SIZE))
        self.on_migrate = on_migrate
        self.state = self.RUNNING
        #: Parent span for ``reintegration.pass`` spans — the cluster
        #: layer points this at the open ``resize.cycle`` span so a
        #: trace reader can attribute each pass to its resize.
        self.span_parent = None

        self._last_version = 0          # Algorithm 2's Last_Ver
        self._snapshot: List[DirtyEntry] = []
        self._cursor = 0

    # ------------------------------------------------------------------
    def pause(self) -> None:
        self.state = self.PAUSED

    def resume(self) -> None:
        self.state = self.RUNNING

    @property
    def pending(self) -> int:
        """Entries not yet scanned in the current pass."""
        return max(0, len(self._snapshot) - self._cursor)

    def _restart(self) -> None:
        """``restart_dirty_entry()``: re-snapshot in fetch order and
        rewind to the head."""
        self._snapshot = self.ech.dirty.entries()
        self._cursor = 0

    # ------------------------------------------------------------------
    def plan_task(self, entry: DirtyEntry) -> Optional[MigrationTask]:
        """The migration implied by one entry under the current
        version, or None when placements already agree.

        The *from* side is the object's **location version** — a prior
        partial re-integration may already have moved the replicas past
        the entry's write version (Figure 6's v10→v11 step migrates
        from server 9, where the v10 pass parked the copy)."""
        curr = self.ech.current_version
        loc_ver = self.ech.location_version.get(entry.oid, entry.version)
        old = self.ech.locate(entry.oid, loc_ver).servers
        new = self.ech.locate(entry.oid, curr).servers
        moved_to = tuple(s for s in new if s not in old)
        dropped = tuple(s for s in old if s not in new)
        if not moved_to and not dropped:
            return None
        size = self.object_size(entry.oid)
        return MigrationTask(
            oid=entry.oid,
            entry_version=entry.version,
            target_version=curr,
            from_servers=old,
            to_servers=new,
            moved_to=moved_to,
            dropped_from=dropped,
            nbytes=size * len(moved_to),
        )

    # ------------------------------------------------------------------
    def step(self, budget_bytes: Optional[int] = None,
             max_entries: Optional[int] = None) -> ReintegrationReport:
        """Run the Algorithm 2 loop until the dirty table is drained,
        the byte budget is spent, or *max_entries* entries have been
        processed.

        Returns a report; ``caught_up`` is True when every entry
        currently in the table has been scanned against the current
        version (the table itself may still be non-empty if the version
        is not full power).
        """
        report = ReintegrationReport()
        if self.state != self.RUNNING:
            return report

        curr_ver = self.ech.current_version
        if curr_ver > self._last_version:
            self._restart()
            self._last_version = curr_ver

        full_power = self.ech.is_full_power
        curr_active = self.ech.history.num_active(curr_ver)

        pass_span = None
        if self._cursor < len(self._snapshot):
            pass_span = OBS.spans.begin("reintegration.pass",
                                        parent=self.span_parent,
                                        version=curr_ver)

        while self._cursor < len(self._snapshot):
            if budget_bytes is not None and report.bytes_migrated >= budget_bytes:
                break
            if max_entries is not None and report.entries_processed >= max_entries:
                break

            entry = self._snapshot[self._cursor]
            self._cursor += 1
            report.entries_processed += 1
            self._process_entry(entry, report, curr_ver, full_power,
                                curr_active)
        else:
            # Scanned every entry without exhausting a budget.
            report.caught_up = True

        self._record(report)
        if pass_span is not None:
            pass_span.end(entries=report.entries_processed,
                          migrated=report.entries_migrated,
                          nbytes=report.bytes_migrated,
                          caught_up=report.caught_up)
        return report

    def _process_entry(self, entry: DirtyEntry,
                       report: ReintegrationReport, curr_ver: int,
                       full_power: bool, curr_active: int) -> None:
        """Algorithm 2's per-entry body (lines 5-13), shared by the
        immediate :meth:`step` loop and the deferred
        :meth:`commit_entries` path."""
        # Staleness: a newer write supersedes this entry.
        latest = self.ech.last_written.get(entry.oid, entry.version)
        if latest > entry.version:
            report.entries_stale += 1
            if full_power:
                self.ech.dirty.remove(entry)
                report.removed.append(entry)
                report.entries_removed += 1
            return

        # Line 6: only act when the cluster has grown past the
        # entry's version.
        if curr_active > self.ech.history.num_active(entry.version):
            task = self.plan_task(entry)
            if task is not None:
                if self.on_migrate is not None:
                    self.on_migrate(task)
                report.tasks.append(task)
                report.bytes_migrated += task.nbytes
                report.entries_migrated += 1
            # The replicas now sit at the current version's
            # placement — advance the header's location version so
            # a later pass migrates from here (Figure 6).
            self.ech.location_version[entry.oid] = curr_ver
            # Lines 11-13: clear only at full power.
            if full_power:
                self.ech.dirty.remove(entry)
                report.removed.append(entry)
                report.entries_removed += 1

    # ------------------------------------------------------------------
    # deferred (plan → transfer → commit) path
    # ------------------------------------------------------------------
    def plan_pass(self) -> ReintegrationPlan:
        """Snapshot what one pass would do under the current version,
        without mutating anything.  The transfer layer sizes and routes
        an interruptible flow from the plan; the plan's entries are
        handed back to :meth:`commit_entries` once the bytes have
        actually moved and been acknowledged."""
        curr_ver = self.ech.current_version
        full_power = self.ech.is_full_power
        curr_active = self.ech.history.num_active(curr_ver)
        plan = ReintegrationPlan(version=curr_ver,
                                 entries=self.ech.dirty.entries())
        for entry in plan.entries:
            latest = self.ech.last_written.get(entry.oid, entry.version)
            if latest > entry.version:
                plan.tasks.append(None)
                if full_power:      # a commit would remove the stale row
                    plan.actionable += 1
                continue
            if curr_active > self.ech.history.num_active(entry.version):
                task = self.plan_task(entry)
                plan.tasks.append(task)
                plan.actionable += 1
                if task is not None:
                    plan.nbytes += task.nbytes
            else:
                plan.tasks.append(None)
        return plan

    def commit_entries(self, entries: Sequence[DirtyEntry]
                       ) -> ReintegrationReport:
        """Apply Algorithm-2 processing to a fixed entry list — the
        commit half of the deferred path, run when the transfer
        carrying a plan completes and is acknowledged.

        Migrations are re-planned per entry *at commit time*: the
        membership may have advanced since :meth:`plan_pass` (an
        unrelated crash, a resize), and placement state must only ever
        move toward the version that is current when the bytes land.
        Entries no longer present in the table (superseded or already
        removed) are skipped.  The scan cursor of :meth:`step` is not
        touched.
        """
        report = ReintegrationReport()
        if self.state != self.RUNNING:
            return report
        curr_ver = self.ech.current_version
        full_power = self.ech.is_full_power
        curr_active = self.ech.history.num_active(curr_ver)
        live = [e for e in entries
                if self.ech.dirty.contains(e.oid, e.version)]
        commit_span = None
        if live:
            commit_span = OBS.spans.begin("reintegration.commit",
                                          parent=self.span_parent,
                                          version=curr_ver)
        for entry in live:
            report.entries_processed += 1
            self._process_entry(entry, report, curr_ver, full_power,
                                curr_active)
        report.caught_up = True
        self._record(report)
        if commit_span is not None:
            commit_span.end(entries=report.entries_processed,
                            migrated=report.entries_migrated,
                            nbytes=report.bytes_migrated)
        return report

    def _record(self, report: ReintegrationReport) -> None:
        """Publish one step's outcome to the observability layer."""
        m = OBS.metrics
        m.inc("reintegration.entries", report.entries_processed)
        m.inc("reintegration.migrated", report.entries_migrated)
        m.inc("reintegration.stale", report.entries_stale)
        m.inc("reintegration.removed", report.entries_removed)
        m.inc("reintegration.bytes", report.bytes_migrated)
        if OBS.bus.active and report.entries_processed:
            OBS.bus.emit("reintegration.step",
                         entries=report.entries_processed,
                         migrated=report.entries_migrated,
                         stale=report.entries_stale,
                         removed=report.entries_removed,
                         nbytes=report.bytes_migrated,
                         caught_up=report.caught_up)

    # ------------------------------------------------------------------
    def drain(self) -> ReintegrationReport:
        """Run to quiescence under the current version (no budget)."""
        return self.step()

    def total_pending_bytes(self) -> int:
        """Upper bound on migration traffic if the scan ran now —
        used by the policy analyser to size the re-integration load.

        Vectorised: actionable entries are placed in bulk (grouped by
        their location version) instead of two scalar locates each —
        the dominant cost when the dirty table holds a whole catalog.
        """
        curr = self.ech.current_version
        curr_active = self.ech.num_active
        actionable: List[DirtyEntry] = []
        for entry in self.ech.dirty.entries():
            latest = self.ech.last_written.get(entry.oid, entry.version)
            if latest > entry.version:
                continue
            if curr_active > self.ech.history.num_active(entry.version):
                actionable.append(entry)
        if not actionable:
            return 0
        oids = [e.oid for e in actionable]
        loc_vers = [self.ech.location_version.get(e.oid, e.version)
                    for e in actionable]
        old = self._bulk_servers(oids, loc_vers)
        new = self._bulk_servers(oids, [curr] * len(oids))
        # Per entry: how many servers of the new placement are missing
        # from the old one — each receives one copy of the object.
        moved = (~(new[:, :, None] == old[:, None, :]).any(axis=2)) \
            .sum(axis=1)
        return sum(self.object_size(e.oid) * int(m)
                   for e, m in zip(actionable, moved) if m)

    def _bulk_servers(self, oids: Sequence[int],
                      versions: Sequence[int]) -> np.ndarray:
        """``(N, r)`` server matrix for per-entry versions: one
        ``locate_bulk`` per distinct version, scattered back in order.
        Raises the scalar path's ``LookupError`` for unplaceable oids.
        """
        out = np.empty((len(oids), self.ech.replicas), dtype=np.intp)
        by_version: dict = {}
        for i, ver in enumerate(versions):
            by_version.setdefault(ver, []).append(i)
        for ver, idx in by_version.items():
            bulk = self.ech.locate_bulk([oids[i] for i in idx], ver)
            if not bulk.all_ok:
                bad = idx[int(np.flatnonzero(~bulk.ok)[0])]
                self.ech.locate(oids[bad], versions[bad])   # raises
            out[idx] = bulk.servers
        return out
