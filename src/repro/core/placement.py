"""Data placement: the original consistent-hashing rule and the
primary-server rule of Algorithm 1 (§III-B).

Both placements walk the hash ring clockwise from the object's hash.
The primary-server rule adds role constraints so that **exactly one**
replica lands on a primary server:

* replica 1 goes to the next *active* server of any role;
* replicas 2..r-1 go to the next active server, unless a primary was
  already selected, in which case primaries are skipped;
* the last replica goes to the next active *secondary* if a primary was
  already selected, otherwise to the next active *primary*.

Inactive servers are always skipped (write-availability offloading,
§III-E): powered-down servers stay on the ring, placement just walks
past them.

Two *chaining* strategies decide where the walk for replica *i* starts:

``"walk"`` (default)
    Continue clockwise from the virtual node where replica *i-1* was
    found — the conventional Sheepdog/Dynamo successor-list behaviour.

``"rehash"``
    Restart the walk at ``hash(server(i-1))`` — the literal reading of
    Algorithm 1's ``next_server(hash(server(i-1)))``.

Both satisfy the one-copy-on-primary invariant; the ablation bench
compares their distribution quality and movement on resize.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Hashable, List, Literal, Optional, Tuple

from repro.hashring.hashing import hash64
from repro.hashring.ring import HashRing
from repro.obs.runtime import OBS

__all__ = ["ChainMode", "PlacementResult", "place_original", "place_primary",
           "place_original_from_slot", "place_primary_from_slot"]

ChainMode = Literal["walk", "rehash"]

Predicate = Callable[[Hashable], bool]


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of placing one object.

    Attributes
    ----------
    servers:
        Selected physical servers, in replica order (replica 1 first).
    degraded:
        True when the §III-B special case fired: the role constraints
        could not be met (e.g. fewer than r-1 active secondaries) and
        primaries were temporarily treated as secondaries.  Replication
        level is still met.
    skipped_inactive:
        True when at least one inactive server was walked past while
        selecting — i.e. this write was *offloaded* and must be
        recorded in the dirty table if the cluster is not at full
        power.
    """

    servers: Tuple[Hashable, ...]
    degraded: bool = False
    skipped_inactive: bool = False

    def __len__(self) -> int:
        return len(self.servers)

    def __iter__(self):
        return iter(self.servers)

    def __contains__(self, sid: Hashable) -> bool:
        return sid in self.servers


def place_original(
    ring: HashRing,
    oid: Hashable,
    r: int,
    is_active: Optional[Predicate] = None,
) -> PlacementResult:
    """Original consistent hashing (§II-A): the first *r* distinct
    servers clockwise of ``hash(oid)``.

    With *is_active* given, inactive servers are skipped — in the real
    baseline system inactive servers have *left* the ring, which yields
    the same server set for the first replica but can differ for later
    ones; the baseline cluster model removes servers instead, this
    filter exists for analysis convenience.
    """
    if OBS.hot:   # per-placement profiling (--stats / perf runs)
        t0 = perf_counter()
        result = _place_original(ring, oid, r, is_active)
        OBS.metrics.observe("perf.core.place_original",
                            perf_counter() - t0)
        OBS.metrics.inc("core.placements")
        return result
    return _place_original(ring, oid, r, is_active)


def _place_original(
    ring: HashRing,
    oid: Hashable,
    r: int,
    is_active: Optional[Predicate] = None,
) -> PlacementResult:
    ring._rebuild_if_dirty()
    if ring._positions.size == 0:
        raise LookupError("ring is empty")
    slot = ring.successor_slot(ring.key_position(oid))
    try:
        return place_original_from_slot(ring, slot, r, is_active)
    except LookupError as exc:
        raise LookupError(f"{exc} (oid {oid!r})") from None


def place_original_from_slot(
    ring: HashRing,
    slot: int,
    r: int,
    is_active: Optional[Predicate] = None,
) -> PlacementResult:
    """Original placement anchored at a vnode *slot* rather than a key.

    For a fixed membership this is the whole story of a key's
    placement: every key sharing a successor slot walks the identical
    server sequence, which is what lets the placement kernel
    (:mod:`repro.core.kernel`) compute each slot once and serve every
    key from the table.
    """
    if r < 1:
        raise ValueError("replica count must be >= 1")
    ring._rebuild_if_dirty()
    n = ring._positions.size
    if n == 0:
        raise LookupError("ring is empty")
    owners = ring._owners
    slist = ring._server_list
    servers: List[Hashable] = []
    seen: set = set()
    skipped = False
    for step in range(n):
        oidx = owners[(slot + step) % n]
        if oidx in seen:
            continue
        seen.add(oidx)
        sid = slist[oidx]
        if is_active is not None and not is_active(sid):
            skipped = True
            continue
        servers.append(sid)
        if len(servers) == r:
            return PlacementResult(tuple(servers), skipped_inactive=skipped)
    raise LookupError(
        f"only {len(servers)} of {r} replicas placeable"
    )


class _RingWalker:
    """Stateful slot-level walk used by the primary placement.

    Keeps the current slot so ``chain="walk"`` can continue where the
    previous replica stopped, and exposes a bounded full-circle search
    with arbitrary predicates.
    """

    def __init__(self, ring: HashRing, slot: int) -> None:
        self._ring = ring
        ring._rebuild_if_dirty()
        self._n = ring._positions.size
        if self._n == 0:
            raise LookupError("ring is empty")
        self._slot = slot

    def restart_at(self, position: int) -> None:
        self._slot = self._ring.successor_slot(position)

    def find(self, predicate: Predicate,
             on_skip_inactive: Optional[Callable[[Hashable], None]] = None,
             is_active: Optional[Predicate] = None) -> Optional[Hashable]:
        """First server satisfying *predicate* within one full circle
        from the current slot; advances the cursor past the match.

        *on_skip_inactive* is invoked for each distinct inactive server
        walked past (offload detection)."""
        ring = self._ring
        owners = ring._owners
        slist = ring._server_list
        seen: set = set()
        for step in range(self._n):
            slot = (self._slot + step) % self._n
            sid = slist[owners[slot]]
            if sid in seen:
                continue
            seen.add(sid)
            if (on_skip_inactive is not None and is_active is not None
                    and not is_active(sid)):
                on_skip_inactive(sid)
            if predicate(sid):
                self._slot = (slot + 1) % self._n
                return sid
        return None


def place_primary(
    ring: HashRing,
    oid: Hashable,
    r: int,
    is_primary: Predicate,
    is_active: Predicate,
    chain: ChainMode = "walk",
) -> PlacementResult:
    """Primary-server data placement — Algorithm 1 (§III-B).

    Parameters
    ----------
    ring:
        The (equal-work-weighted) hash ring.  Inactive servers are
        still on it; they are skipped here, not removed.
    oid:
        Object id.
    r:
        Replication factor.
    is_primary / is_active:
        Role and power-state oracles (rank-based in practice).
    chain:
        Where each replica's walk starts (see module docstring).

    Raises
    ------
    LookupError
        When fewer than *r* active servers exist in total.
    """
    if OBS.hot:   # per-placement profiling (--stats / perf runs)
        t0 = perf_counter()
        result = _place_primary(ring, oid, r, is_primary, is_active, chain)
        OBS.metrics.observe("perf.core.place_primary",
                            perf_counter() - t0)
        OBS.metrics.inc("core.placements")
        return result
    return _place_primary(ring, oid, r, is_primary, is_active, chain)


def _place_primary(
    ring: HashRing,
    oid: Hashable,
    r: int,
    is_primary: Predicate,
    is_active: Predicate,
    chain: ChainMode = "walk",
) -> PlacementResult:
    ring._rebuild_if_dirty()
    if ring._positions.size == 0:
        raise LookupError("ring is empty")
    slot = ring.successor_slot(ring.key_position(oid))
    try:
        return place_primary_from_slot(ring, slot, r, is_primary,
                                       is_active, chain)
    except LookupError as exc:
        raise LookupError(f"{exc} (oid {oid!r})") from None


def place_primary_from_slot(
    ring: HashRing,
    slot: int,
    r: int,
    is_primary: Predicate,
    is_active: Predicate,
    chain: ChainMode = "walk",
) -> PlacementResult:
    """Algorithm 1 anchored at a vnode *slot* rather than a key hash.

    The walk (both chain modes) depends only on the starting slot and
    the cluster state — never on the key itself — so this is the unit
    the placement kernel memoizes per ``(version, chain, r)``.
    """
    if r < 1:
        raise ValueError("replica count must be >= 1")

    selected: List[Hashable] = []
    skipped_inactive = [False]
    degraded = False

    def note_skip(_sid: Hashable) -> None:
        skipped_inactive[0] = True

    def not_selected(sid: Hashable) -> bool:
        return sid not in selected

    def eligible(role_pred: Optional[Predicate]) -> Predicate:
        def pred(sid: Hashable) -> bool:
            return (not_selected(sid) and is_active(sid)
                    and (role_pred is None or role_pred(sid)))
        return pred

    def is_secondary(sid: Hashable) -> bool:
        return not is_primary(sid)

    walker = _RingWalker(ring, slot)

    def select(role_pred: Optional[Predicate]) -> Optional[Hashable]:
        """One replica: role-constrained search, falling back to the
        §III-B special case (ignore roles) when the constraint cannot
        be met."""
        nonlocal degraded
        start_slot = walker._slot
        sid = walker.find(eligible(role_pred), note_skip, is_active)
        if sid is None and role_pred is not None:
            degraded = True
            walker._slot = start_slot
            sid = walker.find(eligible(None), note_skip, is_active)
        return sid

    def advance_chain() -> None:
        """Position the walk for the next replica per the chain mode."""
        if chain == "rehash":
            walker.restart_at(hash64(
                selected[-1] if isinstance(selected[-1], (str, bytes, int))
                else repr(selected[-1])))
        # chain == "walk": walker already sits just past the match.

    def have_primary() -> bool:
        return any(is_primary(s) for s in selected)

    if r == 1:
        # Degenerate case: the single copy is the "one copy on a
        # primary" copy.
        sid = select(is_primary)
        if sid is None:
            raise LookupError("no active server")
        selected.append(sid)
        return PlacementResult(tuple(selected), degraded=degraded,
                               skipped_inactive=skipped_inactive[0])

    # First replica: next active server, any role (Algorithm 1 line 2).
    sid = select(None)
    if sid is None:
        raise LookupError("no active server")
    selected.append(sid)

    # Replicas 2 .. r-1 (lines 3-9).
    for _i in range(2, r):
        advance_chain()
        role = is_secondary if have_primary() else None
        sid = select(role)
        if sid is None:
            raise LookupError(
                f"only {len(selected)} of {r} replicas placeable")
        selected.append(sid)

    # Last replica (lines 10-15): enforce the one-primary invariant.
    advance_chain()
    role = is_secondary if have_primary() else is_primary
    sid = select(role)
    if sid is None:
        raise LookupError(
            f"only {len(selected)} of {r} replicas placeable")
    selected.append(sid)

    return PlacementResult(tuple(selected), degraded=degraded,
                           skipped_inactive=skipped_inactive[0])
