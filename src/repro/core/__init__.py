"""The paper's contribution: elastic consistent hashing.

Layered as in §III of the paper:

* :mod:`repro.core.layout` — equal-work data layout (§III-C) and node
  capacity configuration (§III-D);
* :mod:`repro.core.placement` — primary-server data placement,
  Algorithm 1 (§III-B), plus the original-CH baseline placement;
* :mod:`repro.core.versioning` — cluster membership versioning
  (§III-E-1);
* :mod:`repro.core.dirty_table` — dirty-data tracking (§III-E-2);
* :mod:`repro.core.reintegration` — selective data re-integration,
  Algorithm 2 (§III-E-3);
* :mod:`repro.core.elastic` — the :class:`ElasticConsistentHash` facade
  gluing the above together behind one object-location API.
"""

from repro.core.layout import (
    EqualWorkLayout,
    primary_count,
    equal_work_weights,
    CapacityPlan,
)
from repro.core.placement import (
    PlacementResult,
    place_original,
    place_primary,
    ChainMode,
)
from repro.core.versioning import MembershipTable, VersionHistory
from repro.core.dirty_table import DirtyEntry, DirtyTable
from repro.core.reintegration import (
    MigrationTask,
    ReintegrationEngine,
    ReintegrationReport,
)
from repro.core.elastic import ElasticConsistentHash

__all__ = [
    "EqualWorkLayout",
    "primary_count",
    "equal_work_weights",
    "CapacityPlan",
    "PlacementResult",
    "place_original",
    "place_primary",
    "ChainMode",
    "MembershipTable",
    "VersionHistory",
    "DirtyEntry",
    "DirtyTable",
    "MigrationTask",
    "ReintegrationEngine",
    "ReintegrationReport",
    "ElasticConsistentHash",
]
